"""Vectorized, distribution-exact simulators for the paper's algorithms.

The faithful engine advances one coin flip at a time; these simulators
advance one *iteration* at a time, exploiting the closed forms:

* each walk leg's length is ``Geometric(p) - 1`` (one numpy draw);
* whether an L-shaped sortie visits the target, and after how many
  moves, is a closed-form predicate of the four iteration variables
  (see :mod:`repro.grid.geometry`).

Because the sorties are sampled from exactly the process distribution
(no conditioning tricks, no approximation), the outputs are equal in
distribution to the faithful engine's — an equivalence the integration
tests check statistically.

All simulators compute the exact colony minimum ``M_moves`` with the
same retire-when-unimprovable policy as the engine.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.uniform import phase_coin_exponent
from repro.errors import InvalidParameterError
from repro.grid.geometry import Point
from repro.sim.kernels import sample_sorties, sortie_hits
from repro.sim.kernels.xp import _NumpyRNG, numpy_namespace
from repro.sim.metrics import FastRunStats, SearchOutcome

__all__ = [
    "FastRunStats",
    "lshape_first_find",
    "fast_algorithm1",
    "fast_nonuniform",
    "fast_uniform",
    "fast_doubly_uniform",
    "fast_random_walk",
]


def _sample_sorties(
    rng: np.random.Generator, stop_probability: np.ndarray | float, count: int
):
    """Sample ``count`` independent sorties.

    Thin binding of :func:`repro.sim.kernels.sample_sorties` to the
    NumPy namespace: the kernel keeps the historical draw order, so
    these streams are byte-identical to the pre-extraction helper.
    The stop probability may be scalar or per-sortie (the uniform
    algorithm mixes phases in one batch).
    """
    return sample_sorties(
        numpy_namespace(), _NumpyRNG(rng), stop_probability, count
    )


def _sortie_hits(target: Point, signs_v, lengths_v, signs_h, lengths_h):
    """Vectorized L-path hit test + moves-at-hit.

    Binding of :func:`repro.sim.kernels.sortie_hits` to the NumPy
    namespace; see :func:`repro.grid.geometry.l_path_hit_moves` for the
    closed form.
    """
    return sortie_hits(
        numpy_namespace(), target, signs_v, lengths_v, signs_h, lengths_h
    )


def lshape_first_find(
    stop_probability: float,
    n_agents: int,
    target: Point,
    rng: np.random.Generator,
    move_budget: int,
) -> SearchOutcome:
    """Colony ``M_moves`` for repeated L-sorties with one stop probability.

    Covers Algorithm 1 (``p = 1/D``) and Non-Uniform-Search
    (``p = 2^{-kl}``): both repeat identical sorties followed by an
    (uncharged) oracle return.
    """
    if not 0.0 < stop_probability < 1.0:
        raise InvalidParameterError(
            f"stop_probability must be in (0, 1), got {stop_probability}"
        )
    if n_agents < 1:
        raise InvalidParameterError(f"n_agents must be >= 1, got {n_agents}")
    if move_budget < 1:
        raise InvalidParameterError(f"move_budget must be >= 1, got {move_budget}")
    if target == (0, 0):
        return _found_at_origin(n_agents, move_budget)

    cumulative = np.zeros(n_agents, dtype=np.int64)
    agent_ids = np.arange(n_agents)
    best: Optional[int] = None
    best_finder: Optional[int] = None
    # Failsafe against pathological parameter corners; the budget prune
    # guarantees progress in expectation, this guards the worst case.
    expected_len = max(1.0, 2.0 * (1.0 / stop_probability - 1.0))
    max_rounds = int(200 * (move_budget / expected_len + 1)) + 10_000
    rounds_executed = 0
    iterations_executed = 0

    for _ in range(max_rounds):
        if agent_ids.size == 0:
            break
        count = agent_ids.size
        rounds_executed += 1
        iterations_executed += count
        sv, lv, sh, lh = _sample_sorties(rng, stop_probability, count)
        hit, moves_at_hit = _sortie_hits(target, sv, lv, sh, lh)
        totals = cumulative + moves_at_hit
        eligible = hit & (totals <= move_budget)
        if np.any(eligible):
            candidate_index = int(np.argmin(np.where(eligible, totals, np.iinfo(np.int64).max)))
            candidate_total = int(totals[candidate_index])
            if best is None or candidate_total < best:
                best = candidate_total
                best_finder = int(agent_ids[candidate_index])
        survivors = ~hit
        cumulative = cumulative[survivors] + (lv + lh)[survivors]
        agent_ids = agent_ids[survivors]
        limit = move_budget if best is None else min(move_budget, best)
        keep = cumulative < limit
        cumulative = cumulative[keep]
        agent_ids = agent_ids[keep]

    stats = FastRunStats(iterations_executed, rounds_executed)
    if best is None:
        return _not_found(n_agents, move_budget, stats)
    return SearchOutcome(
        found=True,
        m_moves=best,
        m_steps=None,
        finder=best_finder,
        n_agents=n_agents,
        move_budget=move_budget,
        stats=stats,
    )


def fast_algorithm1(
    distance: int,
    n_agents: int,
    target: Point,
    rng: np.random.Generator,
    move_budget: int,
) -> SearchOutcome:
    """Fast path for Algorithm 1: sorties with stop probability ``1/D``."""
    if distance < 2:
        raise InvalidParameterError(f"distance must be >= 2, got {distance}")
    return lshape_first_find(1.0 / distance, n_agents, target, rng, move_budget)


def fast_nonuniform(
    distance: int,
    ell: int,
    n_agents: int,
    target: Point,
    rng: np.random.Generator,
    move_budget: int,
) -> SearchOutcome:
    """Fast path for Non-Uniform-Search: stop probability ``2^{-kl}``."""
    from repro.core.nonuniform import NonUniformSearch

    algorithm = NonUniformSearch(distance, ell)
    return lshape_first_find(
        algorithm.stop_probability, n_agents, target, rng, move_budget
    )


_SORTIE_CHUNK = 1 << 18


def fast_uniform(
    n_agents: int,
    ell: int,
    K: int,
    target: Point,
    rng: np.random.Generator,
    move_budget: int,
    max_phase: int = 50,
) -> SearchOutcome:
    """Fast path for Algorithm 5 (uniform in ``D``).

    Agents are independent, so each is simulated to completion in turn:
    per phase, the number of sorties is one geometric draw
    (``Geometric(1/rho_i) - 1``) and the sorties themselves are sampled
    as one vectorized batch with a closed-form first-hit scan.  Later
    agents stop early once they can no longer beat the best find so
    far, preserving the exact colony minimum.
    """
    if n_agents < 1:
        raise InvalidParameterError(f"n_agents must be >= 1, got {n_agents}")
    if ell < 1:
        raise InvalidParameterError(f"ell must be >= 1, got {ell}")
    if move_budget < 1:
        raise InvalidParameterError(f"move_budget must be >= 1, got {move_budget}")
    if target == (0, 0):
        return _found_at_origin(n_agents, move_budget)

    best: Optional[int] = None
    best_finder: Optional[int] = None
    iterations_executed = 0
    rounds_executed = 0

    for agent_id in range(n_agents):
        limit = move_budget if best is None else min(move_budget, best)
        total, iterations, rounds = _simulate_uniform_agent(
            n_agents, ell, K, target, rng, limit, max_phase
        )
        iterations_executed += iterations
        rounds_executed += rounds
        if total is not None and (best is None or total < best):
            best = total
            best_finder = agent_id

    stats = FastRunStats(iterations_executed, rounds_executed)
    if best is None:
        return _not_found(n_agents, move_budget, stats)
    return SearchOutcome(
        found=True,
        m_moves=best,
        m_steps=None,
        finder=best_finder,
        n_agents=n_agents,
        move_budget=move_budget,
        stats=stats,
    )


def _simulate_uniform_agent(
    n_agents: int,
    ell: int,
    K: int,
    target: Point,
    rng: np.random.Generator,
    move_limit: int,
    max_phase: int,
) -> Tuple[Optional[int], int, int]:
    """One agent's ``(moves_at_first_find, iterations, rounds)``.

    The move count is None if the agent exceeds the limit.  Sorties
    within one phase are sampled in chunks so that a phase with
    millions of expected calls (large ``K * l``) stays memory-bounded.
    """
    cumulative = 0
    phase = 0
    iterations = 0
    rounds = 0
    while phase < max_phase and cumulative < move_limit:
        phase += 1
        rounds += 1
        rho_i = 2.0 ** (phase_coin_exponent(phase, n_agents, ell, K) * ell)
        calls = int(rng.geometric(1.0 / rho_i)) - 1
        stop_p = 2.0 ** -(phase * ell)
        while calls > 0 and cumulative < move_limit:
            batch = min(calls, _SORTIE_CHUNK)
            calls -= batch
            iterations += batch
            sv, lv, sh, lh = _sample_sorties(rng, stop_p, batch)
            hit, moves_at_hit = _sortie_hits(target, sv, lv, sh, lh)
            lengths = lv + lh
            if np.any(hit):
                first = int(np.argmax(hit))
                moves_before = int(lengths[:first].sum())
                total = cumulative + moves_before + int(moves_at_hit[first])
                return (total if total <= move_limit else None), iterations, rounds
            cumulative += int(lengths.sum())
    return None, iterations, rounds


def fast_doubly_uniform(
    n_agents: int,
    ell: int,
    K: int,
    target: Point,
    rng: np.random.Generator,
    move_budget: int,
    max_epoch: int = 40,
) -> SearchOutcome:
    """Fast path for the doubly uniform search (unknown ``D`` and ``n``).

    Mirrors :class:`repro.core.doubly_uniform.DoublyUniformSearch`:
    epoch ``j`` guesses ``n_j = 2^j`` and runs phases ``1..j`` of
    Algorithm 5 under that guess, with the same per-agent-phase batched
    sampling as :func:`fast_uniform`.
    """
    if n_agents < 1:
        raise InvalidParameterError(f"n_agents must be >= 1, got {n_agents}")
    if ell < 1:
        raise InvalidParameterError(f"ell must be >= 1, got {ell}")
    if move_budget < 1:
        raise InvalidParameterError(f"move_budget must be >= 1, got {move_budget}")
    if target == (0, 0):
        return _found_at_origin(n_agents, move_budget)

    best: Optional[int] = None
    best_finder: Optional[int] = None
    iterations_executed = 0
    rounds_executed = 0
    for agent_id in range(n_agents):
        limit = move_budget if best is None else min(move_budget, best)
        total, iterations, rounds = _simulate_doubly_uniform_agent(
            ell, K, target, rng, limit, max_epoch
        )
        iterations_executed += iterations
        rounds_executed += rounds
        if total is not None and (best is None or total < best):
            best = total
            best_finder = agent_id

    stats = FastRunStats(iterations_executed, rounds_executed)
    if best is None:
        return _not_found(n_agents, move_budget, stats)
    return SearchOutcome(
        found=True,
        m_moves=best,
        m_steps=None,
        finder=best_finder,
        n_agents=n_agents,
        move_budget=move_budget,
        stats=stats,
    )


def _simulate_doubly_uniform_agent(
    ell: int,
    K: int,
    target: Point,
    rng: np.random.Generator,
    move_limit: int,
    max_epoch: int,
) -> Tuple[Optional[int], int, int]:
    """One doubly uniform agent's ``(moves_at_first_find, iterations, rounds)``."""
    cumulative = 0
    iterations = 0
    rounds = 0
    for epoch in range(1, max_epoch + 1):
        guessed_n = 2**epoch
        for phase in range(1, epoch + 1):
            if cumulative >= move_limit:
                return None, iterations, rounds
            rounds += 1
            rho_i = 2.0 ** (phase_coin_exponent(phase, guessed_n, ell, K) * ell)
            calls = int(rng.geometric(1.0 / rho_i)) - 1
            stop_p = 2.0 ** -(phase * ell)
            while calls > 0 and cumulative < move_limit:
                batch = min(calls, _SORTIE_CHUNK)
                calls -= batch
                iterations += batch
                sv, lv, sh, lh = _sample_sorties(rng, stop_p, batch)
                hit, moves_at_hit = _sortie_hits(target, sv, lv, sh, lh)
                lengths = lv + lh
                if np.any(hit):
                    first = int(np.argmax(hit))
                    moves_before = int(lengths[:first].sum())
                    total = cumulative + moves_before + int(moves_at_hit[first])
                    return (
                        (total if total <= move_limit else None), iterations, rounds
                    )
                cumulative += int(lengths.sum())
    return None, iterations, rounds


def fast_random_walk(
    n_agents: int,
    target: Point,
    rng: np.random.Generator,
    move_budget: int,
    chunk: int = 2048,
) -> SearchOutcome:
    """Colony ``M_moves`` for independent uniform random walks.

    Every step is a move, so all agents' move counts advance in
    lockstep and the first find in simulated time is the exact colony
    minimum — the simulation stops there.
    """
    if n_agents < 1:
        raise InvalidParameterError(f"n_agents must be >= 1, got {n_agents}")
    if move_budget < 1:
        raise InvalidParameterError(f"move_budget must be >= 1, got {move_budget}")
    if target == (0, 0):
        return _found_at_origin(n_agents, move_budget)

    steps_vectors = np.array([(0, 1), (0, -1), (-1, 0), (1, 0)], dtype=np.int64)
    positions = np.zeros((n_agents, 2), dtype=np.int64)
    moves_done = 0
    rounds_executed = 0
    x, y = target
    while moves_done < move_budget:
        block = min(chunk, move_budget - moves_done)
        rounds_executed += 1
        choices = rng.integers(0, 4, size=(n_agents, block))
        displacements = steps_vectors[choices]
        trajectory = positions[:, None, :] + np.cumsum(displacements, axis=1)
        hits = (trajectory[:, :, 0] == x) & (trajectory[:, :, 1] == y)
        if np.any(hits):
            step_of_hit = np.where(hits.any(axis=1), hits.argmax(axis=1), block)
            winner = int(np.argmin(step_of_hit))
            m_moves = moves_done + int(step_of_hit[winner]) + 1
            return SearchOutcome(
                found=True,
                m_moves=m_moves,
                m_steps=None,
                finder=winner,
                n_agents=n_agents,
                move_budget=move_budget,
                stats=FastRunStats(n_agents * m_moves, rounds_executed),
            )
        positions = trajectory[:, -1, :]
        moves_done += block
    return _not_found(
        n_agents, move_budget, FastRunStats(n_agents * moves_done, rounds_executed)
    )


def _found_at_origin(n_agents: int, move_budget: int) -> SearchOutcome:
    return SearchOutcome(
        found=True,
        m_moves=0,
        m_steps=0,
        finder=0,
        n_agents=n_agents,
        move_budget=move_budget,
        stats=FastRunStats(0, 0),
    )


def _not_found(
    n_agents: int, move_budget: int, stats: Optional[FastRunStats] = None
) -> SearchOutcome:
    return SearchOutcome(
        found=False,
        m_moves=None,
        m_steps=None,
        finder=None,
        n_agents=n_agents,
        move_budget=move_budget,
        stats=stats,
    )
