"""The simulation service facade: ``repro.sim.simulate``.

Every caller that wants the colony metric — CLI, experiments,
benchmarks, examples — funnels through :func:`simulate`: build a
:class:`~repro.sim.backends.base.SimulationRequest`, pick a backend (or
leave ``"auto"``), optionally shard the trial batch across worker
processes.  Sharding preserves the per-trial seed contract
(``derive_seed(seed, *seed_keys, trial)``), so for the per-trial
backends the outcomes are bit-identical whatever ``workers`` is; the
batched backend re-anchors its pooled stream per shard and is equal in
distribution instead.

In front of the backends sits the content-addressed result cache
(:mod:`repro.sim.cache`): when enabled, a request already served for
the same ``(request hash, backend, code version)`` returns its stored
outcomes without touching a backend — repeated sweep points, re-run
experiments, and repeated CLI invocations cost one lookup.  The
module-level :func:`backend_run_count` counter records how many
backend executions this process actually performed, which is how the
tests prove a cached re-run simulates nothing.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Sequence, Tuple

from repro.errors import InvalidParameterError
from repro.sim.backends.base import (
    SimulationRequest,
    SimulationResult,
)
from repro.sim.backends.registry import AUTO, resolve_backend
from repro.sim.cache import cache_enabled, get_cache
from repro.sim.metrics import SearchOutcome

_BACKEND_RUNS = 0


def backend_run_count() -> int:
    """Backend executions performed by this process's ``simulate`` calls.

    Cache hits do not increment the counter; sharded runs count one
    execution per worker chunk.  (Worker *processes* keep their own
    counters — the parent records the chunks it dispatched.)
    """
    return _BACKEND_RUNS


def _count_backend_runs(count: int) -> None:
    global _BACKEND_RUNS
    _BACKEND_RUNS += count


def simulate(
    request: SimulationRequest,
    backend: str = AUTO,
    workers: int = 1,
    cache: Optional[bool] = None,
) -> SimulationResult:
    """Execute a simulation request on the best (or named) backend.

    Parameters
    ----------
    request:
        The job: algorithm spec, colony size, target, budgets, trials,
        seed stream.
    backend:
        A registered backend name, or ``"auto"`` to pick the highest
        priority backend supporting the request.
    workers:
        When > 1 and the request has several trials, shard the trial
        range across a :class:`~concurrent.futures.ProcessPoolExecutor`.
    cache:
        ``True``/``False`` forces the result cache on/off for this
        call; ``None`` (default) follows the process-wide setting
        (:func:`repro.sim.cache.configure_cache`, default on).  The
        cache key is ``(request hash, resolved backend, code
        version)`` — ``workers`` is an execution detail and does not
        participate.
    """
    if workers < 1:
        raise InvalidParameterError(f"workers must be >= 1, got {workers}")
    chosen = resolve_backend(request, backend)
    use_cache = cache_enabled() if cache is None else cache
    if use_cache:
        cached = get_cache().lookup(request, chosen.name)
        if cached is not None:
            return SimulationResult(
                request=request, backend=chosen.name, outcomes=cached
            )
    outcomes = _execute(request, chosen, workers)
    if use_cache:
        get_cache().store(request, chosen.name, outcomes)
    return SimulationResult(request=request, backend=chosen.name, outcomes=outcomes)


def _execute(
    request: SimulationRequest, chosen, workers: int
) -> Tuple[SearchOutcome, ...]:
    """Run the request on the resolved backend, sharding if asked."""
    if workers == 1 or request.n_trials == 1:
        _count_backend_runs(1)
        return chosen.run(request)
    chunks = _chunk_trials(request.n_trials, workers)
    _count_backend_runs(len(chunks))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [
            pool.submit(_run_chunk, request, chosen.name, chunk) for chunk in chunks
        ]
        gathered: List[Tuple[SearchOutcome, ...]] = [
            future.result() for future in futures
        ]
    outcomes: List[SearchOutcome] = []
    for chunk_outcomes in gathered:
        outcomes.extend(chunk_outcomes)
    return tuple(outcomes)


def _chunk_trials(n_trials: int, workers: int) -> List[range]:
    """Contiguous trial-index ranges, one per worker (possibly fewer)."""
    n_chunks = min(workers, n_trials)
    base, remainder = divmod(n_trials, n_chunks)
    chunks: List[range] = []
    start = 0
    for index in range(n_chunks):
        size = base + (1 if index < remainder else 0)
        chunks.append(range(start, start + size))
        start += size
    return chunks


def _run_chunk(
    request: SimulationRequest, backend_name: str, trial_indices: Sequence[int]
) -> Tuple[SearchOutcome, ...]:
    """Worker-process entry point: run a contiguous slice of trials."""
    backend = resolve_backend(request, backend_name)
    return backend.run(request, trial_indices=trial_indices)
