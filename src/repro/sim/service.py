"""The simulation service facade: ``repro.sim.simulate``.

Every caller that wants the colony metric — CLI, experiments,
benchmarks, examples — funnels through :func:`simulate`: build a
:class:`~repro.sim.backends.base.SimulationRequest`, pick a backend (or
leave ``"auto"``), optionally shard the trial batch across worker
processes.  Sharding preserves the per-trial seed contract
(``derive_seed(seed, *seed_keys, trial)``), so for the per-trial
backends the outcomes are bit-identical whatever ``workers`` is; the
batched backend re-anchors its pooled stream per shard and is equal in
distribution instead.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import List, Sequence, Tuple

from repro.errors import InvalidParameterError
from repro.sim.backends.base import (
    SimulationRequest,
    SimulationResult,
)
from repro.sim.backends.registry import AUTO, resolve_backend
from repro.sim.metrics import SearchOutcome


def simulate(
    request: SimulationRequest,
    backend: str = AUTO,
    workers: int = 1,
) -> SimulationResult:
    """Execute a simulation request on the best (or named) backend.

    Parameters
    ----------
    request:
        The job: algorithm spec, colony size, target, budgets, trials,
        seed stream.
    backend:
        A registered backend name, or ``"auto"`` to pick the highest
        priority backend supporting the request.
    workers:
        When > 1 and the request has several trials, shard the trial
        range across a :class:`~concurrent.futures.ProcessPoolExecutor`.
    """
    if workers < 1:
        raise InvalidParameterError(f"workers must be >= 1, got {workers}")
    chosen = resolve_backend(request, backend)
    if workers == 1 or request.n_trials == 1:
        return SimulationResult(
            request=request, backend=chosen.name, outcomes=chosen.run(request)
        )
    chunks = _chunk_trials(request.n_trials, workers)
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [
            pool.submit(_run_chunk, request, chosen.name, chunk) for chunk in chunks
        ]
        gathered: List[Tuple[SearchOutcome, ...]] = [
            future.result() for future in futures
        ]
    outcomes: List[SearchOutcome] = []
    for chunk_outcomes in gathered:
        outcomes.extend(chunk_outcomes)
    return SimulationResult(
        request=request, backend=chosen.name, outcomes=tuple(outcomes)
    )


def _chunk_trials(n_trials: int, workers: int) -> List[range]:
    """Contiguous trial-index ranges, one per worker (possibly fewer)."""
    n_chunks = min(workers, n_trials)
    base, remainder = divmod(n_trials, n_chunks)
    chunks: List[range] = []
    start = 0
    for index in range(n_chunks):
        size = base + (1 if index < remainder else 0)
        chunks.append(range(start, start + size))
        start += size
    return chunks


def _run_chunk(
    request: SimulationRequest, backend_name: str, trial_indices: Sequence[int]
) -> Tuple[SearchOutcome, ...]:
    """Worker-process entry point: run a contiguous slice of trials."""
    backend = resolve_backend(request, backend_name)
    return backend.run(request, trial_indices=trial_indices)
