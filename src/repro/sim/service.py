"""The simulation service facade: ``repro.sim.simulate``.

Every caller that wants the colony metric — CLI, experiments,
benchmarks, examples — funnels through :func:`simulate`: build a
:class:`~repro.sim.backends.base.SimulationRequest`, pick a backend (or
leave ``"auto"``), optionally shard the trial batch across worker
processes.  Sharding preserves the per-trial seed contract
(``derive_seed(seed, *seed_keys, trial)``), so for the per-trial
backends the outcomes are bit-identical whatever ``workers`` is; the
batched backend re-anchors its pooled stream per shard and is equal in
distribution instead.

Since PR 3 the facade owns no execution logic: the resolve -> cache ->
shard -> run -> store pipeline lives in :mod:`repro.sim.jobs`, and
:func:`simulate` is literally ``submit(...).result()`` on the
process-wide :class:`~repro.sim.jobs.JobManager`.  :func:`simulate_async`
is the same submission without the blocking wait — it returns the
:class:`~repro.sim.jobs.SimulationJob` handle for progress polling,
incremental shard streaming, and cancellation.  Both views share the
content-addressed result cache (full-request and per-shard entries),
and :func:`backend_run_count` still counts the backend executions this
process actually performed — how the tests prove cached re-runs and
resumed jobs simulate nothing.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.trace import span
from repro.sim.backends.base import SimulationRequest, SimulationResult
from repro.sim.backends.registry import AUTO
from repro.sim.jobs import (
    AdaptiveRun,
    SimulationJob,
    backend_run_count,
    get_manager,
    simulate_adaptive,
    simulate_async,
)
from repro.sim.selector import SimulationPlan

__all__ = [
    "simulate",
    "simulate_async",
    "simulate_adaptive",
    "backend_run_count",
    "AdaptiveRun",
    "SimulationJob",
]


def simulate(
    request: SimulationRequest,
    backend: str = AUTO,
    workers: int = 1,
    cache: Optional[bool] = None,
    plan: Optional[SimulationPlan] = None,
) -> SimulationResult:
    """Execute a simulation request on the best (or named) backend.

    A thin blocking view over the job layer: submits to the
    process-wide :class:`~repro.sim.jobs.JobManager` and waits for the
    result.  Use :func:`simulate_async` for the non-blocking handle.

    Parameters
    ----------
    request:
        The job: algorithm spec, colony size, target, budgets, trials,
        seed stream.
    backend:
        A registered backend name, or ``"auto"`` to pick the highest
        priority backend supporting the request.
    workers:
        When > 1 and the request has several trials, shard the trial
        range across the manager's worker process pool.
    cache:
        ``True``/``False`` forces the result cache on/off for this
        call; ``None`` (default) follows the process-wide setting
        (:func:`repro.sim.cache.configure_cache`, default on).  The
        cache key is ``(request hash, resolved backend, code
        version)`` — ``workers`` is an execution detail and does not
        participate.
    plan:
        A :class:`~repro.sim.selector.SimulationPlan` (from
        :func:`repro.sim.selector.plan_request`) to execute instead of
        the fixed ``backend``/``workers`` layout — the cost-model
        selector's backend choice and shard count take over.
    """
    # ledger=False: a blocking job is settled before the caller could
    # inspect it through the jobs CLI, so skip the per-call disk writes.
    # The "simulate" span is the root of a local trace (or a child of
    # whatever ambient span the caller holds); submit() captures it as
    # the job span's parent.
    with span(
        "simulate",
        algorithm=request.algorithm.name,
        n_trials=request.n_trials,
    ):
        return get_manager().submit(
            request, backend=backend, workers=workers, cache=cache,
            ledger=False, plan=plan,
        ).result()
