"""Execution traces in the paper's formal sense.

Section 2 defines an execution of a single agent as the alternating
sequence ``(s0, (x0, y0), s1, (x1, y1), ...)`` of states and grid
coordinates.  :class:`TraceRecorder` captures exactly that from the
faithful engine (actions stand in for states when the algorithm runs in
process form, since the process emits ``M(s_i)`` rather than ``s_i``).

Traces are an observability tool: equivalence tests compare move
subsequences across execution forms, and the examples render them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.actions import Action
from repro.grid.geometry import Point


@dataclass
class Execution:
    """One agent's recorded execution prefix."""

    agent_id: int
    actions: List[Action] = field(default_factory=list)
    positions: List[Point] = field(default_factory=list)

    def append(self, action: Action, position: Point) -> None:
        """Record one step: the emitted action and the resulting position."""
        self.actions.append(action)
        self.positions.append(position)

    @property
    def n_steps(self) -> int:
        """Number of recorded steps (Markov-chain transitions)."""
        return len(self.actions)

    @property
    def n_moves(self) -> int:
        """Number of recorded grid moves (``M_moves``-countable steps)."""
        return sum(1 for action in self.actions if action.is_move)

    def moves_only(self) -> List[Action]:
        """The move subsequence (used by cross-form equivalence tests)."""
        return [action for action in self.actions if action.is_move]

    def visited(self) -> List[Point]:
        """All positions in visit order, including the origin start."""
        return [(0, 0), *self.positions]


class TraceRecorder:
    """Collects executions for the agents of one engine run.

    Recording every step of every agent is memory-hungry; the recorder
    therefore accepts an optional cap on steps per agent and a subset of
    agent ids to record.
    """

    def __init__(
        self,
        max_steps_per_agent: Optional[int] = None,
        agent_ids: Optional[Sequence[int]] = None,
    ) -> None:
        self._max_steps = max_steps_per_agent
        self._agent_filter = None if agent_ids is None else frozenset(agent_ids)
        self._executions: dict[int, Execution] = {}

    def wants(self, agent_id: int) -> bool:
        """Whether steps of this agent should be recorded."""
        return self._agent_filter is None or agent_id in self._agent_filter

    def record(self, agent_id: int, action: Action, position: Point) -> None:
        """Record one step of one agent (subject to the caps)."""
        if not self.wants(agent_id):
            return
        execution = self._executions.setdefault(agent_id, Execution(agent_id))
        if self._max_steps is not None and execution.n_steps >= self._max_steps:
            return
        execution.append(action, position)

    def execution(self, agent_id: int) -> Execution:
        """The recorded execution of ``agent_id`` (empty if never stepped)."""
        return self._executions.get(agent_id, Execution(agent_id))

    @property
    def executions(self) -> List[Execution]:
        """All recorded executions, ordered by agent id."""
        return [self._executions[key] for key in sorted(self._executions)]
