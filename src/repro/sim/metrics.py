"""Result records and the paper's performance metrics.

The paper measures ``M_moves`` — the minimum over all agents of the
number of *moves* (steps labeled up/down/left/right) an agent performs
until it finds the target — and the analogous ``M_steps`` over Markov
chain steps.  Speed-up compares the one-agent and ``n``-agent values of
the same metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import InvalidParameterError
from repro.grid.geometry import Point


@dataclass(frozen=True)
class FastRunStats:
    """Diagnostics accumulated by a vectorized simulation run.

    ``iterations_executed`` counts sampled algorithm iterations
    (sorties, walk steps, or Feinerman stages — the unit each simulator
    advances by); ``rounds_executed`` counts the simulator's outer
    vectorized passes.  Batch backends attach one shared record to
    every outcome of the batch.
    """

    iterations_executed: int
    rounds_executed: int


@dataclass(frozen=True)
class AgentOutcome:
    """Per-agent accounting at the end of a run.

    ``moves_at_find``/``steps_at_find`` are ``None`` when the agent did
    not reach the target before the engine stopped it (budget reached,
    or it could no longer improve the colony minimum).
    """

    agent_id: int
    found: bool
    moves_at_find: Optional[int]
    steps_at_find: Optional[int]
    total_moves: int
    total_steps: int
    final_position: Point

    def __post_init__(self) -> None:
        if self.found and self.moves_at_find is None:
            raise InvalidParameterError("found agents must report moves_at_find")


@dataclass(frozen=True)
class SearchOutcome:
    """Colony-level result of one simulated search.

    Attributes
    ----------
    found:
        Whether any agent reached the target within budget.
    m_moves:
        The paper's ``M_moves``: minimum over agents of the per-agent
        move count at its own first find (``None`` if not found).
    m_steps:
        The analogous minimum over Markov-chain steps, when the
        simulator tracks steps (fast simulators report ``None``).
    finder:
        Id of an agent achieving the minimum.
    n_agents:
        Colony size.
    move_budget:
        The per-agent move budget the run was allowed.
    per_agent:
        Optional per-agent details (faithful engine only).
    stats:
        Optional vectorized-run diagnostics (fast simulators and the
        batched backend only).
    """

    found: bool
    m_moves: Optional[int]
    m_steps: Optional[int]
    finder: Optional[int]
    n_agents: int
    move_budget: Optional[int]
    per_agent: List[AgentOutcome] = field(default_factory=list)
    stats: Optional[FastRunStats] = None

    def __post_init__(self) -> None:
        if self.found and self.m_moves is None:
            raise InvalidParameterError("found outcomes must report m_moves")
        if not self.found and self.m_moves is not None:
            raise InvalidParameterError("not-found outcomes must not report m_moves")

    @property
    def moves_or_budget(self) -> int:
        """``m_moves`` when found, else the exhausted budget.

        A right-censored estimate convenient for averaging in sweeps
        where the budget is chosen far above the expected value, so the
        censoring bias is negligible (and conservative: it understates
        slow algorithms' cost).
        """
        if self.found:
            assert self.m_moves is not None
            return self.m_moves
        if self.move_budget is None:
            raise InvalidParameterError(
                "outcome has neither a find nor a budget to report"
            )
        return self.move_budget


def speedup(single_agent_moves: float, colony_moves: float) -> float:
    """Speed-up of a colony over one agent: ``E_1[M] / E_n[M]``.

    The paper's performance question is how this grows with ``n``
    (optimal: ``min{n, D}``; below the chi threshold: ``min{n, D^{o(1)}}``).
    """
    if single_agent_moves <= 0 or colony_moves <= 0:
        raise InvalidParameterError("move counts must be positive")
    return single_agent_moves / colony_moves
