"""Experiment sweeps: parameter grids, repetitions, tables.

The benchmark harness and EXPERIMENTS.md both consume this module: a
:class:`Sweep` runs a trial over a parameter grid x trials square,
aggregates each grid point into an :class:`ExperimentRow`, and
:func:`rows_to_markdown` renders the tables recorded in
EXPERIMENTS.md.

Two trial forms exist, with two execution strategies:

* a plain ``trial(params, rng) -> float`` callable is compiled into
  :class:`SweepJob` trial slices — serially, or sharded across a
  :class:`~concurrent.futures.ProcessPoolExecutor` with ``workers=N``;
* a :class:`SimulationTrial` declares that the trial is *really a
  SimulationRequest factory*; the sweep then compiles each grid point
  into **one** :func:`repro.sim.simulate` call (one vectorized
  batched-backend pass per point), sharding whole points — not
  individual trials — across workers.  Each compiled call also passes
  through the content-addressed result cache, so repeated points and
  re-run sweeps simulate nothing.

Trial ``t`` of point ``i`` always draws from ``derive_seed(seed,
*seed_keys, i, t)`` regardless of trial form, job partitioning, or
worker count — for per-trial execution (plain functions, or compiled
points on a per-trial backend) runs therefore reproduce the serial
rows bit for bit; compiled points on the ``batched`` backend pool the
point's trials into one stream anchored at trial 0's address and are
equal in distribution instead.
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.errors import InvalidParameterError
from repro.sim.backends.base import SimulationRequest
from repro.sim.metrics import SearchOutcome
from repro.sim.rng import derive_seed
from repro.sim.stats import Estimate, mean_ci

TrialFunction = Callable[[Mapping[str, object], np.random.Generator], float]
RequestFactory = Callable[[Mapping[str, object]], SimulationRequest]
OutcomeMetric = Callable[[SearchOutcome], float]


def censored_moves(outcome: SearchOutcome) -> float:
    """The default compiled-sweep metric: per-trial ``moves_or_budget``."""
    return float(outcome.moves_or_budget)


@dataclass(frozen=True)
class SimulationTrial:
    """Marks a sweep trial as *really a SimulationRequest factory*.

    ``factory(params)`` returns a request template for one grid point;
    the sweep owns the trial-batch fields and overwrites them —
    ``n_trials`` with the sweep's repetition count and ``seed`` /
    ``seed_keys`` with the sweep's addressing ``(seed, *seed_keys,
    point_index)`` — so the template's own values for those fields are
    irrelevant.  ``metric`` maps each trial's
    :class:`~repro.sim.metrics.SearchOutcome` to the measured float.

    ``backend`` defaults to ``"auto"``, which resolves trial batches to
    the vectorized ``batched`` backend for every algorithm it covers;
    name a per-trial backend (``closed_form``, ``reference``) to keep
    the historical bit-exact per-trial streams.  ``cache`` forwards to
    :func:`repro.sim.simulate` (``None`` = process default).
    """

    factory: RequestFactory
    metric: OutcomeMetric = censored_moves
    backend: str = "auto"
    cache: Optional[bool] = None


@dataclass(frozen=True)
class ExperimentRow:
    """One aggregated grid point: parameters plus measured estimates."""

    params: Dict[str, object]
    estimate: Estimate
    extras: Dict[str, float] = field(default_factory=dict)

    def value(self) -> float:
        """The point estimate (mean over trials)."""
        return self.estimate.mean


@dataclass(frozen=True)
class SweepJob:
    """One executable shard of a sweep: a trial slice of one grid point."""

    point_index: int
    params: Dict[str, object]
    trial_start: int
    trial_count: int

    @property
    def trial_indices(self) -> range:
        """The trial indices this job covers."""
        return range(self.trial_start, self.trial_start + self.trial_count)


def _execute_job(
    trial: TrialFunction, job: SweepJob, seed: int, seed_keys: Tuple[int, ...]
) -> Tuple[int, int, List[float]]:
    """Run one job; also the worker-process entry point.

    The per-trial stream is derived from the trial's *global* address
    ``(seed, *seed_keys, point_index, trial_index)``, never from the
    job boundaries, which is what makes any partitioning reproduce the
    serial samples.
    """
    samples = [
        float(
            trial(
                job.params,
                np.random.default_rng(
                    derive_seed(seed, *seed_keys, job.point_index, t)
                ),
            )
        )
        for t in job.trial_indices
    ]
    return job.point_index, job.trial_start, samples


def _execute_point(
    request: SimulationRequest,
    backend: str,
    metric: OutcomeMetric,
    cache: Optional[bool],
) -> Tuple[List[float], float]:
    """Run one compiled grid point; also the worker-process entry point.

    Returns the per-trial metric samples plus the point's find rate
    (every compiled row carries it as a standard extra).
    """
    from repro.sim.service import simulate

    result = simulate(request, backend=backend, cache=cache)
    samples = [metric(outcome) for outcome in result.outcomes]
    return samples, result.find_rate


class Sweep:
    """Run a trial over a parameter grid, trials times per point.

    Parameters
    ----------
    trial:
        Either ``trial(params, rng) -> float`` — one measurement,
        drawing all randomness from ``rng`` — or a
        :class:`SimulationTrial`, in which case each grid point is
        compiled into a single batched :func:`repro.sim.simulate` call.
    grid:
        Sequence of parameter dictionaries (one per grid point).  Use
        :func:`grid_product` to build Cartesian grids.
    trials:
        Repetitions per point.
    seed:
        Master seed; point ``i``, trial ``t`` gets the independent
        stream ``derive_seed(seed, *seed_keys, i, t)`` so any single
        trial is reproducible in isolation.
    workers:
        Number of worker processes.  ``1`` (default) executes in
        process; ``N > 1`` shards the compiled jobs (plain trials) or
        whole grid points (simulation trials) across a process pool.
        Rows are bit-identical either way for per-trial execution.
        Work that cannot be pickled (lambdas, closures) silently falls
        back to the serial path.
    job_size:
        Trials per compiled job (plain trials only).  Defaults to the
        whole point serially or to balanced shards (4 jobs per worker)
        when parallel.
    seed_keys:
        Optional address prefix, letting several sweeps share one
        master seed without stream collisions (point ``i`` of a sweep
        tagged ``(7,)`` draws from ``derive_seed(seed, 7, i, t)``).
    """

    def __init__(
        self,
        trial: Union[TrialFunction, SimulationTrial],
        grid: Sequence[Mapping[str, object]],
        trials: int,
        seed: int,
        workers: int = 1,
        job_size: Optional[int] = None,
        seed_keys: Tuple[int, ...] = (),
    ) -> None:
        if trials < 1:
            raise InvalidParameterError(f"trials must be >= 1, got {trials}")
        if not grid:
            raise InvalidParameterError("grid must contain at least one point")
        if workers < 1:
            raise InvalidParameterError(f"workers must be >= 1, got {workers}")
        if job_size is not None and job_size < 1:
            raise InvalidParameterError(f"job_size must be >= 1, got {job_size}")
        self._trial = trial
        self._grid = [dict(point) for point in grid]
        self._trials = trials
        self._seed = seed
        self._workers = workers
        self._job_size = job_size
        self._seed_keys = tuple(int(key) for key in seed_keys)

    @property
    def compiled(self) -> bool:
        """Whether this sweep compiles points into batched simulate calls."""
        return isinstance(self._trial, SimulationTrial)

    def compile_jobs(self) -> List[SweepJob]:
        """Compile the grid x trials square into executable jobs.

        A compiled (simulation-trial) sweep always produces exactly one
        job per grid point — the whole point is one vectorized
        backend call.
        """
        if self.compiled:
            job_size = self._trials
        elif self._job_size is not None:
            job_size = self._job_size
        elif self._workers == 1:
            job_size = self._trials
        else:
            # Oversplit relative to the pool so stragglers rebalance.
            total = len(self._grid) * self._trials
            job_size = max(1, total // (self._workers * 4) or 1)
            job_size = min(job_size, self._trials)
        jobs: List[SweepJob] = []
        for point_index, params in enumerate(self._grid):
            for trial_start in range(0, self._trials, job_size):
                jobs.append(
                    SweepJob(
                        point_index=point_index,
                        params=params,
                        trial_start=trial_start,
                        trial_count=min(job_size, self._trials - trial_start),
                    )
                )
        return jobs

    def compile_requests(self) -> List[SimulationRequest]:
        """The per-point requests a compiled sweep will execute.

        Each factory template is rebound to the sweep's addressing:
        ``n_trials`` becomes the repetition count and trial ``t`` of
        point ``i`` draws from ``derive_seed(seed, *seed_keys, i, t)``
        — exactly the stream the per-trial job path uses, which is what
        keeps per-trial backends bit-identical under compilation.
        """
        if not self.compiled:
            raise InvalidParameterError(
                "compile_requests() requires a SimulationTrial sweep"
            )
        return [
            replace(
                self._trial.factory(params),
                n_trials=self._trials,
                seed=self._seed,
                seed_keys=(*self._seed_keys, point_index),
            )
            for point_index, params in enumerate(self._grid)
        ]

    def run(self) -> List[ExperimentRow]:
        """Execute the sweep and aggregate each point."""
        if self.compiled:
            return self._run_compiled()
        jobs = self.compile_jobs()
        if self._workers > 1 and self._picklable(self._trial):
            results = self._run_parallel(jobs)
        else:
            results = [
                _execute_job(self._trial, job, self._seed, self._seed_keys)
                for job in jobs
            ]
        # Reassemble in (point, trial) order — jobs may complete in any
        # order, the samples may not.
        per_point: Dict[int, List[Tuple[int, List[float]]]] = {}
        for point_index, trial_start, samples in results:
            per_point.setdefault(point_index, []).append((trial_start, samples))
        rows: List[ExperimentRow] = []
        for point_index, params in enumerate(self._grid):
            shards = sorted(per_point[point_index])
            samples = [value for _, shard in shards for value in shard]
            rows.append(ExperimentRow(params=params, estimate=mean_ci(samples)))
        return rows

    def _run_compiled(self) -> List[ExperimentRow]:
        """One batched simulate call per point, points sharded if asked."""
        trial = self._trial
        requests = self.compile_requests()
        if self._workers > 1 and len(requests) > 1 and self._picklable(trial):
            with ProcessPoolExecutor(max_workers=self._workers) as pool:
                futures = [
                    pool.submit(
                        _execute_point,
                        request,
                        trial.backend,
                        trial.metric,
                        trial.cache,
                    )
                    for request in requests
                ]
                results = [future.result() for future in futures]
        else:
            results = [
                _execute_point(request, trial.backend, trial.metric, trial.cache)
                for request in requests
            ]
        return [
            ExperimentRow(
                params=params,
                estimate=mean_ci(samples),
                extras={"find_rate": find_rate},
            )
            for params, (samples, find_rate) in zip(self._grid, results)
        ]

    def _run_parallel(
        self, jobs: List[SweepJob]
    ) -> List[Tuple[int, int, List[float]]]:
        with ProcessPoolExecutor(max_workers=self._workers) as pool:
            futures = [
                pool.submit(
                    _execute_job, self._trial, job, self._seed, self._seed_keys
                )
                for job in jobs
            ]
            return [future.result() for future in futures]

    @staticmethod
    def _picklable(work: object) -> bool:
        """Whether the trial (or factory+metric) can cross processes."""
        try:
            pickle.dumps(work)
            return True
        except Exception:
            return False


def grid_product(**axes: Sequence[object]) -> List[Dict[str, object]]:
    """Cartesian product of named axes into a list of param dicts.

    ``grid_product(D=[8, 16], n=[1, 4])`` yields four points in
    row-major order.
    """
    if not axes:
        raise InvalidParameterError("need at least one axis")
    names = list(axes)
    points: List[Dict[str, object]] = [{}]
    for name in names:
        values = list(axes[name])
        if not values:
            raise InvalidParameterError(f"axis {name!r} is empty")
        points = [{**point, name: value} for point in points for value in values]
    return points


def rows_to_markdown(
    rows: Iterable[ExperimentRow],
    param_columns: Sequence[str],
    value_label: str = "measured",
    extra_columns: Sequence[str] = (),
) -> str:
    """Render rows as a GitHub-flavored markdown table."""
    header_cells = [*param_columns, value_label, "ci95", *extra_columns]
    lines = [
        "| " + " | ".join(header_cells) + " |",
        "|" + "|".join("---" for _ in header_cells) + "|",
    ]
    for row in rows:
        cells = [str(row.params.get(name, "")) for name in param_columns]
        cells.append(f"{row.estimate.mean:.4g}")
        cells.append(f"[{row.estimate.ci_low:.4g}, {row.estimate.ci_high:.4g}]")
        for name in extra_columns:
            value = row.extras.get(name)
            cells.append("" if value is None else f"{value:.4g}")
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)
