"""Experiment sweeps: parameter grids, repetitions, tables.

The benchmark harness and EXPERIMENTS.md both consume this module: a
:class:`Sweep` compiles a parameter grid x trials into
:class:`SweepJob` batches, executes them — serially, or sharded across
a :class:`~concurrent.futures.ProcessPoolExecutor` with ``workers=N``
— aggregates each grid point into an :class:`ExperimentRow`, and
:func:`rows_to_markdown` renders the tables recorded in
EXPERIMENTS.md.

Trial ``t`` of point ``i`` always draws from ``derive_seed(seed, i,
t)`` regardless of job partitioning or worker count, so parallel runs
reproduce the serial rows bit for bit.
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import InvalidParameterError
from repro.sim.rng import derive_seed
from repro.sim.stats import Estimate, mean_ci

TrialFunction = Callable[[Mapping[str, object], np.random.Generator], float]


@dataclass(frozen=True)
class ExperimentRow:
    """One aggregated grid point: parameters plus measured estimates."""

    params: Dict[str, object]
    estimate: Estimate
    extras: Dict[str, float] = field(default_factory=dict)

    def value(self) -> float:
        """The point estimate (mean over trials)."""
        return self.estimate.mean


@dataclass(frozen=True)
class SweepJob:
    """One executable shard of a sweep: a trial slice of one grid point."""

    point_index: int
    params: Dict[str, object]
    trial_start: int
    trial_count: int

    @property
    def trial_indices(self) -> range:
        """The trial indices this job covers."""
        return range(self.trial_start, self.trial_start + self.trial_count)


def _execute_job(
    trial: TrialFunction, job: SweepJob, seed: int
) -> Tuple[int, int, List[float]]:
    """Run one job; also the worker-process entry point.

    The per-trial stream is derived from the trial's *global* address
    ``(seed, point_index, trial_index)``, never from the job boundaries,
    which is what makes any partitioning reproduce the serial samples.
    """
    samples = [
        float(
            trial(
                job.params,
                np.random.default_rng(derive_seed(seed, job.point_index, t)),
            )
        )
        for t in job.trial_indices
    ]
    return job.point_index, job.trial_start, samples


class Sweep:
    """Run a trial function over a parameter grid, trials times per point.

    Parameters
    ----------
    trial:
        ``trial(params, rng) -> float`` — one measurement; must draw all
        randomness from ``rng``.
    grid:
        Sequence of parameter dictionaries (one per grid point).  Use
        :func:`grid_product` to build Cartesian grids.
    trials:
        Repetitions per point.
    seed:
        Master seed; point ``i``, trial ``t`` gets the independent
        stream ``derive_seed(seed, i, t)`` so any single trial is
        reproducible in isolation.
    workers:
        Number of worker processes.  ``1`` (default) executes in
        process; ``N > 1`` shards the compiled jobs across a process
        pool.  Rows are bit-identical either way.  Trial functions that
        cannot be pickled (lambdas, closures) silently fall back to the
        serial path.
    job_size:
        Trials per compiled job.  Defaults to the whole point serially
        or to balanced shards (4 jobs per worker) when parallel.
    """

    def __init__(
        self,
        trial: TrialFunction,
        grid: Sequence[Mapping[str, object]],
        trials: int,
        seed: int,
        workers: int = 1,
        job_size: Optional[int] = None,
    ) -> None:
        if trials < 1:
            raise InvalidParameterError(f"trials must be >= 1, got {trials}")
        if not grid:
            raise InvalidParameterError("grid must contain at least one point")
        if workers < 1:
            raise InvalidParameterError(f"workers must be >= 1, got {workers}")
        if job_size is not None and job_size < 1:
            raise InvalidParameterError(f"job_size must be >= 1, got {job_size}")
        self._trial = trial
        self._grid = [dict(point) for point in grid]
        self._trials = trials
        self._seed = seed
        self._workers = workers
        self._job_size = job_size

    def compile_jobs(self) -> List[SweepJob]:
        """Compile the grid x trials square into executable jobs."""
        if self._job_size is not None:
            job_size = self._job_size
        elif self._workers == 1:
            job_size = self._trials
        else:
            # Oversplit relative to the pool so stragglers rebalance.
            total = len(self._grid) * self._trials
            job_size = max(1, total // (self._workers * 4) or 1)
            job_size = min(job_size, self._trials)
        jobs: List[SweepJob] = []
        for point_index, params in enumerate(self._grid):
            for trial_start in range(0, self._trials, job_size):
                jobs.append(
                    SweepJob(
                        point_index=point_index,
                        params=params,
                        trial_start=trial_start,
                        trial_count=min(job_size, self._trials - trial_start),
                    )
                )
        return jobs

    def run(self) -> List[ExperimentRow]:
        """Execute the sweep and aggregate each point."""
        jobs = self.compile_jobs()
        if self._workers > 1 and self._picklable():
            results = self._run_parallel(jobs)
        else:
            results = [_execute_job(self._trial, job, self._seed) for job in jobs]
        # Reassemble in (point, trial) order — jobs may complete in any
        # order, the samples may not.
        per_point: Dict[int, List[Tuple[int, List[float]]]] = {}
        for point_index, trial_start, samples in results:
            per_point.setdefault(point_index, []).append((trial_start, samples))
        rows: List[ExperimentRow] = []
        for point_index, params in enumerate(self._grid):
            shards = sorted(per_point[point_index])
            samples = [value for _, shard in shards for value in shard]
            rows.append(ExperimentRow(params=params, estimate=mean_ci(samples)))
        return rows

    def _run_parallel(
        self, jobs: List[SweepJob]
    ) -> List[Tuple[int, int, List[float]]]:
        with ProcessPoolExecutor(max_workers=self._workers) as pool:
            futures = [
                pool.submit(_execute_job, self._trial, job, self._seed)
                for job in jobs
            ]
            return [future.result() for future in futures]

    def _picklable(self) -> bool:
        """Whether the trial function can cross a process boundary."""
        try:
            pickle.dumps(self._trial)
            return True
        except Exception:
            return False


def grid_product(**axes: Sequence[object]) -> List[Dict[str, object]]:
    """Cartesian product of named axes into a list of param dicts.

    ``grid_product(D=[8, 16], n=[1, 4])`` yields four points in
    row-major order.
    """
    if not axes:
        raise InvalidParameterError("need at least one axis")
    names = list(axes)
    points: List[Dict[str, object]] = [{}]
    for name in names:
        values = list(axes[name])
        if not values:
            raise InvalidParameterError(f"axis {name!r} is empty")
        points = [{**point, name: value} for point in points for value in values]
    return points


def rows_to_markdown(
    rows: Iterable[ExperimentRow],
    param_columns: Sequence[str],
    value_label: str = "measured",
    extra_columns: Sequence[str] = (),
) -> str:
    """Render rows as a GitHub-flavored markdown table."""
    header_cells = [*param_columns, value_label, "ci95", *extra_columns]
    lines = [
        "| " + " | ".join(header_cells) + " |",
        "|" + "|".join("---" for _ in header_cells) + "|",
    ]
    for row in rows:
        cells = [str(row.params.get(name, "")) for name in param_columns]
        cells.append(f"{row.estimate.mean:.4g}")
        cells.append(f"[{row.estimate.ci_low:.4g}, {row.estimate.ci_high:.4g}]")
        for name in extra_columns:
            value = row.extras.get(name)
            cells.append("" if value is None else f"{value:.4g}")
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)
