"""Experiment sweeps: parameter grids, repetitions, tables.

The benchmark harness and EXPERIMENTS.md both consume this module: a
:class:`Sweep` maps a trial function over a parameter grid with
per-point repetitions (independently seeded via
:func:`repro.sim.rng.derive_seed`), aggregates each point into an
:class:`ExperimentRow`, and :func:`rows_to_markdown` renders the tables
recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Sequence

import numpy as np

from repro.errors import InvalidParameterError
from repro.sim.rng import derive_seed
from repro.sim.stats import Estimate, mean_ci

TrialFunction = Callable[[Mapping[str, object], np.random.Generator], float]


@dataclass(frozen=True)
class ExperimentRow:
    """One aggregated grid point: parameters plus measured estimates."""

    params: Dict[str, object]
    estimate: Estimate
    extras: Dict[str, float] = field(default_factory=dict)

    def value(self) -> float:
        """The point estimate (mean over trials)."""
        return self.estimate.mean


class Sweep:
    """Run a trial function over a parameter grid, trials times per point.

    Parameters
    ----------
    trial:
        ``trial(params, rng) -> float`` — one measurement; must draw all
        randomness from ``rng``.
    grid:
        Sequence of parameter dictionaries (one per grid point).  Use
        :func:`grid_product` to build Cartesian grids.
    trials:
        Repetitions per point.
    seed:
        Master seed; point ``i``, trial ``t`` gets the independent
        stream ``derive_seed(seed, i, t)`` so any single trial is
        reproducible in isolation.
    """

    def __init__(
        self,
        trial: TrialFunction,
        grid: Sequence[Mapping[str, object]],
        trials: int,
        seed: int,
    ) -> None:
        if trials < 1:
            raise InvalidParameterError(f"trials must be >= 1, got {trials}")
        if not grid:
            raise InvalidParameterError("grid must contain at least one point")
        self._trial = trial
        self._grid = [dict(point) for point in grid]
        self._trials = trials
        self._seed = seed

    def run(self) -> List[ExperimentRow]:
        """Execute the sweep and aggregate each point."""
        rows: List[ExperimentRow] = []
        for point_index, params in enumerate(self._grid):
            samples = []
            for trial_index in range(self._trials):
                rng = np.random.default_rng(
                    derive_seed(self._seed, point_index, trial_index)
                )
                samples.append(float(self._trial(params, rng)))
            rows.append(ExperimentRow(params=params, estimate=mean_ci(samples)))
        return rows


def grid_product(**axes: Sequence[object]) -> List[Dict[str, object]]:
    """Cartesian product of named axes into a list of param dicts.

    ``grid_product(D=[8, 16], n=[1, 4])`` yields four points in
    row-major order.
    """
    if not axes:
        raise InvalidParameterError("need at least one axis")
    names = list(axes)
    points: List[Dict[str, object]] = [{}]
    for name in names:
        values = list(axes[name])
        if not values:
            raise InvalidParameterError(f"axis {name!r} is empty")
        points = [{**point, name: value} for point in points for value in values]
    return points


def rows_to_markdown(
    rows: Iterable[ExperimentRow],
    param_columns: Sequence[str],
    value_label: str = "measured",
    extra_columns: Sequence[str] = (),
) -> str:
    """Render rows as a GitHub-flavored markdown table."""
    header_cells = [*param_columns, value_label, "ci95", *extra_columns]
    lines = [
        "| " + " | ".join(header_cells) + " |",
        "|" + "|".join("---" for _ in header_cells) + "|",
    ]
    for row in rows:
        cells = [str(row.params.get(name, "")) for name in param_columns]
        cells.append(f"{row.estimate.mean:.4g}")
        cells.append(f"[{row.estimate.ci_low:.4g}, {row.estimate.ci_high:.4g}]")
        for name in extra_columns:
            value = row.extras.get(name)
            cells.append("" if value is None else f"{value:.4g}")
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)
