"""Experiment sweeps: parameter grids, repetitions, tables.

The benchmark harness and EXPERIMENTS.md both consume this module: a
:class:`Sweep` runs a trial over a parameter grid x trials square,
aggregates each grid point into an :class:`ExperimentRow`, and
:func:`rows_to_markdown` renders the tables recorded in
EXPERIMENTS.md.

Two trial forms exist, with two execution strategies:

* a plain ``trial(params, rng) -> float`` callable is compiled into
  :class:`SweepShard` trial slices — serially, or sharded across a
  :class:`~concurrent.futures.ProcessPoolExecutor` with ``workers=N``;
* a :class:`SimulationTrial` declares that the trial is *really a
  SimulationRequest factory*; the sweep then compiles each grid point
  into **one** batched backend call, submitted as a child job of the
  process-wide :class:`~repro.sim.jobs.JobManager` (whole points — not
  individual trials — run in parallel worker processes).  Each
  compiled call also passes through the content-addressed result
  cache, so repeated points and re-run sweeps simulate nothing.

Compiled sweeps can also run *asynchronously*: :meth:`Sweep.submit`
returns a :class:`SweepJob` handle streaming
:class:`ExperimentRow` objects as grid points complete
(:meth:`SweepJob.iter_rows`), reporting live point/trial progress
(:meth:`SweepJob.progress`), and supporting cancellation.  Because
every completed point lands in the result cache the moment it
finishes, a killed or cancelled sweep resumes from its completed
points on resubmission — zero re-simulation, proven by
:func:`repro.sim.jobs.backend_run_count`.

Trial ``t`` of point ``i`` always draws from ``derive_seed(seed,
*seed_keys, i, t)`` regardless of trial form, job partitioning, or
worker count — for per-trial execution (plain functions, or compiled
points on a per-trial backend) runs therefore reproduce the serial
rows bit for bit; compiled points on the ``batched`` backend pool the
point's trials into one stream anchored at trial 0's address and are
equal in distribution instead.
"""

from __future__ import annotations

import pickle
import threading
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.errors import InvalidParameterError, JobCancelledError
from repro.sim.backends.base import SimulationRequest
from repro.sim.jobs import (
    TERMINAL_STATES,
    JobManager,
    JobState,
    SimulationJob,
    get_manager,
)
from repro.sim.metrics import SearchOutcome
from repro.sim.rng import derive_seed
from repro.sim.stats import Estimate, mean_ci

TrialFunction = Callable[[Mapping[str, object], np.random.Generator], float]
RequestFactory = Callable[[Mapping[str, object]], SimulationRequest]
OutcomeMetric = Callable[[SearchOutcome], float]


def censored_moves(outcome: SearchOutcome) -> float:
    """The default compiled-sweep metric: per-trial ``moves_or_budget``."""
    return float(outcome.moves_or_budget)


@dataclass(frozen=True)
class SimulationTrial:
    """Marks a sweep trial as *really a SimulationRequest factory*.

    ``factory(params)`` returns a request template for one grid point;
    the sweep owns the trial-batch fields and overwrites them —
    ``n_trials`` with the sweep's repetition count and ``seed`` /
    ``seed_keys`` with the sweep's addressing ``(seed, *seed_keys,
    point_index)`` — so the template's own values for those fields are
    irrelevant.  ``metric`` maps each trial's
    :class:`~repro.sim.metrics.SearchOutcome` to the measured float.

    ``backend`` defaults to ``"auto"``, which resolves trial batches to
    the vectorized ``batched`` backend for every algorithm it covers;
    name a per-trial backend (``closed_form``, ``reference``) to keep
    the historical bit-exact per-trial streams.  ``cache`` forwards to
    :func:`repro.sim.simulate` (``None`` = process default).
    """

    factory: RequestFactory
    metric: OutcomeMetric = censored_moves
    backend: str = "auto"
    cache: Optional[bool] = None


@dataclass(frozen=True)
class ExperimentRow:
    """One aggregated grid point: parameters plus measured estimates."""

    params: Dict[str, object]
    estimate: Estimate
    extras: Dict[str, float] = field(default_factory=dict)

    def value(self) -> float:
        """The point estimate (mean over trials)."""
        return self.estimate.mean


@dataclass(frozen=True)
class SweepShard:
    """One executable shard of a sweep: a trial slice of one grid point."""

    point_index: int
    params: Dict[str, object]
    trial_start: int
    trial_count: int

    @property
    def trial_indices(self) -> range:
        """The trial indices this shard covers."""
        return range(self.trial_start, self.trial_start + self.trial_count)


def _execute_job(
    trial: TrialFunction, job: SweepShard, seed: int, seed_keys: Tuple[int, ...]
) -> Tuple[int, int, List[float]]:
    """Run one job; also the worker-process entry point.

    The per-trial stream is derived from the trial's *global* address
    ``(seed, *seed_keys, point_index, trial_index)``, never from the
    job boundaries, which is what makes any partitioning reproduce the
    serial samples.
    """
    samples = [
        float(
            trial(
                job.params,
                np.random.default_rng(
                    derive_seed(seed, *seed_keys, job.point_index, t)
                ),
            )
        )
        for t in job.trial_indices
    ]
    return job.point_index, job.trial_start, samples


@dataclass(frozen=True)
class SweepProgress:
    """A snapshot of a submitted sweep's completion state."""

    state: JobState
    total_points: int
    done_points: int
    total_trials: int
    done_trials: int

    @property
    def fraction(self) -> float:
        """Completed trials as a fraction of the total."""
        if self.total_trials == 0:
            return 1.0
        return self.done_trials / self.total_trials


class SweepJob:
    """Handle for a submitted compiled sweep.

    Created by :meth:`Sweep.submit`.  Each grid point runs as a child
    :class:`~repro.sim.jobs.SimulationJob` of the process-wide
    :class:`~repro.sim.jobs.JobManager` — at most ``workers`` points in
    flight, in worker processes when ``workers > 1`` and inline on the
    coordinator thread otherwise.  Rows stream in grid order through
    :meth:`iter_rows`; :meth:`progress` aggregates the children's
    trial-level progress; :meth:`cancel` stops the sweep while keeping
    every already-completed point in the result cache, so resubmitting
    the same sweep resumes instead of restarting.
    """

    def __init__(
        self,
        trial: "SimulationTrial",
        entries: List[Tuple[Dict[str, object], SimulationRequest]],
        trials: int,
        workers: int,
        manager: JobManager,
        progress_callback: Optional[Callable[["SweepProgress"], None]] = None,
    ) -> None:
        self._trial = trial
        self._entries = entries
        self._trials = trials
        self._workers = max(1, workers)
        self._manager = manager
        self._progress_callback = progress_callback
        self._lock = threading.Lock()
        self._condition = threading.Condition(self._lock)
        self._rows: List[Optional[ExperimentRow]] = [None] * len(entries)
        self._children: Dict[int, SimulationJob] = {}
        self._state = JobState.PENDING
        self._error: Optional[BaseException] = None
        self._cancel_event = threading.Event()
        self._thread = threading.Thread(
            target=self._drive, name="repro-sweep", daemon=True
        )
        self._thread.start()

    @property
    def state(self) -> JobState:
        """The sweep's current lifecycle state."""
        with self._lock:
            return self._state

    def done(self) -> bool:
        """Whether the sweep reached a terminal state."""
        return self.state in TERMINAL_STATES

    def progress(self) -> SweepProgress:
        """Live point- and trial-level completion snapshot."""
        with self._lock:
            state = self._state
            done_points = sum(1 for row in self._rows if row is not None)
            children = dict(self._children)
        done_trials = sum(
            child.progress().done_trials for child in children.values()
        )
        return SweepProgress(
            state=state,
            total_points=len(self._entries),
            done_points=done_points,
            total_trials=len(self._entries) * self._trials,
            done_trials=done_trials,
        )

    def completed_rows(self) -> List[Tuple[int, ExperimentRow]]:
        """Non-blocking snapshot: the completed points, in grid order.

        The partial view a status poller wants while the sweep runs
        (the HTTP status route serves it); :meth:`result` is the
        blocking full set, :meth:`iter_rows` the streaming one.
        """
        with self._lock:
            return [
                (index, row)
                for index, row in enumerate(self._rows)
                if row is not None
            ]

    def iter_rows(self) -> Iterator[Tuple[int, ExperimentRow]]:
        """Yield ``(point_index, row)`` pairs incrementally, in grid order.

        Blocks until each point completes; raises the sweep's error if
        it fails, or :class:`~repro.errors.JobCancelledError` once the
        remaining points will never arrive after a cancellation.
        """
        for index in range(len(self._entries)):
            with self._condition:
                self._condition.wait_for(
                    lambda: self._rows[index] is not None
                    or self._state in TERMINAL_STATES
                )
                row = self._rows[index]
                if row is None:
                    if self._state is JobState.FAILED:
                        raise self._error
                    raise JobCancelledError(
                        f"sweep cancelled after {index} of "
                        f"{len(self._entries)} points"
                    )
            yield index, row

    def result(self, timeout: Optional[float] = None) -> List[ExperimentRow]:
        """Block until terminal; the aggregated rows in grid order."""
        with self._condition:
            if not self._condition.wait_for(
                lambda: self._state in TERMINAL_STATES,
                timeout=timeout,
            ):
                raise TimeoutError(f"sweep still {self._state.value}")
            if self._state is JobState.FAILED:
                raise self._error
            if self._state is JobState.CANCELLED:
                done = sum(1 for row in self._rows if row is not None)
                raise JobCancelledError(
                    f"sweep cancelled after {done} of "
                    f"{len(self._entries)} points"
                )
            return [row for row in self._rows if row is not None]

    def cancel(self) -> bool:
        """Stop the sweep; completed points stay cached for resumption."""
        with self._lock:
            if self._state in TERMINAL_STATES:
                return False
            children = dict(self._children)
        self._cancel_event.set()
        for child in children.values():
            child.cancel()
        return True

    def _drive(self) -> None:
        trial = self._trial
        use_pool = self._workers > 1 and len(self._entries) > 1
        try:
            with self._condition:
                self._state = JobState.RUNNING
                self._condition.notify_all()
            # Pooled points are bounded by the pool itself, so submit
            # them all upfront and let the executor queue keep every
            # worker saturated (no head-of-line blocking on the
            # in-order consumer below).  Inline points run on their
            # driver threads, so there the window must stay 1 to keep
            # execution serial.
            window = len(self._entries) if use_pool else 1
            submitted = 0
            for completed in range(len(self._entries)):
                if self._cancel_event.is_set():
                    raise JobCancelledError("sweep cancelled")
                while submitted < len(self._entries) and (
                    submitted < completed + window
                ):
                    _, request = self._entries[submitted]
                    child = self._manager.submit(
                        request,
                        backend=trial.backend,
                        workers=1,
                        cache=trial.cache,
                        run_in_pool=use_pool,
                        pool_size=self._workers,
                    )
                    with self._lock:
                        self._children[submitted] = child
                    submitted += 1
                params, _ = self._entries[completed]
                result = self._children[completed].result()
                samples = [trial.metric(o) for o in result.outcomes]
                row = ExperimentRow(
                    params=params,
                    estimate=mean_ci(samples),
                    extras={"find_rate": result.find_rate},
                )
                with self._condition:
                    self._rows[completed] = row
                    self._condition.notify_all()
                if self._progress_callback is not None:
                    self._progress_callback(self.progress())
            with self._condition:
                self._state = JobState.DONE
                self._condition.notify_all()
        except JobCancelledError as error:
            self._settle(JobState.CANCELLED, error)
        except BaseException as error:  # noqa: BLE001 — surfaced via result()
            self._settle(JobState.FAILED, error)

    def _settle(self, state: JobState, error: BaseException) -> None:
        with self._lock:
            children = dict(self._children)
        for child in children.values():
            child.cancel()
        with self._condition:
            self._state = state
            self._error = error
            self._condition.notify_all()


class Sweep:
    """Run a trial over a parameter grid, trials times per point.

    Parameters
    ----------
    trial:
        Either ``trial(params, rng) -> float`` — one measurement,
        drawing all randomness from ``rng`` — or a
        :class:`SimulationTrial`, in which case each grid point is
        compiled into a single batched :func:`repro.sim.simulate` call.
    grid:
        Sequence of parameter dictionaries (one per grid point).  Use
        :func:`grid_product` to build Cartesian grids.
    trials:
        Repetitions per point.
    seed:
        Master seed; point ``i``, trial ``t`` gets the independent
        stream ``derive_seed(seed, *seed_keys, i, t)`` so any single
        trial is reproducible in isolation.
    workers:
        Number of worker processes.  ``1`` (default) executes in
        process; ``N > 1`` shards the compiled shards (plain trials) or
        whole grid points (simulation trials) across the job manager's
        process pool.  Rows are bit-identical either way for per-trial
        execution.  Plain trial functions that cannot be pickled
        (lambdas, closures) silently fall back to the serial path;
        compiled sweeps ship only the requests, so any factory works
        in parallel.
    job_size:
        Trials per compiled job (plain trials only).  Defaults to the
        whole point serially or to balanced shards (4 jobs per worker)
        when parallel.
    seed_keys:
        Optional address prefix, letting several sweeps share one
        master seed without stream collisions (point ``i`` of a sweep
        tagged ``(7,)`` draws from ``derive_seed(seed, 7, i, t)``).
    """

    def __init__(
        self,
        trial: Union[TrialFunction, SimulationTrial],
        grid: Sequence[Mapping[str, object]],
        trials: int,
        seed: int,
        workers: int = 1,
        job_size: Optional[int] = None,
        seed_keys: Tuple[int, ...] = (),
    ) -> None:
        if trials < 1:
            raise InvalidParameterError(f"trials must be >= 1, got {trials}")
        if not grid:
            raise InvalidParameterError("grid must contain at least one point")
        if workers < 1:
            raise InvalidParameterError(f"workers must be >= 1, got {workers}")
        if job_size is not None and job_size < 1:
            raise InvalidParameterError(f"job_size must be >= 1, got {job_size}")
        self._trial = trial
        self._grid = [dict(point) for point in grid]
        self._trials = trials
        self._seed = seed
        self._workers = workers
        self._job_size = job_size
        self._seed_keys = tuple(int(key) for key in seed_keys)

    @property
    def compiled(self) -> bool:
        """Whether this sweep compiles points into batched simulate calls."""
        return isinstance(self._trial, SimulationTrial)

    def compile_jobs(self) -> List[SweepShard]:
        """Compile the grid x trials square into executable shards.

        A compiled (simulation-trial) sweep always produces exactly one
        shard per grid point — the whole point is one vectorized
        backend call.
        """
        if self.compiled:
            job_size = self._trials
        elif self._job_size is not None:
            job_size = self._job_size
        elif self._workers == 1:
            job_size = self._trials
        else:
            # Oversplit relative to the pool so stragglers rebalance.
            total = len(self._grid) * self._trials
            job_size = max(1, total // (self._workers * 4) or 1)
            job_size = min(job_size, self._trials)
        jobs: List[SweepShard] = []
        for point_index, params in enumerate(self._grid):
            for trial_start in range(0, self._trials, job_size):
                jobs.append(
                    SweepShard(
                        point_index=point_index,
                        params=params,
                        trial_start=trial_start,
                        trial_count=min(job_size, self._trials - trial_start),
                    )
                )
        return jobs

    def compile_requests(self) -> List[SimulationRequest]:
        """The per-point requests a compiled sweep will execute.

        Each factory template is rebound to the sweep's addressing:
        ``n_trials`` becomes the repetition count and trial ``t`` of
        point ``i`` draws from ``derive_seed(seed, *seed_keys, i, t)``
        — exactly the stream the per-trial job path uses, which is what
        keeps per-trial backends bit-identical under compilation.
        """
        if not self.compiled:
            raise InvalidParameterError(
                "compile_requests() requires a SimulationTrial sweep"
            )
        return [
            replace(
                self._trial.factory(params),
                n_trials=self._trials,
                seed=self._seed,
                seed_keys=(*self._seed_keys, point_index),
            )
            for point_index, params in enumerate(self._grid)
        ]

    def submit(
        self,
        manager: Optional[JobManager] = None,
        progress: Optional[Callable[[SweepProgress], None]] = None,
    ) -> SweepJob:
        """Submit a compiled sweep for asynchronous execution.

        Returns the :class:`SweepJob` handle immediately; each grid
        point becomes a child job of ``manager`` (the process-wide one
        by default).  ``progress`` is invoked on the coordinator thread
        after every completed point.  Plain trial-function sweeps have
        no request representation to submit — they raise.
        """
        if not self.compiled:
            raise InvalidParameterError(
                "submit() requires a SimulationTrial sweep"
            )
        requests = self.compile_requests()
        entries = list(zip(self._grid, requests))
        return SweepJob(
            trial=self._trial,
            entries=entries,
            trials=self._trials,
            workers=self._workers,
            manager=manager if manager is not None else get_manager(),
            progress_callback=progress,
        )

    def run(
        self,
        progress: Optional[Callable[[SweepProgress], None]] = None,
    ) -> List[ExperimentRow]:
        """Execute the sweep and aggregate each point.

        ``progress`` (compiled sweeps only) is called after each
        completed grid point with a :class:`SweepProgress` snapshot —
        the hook the experiment CLI's ``--watch`` uses for live
        point-level reporting.
        """
        if self.compiled:
            return self.submit(progress=progress).result()
        jobs = self.compile_jobs()
        if self._workers > 1 and self._picklable(self._trial):
            results = self._run_parallel(jobs)
        else:
            results = [
                _execute_job(self._trial, job, self._seed, self._seed_keys)
                for job in jobs
            ]
        # Reassemble in (point, trial) order — jobs may complete in any
        # order, the samples may not.
        per_point: Dict[int, List[Tuple[int, List[float]]]] = {}
        for point_index, trial_start, samples in results:
            per_point.setdefault(point_index, []).append((trial_start, samples))
        rows: List[ExperimentRow] = []
        for point_index, params in enumerate(self._grid):
            shards = sorted(per_point[point_index])
            samples = [value for _, shard in shards for value in shard]
            rows.append(ExperimentRow(params=params, estimate=mean_ci(samples)))
        return rows

    def _run_parallel(
        self, jobs: List[SweepShard]
    ) -> List[Tuple[int, int, List[float]]]:
        with ProcessPoolExecutor(max_workers=self._workers) as pool:
            futures = [
                pool.submit(
                    _execute_job, self._trial, job, self._seed, self._seed_keys
                )
                for job in jobs
            ]
            return [future.result() for future in futures]

    @staticmethod
    def _picklable(work: object) -> bool:
        """Whether the trial (or factory+metric) can cross processes."""
        try:
            pickle.dumps(work)
            return True
        except Exception:
            return False


def grid_product(**axes: Sequence[object]) -> List[Dict[str, object]]:
    """Cartesian product of named axes into a list of param dicts.

    ``grid_product(D=[8, 16], n=[1, 4])`` yields four points in
    row-major order.
    """
    if not axes:
        raise InvalidParameterError("need at least one axis")
    names = list(axes)
    points: List[Dict[str, object]] = [{}]
    for name in names:
        values = list(axes[name])
        if not values:
            raise InvalidParameterError(f"axis {name!r} is empty")
        points = [{**point, name: value} for point in points for value in values]
    return points


def rows_to_markdown(
    rows: Iterable[ExperimentRow],
    param_columns: Sequence[str],
    value_label: str = "measured",
    extra_columns: Sequence[str] = (),
) -> str:
    """Render rows as a GitHub-flavored markdown table."""
    header_cells = [*param_columns, value_label, "ci95", *extra_columns]
    lines = [
        "| " + " | ".join(header_cells) + " |",
        "|" + "|".join("---" for _ in header_cells) + "|",
    ]
    for row in rows:
        cells = [str(row.params.get(name, "")) for name in param_columns]
        cells.append(f"{row.estimate.mean:.4g}")
        cells.append(f"[{row.estimate.ci_low:.4g}, {row.estimate.ci_high:.4g}]")
        for name in extra_columns:
            value = row.extras.get(name)
            cells.append("" if value is None else f"{value:.4g}")
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)
