"""Cost-model backend selector and shard planner.

Static ``auto`` resolution (:func:`repro.sim.backends.registry.
resolve_backend`) ranks backends by hand-assigned priorities — right in
kind ("batch kernels beat per-trial loops on trial batches") but blind
to *this machine's* constants: how fast the kernels actually are here,
what a worker shard costs to dispatch, whether the accelerator binding
is device-backed.  This module closes that gap with a **measured cost
model**:

* :func:`calibrate` runs short micro-profiles — each supporting backend
  executes a small family probe at two trial counts and two move
  budgets — and fits, per ``(backend, family)``, the three-parameter
  model::

      t(n_trials, move_budget) =
          intercept + per_trial * n_trials * (move_budget / B0) ** exponent

  plus one machine-wide per-shard dispatch overhead.  The fit is
  persisted as JSON under the result-cache directory
  (``<cache>/selector/profile.json``) and stamped with the cache's
  :data:`~repro.sim.cache.CODE_VERSION` and a :func:`machine_fingerprint`,
  so a kernel rewrite, a different host, or plain staleness (7 days)
  invalidates it and planning falls back to the static priorities.

* :func:`plan_request` maps a :class:`SimulationRequest` to a
  :class:`SimulationPlan` — backend choice **and** shard layout (shard
  count, pool workers, device pinning for the accelerator) — by
  minimizing predicted wall-clock over the supporting candidates and
  the shard counts the worker cap allows.  Given a profile the function
  is pure and deterministic: same request, same profile, same cap ->
  same plan, ties broken by (static priority, name).  With no usable
  profile it degrades to exactly the static resolution and the job
  layer's historical ``min(workers, n_trials)`` sharding, marked
  ``source="static"``.

The plan is *executed* by :meth:`repro.sim.jobs.JobManager.submit`
(``plan=`` parameter); adaptive sampling — running shard batches until
a CI half-width target is met — lives next to it in
:func:`repro.sim.jobs.simulate_adaptive`.  ``repro-ants backends
--json`` and ``GET /v1/backends`` surface the per-family plans and
predicted costs; ``benchmarks/bench_selector.py`` proves the selector
against oracle / single-best / random policies on a workload matrix.
"""

from __future__ import annotations

import json
import math
import os
import platform
import tempfile
import threading
import time
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import InvalidParameterError
from repro.sim.backends.base import (
    SimulationBackend,
    SimulationRequest,
    probe_request,
)
from repro.sim.backends.registry import (
    AUTO,
    resolve_backend,
    supporting_backends,
)
from repro.obs.metrics import get_registry
from repro.obs.trace import child_span
from repro.sim.cache import CODE_VERSION, get_cache

# Selector observability: how plans are being made (cost-model vs
# static fallback) and how well the model predicts reality.  The
# prediction-error histogram is the selector's public error signal —
# the same delta `observe_timing` folds back into the profile.
_REGISTRY = get_registry()
_PLANS_TOTAL = _REGISTRY.counter(
    "repro_selector_plans_total",
    "Execution plans issued, by source (cost-model/static) and backend.",
    ["source", "backend"],
)
_PREDICTION_ERROR = _REGISTRY.histogram(
    "repro_selector_prediction_error_ratio",
    "abs(predicted - actual) / actual seconds per observed job timing.",
    ["backend", "family"],
    boundaries=(0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0),
)
_OBSERVATIONS_TOTAL = _REGISTRY.counter(
    "repro_selector_observations_total",
    "Timing observations offered to the profile, by outcome "
    "(blended/below_floor/no_profile/no_entry).",
    ["outcome"],
)

#: On-disk layout version of the persisted calibration profile.
PROFILE_FORMAT = 1

#: A profile older than this is treated as absent (machines drift:
#: thermal state, contended CI runners, library upgrades).
MAX_PROFILE_AGE_SECONDS = 7 * 24 * 3600.0

#: Reference move budget the per-trial coefficient is normalized to.
BASE_BUDGET = 4_000

#: Second budget used to fit the budget exponent.
_HIGH_BUDGET = 16_000

#: Never plan shards smaller than this many trials — dispatch overhead
#: would dominate and the shard cache would fill with confetti.
MIN_TRIALS_PER_SHARD = 4

#: Hard cap on planned shard count, whatever the worker cap says.
MAX_PLANNED_SHARDS = 16

#: Fallback per-shard dispatch cost when calibration skipped the pool
#: measurement (pickling + queue round-trip of a small request).
DEFAULT_SHARD_OVERHEAD_SECONDS = 5e-3

_CALIBRATION_SEED = 0x5E1EC7

#: Families the selector calibrates and plans for: the six with batch
#: kernels (spiral/levy are reference-only — static resolution already
#: does the only possible thing for them).
SELECTOR_FAMILIES = (
    "algorithm1",
    "nonuniform",
    "uniform",
    "doubly-uniform",
    "random-walk",
    "feinerman",
)


def machine_fingerprint() -> Dict[str, Any]:
    """Identity of this host for profile matching and bench history.

    Captures exactly the axes along which recorded performance numbers
    stop being comparable: CPU model, core count, numpy version, and
    the platform triple.  Stamped into every ``BENCH_history.jsonl``
    snapshot (so cross-machine floor drift is diagnosable) and into the
    calibration profile (so another host never replans from this one's
    constants).
    """
    cpu_model = platform.processor() or ""
    try:
        with open("/proc/cpuinfo", "r", encoding="utf-8") as handle:
            for line in handle:
                if line.lower().startswith("model name"):
                    cpu_model = line.split(":", 1)[1].strip()
                    break
    except OSError:
        pass
    return {
        "cpu_model": cpu_model,
        "cpu_count": os.cpu_count() or 1,
        "numpy": np.__version__,
        "platform": platform.platform(),
        "python": platform.python_version(),
    }


def _fingerprints_match(a: Mapping[str, Any], b: Mapping[str, Any]) -> bool:
    """Profiles transfer only between identical (cpu, cores, numpy)."""
    return all(a.get(key) == b.get(key) for key in ("cpu_model", "cpu_count", "numpy"))


@dataclass(frozen=True)
class SimulationPlan:
    """One request's execution plan: backend choice + shard layout.

    ``source`` says how the plan was made: ``"cost-model"`` when a
    calibration profile predicted it, ``"static"`` when it is the
    zero-observation fallback (static priorities, historical
    sharding).  ``predicted_seconds`` is ``None`` on static plans.
    """

    backend: str
    n_shards: int
    workers: int
    device: Optional[str] = None
    predicted_seconds: Optional[float] = None
    source: str = "static"

    def to_payload(self) -> Dict[str, Any]:
        """JSON-ready encoding (CLI ``--json`` and ``/v1/backends``)."""
        return {
            "backend": self.backend,
            "n_shards": self.n_shards,
            "workers": self.workers,
            "device": self.device,
            "predicted_seconds": (
                None
                if self.predicted_seconds is None
                else round(self.predicted_seconds, 6)
            ),
            "source": self.source,
        }


@dataclass(frozen=True)
class CostEntry:
    """Fitted cost model for one ``(backend, family)`` pair."""

    intercept: float
    per_trial: float
    budget_exponent: float

    def seconds(self, n_trials: int, move_budget: int) -> float:
        scale = (move_budget / BASE_BUDGET) ** self.budget_exponent
        return self.intercept + self.per_trial * n_trials * scale


@dataclass(frozen=True)
class CalibrationProfile:
    """A machine's measured cost model, as loaded from / saved to disk."""

    entries: Dict[str, CostEntry]
    shard_overhead_seconds: float = DEFAULT_SHARD_OVERHEAD_SECONDS
    created_at: float = 0.0
    code_version: str = CODE_VERSION
    machine: Dict[str, Any] = field(default_factory=machine_fingerprint)

    @staticmethod
    def entry_key(backend_name: str, family: str) -> str:
        return f"{backend_name}|{family}"

    def entry(self, backend_name: str, family: str) -> Optional[CostEntry]:
        return self.entries.get(self.entry_key(backend_name, family))

    def predict_seconds(
        self, backend_name: str, request: SimulationRequest
    ) -> Optional[float]:
        """Predicted single-process execution time, or ``None``.

        ``None`` means the profile holds no observation for this
        ``(backend, family)`` — the caller must fall back, never guess.
        """
        entry = self.entry(backend_name, request.algorithm.name)
        if entry is None:
            return None
        return entry.seconds(request.n_trials, request.move_budget)

    def to_payload(self) -> Dict[str, Any]:
        return {
            "format": PROFILE_FORMAT,
            "code_version": self.code_version,
            "created_at": self.created_at,
            "machine": dict(self.machine),
            "shard_overhead_seconds": self.shard_overhead_seconds,
            "base_budget": BASE_BUDGET,
            "entries": {
                key: asdict(entry) for key, entry in sorted(self.entries.items())
            },
        }


def profile_path() -> Path:
    """Where the calibration profile lives: ``<cache>/selector/profile.json``.

    Computed per call so ``REPRO_ANTS_CACHE_DIR`` and
    ``configure_cache(directory=...)`` redirections move the profile
    with the cache (tests point both at throwaway directories).
    """
    return get_cache().directory / "selector" / "profile.json"


def save_profile(profile: CalibrationProfile) -> Path:
    """Atomically persist a profile; returns its path."""
    path = profile_path()
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, temp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    with os.fdopen(fd, "w", encoding="utf-8") as handle:
        json.dump(profile.to_payload(), handle, indent=2, sort_keys=True)
    os.replace(temp_name, path)
    return path


def clear_profile() -> bool:
    """Drop the persisted profile (forces static fallback); True if removed."""
    try:
        profile_path().unlink()
        return True
    except OSError:
        return False


def load_profile(
    max_age_seconds: float = MAX_PROFILE_AGE_SECONDS,
    now: Optional[float] = None,
) -> Optional[CalibrationProfile]:
    """The persisted profile, or ``None`` when absent / stale / foreign.

    "Foreign" covers every way the recorded constants stop describing
    reality: a different :data:`~repro.sim.cache.CODE_VERSION` (the
    kernels changed), a different machine fingerprint (cpu / cores /
    numpy), an unknown payload format, or age beyond
    ``max_age_seconds``.  Callers treat ``None`` as "never calibrated"
    and fall back to static resolution.
    """
    try:
        payload = json.loads(profile_path().read_text())
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(payload, dict):
        return None
    if payload.get("format") != PROFILE_FORMAT:
        return None
    if payload.get("code_version") != CODE_VERSION:
        return None
    machine = payload.get("machine")
    if not isinstance(machine, dict) or not _fingerprints_match(
        machine, machine_fingerprint()
    ):
        return None
    created_at = payload.get("created_at")
    if not isinstance(created_at, (int, float)):
        return None
    current = time.time() if now is None else now
    if current - created_at > max_age_seconds:
        return None
    raw_entries = payload.get("entries")
    if not isinstance(raw_entries, dict):
        return None
    entries: Dict[str, CostEntry] = {}
    for key, value in raw_entries.items():
        try:
            entries[key] = CostEntry(
                intercept=float(value["intercept"]),
                per_trial=float(value["per_trial"]),
                budget_exponent=float(value["budget_exponent"]),
            )
        except (TypeError, KeyError, ValueError):
            return None
    overhead = payload.get("shard_overhead_seconds")
    if not isinstance(overhead, (int, float)) or overhead < 0:
        overhead = DEFAULT_SHARD_OVERHEAD_SECONDS
    return CalibrationProfile(
        entries=entries,
        shard_overhead_seconds=float(overhead),
        created_at=float(created_at),
        code_version=str(payload.get("code_version")),
        machine=dict(machine),
    )


# -- calibration ---------------------------------------------------------


def _calibration_request(
    family: str, n_trials: int, move_budget: int
) -> SimulationRequest:
    probe = probe_request(
        family,
        n_trials=n_trials,
        n_agents=4,
        target=(8, 8),
        move_budget=move_budget,
    )
    if probe is None:
        raise InvalidParameterError(
            f"no calibration probe for family {family!r}; "
            f"choose from {', '.join(SELECTOR_FAMILIES)}"
        )
    return replace(probe, seed=_CALIBRATION_SEED, seed_keys=(97,))


def _timed_run(backend: SimulationBackend, request: SimulationRequest) -> float:
    start = time.perf_counter()
    outcomes = backend.run(request)
    elapsed = time.perf_counter() - start
    assert len(outcomes) == request.n_trials
    return elapsed


def _fit_entry(
    t_low: float, t_high: float, t_budget: float,
    n_low: int, n_high: int, high_budget: int,
) -> CostEntry:
    """Fit (intercept, per_trial, exponent) from the three probe timings.

    ``t_low``/``t_high`` share :data:`BASE_BUDGET` at two trial counts
    (a line in ``n``); ``t_budget`` re-measures ``n_high`` at
    ``high_budget`` and pins the budget exponent.  Degenerate timings
    (clock granularity, a probe that found instantly) clamp to a flat,
    non-negative model rather than extrapolating nonsense.
    """
    tiny = 1e-9
    per_trial = max((t_high - t_low) / max(n_high - n_low, 1), tiny)
    intercept = max(t_low - per_trial * n_low, 0.0)
    compute_high = max(t_budget - intercept, tiny)
    ratio = compute_high / (per_trial * n_high)
    exponent = math.log(max(ratio, tiny)) / math.log(high_budget / BASE_BUDGET)
    exponent = min(max(exponent, 0.0), 2.0)
    return CostEntry(
        intercept=intercept, per_trial=per_trial, budget_exponent=exponent
    )


def _measure_shard_overhead() -> float:
    """Per-shard dispatch cost: pickling + pool queue round-trip.

    Spawns a throwaway one-worker pool, pays its startup separately,
    then times a few no-op round-trips — the marginal cost a planned
    extra shard adds on the job layer's warm shared pool.
    """
    from concurrent.futures import ProcessPoolExecutor

    try:
        with ProcessPoolExecutor(max_workers=1) as pool:
            pool.submit(int, 0).result()  # pay worker spawn first
            rounds = 4
            start = time.perf_counter()
            for _ in range(rounds):
                pool.submit(int, 0).result()
            per_shard = (time.perf_counter() - start) / rounds
    except (OSError, RuntimeError):
        return DEFAULT_SHARD_OVERHEAD_SECONDS
    return max(per_shard, 1e-4)


def calibrate(
    families: Optional[Sequence[str]] = None,
    backends: Optional[Sequence[str]] = None,
    budgets: Tuple[int, int] = (BASE_BUDGET, _HIGH_BUDGET),
    measure_pool: bool = True,
    save: bool = True,
) -> CalibrationProfile:
    """Micro-profile the supporting backends and fit the cost model.

    Each usable ``(backend, family)`` pair is timed three times —
    ``(n_low, B0)``, ``(n_high, B0)``, ``(n_high, B1)`` — through
    ``backend.run`` directly (no job layer, no cache), and the fit
    lands in the returned :class:`CalibrationProfile`.  ``save=True``
    (default) also persists it to :func:`profile_path`.

    ``families`` / ``backends`` restrict the sweep (tests calibrate one
    pair in milliseconds); ``measure_pool=False`` skips the process
    pool spawn and keeps the default shard overhead.
    """
    from repro.sim.backends.registry import registered_backends

    low_budget, high_budget = budgets
    if low_budget != BASE_BUDGET:
        raise InvalidParameterError(
            f"first calibration budget must be BASE_BUDGET={BASE_BUDGET} "
            f"(the fit normalizes to it), got {low_budget}"
        )
    if high_budget <= low_budget:
        raise InvalidParameterError(
            f"budgets must be increasing, got {budgets}"
        )
    chosen_families = tuple(families) if families else SELECTOR_FAMILIES
    registry = registered_backends()
    chosen_backends = (
        tuple(backends) if backends else tuple(sorted(registry))
    )
    entries: Dict[str, CostEntry] = {}
    for backend_name in chosen_backends:
        backend = registry.get(backend_name)
        if backend is None:
            continue
        n_low, n_high = backend.calibration_trials()
        for family in chosen_families:
            probe = _calibration_request(family, n_low, low_budget)
            if not backend.supports(probe):
                continue
            t_low = _timed_run(backend, probe)
            t_high = _timed_run(
                backend, _calibration_request(family, n_high, low_budget)
            )
            t_budget = _timed_run(
                backend, _calibration_request(family, n_high, high_budget)
            )
            entries[CalibrationProfile.entry_key(backend_name, family)] = (
                _fit_entry(t_low, t_high, t_budget, n_low, n_high, high_budget)
            )
    profile = CalibrationProfile(
        entries=entries,
        shard_overhead_seconds=(
            _measure_shard_overhead()
            if measure_pool
            else DEFAULT_SHARD_OVERHEAD_SECONDS
        ),
        created_at=time.time(),
    )
    if save:
        save_profile(profile)
    return profile


# -- online feedback ------------------------------------------------------

#: EWMA weight of one fresh observation against the fitted coefficient.
OBSERVATION_ALPHA = 0.2

#: Observations below these floors carry more clock noise than signal:
#: tiny jobs are dominated by dispatch jitter, and sub-20ms timings sit
#: at scheduler granularity.  They are dropped, which also keeps a
#: sweep of hundreds of small cached points from rewriting the profile
#: file hundreds of times.
MIN_OBSERVED_TRIALS = 4
MIN_OBSERVED_SECONDS = 0.02

_OBSERVE_LOCK = threading.Lock()


def observe_timing(
    backend_name: str,
    family: str,
    n_trials: int,
    move_budget: int,
    elapsed_seconds: float,
    alpha: float = OBSERVATION_ALPHA,
) -> bool:
    """Blend one measured job timing back into the persisted profile.

    The job layer calls this after every uncached backend execution it
    times (inline runs and pool shards alike), closing the loop the
    calibration pass opens: the fitted ``per_trial`` coefficient for
    ``(backend, family)`` drifts toward what jobs actually cost on this
    machine *now* — thermal state, contended runners, library upgrades
    — without anyone re-running ``calibrate``.

    The update solves the cost model for the per-trial coefficient the
    observation implies (holding the fitted intercept and budget
    exponent fixed) and EWMA-blends it in with weight ``alpha``; the
    rewrite is atomic (:func:`save_profile`) and preserves
    ``created_at``, so feedback never resets the staleness clock — a
    week-old profile still expires even if jobs touch it hourly.

    Returns ``True`` when the profile was updated; ``False`` when there
    is nothing to update (no usable profile, no fitted entry for the
    pair) or the observation is below the noise floors
    (:data:`MIN_OBSERVED_TRIALS`, :data:`MIN_OBSERVED_SECONDS`).
    """
    if n_trials < MIN_OBSERVED_TRIALS or elapsed_seconds < MIN_OBSERVED_SECONDS:
        _OBSERVATIONS_TOTAL.inc(outcome="below_floor")
        return False
    if not 0.0 < alpha <= 1.0:
        raise InvalidParameterError(f"alpha must be in (0, 1], got {alpha}")
    with _OBSERVE_LOCK:
        profile = load_profile()
        if profile is None:
            _OBSERVATIONS_TOTAL.inc(outcome="no_profile")
            return False
        key = CalibrationProfile.entry_key(backend_name, family)
        entry = profile.entries.get(key)
        if entry is None:
            _OBSERVATIONS_TOTAL.inc(outcome="no_entry")
            return False
        # Publish the prediction error before blending: this is the
        # exact signal the EWMA update is about to absorb, measured
        # against the profile that made the prediction.
        predicted = entry.seconds(n_trials, move_budget)
        if elapsed_seconds > 0.0:
            _PREDICTION_ERROR.observe(
                abs(predicted - elapsed_seconds) / elapsed_seconds,
                backend=backend_name,
                family=family,
            )
        scale = (move_budget / BASE_BUDGET) ** entry.budget_exponent
        if scale <= 0.0:
            return False
        observed_per_trial = max(elapsed_seconds - entry.intercept, 0.0) / (
            n_trials * scale
        )
        blended = (1.0 - alpha) * entry.per_trial + alpha * observed_per_trial
        entries = dict(profile.entries)
        entries[key] = replace(entry, per_trial=max(blended, 1e-9))
        save_profile(replace(profile, entries=entries))
        _OBSERVATIONS_TOTAL.inc(outcome="blended")
        return True


# -- planning ------------------------------------------------------------


_UNSET = object()


def _worker_cap(workers: Optional[int]) -> int:
    if workers is not None:
        if workers < 1:
            raise InvalidParameterError(f"workers must be >= 1, got {workers}")
        return workers
    return os.cpu_count() or 1


def _static_plan(
    request: SimulationRequest, backend: str, cap: int
) -> SimulationPlan:
    """The zero-observation fallback: static priorities, historical sharding."""
    chosen = resolve_backend(request, backend)
    n_shards = (
        min(cap, request.n_trials) if cap > 1 and request.n_trials > 1 else 1
    )
    device = (
        chosen.device_description() if chosen.name == "accelerator" else None
    )
    if chosen.name == "accelerator":
        n_shards = 1  # device state does not survive pool workers
    return SimulationPlan(
        backend=chosen.name,
        n_shards=n_shards,
        workers=n_shards,
        device=device,
        predicted_seconds=None,
        source="static",
    )


def _best_shard_count(
    compute_seconds: float, shard_overhead: float, cap: int
) -> Tuple[int, float]:
    """Minimize ``compute/k + overhead*k`` over ``k in [1, cap]``.

    Exhaustive over the (tiny) cap range and first-minimum-wins, so the
    result is deterministic and never pays an overhead a fractional
    optimum would only amortize on paper.
    """
    best_k, best_cost = 1, compute_seconds
    for k in range(2, max(cap, 1) + 1):
        cost = compute_seconds / k + shard_overhead * k
        if cost < best_cost - 1e-12:
            best_k, best_cost = k, cost
    return best_k, best_cost


def _planned_cost(
    backend: SimulationBackend,
    request: SimulationRequest,
    profile: CalibrationProfile,
    cap: int,
) -> Optional[Tuple[float, int]]:
    """(predicted seconds, shard count) for one candidate, or ``None``."""
    predicted = profile.predict_seconds(backend.name, request)
    if predicted is None:
        return None
    entry = profile.entry(backend.name, request.algorithm.name)
    compute = max(predicted - entry.intercept, 0.0)
    if backend.name == "accelerator":
        # Device state is process-local: never split across the pool.
        return predicted, 1
    shard_cap = min(
        cap,
        max(request.n_trials // MIN_TRIALS_PER_SHARD, 1),
        MAX_PLANNED_SHARDS,
    )
    n_shards, sharded = _best_shard_count(
        compute, profile.shard_overhead_seconds, shard_cap
    )
    return entry.intercept + sharded, n_shards


def plan_request(
    request: SimulationRequest,
    backend: str = AUTO,
    workers: Optional[int] = None,
    profile: Any = _UNSET,
) -> SimulationPlan:
    """Map a request to its execution plan.

    ``workers`` caps the shard count (``None``: the machine's core
    count).  ``profile`` is the :class:`CalibrationProfile` to plan
    from; leave unset to use the persisted one
    (:func:`load_profile`), pass ``None`` to force the static
    fallback.  With a profile, candidates are ranked by predicted
    wall-clock (compute split over the best shard count plus dispatch
    overhead); ties break by static ``auto_priority`` then name, so
    planning is deterministic given the profile.  An explicit
    ``backend`` name pins the choice and only the shard layout is
    planned.
    """
    with child_span("selector.plan", family=request.algorithm.name) as sp:
        plan = _plan_request_impl(request, backend, workers, profile)
        _PLANS_TOTAL.inc(source=plan.source, backend=plan.backend)
        if sp is not None:
            sp.set_attribute("backend", plan.backend)
            sp.set_attribute("source", plan.source)
            if plan.predicted_seconds is not None:
                sp.set_attribute(
                    "predicted_seconds", round(plan.predicted_seconds, 6)
                )
        return plan


def plan_fallback(
    request: SimulationRequest,
    exclude: Sequence[str],
    reason: str,
    workers: int = 1,
) -> Optional[SimulationPlan]:
    """Re-plan a request after a backend failed mid-job.

    The degradation path of the job layer: ``exclude`` names the
    backends that already failed (device loss, repeated worker death),
    and the plan falls to the best remaining supporting backend by
    static priority — the same ranking ``auto`` resolution uses, so
    the degraded run is bit-identical to a run that had picked the
    fallback from the start.  The decline ``reason`` is recorded on
    the plan span and in the plans-total metric; ``None`` when no
    supporting backend remains.
    """
    excluded = set(exclude)
    with child_span(
        "selector.plan", family=request.algorithm.name
    ) as sp:
        chosen = next(
            (
                candidate
                for candidate in supporting_backends(request)
                if candidate.name not in excluded
            ),
            None,
        )
        if sp is not None:
            sp.set_attribute("source", "degraded")
            sp.set_attribute("declined", ",".join(sorted(excluded)))
            sp.set_attribute("decline_reason", reason)
            sp.set_attribute(
                "backend", "none" if chosen is None else chosen.name
            )
        if chosen is None:
            return None
        _PLANS_TOTAL.inc(source="degraded", backend=chosen.name)
        return SimulationPlan(
            backend=chosen.name,
            n_shards=1,
            workers=max(workers, 1),
            source="degraded",
        )


def _plan_request_impl(
    request: SimulationRequest,
    backend: str,
    workers: Optional[int],
    profile: Any,
) -> SimulationPlan:
    if profile is _UNSET:
        profile = load_profile()
    cap = _worker_cap(workers)
    if profile is None:
        return _static_plan(request, backend, cap)
    if backend == AUTO:
        candidates = supporting_backends(request)
    else:
        candidates = [resolve_backend(request, backend)]
    planned: list[Tuple[float, int, str, SimulationBackend, int]] = []
    for candidate in candidates:
        cost = _planned_cost(candidate, request, profile, cap)
        if cost is None:
            continue
        seconds, n_shards = cost
        planned.append(
            (seconds, -candidate.auto_priority(request), candidate.name,
             candidate, n_shards)
        )
    if not planned:
        # Profile holds no observation for any candidate (fresh family,
        # restricted calibration): static fallback, never a guess.
        return _static_plan(request, backend, cap)
    seconds, _, _, chosen, n_shards = min(planned)
    device = (
        chosen.device_description() if chosen.name == "accelerator" else None
    )
    return SimulationPlan(
        backend=chosen.name,
        n_shards=n_shards,
        workers=n_shards,
        device=device,
        predicted_seconds=seconds,
        source="cost-model",
    )


def selector_payload(
    profile: Any = _UNSET, batch_trials: int = 100, workers: Optional[int] = None
) -> Dict[str, Any]:
    """The ``selector`` introspection section (CLI ``--json``, server).

    Reports whether a usable calibration profile exists, its
    provenance, and the plan + predicted cost for a representative
    trial batch of every selector family — the numbers that explain
    what a planned submission would do on this machine right now.
    """
    if profile is _UNSET:
        profile = load_profile()
    plans: Dict[str, Any] = {}
    for family in SELECTOR_FAMILIES:
        probe = probe_request(family, n_trials=batch_trials)
        if probe is None:
            continue
        plans[family] = plan_request(
            probe, workers=workers, profile=profile
        ).to_payload()
    payload: Dict[str, Any] = {
        "calibrated": profile is not None,
        "profile_path": str(profile_path()),
        "batch_trials": batch_trials,
        "plans": plans,
    }
    if profile is not None:
        payload["profile"] = {
            "created_at": profile.created_at,
            "age_seconds": round(max(time.time() - profile.created_at, 0.0), 1),
            "code_version": profile.code_version,
            "machine": dict(profile.machine),
            "shard_overhead_seconds": profile.shard_overhead_seconds,
            "entries": len(profile.entries),
        }
    return payload
