"""Content-addressed result cache in front of :func:`repro.sim.simulate`.

``SimulationRequest`` is frozen and fully value-determined, so the
outcomes of ``(request, backend)`` are a pure function of the request's
fields, the backend's sampling scheme, and the simulator code itself.
This module addresses results by exactly that triple:

    key = sha256(request fingerprint · backend name · CODE_VERSION)

Two layers sit behind one :class:`SimulationCache`:

* an in-memory LRU (per process, bounded entry count) serving repeated
  sweep points and re-run experiments within one session, and
* an on-disk store of pickled outcome tuples under
  ``~/.cache/repro-ants/`` (override with ``REPRO_ANTS_CACHE_DIR``)
  serving repeated CLI invocations and cross-process sweeps.

Invalidation is by construction: mutate any request field, pick a
different backend, or bump :data:`CODE_VERSION` (done whenever a
simulator's sampling scheme changes) and the key changes.  Stale disk
entries are never read — they are garbage-collected by ``repro-ants
cache clear``.

The cache key deliberately excludes the ``workers`` execution detail:
per-trial backends produce bit-identical outcomes for any worker
count, and the batched backend's per-shard re-anchoring is an
execution artifact of the same distribution, so cached results
normalize it away.

Disk failures (read-only home, concurrent writers, corrupt files) are
never fatal — the disk layer degrades to memory-only and records the
reason in :meth:`SimulationCache.info`.

Since PR 10 every disk entry is **checksummed**: the on-disk container
is a one-line header carrying the SHA-256 of the pickled payload,
verified on every read.  A truncated, bit-flipped, or otherwise
unreadable entry is detected, moved into a ``quarantine/`` subdirectory
(never served, preserved for inspection), and the lookup reports a
miss — the caller transparently re-simulates and the next store
replaces the entry.  :meth:`SimulationCache.verify` scans the whole
store against the checksums (``repro-ants cache verify [--repair]``).

Two extensions serve the job layer (:mod:`repro.sim.jobs`):

* **shard entries** — a contiguous trial range of a request can be
  stored and looked up on its own (:func:`shard_cache_key`,
  :meth:`SimulationCache.store_shard` /
  :meth:`~SimulationCache.lookup_shard`); the async executor writes
  every finished shard through as it lands, so a killed job resumes
  from its completed shards;
* **size-bounded disk** — every disk hit refreshes the entry's mtime
  (``last_used``), and :meth:`SimulationCache.prune` evicts
  least-recently-used entries until the directory fits a byte budget
  (``repro-ants cache prune --max-bytes N``).
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.errors import InvalidParameterError, TransientFaultError
from repro.obs.metrics import get_registry
from repro.obs.trace import child_span
from repro.resilience.faults import maybe_inject
from repro.sim.backends.base import SimulationRequest
from repro.sim.metrics import SearchOutcome

# Process-wide observability: the per-instance ints below survive for
# fresh-instance snapshots (`CacheInfo`), while these registry series
# aggregate across every cache instance the process creates and feed
# /v1/metrics.  ``level`` is "entry" (whole-request) or "shard".
_REGISTRY = get_registry()
_LOOKUPS_TOTAL = _REGISTRY.counter(
    "repro_cache_lookups_total",
    "Cache lookups by outcome (hit_memory/hit_disk/miss) and level.",
    ["outcome", "level"],
)
_STORES_TOTAL = _REGISTRY.counter(
    "repro_cache_stores_total", "Cache stores by level.", ["level"]
)
_QUARANTINED_TOTAL = _REGISTRY.counter(
    "repro_cache_quarantined_total",
    "Disk entries that failed integrity checks and were quarantined.",
)

#: Version tag of the simulator code baked into every cache key.  Bump
#: whenever any backend's sampling scheme changes, so stale entries
#: can never be served for new semantics.
CODE_VERSION = "sim-v4"  # blocked kernels: fused draw order moved again

#: Disk payload layout version (independent of the simulator version).
#: v2 wraps the pickled payload in a checksummed container (below).
_FORMAT_VERSION = 2

#: On-disk container header.  The full layout is one ASCII header line
#: ``repro-ants-cache v2 sha256=<64 hex>\n`` followed by the pickled
#: payload the digest covers.  Anything that does not parse — legacy
#: v1 raw pickles included — is treated as corrupt and quarantined.
_MAGIC = b"repro-ants-cache v2 sha256="
_DIGEST_LEN = 64  # hex chars of sha256

#: Subdirectory (under the cache root) holding quarantined entries.
#: Outside every ``*.pkl`` glob, so quarantined files are invisible to
#: lookups, pruning, and ``cache clear`` — preserved for inspection.
QUARANTINE_DIR = "quarantine"

_DEFAULT_MAX_MEMORY_ENTRIES = 256


def _encode_entry(payload: dict) -> bytes:
    """Serialize a payload into the checksummed v2 container."""
    body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    digest = hashlib.sha256(body).hexdigest().encode("ascii")
    return _MAGIC + digest + b"\n" + body


def _decode_entry(data: bytes) -> Optional[dict]:
    """Parse and integrity-check a v2 container; ``None`` if damaged.

    ``None`` covers every way an entry can be bad — missing or mangled
    header, digest mismatch (bit flips, truncation), or an unpicklable
    body — so callers have exactly one corrupt path.
    """
    header_len = len(_MAGIC) + _DIGEST_LEN + 1
    if len(data) < header_len or not data.startswith(_MAGIC):
        return None
    digest = data[len(_MAGIC):header_len - 1]
    if data[header_len - 1:header_len] != b"\n":
        return None
    body = data[header_len:]
    if hashlib.sha256(body).hexdigest().encode("ascii") != digest:
        return None
    try:
        payload = pickle.loads(body)
    except Exception:
        # A matching digest with an unpicklable body means the file was
        # *written* damaged (e.g. an injected pre-checksum corruption);
        # still one corrupt path.
        return None
    return payload if isinstance(payload, dict) else None


def default_cache_dir() -> Path:
    """The on-disk cache root: ``$REPRO_ANTS_CACHE_DIR`` or XDG default."""
    override = os.environ.get("REPRO_ANTS_CACHE_DIR")
    if override:
        return Path(override).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    root = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return root / "repro-ants"


def request_fingerprint(request: SimulationRequest) -> str:
    """A stable content hash of every value-bearing request field."""
    spec = request.algorithm
    payload = {
        "algorithm": {
            "name": spec.name,
            "distance": spec.distance,
            "ell": spec.ell,
            "K": spec.K,
            "max_phase": spec.max_phase,
        },
        "n_agents": request.n_agents,
        "target": [int(request.target[0]), int(request.target[1])],
        "move_budget": request.move_budget,
        "step_budget": request.step_budget,
        "n_trials": request.n_trials,
        "seed": request.seed,
        "seed_keys": [int(key) for key in request.seed_keys],
        "distance_bound": request.distance_bound,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def cache_key(request: SimulationRequest, backend_name: str) -> str:
    """The full content address: request x backend x code version."""
    fingerprint = request_fingerprint(request)
    composite = f"{fingerprint}:{backend_name}:{CODE_VERSION}"
    return hashlib.sha256(composite.encode("utf-8")).hexdigest()


def shard_cache_key(
    request: SimulationRequest, backend_name: str, trial_start: int,
    trial_count: int,
) -> str:
    """The content address of one trial shard of a request.

    Shard entries let the job layer resume a killed or cancelled run:
    each completed contiguous trial range is stored under its own key,
    addressable without the rest of the request having finished.  The
    shard's identity is the same triple as the full key plus the
    ``[start, start+count)`` trial range — per-trial seeds depend only
    on the trial index, never on shard boundaries, so a shard's
    outcomes are a pure function of this address.
    """
    fingerprint = request_fingerprint(request)
    composite = (
        f"{fingerprint}:{backend_name}:{CODE_VERSION}"
        f":shard:{trial_start}:{trial_count}"
    )
    return hashlib.sha256(composite.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class PruneResult:
    """Outcome of one LRU disk-prune pass."""

    removed_files: int
    freed_bytes: int
    remaining_files: int
    remaining_bytes: int


@dataclass(frozen=True)
class CacheVerifyResult:
    """Outcome of one integrity scan (``repro-ants cache verify``)."""

    scanned: int
    ok: int
    corrupt: Tuple[str, ...]  # file names that failed the checksum
    quarantined: int  # of those, how many were moved (``--repair``)

    def to_payload(self) -> dict:
        return {
            "scanned": self.scanned,
            "ok": self.ok,
            "corrupt": list(self.corrupt),
            "quarantined": self.quarantined,
        }


@dataclass(frozen=True)
class CacheInfo:
    """A snapshot of one cache's configuration and counters."""

    directory: str
    disk_enabled: bool
    disk_error: Optional[str]
    memory_entries: int
    max_memory_entries: int
    disk_files: int
    disk_bytes: int
    hits_memory: int
    hits_disk: int
    misses: int
    stores: int
    code_version: str
    # Shard-level sub-counters (the job layer's resume path).  Shard
    # lookups also count in the aggregate hit/miss numbers above; these
    # break out how much of the traffic the per-shard entries carry —
    # surfaced in `repro-ants cache info` and the server's /v1/stats.
    hits_shard: int = 0
    misses_shard: int = 0
    stores_shard: int = 0
    # Disk entries this instance failed to integrity-check and moved
    # into the quarantine subdirectory (lookup-time detections).
    quarantined: int = 0

    @property
    def hit_ratio(self) -> Optional[float]:
        """hits / (hits + misses) across both layers, ``None`` before
        any lookup has happened (0/0 is not a ratio)."""
        total = self.hits_memory + self.hits_disk + self.misses
        if total == 0:
            return None
        return (self.hits_memory + self.hits_disk) / total

    @property
    def hit_ratio_shard(self) -> Optional[float]:
        """Shard-level hit ratio (the job layer's resume traffic)."""
        total = self.hits_shard + self.misses_shard
        if total == 0:
            return None
        return self.hits_shard / total

    def to_payload(self) -> dict:
        """JSON-ready form with the derived ratios included — the
        shape served by /v1/stats and ``cache info --json``."""
        payload = {
            "directory": self.directory,
            "disk_enabled": self.disk_enabled,
            "disk_error": self.disk_error,
            "memory_entries": self.memory_entries,
            "max_memory_entries": self.max_memory_entries,
            "disk_files": self.disk_files,
            "disk_bytes": self.disk_bytes,
            "hits_memory": self.hits_memory,
            "hits_disk": self.hits_disk,
            "misses": self.misses,
            "stores": self.stores,
            "code_version": self.code_version,
            "hits_shard": self.hits_shard,
            "misses_shard": self.misses_shard,
            "stores_shard": self.stores_shard,
            "quarantined": self.quarantined,
            "hit_ratio": self.hit_ratio,
            "hit_ratio_shard": self.hit_ratio_shard,
        }
        return payload

    def summary_lines(self) -> Tuple[str, ...]:
        """Human-readable report for the CLI."""
        disk = "enabled" if self.disk_enabled else f"disabled ({self.disk_error})"

        def ratio(value: Optional[float]) -> str:
            return "n/a" if value is None else f"{value:.1%}"

        return (
            f"directory    : {self.directory}",
            f"disk layer   : {disk}",
            f"code version : {self.code_version}",
            f"memory       : {self.memory_entries}/{self.max_memory_entries} entries",
            f"disk         : {self.disk_files} files, {self.disk_bytes} bytes",
            f"hits         : {self.hits_memory} memory, {self.hits_disk} disk",
            f"misses       : {self.misses}",
            f"stores       : {self.stores}",
            f"hit ratio    : {ratio(self.hit_ratio)} entry, "
            f"{ratio(self.hit_ratio_shard)} shard",
            f"shard level  : {self.hits_shard} hits, {self.misses_shard} "
            f"misses, {self.stores_shard} stores",
            f"quarantined  : {self.quarantined} entries",
        )


class SimulationCache:
    """Memory-LRU + on-disk store of simulation outcome tuples."""

    def __init__(
        self,
        directory: Optional[Path] = None,
        max_memory_entries: int = _DEFAULT_MAX_MEMORY_ENTRIES,
        disk: bool = True,
    ) -> None:
        if max_memory_entries < 1:
            raise InvalidParameterError(
                f"max_memory_entries must be >= 1, got {max_memory_entries}"
            )
        self._directory = Path(directory) if directory else default_cache_dir()
        self._max_memory_entries = max_memory_entries
        # `_disk_configured` is the caller's intent; `_disk_enabled` may
        # later degrade at runtime (unwritable directory) without
        # rewriting that intent — reconfiguration starts from intent.
        self._disk_configured = disk
        self._disk_enabled = disk
        self._disk_error: Optional[str] = None if disk else "disk layer off"
        self._memory: OrderedDict[str, Tuple[SearchOutcome, ...]] = OrderedDict()
        # The job layer reads and writes from concurrent driver
        # threads; the lock guards the memory OrderedDict and counters
        # (disk publication is already atomic via os.replace).
        self._lock = threading.RLock()
        self._hits_memory = 0
        self._hits_disk = 0
        self._misses = 0
        self._stores = 0
        self._hits_shard = 0
        self._misses_shard = 0
        self._stores_shard = 0
        self._quarantined = 0

    @property
    def directory(self) -> Path:
        """The on-disk root this cache reads and writes."""
        return self._directory

    def lookup(
        self, request: SimulationRequest, backend_name: str
    ) -> Optional[Tuple[SearchOutcome, ...]]:
        """The cached outcomes for ``(request, backend)``, or ``None``."""
        return self._lookup(
            cache_key(request, backend_name), request, backend_name, None
        )

    def lookup_shard(
        self,
        request: SimulationRequest,
        backend_name: str,
        trial_indices: Sequence[int],
    ) -> Optional[Tuple[SearchOutcome, ...]]:
        """The cached outcomes of one trial shard, or ``None``.

        ``trial_indices`` must be the contiguous range the shard was
        stored under (the job layer's deterministic chunking).
        """
        start, count = int(trial_indices[0]), len(trial_indices)
        key = shard_cache_key(request, backend_name, start, count)
        return self._lookup(key, request, backend_name, (start, count))

    def _lookup(
        self,
        key: str,
        request: SimulationRequest,
        backend_name: str,
        shard: Optional[Tuple[int, int]],
    ) -> Optional[Tuple[SearchOutcome, ...]]:
        level = "entry" if shard is None else "shard"
        with child_span("cache.lookup", level=level) as sp:
            outcome, cached = self._lookup_counted(
                key, request, backend_name, shard
            )
            _LOOKUPS_TOTAL.inc(outcome=outcome, level=level)
            if sp is not None:
                sp.set_attribute("outcome", outcome)
            return cached

    def _lookup_counted(
        self,
        key: str,
        request: SimulationRequest,
        backend_name: str,
        shard: Optional[Tuple[int, int]],
    ) -> Tuple[str, Optional[Tuple[SearchOutcome, ...]]]:
        with self._lock:
            cached = self._memory.get(key)
            if cached is not None:
                self._memory.move_to_end(key)
                self._hits_memory += 1
                if shard is not None:
                    self._hits_shard += 1
                return "hit_memory", cached
        outcomes = self._read_disk(key, request, backend_name, shard)
        with self._lock:
            if outcomes is not None:
                self._remember(key, outcomes)
                self._hits_disk += 1
                if shard is not None:
                    self._hits_shard += 1
                return "hit_disk", outcomes
            self._misses += 1
            if shard is not None:
                self._misses_shard += 1
            return "miss", None

    def store(
        self,
        request: SimulationRequest,
        backend_name: str,
        outcomes: Tuple[SearchOutcome, ...],
    ) -> None:
        """Record the outcomes of one executed request."""
        key = cache_key(request, backend_name)
        with self._lock:
            self._remember(key, outcomes)
            self._stores += 1
        _STORES_TOTAL.inc(level="entry")
        self._write_disk(key, request, backend_name, outcomes, None)

    def store_shard(
        self,
        request: SimulationRequest,
        backend_name: str,
        trial_indices: Sequence[int],
        outcomes: Tuple[SearchOutcome, ...],
    ) -> None:
        """Record the outcomes of one completed trial shard.

        The job layer writes every finished shard through here as it
        lands, which is what makes killed jobs resumable.
        """
        start, count = int(trial_indices[0]), len(trial_indices)
        key = shard_cache_key(request, backend_name, start, count)
        with self._lock:
            self._remember(key, outcomes)
            self._stores += 1
            self._stores_shard += 1
        _STORES_TOTAL.inc(level="shard")
        self._write_disk(key, request, backend_name, outcomes, (start, count))

    def clear(self, memory: bool = True, disk: bool = True) -> int:
        """Drop cached entries; returns the number of disk files removed."""
        if memory:
            with self._lock:
                self._memory.clear()
        removed = 0
        if disk and self._directory.is_dir():
            for path in self._directory.glob("*.pkl"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def prune(self, max_bytes: int) -> PruneResult:
        """Evict least-recently-used disk entries down to ``max_bytes``.

        "Recently used" is the file's modification time: stores write
        it and every disk hit refreshes it (``os.utime``), so eviction
        order follows actual access order across processes.  The
        memory layer is untouched — it is already entry-bounded.
        """
        if max_bytes < 0:
            raise InvalidParameterError(
                f"max_bytes must be >= 0, got {max_bytes}"
            )
        entries: List[Tuple[float, int, Path]] = []
        if self._directory.is_dir():
            for path in self._directory.glob("*.pkl"):
                try:
                    stat = path.stat()
                except OSError:
                    continue
                entries.append((stat.st_mtime, stat.st_size, path))
        entries.sort()  # oldest last_used first
        total = sum(size for _, size, _ in entries)
        remaining_files = len(entries)
        removed = 0
        freed = 0
        for _, size, path in entries:
            if total <= max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            freed += size
            removed += 1
            remaining_files -= 1
        return PruneResult(
            removed_files=removed,
            freed_bytes=freed,
            remaining_files=remaining_files,
            remaining_bytes=total,
        )

    def verify(self, repair: bool = False) -> CacheVerifyResult:
        """Scan every disk entry against its embedded checksum.

        Reports entries whose container fails to parse or whose digest
        does not match the body — bit flips, truncation, and legacy
        pre-checksum files all count.  With ``repair=True`` each bad
        entry is quarantined immediately (the same move a lookup would
        perform on first touch); without it the scan only reports.
        """
        corrupt: List[str] = []
        scanned = 0
        ok = 0
        quarantined = 0
        if self._directory.is_dir():
            for path in sorted(self._directory.glob("*.pkl")):
                scanned += 1
                try:
                    data = path.read_bytes()
                except OSError:
                    corrupt.append(path.name)
                    continue
                if _decode_entry(data) is None:
                    corrupt.append(path.name)
                    if repair:
                        self._quarantine(path)
                        quarantined += 1
                else:
                    ok += 1
        return CacheVerifyResult(
            scanned=scanned,
            ok=ok,
            corrupt=tuple(corrupt),
            quarantined=quarantined,
        )

    def info(self) -> CacheInfo:
        """Configuration + hit/miss counters + disk usage."""
        disk_files = 0
        disk_bytes = 0
        if self._directory.is_dir():
            for path in self._directory.glob("*.pkl"):
                try:
                    disk_bytes += path.stat().st_size
                    disk_files += 1
                except OSError:
                    pass
        with self._lock:
            return CacheInfo(
                directory=str(self._directory),
                disk_enabled=self._disk_enabled,
                disk_error=self._disk_error,
                memory_entries=len(self._memory),
                max_memory_entries=self._max_memory_entries,
                disk_files=disk_files,
                disk_bytes=disk_bytes,
                hits_memory=self._hits_memory,
                hits_disk=self._hits_disk,
                misses=self._misses,
                stores=self._stores,
                code_version=CODE_VERSION,
                hits_shard=self._hits_shard,
                misses_shard=self._misses_shard,
                stores_shard=self._stores_shard,
                quarantined=self._quarantined,
            )

    def _remember(self, key: str, outcomes: Tuple[SearchOutcome, ...]) -> None:
        self._memory[key] = outcomes
        self._memory.move_to_end(key)
        while len(self._memory) > self._max_memory_entries:
            self._memory.popitem(last=False)

    def _path_for(self, key: str) -> Path:
        return self._directory / f"{key}.pkl"

    def _quarantine(self, path: Path) -> None:
        """Move a failed entry out of the served store, best-effort.

        Quarantined files keep their name under ``quarantine/`` so a
        damaged entry can be diffed against its eventual replacement.
        Deleting is never done — the byte pattern of a corruption is
        exactly the evidence a post-mortem needs.
        """
        try:
            target_dir = path.parent / QUARANTINE_DIR
            target_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, target_dir / path.name)
        except OSError:
            # Fall back to unlinking so the bad entry is at least
            # never served again.
            try:
                path.unlink()
            except OSError:
                return
        with self._lock:
            self._quarantined += 1
        _QUARANTINED_TOTAL.inc()

    def _read_disk(
        self,
        key: str,
        request: SimulationRequest,
        backend_name: str,
        shard: Optional[Tuple[int, int]] = None,
    ) -> Optional[Tuple[SearchOutcome, ...]]:
        if not self._disk_enabled:
            return None
        path = self._path_for(key)
        try:
            maybe_inject(
                "cache.disk_read",
                level="entry" if shard is None else "shard",
            )
            data = path.read_bytes()
        except FileNotFoundError:
            return None
        except TransientFaultError:
            # An injected read blip is not corruption: report a miss
            # (re-simulation covers it) but leave the entry alone.
            return None
        except OSError:
            return None
        payload = _decode_entry(data)
        if payload is None:
            # Failed the checksum (or predates it): quarantine and
            # report a miss so the caller transparently re-simulates.
            self._quarantine(path)
            return None
        if payload.get("format") != _FORMAT_VERSION:
            return None
        if payload.get("code_version") != CODE_VERSION:
            return None
        if payload.get("backend") != backend_name:
            return None
        if payload.get("fingerprint") != request_fingerprint(request):
            return None
        stored_shard = payload.get("shard")
        if (None if stored_shard is None else tuple(stored_shard)) != shard:
            return None
        outcomes = payload.get("outcomes")
        if not isinstance(outcomes, tuple):
            return None
        # Record last_used for LRU pruning; best-effort.
        try:
            os.utime(path)
        except OSError:
            pass
        return outcomes

    def _write_disk(
        self,
        key: str,
        request: SimulationRequest,
        backend_name: str,
        outcomes: Tuple[SearchOutcome, ...],
        shard: Optional[Tuple[int, int]] = None,
    ) -> None:
        if not self._disk_enabled:
            return
        payload = {
            "format": _FORMAT_VERSION,
            "code_version": CODE_VERSION,
            "backend": backend_name,
            "fingerprint": request_fingerprint(request),
            "shard": None if shard is None else list(shard),
            "outcomes": outcomes,
        }
        data = _encode_entry(payload)
        fault = maybe_inject(
            "cache.disk_write",
            level="entry" if shard is None else "shard",
        )
        if fault is not None:
            # Simulate a torn or bit-flipped write landing on disk: the
            # published file fails its own checksum, so the next read
            # detects and quarantines it.
            if fault.kind == "truncate":
                data = data[: max(1, len(data) // 2)]
            elif fault.kind == "corrupt":
                middle = len(data) // 2
                data = data[:middle] + bytes([data[middle] ^ 0xFF]) + data[middle + 1:]
        try:
            self._directory.mkdir(parents=True, exist_ok=True)
            # Atomic publish: a concurrent reader sees the old file or
            # the complete new one, never a torn write.
            fd, temp_name = tempfile.mkstemp(
                dir=self._directory, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(data)
                os.replace(temp_name, self._path_for(key))
            except BaseException:
                try:
                    os.unlink(temp_name)
                except OSError:
                    pass
                raise
        except OSError as error:
            # Read-only or missing home: degrade to memory-only.
            self._disk_enabled = False
            self._disk_error = str(error)


_GLOBAL_CACHE: Optional[SimulationCache] = None


def _default_enabled() -> bool:
    return os.environ.get("REPRO_ANTS_CACHE", "1") != "0"


_CACHE_ENABLED = _default_enabled()


def get_cache() -> SimulationCache:
    """The process-wide cache instance (created lazily)."""
    global _GLOBAL_CACHE
    if _GLOBAL_CACHE is None:
        _GLOBAL_CACHE = SimulationCache()
    return _GLOBAL_CACHE


def cache_enabled() -> bool:
    """Whether ``simulate()`` consults the cache by default."""
    return _CACHE_ENABLED


def configure_cache(
    enabled: Optional[bool] = None,
    directory: Optional[Path] = None,
    max_memory_entries: Optional[int] = None,
    disk: Optional[bool] = None,
) -> SimulationCache:
    """Reconfigure the process-wide cache; returns the new instance.

    Passing ``directory``/``max_memory_entries``/``disk`` replaces the
    instance (dropping in-memory entries); passing only ``enabled``
    flips the default-consultation switch without touching stored data.
    """
    global _GLOBAL_CACHE, _CACHE_ENABLED
    if enabled is not None:
        _CACHE_ENABLED = enabled
    if directory is not None or max_memory_entries is not None or disk is not None:
        current = get_cache()
        _GLOBAL_CACHE = SimulationCache(
            directory=directory if directory is not None else current.directory,
            max_memory_entries=(
                max_memory_entries
                if max_memory_entries is not None
                else current._max_memory_entries
            ),
            # Inherit the configured intent, not any runtime-degraded
            # state: pointing the cache at a new (writable) directory
            # must bring the disk layer back.
            disk=disk if disk is not None else current._disk_configured,
        )
    return get_cache()
