"""The asynchronous job layer: one execution core under sync and async.

Since PR 3 every simulation — blocking or not — runs through this
module.  :meth:`JobManager.submit` turns a
:class:`~repro.sim.backends.base.SimulationRequest` into a
:class:`SimulationJob` executing the canonical pipeline::

    resolve backend -> cache lookup -> shard trials -> run -> store

and :func:`repro.sim.simulate` is nothing but
``submit(...).result()``.  The async view adds three things on top of
the same core:

* **states and progress** — a job moves ``PENDING -> RUNNING ->
  DONE/FAILED/CANCELLED``; :meth:`SimulationJob.progress` reports
  per-shard and per-trial completion while the job runs;
* **streaming** — :meth:`SimulationJob.iter_results` yields each
  completed trial shard as it lands (including shards served from the
  cache), so long sweeps deliver results incrementally instead of all
  at the end;
* **resume** — every finished shard is written through to the
  content-addressed result cache (shard-addressed entries next to the
  full-request entry), so a killed or cancelled job resumes from its
  completed shards on resubmission with zero re-simulation, proven by
  :func:`backend_run_count`.

Sharding preserves the per-trial seed contract: shard boundaries never
enter ``derive_seed(seed, *seed_keys, trial)``, so per-trial backends
produce bit-identical outcomes whatever the shard layout — which is
also what makes shard-level cache entries composable into the full
result.

The :class:`JobManager` owns the worker :class:`ProcessPoolExecutor`
(created lazily, grown on demand, shared across jobs) and mirrors
every job's state into a small JSON ledger under the cache directory
(``<cache>/jobs/<job_id>.json``), which is what ``repro-ants jobs
list|status|cancel`` reads — including from a different process, where
cancellation is requested through a ``<job_id>.cancel`` marker file
the driver polls at shard boundaries.
"""

from __future__ import annotations

import atexit
import contextlib
import hashlib
import json
import math
import os
import tempfile
import threading
import time
import uuid
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from enum import Enum
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import (
    DeadlineExceededError,
    DeviceLostError,
    InvalidParameterError,
    JobCancelledError,
    TransientFaultError,
)
from repro.obs.metrics import get_registry
from repro.obs.trace import SpanContext, child_span, current_context, current_span, span
from repro.resilience.faults import maybe_inject
from repro.sim.backends.base import (
    SimulationBackend,
    SimulationRequest,
    SimulationResult,
)
from repro.sim.backends.registry import AUTO, resolve_backend
from repro.sim.cache import cache_enabled, get_cache
from repro.sim.metrics import SearchOutcome
from repro.sim.selector import (
    SimulationPlan,
    observe_timing,
    plan_fallback,
    plan_request,
)
from repro.sim.stats import mean_ci, normal_quantile

_RUNS_LOCK = threading.Lock()
_BACKEND_RUNS = 0

# Job-layer observability.  Everything here is attributed in the
# job-owning process: pooled shards report their worker-measured
# timings back with the outcomes, so colony throughput aggregates in
# one registry per serving process even though the compute happened in
# pool workers.
_REGISTRY = get_registry()
_JOBS_SUBMITTED = _REGISTRY.counter(
    "repro_jobs_submitted_total", "Jobs submitted, by backend.", ["backend"]
)
_JOBS_COMPLETED = _REGISTRY.counter(
    "repro_jobs_completed_total",
    "Jobs settled, by terminal state (done/failed/cancelled).",
    ["state"],
)
_JOB_SECONDS = _REGISTRY.histogram(
    "repro_job_seconds", "Wall-clock from submission to settlement.",
    ["backend"],
)
_SHARDS_TOTAL = _REGISTRY.counter(
    "repro_shards_total",
    "Trial shards delivered, by source (run/cache).",
    ["source"],
)
_COLONIES_TOTAL = _REGISTRY.counter(
    "repro_sim_colonies_total",
    "Simulated colonies (trials) executed, by family and backend.",
    ["family", "backend"],
)
_COMPUTE_SECONDS = _REGISTRY.counter(
    "repro_sim_compute_seconds_total",
    "Backend compute seconds spent executing trials, by family and "
    "backend (worker-measured for pooled shards; colonies/sec = "
    "colonies_total / this).",
    ["family", "backend"],
)
_RETRIES_TOTAL = _REGISTRY.counter(
    "repro_retries_total",
    "Retries performed by the resilience machinery, by layer "
    "(shard: pool shard re-execution; client: HTTP re-request).",
    ["layer"],
)
_DEGRADATIONS_TOTAL = _REGISTRY.counter(
    "repro_degradations_total",
    "Jobs degraded to a fallback backend after a mid-run backend "
    "failure, by failed and fallback backend.",
    ["from_backend", "to_backend"],
)


def _count_execution(
    family: str, backend_name: str, n_trials: int, elapsed_seconds: float
) -> None:
    """Record one timed backend execution (inline, pooled, adaptive)."""
    _COLONIES_TOTAL.inc(n_trials, family=family, backend=backend_name)
    _COMPUTE_SECONDS.inc(
        max(elapsed_seconds, 0.0), family=family, backend=backend_name
    )

#: How often a driver waiting on pool shards re-checks for cancellation
#: (in-process event or cross-process marker file).
_CANCEL_POLL_SECONDS = 0.1

#: Shard retry policy.  Retries are safe because shard outcomes are a
#: pure function of ``(request, backend, trial range)`` — a second
#: attempt is bit-identical to what the first would have produced.
_MAX_SHARD_ATTEMPTS = 3
_RETRY_BASE_SECONDS = 0.05
_RETRY_MAX_SECONDS = 2.0
#: Job-wide retry budget floor: however many shards, a job never
#: performs fewer than this many retries before giving up, and at most
#: two per shard on average.
_MIN_RETRY_BUDGET = 4

#: How many times one job may fall back to another backend before a
#: device loss becomes terminal.
_MAX_DEGRADATIONS = 2

#: Errors the shard retry machinery treats as transient.  Deliberately
#: narrow: deterministic failures (bad parameters, backend bugs) would
#: fail identically on every attempt, and :class:`DeviceLostError` is a
#: degradation signal, not a retry signal.
_RETRYABLE_ERRORS = (BrokenProcessPool, TransientFaultError, OSError)


def _is_retryable(error: BaseException) -> bool:
    return isinstance(error, _RETRYABLE_ERRORS) and not isinstance(
        error, DeviceLostError
    )


def _retry_delay(job_id: str, shard_index: int, attempt: int) -> float:
    """Exponential backoff with deterministic jitter.

    The jitter derives from ``(job_id, shard_index, attempt)`` — not
    global RNG state — so chaos runs are exactly reproducible and
    concurrent shards of one job still decorrelate their retries.
    """
    base = min(
        _RETRY_MAX_SECONDS, _RETRY_BASE_SECONDS * (2 ** max(attempt - 1, 0))
    )
    digest = hashlib.sha256(
        f"{job_id}:{shard_index}:{attempt}".encode()
    ).digest()
    jitter = int.from_bytes(digest[:8], "big") / float(1 << 64)
    return base * (0.5 + 0.5 * jitter)


def backend_run_count() -> int:
    """Backend executions performed by this process's jobs.

    Cache hits — full-request or shard-level — do not increment the
    counter; sharded runs count one execution per shard actually run.
    (Worker *processes* keep their own counters — the parent records
    the shards it dispatched and saw complete.)  The tests use this to
    prove that cached re-runs and resumed jobs simulate nothing they
    already have.
    """
    return _BACKEND_RUNS


def _count_backend_runs(count: int) -> None:
    global _BACKEND_RUNS
    with _RUNS_LOCK:
        _BACKEND_RUNS += count


class JobState(str, Enum):
    """Lifecycle of a :class:`SimulationJob`."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


#: The states a job can settle in; shared with the sweep handle.
TERMINAL_STATES = frozenset(
    {JobState.DONE, JobState.FAILED, JobState.CANCELLED}
)
_TERMINAL_STATES = TERMINAL_STATES


@dataclass(frozen=True)
class ShardResult:
    """One completed trial shard of a job, streamed as it lands."""

    shard_index: int
    trial_start: int
    trial_count: int
    outcomes: Tuple[SearchOutcome, ...]
    from_cache: bool

    @property
    def trial_indices(self) -> range:
        """The trial indices this shard covers."""
        return range(self.trial_start, self.trial_start + self.trial_count)


@dataclass(frozen=True)
class JobProgress:
    """A snapshot of one job's completion state."""

    state: JobState
    total_shards: int
    done_shards: int
    total_trials: int
    done_trials: int
    cached_shards: int

    @property
    def fraction(self) -> float:
        """Completed trials as a fraction of the total."""
        if self.total_trials == 0:
            return 1.0
        return self.done_trials / self.total_trials


def _chunk_trials(n_trials: int, workers: int) -> List[range]:
    """Contiguous trial-index ranges, one per worker (possibly fewer).

    Deterministic in ``(n_trials, workers)`` — the shard layout is part
    of what makes resumed jobs hit their own shard cache entries.
    """
    n_chunks = min(workers, n_trials)
    base, remainder = divmod(n_trials, n_chunks)
    chunks: List[range] = []
    start = 0
    for index in range(n_chunks):
        size = base + (1 if index < remainder else 0)
        chunks.append(range(start, start + size))
        start += size
    return chunks


def _run_shard_task(
    request: SimulationRequest,
    backend_name: str,
    trial_indices: Optional[Sequence[int]],
    trace_context: Optional[Dict[str, str]] = None,
    shard_index: Optional[int] = None,
    attempt: int = 0,
) -> Tuple[Tuple[SearchOutcome, ...], float]:
    """Worker-process entry point: run one shard of a request.

    Returns ``(outcomes, elapsed_seconds)`` — the timing is measured in
    the worker (pure backend execution, no dispatch/pickling cost) and
    fed back into the selector's cost model by the parent driver.

    ``trace_context`` is the driver's job-span context, carried
    explicitly because contextvars do not cross the process boundary:
    the worker opens its "shard" span under it, so pooled shards (and
    the kernel spans beneath them) stitch into the submitting trace via
    the shared JSONL sink.

    ``attempt`` is the retry generation (0 = first try).  It feeds the
    ``worker.shard`` fault seam so chaos rules can target exactly one
    attempt of one shard (``match={"shard_index": 2, "attempt": 0}``
    kills the first try and lets the retry through), and is stamped on
    the shard span for trace forensics.
    """
    context: Optional[SpanContext] = None
    if trace_context is not None:
        try:
            context = SpanContext.from_payload(trace_context)
        except (KeyError, TypeError, ValueError):
            context = None
    opened = (
        span(
            "shard",
            context=context,
            shard_index=shard_index,
            trial_count=(
                request.n_trials if trial_indices is None else len(trial_indices)
            ),
            backend=backend_name,
        )
        if context is not None
        else contextlib.nullcontext(None)
    )
    with opened as sp:
        if sp is not None and attempt > 0:
            sp.set_attribute("attempt", attempt)
        maybe_inject(
            "worker.shard",
            shard_index=shard_index,
            attempt=attempt,
            backend=backend_name,
        )
        backend = resolve_backend(request, backend_name)
        start = time.perf_counter()
        if trial_indices is None:
            outcomes = backend.run(request)
        else:
            outcomes = backend.run(request, trial_indices=trial_indices)
        return outcomes, time.perf_counter() - start


def _observe_job_timing(
    job: "SimulationJob", n_trials: int, elapsed_seconds: float
) -> None:
    """Report one measured execution to the selector profile.

    Best-effort by design: feedback is an optimization, never a reason
    for a finished simulation to fail.
    """
    try:
        observe_timing(
            job.backend,
            job.request.algorithm.name,
            n_trials,
            job.request.move_budget,
            elapsed_seconds,
        )
    except Exception:  # noqa: BLE001 — feedback must never fail the job
        pass


class SimulationJob:
    """Handle for one submitted simulation request.

    Created by :meth:`JobManager.submit`; never constructed directly.
    The job executes on a background driver thread owned by the
    manager; this handle is the thread-safe view — poll
    :meth:`progress`, stream :meth:`iter_results`, block on
    :meth:`result`, or :meth:`cancel`.
    """

    def __init__(
        self,
        job_id: str,
        request: SimulationRequest,
        backend_name: str,
        shards: List[Optional[range]],
        use_cache: bool,
        pool_workers: int,
        ledger: bool = True,
        cache_backend: Optional[str] = None,
    ) -> None:
        self.job_id = job_id
        self.request = request
        self.backend = backend_name
        # Cache identity: usually the registry name, but backends whose
        # stream depends on a runtime binding (accelerator namespace/
        # device) key their entries under the qualified form.
        self.cache_backend = cache_backend or backend_name
        self._shards = shards
        self._use_cache = use_cache
        self._pool_workers = pool_workers
        self._lock = threading.Lock()
        self._condition = threading.Condition(self._lock)
        self._state = JobState.PENDING
        self._shard_outcomes: List[Optional[Tuple[SearchOutcome, ...]]] = [
            None for _ in shards
        ]
        self._emitted: List[ShardResult] = []
        self._cached_shards = 0
        self._error: Optional[BaseException] = None
        self._cancel_event = threading.Event()
        self._submitted_at = time.time()
        self._finished_at: Optional[float] = None
        # Request-level deadline, anchored at submission on the
        # monotonic clock (wall-clock steps must not fire deadlines).
        self._deadline_monotonic: Optional[float] = (
            None
            if request.deadline_seconds is None
            else time.monotonic() + request.deadline_seconds
        )
        # Resilience bookkeeping: shard retries performed, and — when a
        # backend failed mid-run — where the job degraded from and why.
        self._retries = 0
        self._degraded_from: Optional[str] = None
        self._degradation_reason: Optional[str] = None
        # Jobs served entirely from the result cache skip the ledger —
        # no disk I/O for replays that simulated nothing.
        self._served_from_cache = False
        # The blocking facade submits with ledger=False: its jobs are
        # settled before the caller could ever inspect them, so the
        # per-call disk writes would be pure overhead.
        self._ledger_enabled = ledger
        # Trace parentage captured at submit time (the driver thread
        # cannot inherit the submitter's contextvars) and the plan this
        # job executes, for predicted-vs-actual span attributes.
        self._trace_ctx: Optional[SpanContext] = None
        self._plan: Optional[SimulationPlan] = None

    # -- read side -------------------------------------------------------

    @property
    def state(self) -> JobState:
        """The job's current lifecycle state."""
        with self._lock:
            return self._state

    def done(self) -> bool:
        """Whether the job reached a terminal state."""
        return self.state in _TERMINAL_STATES

    def cancel_requested(self) -> bool:
        """Whether cancellation has been requested (state may lag)."""
        return self._cancel_event.is_set()

    def exception(self) -> Optional[BaseException]:
        """The failure cause for a ``FAILED`` job, else ``None``."""
        with self._lock:
            return self._error

    def progress(self) -> JobProgress:
        """Per-shard / per-trial completion snapshot."""
        with self._lock:
            done_shards = sum(
                1 for outcomes in self._shard_outcomes if outcomes is not None
            )
            done_trials = sum(
                len(outcomes)
                for outcomes in self._shard_outcomes
                if outcomes is not None
            )
            return JobProgress(
                state=self._state,
                total_shards=len(self._shards),
                done_shards=done_shards,
                total_trials=self.request.n_trials,
                done_trials=done_trials,
                cached_shards=self._cached_shards,
            )

    def iter_results(self) -> Iterator[ShardResult]:
        """Yield completed shards as they land, in landing order.

        Cache-served shards are yielded too (``from_cache=True``), so a
        fully cached job still streams its results.  Iteration ends
        when the job reaches a terminal state; a ``FAILED`` job raises
        its error after the shards that did complete, a ``CANCELLED``
        one raises :class:`~repro.errors.JobCancelledError`.  Safe to
        call multiple times (each iterator replays from the start) and
        after completion.
        """
        index = 0
        while True:
            with self._condition:
                while (
                    index >= len(self._emitted)
                    and self._state not in _TERMINAL_STATES
                ):
                    self._condition.wait()
                if index < len(self._emitted):
                    shard = self._emitted[index]
                else:
                    if self._state is JobState.FAILED:
                        raise self._error  # noqa: raise-from — original error
                    if self._state is JobState.CANCELLED:
                        raise JobCancelledError(
                            f"job {self.job_id} was cancelled after "
                            f"{len(self._emitted)}/{len(self._shards)} shards"
                        )
                    return
            index += 1
            yield shard

    def result(self, timeout: Optional[float] = None) -> SimulationResult:
        """Block until terminal and return the assembled result.

        Raises the job's error for ``FAILED``,
        :class:`~repro.errors.JobCancelledError` for ``CANCELLED``, and
        ``TimeoutError`` if ``timeout`` elapses first.
        """
        with self._condition:
            if not self._condition.wait_for(
                lambda: self._state in _TERMINAL_STATES, timeout=timeout
            ):
                raise TimeoutError(
                    f"job {self.job_id} still {self._state.value} "
                    f"after {timeout}s"
                )
            if self._state is JobState.FAILED:
                raise self._error
            if self._state is JobState.CANCELLED:
                raise JobCancelledError(f"job {self.job_id} was cancelled")
            outcomes: List[SearchOutcome] = []
            for shard_outcomes in self._shard_outcomes:
                outcomes.extend(shard_outcomes or ())
            return SimulationResult(
                request=self.request,
                backend=self.backend,
                outcomes=tuple(outcomes),
            )

    # -- control side ----------------------------------------------------

    def cancel(self) -> bool:
        """Request cancellation; returns ``False`` if already terminal.

        Pending shards are abandoned; shards already running are
        allowed to finish and are still written through to the cache
        (so a cancelled job's completed work is never lost), after
        which the job settles in ``CANCELLED``.
        """
        with self._lock:
            if self._state in _TERMINAL_STATES:
                return False
        self._cancel_event.set()
        return True

    # -- driver-internal mutations --------------------------------------

    def _mark_running(self) -> None:
        with self._condition:
            if self._state is JobState.PENDING:
                self._state = JobState.RUNNING
            self._condition.notify_all()

    def _record_shard(
        self,
        shard_index: int,
        outcomes: Tuple[SearchOutcome, ...],
        from_cache: bool,
    ) -> None:
        shard = self._shards[shard_index]
        trial_start = shard.start if shard is not None else 0
        _SHARDS_TOTAL.inc(source="cache" if from_cache else "run")
        with self._condition:
            self._shard_outcomes[shard_index] = outcomes
            if from_cache:
                self._cached_shards += 1
            self._emitted.append(
                ShardResult(
                    shard_index=shard_index,
                    trial_start=trial_start,
                    trial_count=len(outcomes),
                    outcomes=outcomes,
                    from_cache=from_cache,
                )
            )
            self._condition.notify_all()

    def _finish(
        self, state: JobState, error: Optional[BaseException] = None
    ) -> None:
        with self._condition:
            if self._state in _TERMINAL_STATES:
                return
            self._state = state
            self._error = error
            self._finished_at = time.time()
            self._condition.notify_all()

    def _reset_for_degradation(
        self, backend_name: str, cache_backend: str, reason: str
    ) -> None:
        """Restart the job's result state under a fallback backend.

        Called by the degradation path after a mid-run backend failure:
        every shard re-executes under the fallback so the final result
        is wholly the fallback's stream (the failed backend's partial
        output — possibly a different distribution — must never be
        stitched in).  ``_emitted`` is deliberately left alone: streams
        are append-only, so consumers may observe superseded shards
        from before the degradation; ``result()`` assembles only from
        the reset ``_shard_outcomes``.
        """
        with self._condition:
            self._degraded_from = self.backend
            self._degradation_reason = reason
            self.backend = backend_name
            self.cache_backend = cache_backend
            self._shard_outcomes = [None for _ in self._shards]
            self._cached_shards = 0
            self._condition.notify_all()

    def _complete_from_cache(self, outcomes: Tuple[SearchOutcome, ...]) -> None:
        """Full-request cache hit: collapse to one cached shard, DONE."""
        _SHARDS_TOTAL.inc(source="cache")
        with self._condition:
            self._served_from_cache = True
            self._shards = [None]
            self._shard_outcomes = [outcomes]
            self._cached_shards = 1
            self._emitted.append(
                ShardResult(
                    shard_index=0,
                    trial_start=0,
                    trial_count=len(outcomes),
                    outcomes=outcomes,
                    from_cache=True,
                )
            )
            self._state = JobState.DONE
            self._finished_at = time.time()
            self._condition.notify_all()


def ledger_dir() -> Path:
    """Where job records live: ``<cache dir>/jobs``.

    Computed per call (not cached) so it follows the active cache
    configuration — both ``REPRO_ANTS_CACHE_DIR`` and
    ``configure_cache(directory=...)`` redirections move the ledger
    with the cache.
    """
    return get_cache().directory / "jobs"


def _cancel_marker(job_id: str) -> Path:
    return ledger_dir() / f"{job_id}.cancel"


_TERMINAL_RECORD_STATES = frozenset(
    state.value for state in _TERMINAL_STATES
)


def request_cancel(job_id: str) -> bool:
    """Ask a possibly-foreign process to cancel ``job_id``.

    Writes the ``<job_id>.cancel`` marker the owning driver polls at
    shard boundaries; if the job lives in *this* process it is also
    cancelled directly.  Returns ``False`` — and leaves no marker
    behind — when the job is unknown or already terminal.
    """
    job = get_manager().get(job_id)
    if job is not None:
        if not job.cancel():
            return False
    else:
        record = next(
            (r for r in read_job_records() if r.get("job_id") == job_id),
            None,
        )
        if record is None or record.get("state") in _TERMINAL_RECORD_STATES:
            return False
        if not _owner_alive(record):
            return False  # crashed owner: nothing left to cancel
    try:
        ledger_dir().mkdir(parents=True, exist_ok=True)
        _cancel_marker(job_id).touch()
    except OSError:
        pass
    return True


def job_record(job: SimulationJob) -> dict:
    """The ledger-shaped record of one live in-process job.

    The same dict the manager persists to ``<cache>/jobs/<id>.json``,
    built from the job's current progress — shared by the ledger
    writer, ``repro-ants jobs status``, and the HTTP status route.
    """
    progress = job.progress()
    return {
        "job_id": job.job_id,
        "state": progress.state.value,
        "algorithm": job.request.algorithm.name,
        "backend": job.backend,
        "n_trials": job.request.n_trials,
        "n_agents": job.request.n_agents,
        "seed": job.request.seed,
        "total_shards": progress.total_shards,
        "done_shards": progress.done_shards,
        "done_trials": progress.done_trials,
        "cached_shards": progress.cached_shards,
        "submitted_at": job._submitted_at,
        "finished_at": job._finished_at,
        "updated_at": time.time(),
        "pid": os.getpid(),
        "error": (
            str(job.exception()) if job.exception() is not None else None
        ),
        "retries": job._retries,
        "degraded_from": job._degraded_from,
        "degradation_reason": job._degradation_reason,
    }


def find_job_record(job_id: str) -> Optional[dict]:
    """The persisted ledger record for ``job_id``, or ``None``.

    A direct single-file read — no directory scan — so status lookups
    stay cheap however many records the ledger holds.
    """
    path = ledger_dir() / f"{job_id}.json"
    try:
        record = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    if isinstance(record, dict) and record.get("job_id") == job_id:
        return record
    return None


def job_status_record(job_id: str) -> Optional[dict]:
    """The freshest status view of a job: live handle, then ledger.

    A job still registered with this process's manager reports its live
    progress; a finished job that was evicted from the in-process
    registry (:attr:`JobManager.MAX_RETAINED_JOBS`) — or one owned by a
    different process entirely — falls back to its JSON ledger record
    instead of being reported unknown.  ``None`` only when neither
    exists.
    """
    job = get_manager().get(job_id)
    if job is not None:
        return job_record(job)
    return find_job_record(job_id)


def read_job_records() -> List[dict]:
    """All persisted job records, newest submission first.

    Best-effort: unreadable or corrupt records are skipped.  Records
    describe jobs from any process sharing the cache directory.
    """
    directory = ledger_dir()
    records: List[dict] = []
    if not directory.is_dir():
        return records
    for path in directory.glob("*.json"):
        try:
            record = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        if isinstance(record, dict) and "job_id" in record:
            records.append(record)
    records.sort(key=lambda record: record.get("submitted_at", 0), reverse=True)
    return records


#: Retention bound: the ledger keeps at most this many records; older
#: terminal ones are dropped by the per-process prune pass.
_MAX_LEDGER_RECORDS = 500


def _owner_alive(record: dict) -> bool:
    """Whether the process that wrote this record still exists.

    Same-host check (the ledger lives in a local cache directory): a
    record whose owner died — kill -9, crash — can never progress, so
    pruning treats it as terminal.
    """
    pid = record.get("pid")
    if not isinstance(pid, int) or pid <= 0:
        return False
    try:
        os.kill(pid, 0)
        return True
    except ProcessLookupError:
        return False
    except OSError:
        return True  # exists but not ours (EPERM)


#: The state reported for a non-terminal ledger record whose owning
#: process no longer exists: the run crashed, but every shard it
#: finished is in the shard cache, so resubmitting the same request
#: resumes from them (``backend_run_count`` proves zero re-simulation).
FAILED_RECOVERABLE = "failed-recoverable"


def effective_state(record: dict) -> str:
    """A ledger record's state, with crashed owners made visible.

    A record that claims ``pending``/``running`` but whose writing
    process is dead can never progress — ``repro-ants jobs list`` and
    the server's job listing report it as :data:`FAILED_RECOVERABLE`
    instead of letting it pose as live forever.
    """
    state = str(record.get("state", "unknown"))
    if state not in _TERMINAL_RECORD_STATES and not _owner_alive(record):
        return FAILED_RECOVERABLE
    return state


def prune_job_records(max_records: int = _MAX_LEDGER_RECORDS) -> int:
    """Drop the oldest settled ledger records beyond ``max_records``.

    "Settled" means terminal state *or* a non-terminal record whose
    owning process is dead (a crashed run can never progress).  Also
    removes orphaned ``.cancel`` markers whose job record is settled
    or gone.  Runs automatically once per process on the first
    submission, and behind ``repro-ants jobs clear``.  Returns the
    number of files removed.
    """
    directory = ledger_dir()
    if not directory.is_dir():
        return 0
    records = read_job_records()  # newest first
    removed = 0
    terminal = {
        r["job_id"] for r in records
        if r.get("state") in _TERMINAL_RECORD_STATES or not _owner_alive(r)
    }
    known = {r["job_id"] for r in records}
    for record in records[max_records:]:
        if record["job_id"] not in terminal:
            continue
        try:
            (directory / f"{record['job_id']}.json").unlink()
            removed += 1
        except OSError:
            pass
    for marker in directory.glob("*.cancel"):
        job_id = marker.name[: -len(".cancel")]
        if job_id not in known or job_id in terminal:
            try:
                marker.unlink()
                removed += 1
            except OSError:
                pass
    return removed


class JobManager:
    """Owns job execution: driver threads, the process pool, the ledger.

    One manager per process (see :func:`get_manager`).  ``submit``
    validates and resolves synchronously — bad parameters and
    unsupported backends fail at the call site — then hands the job to
    a daemon driver thread so the caller gets the handle immediately.
    """

    #: In-process registry bound: terminal jobs beyond this are evicted
    #: (their outcomes would otherwise accumulate for the process's
    #: lifetime); their ledger records and cache entries survive.
    MAX_RETAINED_JOBS = 256

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._jobs: Dict[str, SimulationJob] = {}
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_size = 0
        self._retired_pools: List[ProcessPoolExecutor] = []
        self._ledger_pruned = False

    def submit(
        self,
        request: SimulationRequest,
        backend: str = AUTO,
        workers: int = 1,
        cache: Optional[bool] = None,
        run_in_pool: bool = False,
        pool_size: Optional[int] = None,
        ledger: bool = True,
        plan: Optional[SimulationPlan] = None,
    ) -> SimulationJob:
        """Start a simulation job and return its handle.

        Parameters mirror :func:`repro.sim.simulate`; additionally
        ``run_in_pool`` forces even a single-shard job onto the shared
        process pool (sized ``pool_size``) instead of the driver
        thread — the sweep executor uses this to run whole grid points
        in parallel worker processes — and ``ledger=False`` keeps the
        job out of the persistent jobs ledger (used by the blocking
        facade, whose jobs settle before anyone could observe them).

        ``plan`` executes a :class:`~repro.sim.selector.SimulationPlan`
        instead of the fixed ``backend``/``workers`` layout: the plan's
        backend choice and shard count take over (shards still come
        from :func:`_chunk_trials`, so a planned job hits the same
        shard-cache entries an unplanned job with that layout would).
        An explicit ``backend`` name that contradicts the plan is an
        error — silently preferring either side would make runs
        unreproducible from their call sites.
        """
        if workers < 1:
            raise InvalidParameterError(f"workers must be >= 1, got {workers}")
        if plan is not None:
            if backend != AUTO and backend != plan.backend:
                raise InvalidParameterError(
                    f"explicit backend {backend!r} conflicts with plan "
                    f"backend {plan.backend!r}"
                )
            if plan.n_shards < 1:
                raise InvalidParameterError(
                    f"plan.n_shards must be >= 1, got {plan.n_shards}"
                )
            chosen = resolve_backend(request, plan.backend)
            workers = max(plan.workers, 1)
            n_shards = min(plan.n_shards, request.n_trials)
            if n_shards <= 1 or request.n_trials == 1:
                shards: List[Optional[range]] = [None]
            else:
                shards = list(_chunk_trials(request.n_trials, n_shards))
        else:
            chosen = resolve_backend(request, backend)
            if workers == 1 or request.n_trials == 1:
                shards = [None]
            else:
                shards = list(_chunk_trials(request.n_trials, workers))
        use_cache = cache_enabled() if cache is None else cache
        job = SimulationJob(
            job_id=f"job-{uuid.uuid4().hex[:12]}",
            request=request,
            backend_name=chosen.name,
            cache_backend=chosen.cache_name(),
            shards=shards,
            use_cache=use_cache,
            pool_workers=(pool_size or workers) if (run_in_pool or len(shards) > 1) else 0,
            ledger=ledger,
        )
        # The driver thread cannot see the submitter's contextvars, so
        # the ambient span (a client request, an experiment program, a
        # server route) is captured here and re-attached in _drive —
        # that is what parents the job span under its caller.
        job._trace_ctx = current_context()
        job._plan = plan
        _JOBS_SUBMITTED.inc(backend=chosen.name)
        with self._lock:
            self._jobs[job.job_id] = job
            if len(self._jobs) > self.MAX_RETAINED_JOBS:
                overflow = len(self._jobs) - self.MAX_RETAINED_JOBS
                for stale_id in [
                    job_id for job_id, stale in self._jobs.items()
                    if stale.done()
                ][:overflow]:
                    del self._jobs[stale_id]
            prune_now = not self._ledger_pruned
            self._ledger_pruned = True
        if prune_now:
            # Bound ledger growth: once per process, drop old terminal
            # records and orphaned cancel markers.
            prune_job_records()
        thread = threading.Thread(
            target=self._drive,
            args=(job, chosen),
            name=f"repro-job-{job.job_id}",
            daemon=True,
        )
        thread.start()
        return job

    def run_many(
        self,
        requests: Sequence[SimulationRequest],
        plans: Optional[Sequence[Optional[SimulationPlan]]] = None,
        backend: str = AUTO,
        run_in_pool: bool = False,
        pool_size: Optional[int] = None,
        max_in_flight: int = 1,
        ledger: bool = True,
        cache: Optional[bool] = None,
    ) -> List[SimulationResult]:
        """Submit many requests with bounded concurrency; collect in order.

        The experiment compiler's lowering pass uses this to execute a
        whole fused program: at most ``max_in_flight`` jobs are live at
        once (window 1 degenerates to strictly sequential execution),
        each optionally carrying its own :class:`SimulationPlan` from
        ``plans`` (parallel list, ``None`` entries fall back to
        ``backend``).  Results come back in request order; the first
        failure cancels the not-yet-collected tail and re-raises.
        """
        if plans is not None and len(plans) != len(requests):
            raise InvalidParameterError(
                f"plans must parallel requests: "
                f"{len(plans)} plans for {len(requests)} requests"
            )
        if max_in_flight < 1:
            raise InvalidParameterError(
                f"max_in_flight must be >= 1, got {max_in_flight}"
            )
        jobs: List[SimulationJob] = []
        results: List[SimulationResult] = []
        submitted = 0
        try:
            while len(results) < len(requests):
                while (
                    submitted < len(requests)
                    and submitted < len(results) + max_in_flight
                ):
                    plan = plans[submitted] if plans is not None else None
                    jobs.append(
                        self.submit(
                            requests[submitted],
                            backend=backend if plan is None else AUTO,
                            cache=cache,
                            run_in_pool=run_in_pool,
                            pool_size=pool_size,
                            ledger=ledger,
                            plan=plan,
                        )
                    )
                    submitted += 1
                results.append(jobs[len(results)].result())
        except BaseException:
            for job in jobs[len(results):]:
                job.cancel()
            raise
        return results

    def get(self, job_id: str) -> Optional[SimulationJob]:
        """The in-process job with this id, if any."""
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[SimulationJob]:
        """All jobs submitted through this manager, oldest first."""
        with self._lock:
            return list(self._jobs.values())

    def cancel(self, job_id: str) -> bool:
        """Cancel an in-process job by id."""
        job = self.get(job_id)
        return job.cancel() if job is not None else False

    def close(self) -> None:
        """Shut the process pool down (idempotent).

        Also flushes terminal ledger records: driver threads are
        daemons, so a process exiting right after ``result()`` returns
        can kill the driver before its final write — this runs at
        ``atexit`` and settles the records.
        """
        for job in self.jobs():
            if job.done() and not job._served_from_cache:
                self._write_ledger(job)
        with self._lock:
            pool, self._pool, self._pool_size = self._pool, None, 0
            retired, self._retired_pools = self._retired_pools, []
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
        for old in retired:
            old.shutdown(wait=False, cancel_futures=True)

    # -- execution -------------------------------------------------------

    def _ensure_pool(
        self, workers: int, requester: Optional[SimulationJob] = None
    ) -> ProcessPoolExecutor:
        """The shared pool, grown (never shrunk) to ``workers``.

        Keeping the current pool warm across jobs is deliberate —
        worker spawn cost is amortized over a sweep's many points.
        """
        with self._lock:
            if self._pool is None or self._pool_size < workers:
                old = self._pool
                self._pool = ProcessPoolExecutor(max_workers=workers)
                self._pool_size = workers
                if old is not None:
                    # A concurrent job may still be submitting shards to
                    # its captured reference, and submit-after-shutdown
                    # raises.  Only reclaim the old workers immediately
                    # when no *other* job is live; otherwise park the
                    # pool for close() to settle at exit.
                    others_live = any(
                        job is not requester and not job.done()
                        for job in self._jobs.values()
                    )
                    if others_live:
                        self._retired_pools.append(old)
                    else:
                        old.shutdown(wait=False)
            return self._pool

    def _cancel_requested(self, job: SimulationJob) -> bool:
        if job.cancel_requested():
            return True
        try:
            if _cancel_marker(job.job_id).exists():
                job.cancel()
                return True
        except OSError:
            pass
        return False

    def _drive(self, job: SimulationJob, backend: SimulationBackend) -> None:
        """Driver-thread body: the job span around the pipeline."""
        with span(
            "job",
            context=job._trace_ctx,
            job_id=job.job_id,
            backend=job.backend,
            algorithm=job.request.algorithm.name,
            n_trials=job.request.n_trials,
        ) as sp:
            if sp is not None and job._plan is not None:
                sp.set_attribute("plan_source", job._plan.source)
                if job._plan.predicted_seconds is not None:
                    sp.set_attribute(
                        "predicted_seconds",
                        round(job._plan.predicted_seconds, 6),
                    )
            self._drive_pipeline(job, backend)
            state = job.state
            _JOBS_COMPLETED.inc(state=state.value)
            if job._finished_at is not None:
                _JOB_SECONDS.observe(
                    max(job._finished_at - job._submitted_at, 0.0),
                    backend=job.backend,
                )
            if sp is not None:
                sp.set_attribute("state", state.value)
                sp.set_attribute("cached_shards", job.progress().cached_shards)
                if job._retries:
                    sp.set_attribute("retries", job._retries)
                if state is JobState.FAILED:
                    sp.set_status("error")

    def _drive_pipeline(
        self, job: SimulationJob, backend: SimulationBackend
    ) -> None:
        """Degradation guard around the canonical pipeline.

        A :class:`~repro.errors.DeviceLostError` escaping the pipeline
        is a backend failure, not a job failure: the job re-plans onto
        the next supporting backend (the selector's static ranking,
        excluding everything that already failed) and re-executes the
        whole pipeline under the fallback's cache identity — producing
        results bit-identical to a run that had used the fallback from
        the start.  Any other error, or running out of fallbacks, fails
        the job.
        """
        failed_backends: List[str] = []
        try:
            while True:
                try:
                    self._execute(job, backend)
                    return
                except DeviceLostError as error:
                    failed_backends.append(backend.name)
                    if len(failed_backends) > _MAX_DEGRADATIONS:
                        raise
                    fallback = self._degrade(job, failed_backends, error)
                    if fallback is None:
                        raise
                    backend = fallback
        except BaseException as error:  # noqa: BLE001 — surfaced via result()
            job._finish(JobState.FAILED, error)
        finally:
            if not job._served_from_cache:
                self._write_ledger(job)
                try:
                    _cancel_marker(job.job_id).unlink()
                except OSError:
                    pass

    def _degrade(
        self,
        job: SimulationJob,
        failed_backends: List[str],
        error: DeviceLostError,
    ) -> Optional[SimulationBackend]:
        """Re-plan a job onto a fallback backend after a device loss."""
        plan = plan_fallback(
            job.request, exclude=failed_backends, reason=str(error)
        )
        if plan is None:
            return None
        fallback = resolve_backend(job.request, plan.backend)
        _DEGRADATIONS_TOTAL.inc(
            from_backend=failed_backends[-1], to_backend=fallback.name
        )
        sp = current_span()
        if sp is not None:
            sp.set_attribute("degraded_from", failed_backends[-1])
            sp.set_attribute("degradation_reason", str(error))
        job._reset_for_degradation(
            fallback.name, fallback.cache_name(), str(error)
        )
        self._write_ledger(job)
        return fallback

    def _check_deadline(
        self,
        job: SimulationJob,
        futures: Optional[Dict[Future, int]] = None,
    ) -> None:
        """Raise once the job's submission-anchored deadline passes."""
        deadline = job._deadline_monotonic
        if deadline is None or time.monotonic() <= deadline:
            return
        if futures:
            for future in futures:
                future.cancel()
        raise DeadlineExceededError(
            f"job {job.job_id} exceeded its "
            f"{job.request.deadline_seconds}s deadline; completed "
            f"shards remain cached, resubmitting resumes from them"
        )

    def _execute(
        self, job: SimulationJob, backend: SimulationBackend
    ) -> None:
        """The canonical execution pipeline (one backend generation)."""
        job._mark_running()
        cache = get_cache() if job._use_cache else None
        request = job.request

        if cache is not None:
            full = cache.lookup(request, job.cache_backend)
            if full is not None:
                # Served entirely from memory/disk cache: skip the
                # ledger altogether — a replay that simulated
                # nothing is not worth disk I/O per call, and the
                # original run's record already exists.
                job._complete_from_cache(full)
                return
        self._write_ledger(job)

        pending: List[int] = []
        for shard_index, indices in enumerate(job._shards):
            hit = None
            if cache is not None and indices is not None:
                hit = cache.lookup_shard(request, job.cache_backend, indices)
            if hit is not None:
                job._record_shard(shard_index, hit, from_cache=True)
            else:
                pending.append(shard_index)

        if self._cancel_requested(job):
            job._finish(JobState.CANCELLED)
            return
        self._check_deadline(job)

        if pending and job._pool_workers == 0:
            # Single shard, no pool requested: run inline on this
            # driver thread — the same in-process execution the
            # blocking facade always had.
            outcomes, elapsed = self._run_inline(job, backend, pending[0])
            _count_backend_runs(1)
            _count_execution(
                request.algorithm.name, job.backend, len(outcomes), elapsed
            )
            _observe_job_timing(job, len(outcomes), elapsed)
            job._record_shard(pending[0], outcomes, from_cache=False)
            if cache is not None:
                cache.store(request, job.cache_backend, outcomes)
        elif pending:
            cancelled = self._run_pooled(job, cache, pending)
            if cancelled:
                job._finish(JobState.CANCELLED)
                return

        if cache is not None and len(job._shards) > 1:
            # Publish the assembled full-request entry next to the
            # shard entries so future lookups hit in one probe.
            outcomes = []
            for shard_outcomes in job._shard_outcomes:
                outcomes.extend(shard_outcomes or ())
            cache.store(request, job.cache_backend, tuple(outcomes))
        job._finish(JobState.DONE)

    def _run_inline(
        self, job: SimulationJob, backend: SimulationBackend, shard_index: int
    ) -> Tuple[Tuple[SearchOutcome, ...], float]:
        """Run the whole request on the driver thread, with retries."""
        request = job.request
        attempt = 0
        while True:
            self._check_deadline(job)
            try:
                with child_span(
                    "shard",
                    shard_index=shard_index,
                    trial_count=request.n_trials,
                    backend=job.backend,
                ) as sp:
                    if sp is not None and attempt > 0:
                        sp.set_attribute("attempt", attempt)
                    maybe_inject(
                        "backend.run",
                        backend=job.backend,
                        shard_index=shard_index,
                        attempt=attempt,
                    )
                    run_start = time.perf_counter()
                    outcomes = backend.run(request)
                    return outcomes, time.perf_counter() - run_start
            except _RETRYABLE_ERRORS as error:
                if not _is_retryable(error):
                    raise
                attempt += 1
                if attempt >= _MAX_SHARD_ATTEMPTS:
                    raise
                job._retries += 1
                _RETRIES_TOTAL.inc(layer="shard")
                time.sleep(_retry_delay(job.job_id, shard_index, attempt))

    def _replace_broken_pool(
        self, broken: ProcessPoolExecutor, job: SimulationJob
    ) -> ProcessPoolExecutor:
        """Discard a pool whose worker died; return a fresh one.

        Safe under sharing: only the first job to observe the breakage
        replaces the manager's pool (the identity check), everyone else
        just picks up the replacement from :meth:`_ensure_pool`.
        """
        with self._lock:
            if self._pool is broken:
                self._pool = None
                self._pool_size = 0
        broken.shutdown(wait=False, cancel_futures=True)
        return self._ensure_pool(job._pool_workers, requester=job)

    def _run_pooled(
        self,
        job: SimulationJob,
        cache,
        pending: List[int],
    ) -> bool:
        """Run the pending shards on the shared pool; True if cancelled.

        On cancellation, not-yet-started shards are dropped but
        in-flight ones are awaited and written through to the cache —
        completed work survives for resumption.

        Transient shard failures — a killed worker (the pool breaks for
        every in-flight shard at once), an OS-level blip, an injected
        :class:`~repro.errors.TransientFaultError` — are retried with
        exponential backoff and deterministic jitter, at most
        :data:`_MAX_SHARD_ATTEMPTS` per shard within a job-wide retry
        budget.  Shards already written through to the cache are never
        re-run: a retry re-executes only the attempt that failed, and
        its outcomes are bit-identical to what the lost attempt would
        have produced (shard outcomes are pure in the trial range).
        """
        pool = self._ensure_pool(job._pool_workers, requester=job)
        request = job.request
        # Hand the ambient job span to each worker explicitly — the
        # pool boundary is where contextvars stop.
        context = current_context()
        trace_payload = None if context is None else context.to_payload()
        attempts: Dict[int, int] = {index: 0 for index in pending}
        retry_budget = max(_MIN_RETRY_BUDGET, 2 * len(pending))
        futures: Dict[Future, int] = {}

        def submit_shard(shard_index: int) -> None:
            nonlocal pool
            indices = job._shards[shard_index]
            args = (
                request,
                job.backend,
                None if indices is None else list(indices),
                trace_payload,
                shard_index,
                attempts[shard_index],
            )
            try:
                future = pool.submit(_run_shard_task, *args)
            except (BrokenProcessPool, RuntimeError):
                # The shared pool broke under another job's feet (or
                # was shut down behind us): rebuild once and resubmit.
                pool = self._replace_broken_pool(pool, job)
                future = pool.submit(_run_shard_task, *args)
            futures[future] = shard_index

        for shard_index in pending:
            submit_shard(shard_index)
        cancelled = False
        while futures:
            if not cancelled and self._cancel_requested(job):
                cancelled = True
                for future in list(futures):
                    if future.cancel():
                        del futures[future]
            self._check_deadline(job, futures)
            done, _ = wait(
                futures, timeout=_CANCEL_POLL_SECONDS,
                return_when=FIRST_COMPLETED,
            )
            retry_indices: List[int] = []
            pool_broken = False
            for future in done:
                shard_index = futures.pop(future)
                try:
                    outcomes, elapsed = future.result()
                except BaseException as error:
                    retryable = (
                        not cancelled
                        and _is_retryable(error)
                        and attempts[shard_index] + 1 < _MAX_SHARD_ATTEMPTS
                        and job._retries < retry_budget
                    )
                    if not retryable:
                        # Out of budget (or a deterministic failure):
                        # fail the job; don't leave the rest burning
                        # pool capacity.
                        for remaining in futures:
                            remaining.cancel()
                        raise
                    attempts[shard_index] += 1
                    job._retries += 1
                    _RETRIES_TOTAL.inc(layer="shard")
                    sp = current_span()
                    if sp is not None:
                        sp.set_attribute("retries", job._retries)
                    retry_indices.append(shard_index)
                    if isinstance(error, BrokenProcessPool):
                        pool_broken = True
                    continue
                _count_backend_runs(1)
                _count_execution(
                    request.algorithm.name, job.backend, len(outcomes), elapsed
                )
                _observe_job_timing(job, len(outcomes), elapsed)
                job._record_shard(shard_index, outcomes, from_cache=False)
                if cache is not None:
                    indices = job._shards[shard_index]
                    if indices is None:
                        cache.store(request, job.cache_backend, outcomes)
                    else:
                        cache.store_shard(
                            request, job.cache_backend, indices, outcomes
                        )
                self._write_ledger(job)
            if retry_indices:
                if pool_broken:
                    # A worker death breaks the whole executor: every
                    # sibling future fails with BrokenProcessPool too
                    # (and retries through this same path); replace the
                    # pool before resubmitting anything onto it.
                    pool = self._replace_broken_pool(pool, job)
                for shard_index in retry_indices:
                    time.sleep(
                        _retry_delay(
                            job.job_id, shard_index, attempts[shard_index]
                        )
                    )
                    submit_shard(shard_index)
        return cancelled

    # -- ledger ----------------------------------------------------------

    def _write_ledger(self, job: SimulationJob) -> None:
        """Best-effort persisted job record for the CLI."""
        if not job._ledger_enabled:
            return
        record = job_record(job)
        try:
            directory = ledger_dir()
            directory.mkdir(parents=True, exist_ok=True)
            fd, temp_name = tempfile.mkstemp(dir=directory, suffix=".tmp")
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(record, handle)
            os.replace(temp_name, directory / f"{job.job_id}.json")
        except OSError:
            pass


_GLOBAL_MANAGER: Optional[JobManager] = None
_MANAGER_LOCK = threading.Lock()


def get_manager() -> JobManager:
    """The process-wide :class:`JobManager` (created lazily)."""
    global _GLOBAL_MANAGER
    with _MANAGER_LOCK:
        if _GLOBAL_MANAGER is None:
            _GLOBAL_MANAGER = JobManager()
            atexit.register(_GLOBAL_MANAGER.close)
        return _GLOBAL_MANAGER


def simulate_async(
    request: SimulationRequest,
    backend: str = AUTO,
    workers: int = 1,
    cache: Optional[bool] = None,
) -> SimulationJob:
    """Submit a request for asynchronous execution.

    Returns immediately with a :class:`SimulationJob`; stream shards
    with :meth:`~SimulationJob.iter_results`, poll
    :meth:`~SimulationJob.progress`, or block on
    :meth:`~SimulationJob.result` — which is exactly what the blocking
    :func:`repro.sim.simulate` facade does.
    """
    return get_manager().submit(
        request, backend=backend, workers=workers, cache=cache
    )


# -- adaptive sampling ----------------------------------------------------

#: Metrics :func:`simulate_adaptive` can target.
ADAPTIVE_METRICS = ("hit_probability", "moves")


@dataclass(frozen=True)
class AdaptiveRun:
    """What an adaptive sampling run did and where it stopped.

    ``result`` holds the trials actually executed (a prefix of the
    request's ``n_trials``); ``estimate`` / ``half_width`` describe the
    interval at the stopping point; ``converged`` is False when the
    full trial budget ran out before the target width was met.
    ``batches_cached`` counts batches served from the shard cache —
    a repeat of an identical adaptive run replays entirely from cache
    (provable via :func:`backend_run_count`).
    """

    result: SimulationResult
    metric: str
    target_half_width: float
    confidence: float
    estimate: float
    half_width: float
    trials_used: int
    max_trials: int
    batches_run: int
    batches_cached: int
    converged: bool


def _adaptive_estimate(
    metric: str, outcomes: Sequence[SearchOutcome], confidence: float
) -> Tuple[float, float]:
    """(point estimate, CI half-width) for the accumulated outcomes.

    Hit probability uses the Agresti–Coull interval — its ``z²``
    pseudo-observations keep the width finite and honest at observed
    rates of exactly 0 or 1, where a Wald interval would collapse to
    zero width and stop adaptive runs after one batch.  Expected moves
    uses the normal-approximation mean interval over the censored
    per-trial move counts (``m_moves`` or the budget).
    """
    n = len(outcomes)
    if metric == "hit_probability":
        z = normal_quantile(0.5 + confidence / 2.0)
        hits = sum(1 for outcome in outcomes if outcome.found)
        n_tilde = n + z * z
        p_tilde = (hits + z * z / 2.0) / n_tilde
        half = z * math.sqrt(max(p_tilde * (1.0 - p_tilde), 0.0) / n_tilde)
        return p_tilde, half
    samples = [float(outcome.moves_or_budget) for outcome in outcomes]
    if n < 2:
        return samples[0] if samples else math.inf, math.inf
    est = mean_ci(samples, confidence)
    return est.mean, (est.ci_high - est.ci_low) / 2.0


def simulate_adaptive(
    request: SimulationRequest,
    metric: str = "hit_probability",
    target_half_width: float = 0.05,
    confidence: float = 0.95,
    batch_size: int = 32,
    min_trials: int = 2,
    backend: str = AUTO,
    cache: Optional[bool] = None,
) -> AdaptiveRun:
    """Run trials in batches until the metric's CI is tight enough.

    The request's ``n_trials`` is the trial *budget*; batches of
    ``batch_size`` trials are consumed **in index order** —
    ``[0, B), [B, 2B), ...`` — until the ``confidence``-level interval
    half-width on ``metric`` drops to ``target_half_width`` (or the
    budget runs out, reported as ``converged=False``).

    Index-order consumption is what keeps the seed contract and the
    shard cache intact: trial ``t`` still draws from
    ``derive_seed(seed, *seed_keys, t)``, every completed batch is
    written through as an ordinary shard entry
    (``lookup_shard``/``store_shard``), and when the budget is fully
    consumed the assembled full-request entry is stored too — so
    adaptive runs, fixed runs, and resumed jobs all share one cache
    population.  Batches execute inline via ``backend.run(request,
    trial_indices=...)`` (the driver-thread path), each counted once in
    :func:`backend_run_count` unless served from cache.

    ``backend="auto"`` routes through the cost-model selector when a
    calibration profile exists (:func:`repro.sim.selector.plan_request`
    with its static fallback), so adaptive runs get the measured
    backend choice for free.
    """
    if metric not in ADAPTIVE_METRICS:
        raise InvalidParameterError(
            f"metric must be one of {', '.join(ADAPTIVE_METRICS)}, got {metric!r}"
        )
    if target_half_width <= 0:
        raise InvalidParameterError(
            f"target_half_width must be > 0, got {target_half_width}"
        )
    if not 0.0 < confidence < 1.0:
        raise InvalidParameterError(
            f"confidence must be in (0, 1), got {confidence}"
        )
    if batch_size < 1:
        raise InvalidParameterError(f"batch_size must be >= 1, got {batch_size}")
    if min_trials < 2:
        raise InvalidParameterError(f"min_trials must be >= 2, got {min_trials}")
    chosen = resolve_backend(
        request, plan_request(request, backend=backend, workers=1).backend
    )
    cache_backend = chosen.cache_name()
    use_cache = cache_enabled() if cache is None else cache
    cache_obj = get_cache() if use_cache else None

    full: Optional[Tuple[SearchOutcome, ...]] = None
    if cache_obj is not None:
        full = cache_obj.lookup(request, cache_backend)

    outcomes: List[SearchOutcome] = []
    batches_run = 0
    batches_cached = 0
    converged = False
    estimate, half_width = math.inf, math.inf
    start = 0
    while start < request.n_trials:
        stop = min(start + batch_size, request.n_trials)
        indices = range(start, stop)
        batch: Optional[Tuple[SearchOutcome, ...]] = None
        if full is not None:
            batch = tuple(full[start:stop])
            batches_cached += 1
        else:
            if cache_obj is not None:
                hit = cache_obj.lookup_shard(request, cache_backend, indices)
                if hit is not None:
                    batch = tuple(hit)
                    batches_cached += 1
            if batch is None:
                batch_start = time.perf_counter()
                batch = tuple(chosen.run(request, trial_indices=list(indices)))
                _count_execution(
                    request.algorithm.name,
                    chosen.name,
                    len(batch),
                    time.perf_counter() - batch_start,
                )
                _count_backend_runs(1)
                batches_run += 1
                if cache_obj is not None:
                    cache_obj.store_shard(request, cache_backend, indices, batch)
        outcomes.extend(batch)
        start = stop
        estimate, half_width = _adaptive_estimate(metric, outcomes, confidence)
        if len(outcomes) >= min_trials and half_width <= target_half_width:
            converged = True
            break

    if (
        cache_obj is not None
        and full is None
        and len(outcomes) == request.n_trials
    ):
        # Budget fully consumed: publish the assembled entry so future
        # fixed-n lookups of the same request hit in one probe.
        cache_obj.store(request, cache_backend, tuple(outcomes))

    return AdaptiveRun(
        result=SimulationResult(
            request=request, backend=chosen.name, outcomes=tuple(outcomes)
        ),
        metric=metric,
        target_half_width=target_half_width,
        confidence=confidence,
        estimate=estimate,
        half_width=half_width,
        trials_used=len(outcomes),
        max_trials=request.n_trials,
        batches_run=batches_run,
        batches_cached=batches_cached,
        converged=converged,
    )
