"""Pluggable simulation backends behind one request interface.

Four backends register by default:

* ``reference`` — the faithful step-level :class:`~repro.sim.engine.SearchEngine`;
  supports every algorithm, tracks ``M_steps`` and per-agent outcomes.
* ``closed_form`` — the per-trial vectorized ``fast_*`` simulators;
  bit-compatible with the historical experiment loops.
* ``batched`` — many colonies x many trials in one pass of the shared
  kernel core (:mod:`repro.sim.kernels`) on the NumPy namespace; the
  high-throughput CPU path for trial batches.
* ``accelerator`` — the same kernels bound to a device array library
  (CuPy or torch-CUDA); ``supports()`` declines cleanly when the host
  has no device, so ``auto`` falls back to ``batched``.

See :mod:`repro.sim.service` for the ``simulate()`` facade and
:mod:`repro.sim.backends.registry` for ``auto`` resolution.
"""

from repro.sim.backends.base import (
    AlgorithmSpec,
    BackendError,
    KNOWN_ALGORITHMS,
    SimulationBackend,
    SimulationRequest,
    SimulationResult,
    probe_request,
)
from repro.sim.backends.registry import (
    backend_names,
    get_backend,
    register_backend,
    registered_backends,
    resolve_backend,
)

__all__ = [
    "AlgorithmSpec",
    "BackendError",
    "KNOWN_ALGORITHMS",
    "SimulationBackend",
    "SimulationRequest",
    "SimulationResult",
    "backend_names",
    "get_backend",
    "probe_request",
    "register_backend",
    "registered_backends",
    "resolve_backend",
]
