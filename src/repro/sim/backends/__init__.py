"""Pluggable simulation backends behind one request interface.

Three backends register by default:

* ``reference`` — the faithful step-level :class:`~repro.sim.engine.SearchEngine`;
  supports every algorithm, tracks ``M_steps`` and per-agent outcomes.
* ``closed_form`` — the per-trial vectorized ``fast_*`` simulators;
  bit-compatible with the historical experiment loops.
* ``batched`` — many colonies x many trials in one NumPy pass; the
  high-throughput path for trial batches.

See :mod:`repro.sim.service` for the ``simulate()`` facade and
:mod:`repro.sim.backends.registry` for ``auto`` resolution.
"""

from repro.sim.backends.base import (
    AlgorithmSpec,
    BackendError,
    KNOWN_ALGORITHMS,
    SimulationBackend,
    SimulationRequest,
    SimulationResult,
    probe_request,
)
from repro.sim.backends.registry import (
    backend_names,
    get_backend,
    register_backend,
    registered_backends,
    resolve_backend,
)

__all__ = [
    "AlgorithmSpec",
    "BackendError",
    "KNOWN_ALGORITHMS",
    "SimulationBackend",
    "SimulationRequest",
    "SimulationResult",
    "backend_names",
    "get_backend",
    "probe_request",
    "register_backend",
    "registered_backends",
    "resolve_backend",
]
