"""The ``reference`` backend: the faithful step-level engine.

Supports every algorithm the repository defines (anything an
:class:`~repro.sim.backends.base.AlgorithmSpec` can build), tracks
``M_steps`` and per-agent outcomes, and is the ground truth the
vectorized backends are validated against.  It is also the only backend
honoring ``step_budget`` and per-step semantics, so requests that set a
step budget resolve here under ``auto``.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.grid.world import GridWorld
from repro.sim.backends.base import SimulationBackend, SimulationRequest
from repro.sim.engine import EngineConfig, SearchEngine
from repro.sim.metrics import SearchOutcome


class ReferenceBackend(SimulationBackend):
    """Per-trial execution on :class:`~repro.sim.engine.SearchEngine`."""

    name = "reference"
    trial_addressed = True

    def supports(self, request: SimulationRequest) -> bool:
        try:
            request.algorithm.build(request.n_agents)
        except Exception:
            return False
        return True

    def auto_priority(self, request: SimulationRequest) -> int:
        # Universal fallback; preferred only when step-level fidelity
        # was explicitly requested.
        return 100 if request.step_budget is not None else 0

    def calibration_trials(self) -> Tuple[int, int]:
        # Per-trial step loop: orders of magnitude slower than the
        # kernel backends, so selector micro-profiles sample the bare
        # minimum of trials that still fits a line.
        return (1, 3)

    def run(
        self,
        request: SimulationRequest,
        trial_indices: Optional[Sequence[int]] = None,
    ) -> Tuple[SearchOutcome, ...]:
        indices = range(request.n_trials) if trial_indices is None else trial_indices
        engine = SearchEngine(
            EngineConfig(
                move_budget=request.move_budget, step_budget=request.step_budget
            )
        )
        outcomes = []
        for trial_index in indices:
            algorithm = request.algorithm.build(request.n_agents)
            world = GridWorld(
                target=request.target,
                distance_bound=request.effective_distance_bound,
            )
            outcomes.append(
                engine.run(
                    algorithm,
                    request.n_agents,
                    world,
                    rng=request.trial_seed(trial_index),
                )
            )
        return tuple(outcomes)
