"""The ``accelerator`` backend: the batch kernels on a GPU array library.

Same kernels, different namespace: this backend runs the exact code of
the ``batched`` backend (:func:`repro.sim.kernels.run_family`) bound to
whatever device-backed :class:`~repro.sim.kernels.xp.ArrayNamespace`
the host offers — CuPy or torch-CUDA, probed once by
:func:`~repro.sim.kernels.xp.resolve_accelerator`.

Gating is the whole story:

* ``supports()`` declines every request when no device namespace is
  bound, so ``auto`` resolution falls back to ``batched`` cleanly on a
  CPU-only host — no ImportError, no half-configured backend;
  :meth:`support_reason` says *why* ("no device ...") for the CLI's
  ``backends`` table and the server's ``/v1/backends`` payload.
* ``auto_priority()`` outranks ``batched`` (40 vs 30) **only when the
  bound namespace is actually device-backed**.  Binding torch-CPU via
  ``REPRO_ANTS_ACCELERATOR=torch-cpu`` (how CI runs the parity suite
  without a GPU) keeps the priority below every CPU backend — the
  tuned NumPy path stays the auto pick, but explicit
  ``backend="accelerator"`` requests still execute end-to-end.

Like ``batched``, outcomes are equal in distribution to the reference
engine and deterministic per request *per namespace*; the device stream
differs from the NumPy stream, so cache keys include the backend name.

The cost-model selector (:mod:`repro.sim.selector`) treats this backend
specially when planning shard layouts: device state is process-local,
so plans that choose the accelerator always pin a single shard on the
driver process (``device`` carries :meth:`device_description`) instead
of splitting trials across pool workers.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.resilience.faults import maybe_inject
from repro.sim.backends.base import SimulationBackend, SimulationRequest
from repro.sim.backends.batched import KernelBackendMixin
from repro.sim.kernels.xp import (
    ArrayNamespace,
    accelerator_unavailable_reason,
    resolve_accelerator,
)
from repro.sim.metrics import SearchOutcome


class AcceleratorBackend(KernelBackendMixin, SimulationBackend):
    """Whole-batch vectorized simulation on a device array namespace."""

    name = "accelerator"

    def namespace(self) -> Optional[ArrayNamespace]:
        return resolve_accelerator()

    def run(
        self,
        request: SimulationRequest,
        trial_indices: Optional[Sequence[int]] = None,
    ) -> Tuple[SearchOutcome, ...]:
        # The device is probed on every execution — the seam where the
        # chaos harness simulates a device disappearing mid-job (a real
        # loss would surface from the array library at the same point).
        # A DeviceLostError here triggers the job layer's degradation
        # ladder onto the next supporting backend.
        maybe_inject("accelerator.probe")
        return super().run(request, trial_indices=trial_indices)

    def support_reason(self, request: SimulationRequest) -> Optional[str]:
        if self.namespace() is None:
            return accelerator_unavailable_reason() or "no device"
        return self._kernel_support_reason(request)

    def auto_priority(self, request: SimulationRequest) -> int:
        namespace = self.namespace()
        if namespace is None or not namespace.is_device_backed():
            # Host-only binding (torch-cpu override): stay selectable
            # explicitly, never shadow the tuned NumPy batch path.
            return 1
        return 40 if request.n_trials > 1 else 4

    def cache_name(self) -> str:
        # The outcome stream depends on the bound namespace/device
        # (numpy, torch-cpu, torch-cuda and cupy all draw differently),
        # so the cache identity carries the binding: flipping
        # REPRO_ANTS_ACCELERATOR or gaining a GPU can never replay a
        # previous binding's cached stream.
        namespace = self.namespace()
        if namespace is None:  # unservable anyway; keep the key stable
            return f"{self.name}:unbound"
        return f"{self.name}:{namespace.name}:{namespace.device}"

    def device_description(self) -> str:
        """Human-readable binding summary for CLI/server introspection."""
        namespace = self.namespace()
        if namespace is None:
            return accelerator_unavailable_reason() or "unbound"
        return f"{namespace.name}:{namespace.device}"
