"""The ``batched`` backend: many colonies x many trials in one NumPy pass.

The closed-form simulators vectorize over one colony's agents; this
backend flattens the whole request — ``n_trials`` colonies of
``n_agents`` agents — into one pool of (trial, agent) pairs and samples
*every active pair's next iteration in a single draw*.  For the sortie
algorithms, each round:

1. sample one L-sortie per active pair (vectorized geometric legs),
2. closed-form hit test against the target,
3. scatter per-colony minima (``np.minimum.at``) to update each
   trial's running best find,
4. retire pairs that found the target, exhausted the budget, or can no
   longer beat their own colony's best (the engine's
   retire-when-unimprovable policy, applied per colony).

The same pooled-pair scheme covers every trial-batch algorithm family:

* ``algorithm1`` / ``nonuniform`` — constant stop-probability sorties;
* ``uniform`` — per-pair phase state with vectorized phase-coin refills;
* ``doubly-uniform`` — per-pair (epoch, phase) state implementing the
  guess-``n``-by-doubling lift;
* ``random-walk`` — lockstep unit steps for the whole batch (every
  step is a move, so the first find in simulated time is the exact
  colony minimum per trial);
* ``feinerman`` — per-pair stage counters with closed-form spiral-index
  hit tests against each stage's quota.

Iterations are drawn from exactly the process distribution, so outcomes
are equal in distribution to the ``reference`` engine — the
integration tests check this statistically for every supported
algorithm.  Unlike the per-trial backends, the whole batch shares one
generator stream, so individual trials are not separately re-seedable
(request-level determinism still holds).

Diagnostics are per colony: each trial's outcome carries its own
:class:`~repro.sim.metrics.FastRunStats` — the iterations its own
pairs executed and the rounds in which it still had active pairs —
aggregated with ``np.bincount`` scatter-adds per round.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.sim.backends.base import SimulationBackend, SimulationRequest
from repro.sim.fast import _sample_sorties, _sortie_hits
from repro.sim.metrics import FastRunStats, SearchOutcome

_SENTINEL = np.iinfo(np.int64).max
_DEFAULT_MAX_PHASE = 50
_DEFAULT_MAX_EPOCH = 40
_DEFAULT_MAX_STAGE = 40
_FEINERMAN_C = 4.0
# Cap on trajectory elements per random-walk block, keeping the
# (pairs x block) scratch arrays memory-bounded for large batches.
_WALK_BLOCK_ELEMENTS = 1 << 19


class BatchedBackend(SimulationBackend):
    """Whole-batch vectorized simulation of the paper's algorithms."""

    name = "batched"

    _SUPPORTED = (
        "algorithm1",
        "nonuniform",
        "uniform",
        "doubly-uniform",
        "random-walk",
        "feinerman",
    )

    def supports(self, request: SimulationRequest) -> bool:
        return request.step_budget is None and (
            request.algorithm.name in self._SUPPORTED
        )

    def auto_priority(self, request: SimulationRequest) -> int:
        # The batch pass amortizes across trials, so it outranks every
        # per-trial backend for trial batches of any supported
        # algorithm; a single trial is better served by the closed-form
        # per-colony simulators.  (The reference engine still wins
        # requests with a step budget via supports() gating.)
        return 30 if request.n_trials > 1 else 5

    def run(
        self,
        request: SimulationRequest,
        trial_indices: Optional[Sequence[int]] = None,
    ) -> Tuple[SearchOutcome, ...]:
        indices = (
            list(range(request.n_trials))
            if trial_indices is None
            else list(trial_indices)
        )
        if not indices:
            return ()
        # One pooled stream for the whole batch, anchored at the first
        # trial's address so sharded runs stay deterministic.
        rng = np.random.default_rng(request.trial_seed(indices[0]))
        n_trials = len(indices)
        spec = request.algorithm
        if spec.name in ("algorithm1", "nonuniform"):
            stop_probability = self._stop_probability(request)
            best, finder, iters, rounds = _batch_lshape(
                stop_probability,
                request.n_agents,
                n_trials,
                request.target,
                rng,
                request.move_budget,
            )
        elif spec.name == "uniform":
            best, finder, iters, rounds = _batch_uniform(
                request.n_agents,
                spec.ell or 1,
                spec.K,
                n_trials,
                request.target,
                rng,
                request.move_budget,
                spec.max_phase or _DEFAULT_MAX_PHASE,
            )
        elif spec.name == "doubly-uniform":
            best, finder, iters, rounds = _batch_doubly_uniform(
                request.n_agents,
                spec.ell or 1,
                spec.K,
                n_trials,
                request.target,
                rng,
                request.move_budget,
            )
        elif spec.name == "random-walk":
            best, finder, iters, rounds = _batch_random_walk(
                request.n_agents,
                n_trials,
                request.target,
                rng,
                request.move_budget,
            )
        else:  # feinerman
            best, finder, iters, rounds = _batch_feinerman(
                request.n_agents,
                n_trials,
                request.target,
                rng,
                request.move_budget,
            )
        return tuple(
            _outcome(
                int(best[i]), int(finder[i]), request.n_agents,
                request.move_budget, FastRunStats(int(iters[i]), int(rounds[i])),
            )
            for i in range(n_trials)
        )

    @staticmethod
    def _stop_probability(request: SimulationRequest) -> float:
        if request.algorithm.name == "algorithm1":
            return 1.0 / request.algorithm.distance
        from repro.core.nonuniform import NonUniformSearch

        return NonUniformSearch(
            request.algorithm.distance, request.algorithm.ell or 1
        ).stop_probability


def _outcome(
    best: int, finder: int, n_agents: int, move_budget: int, stats: FastRunStats
) -> SearchOutcome:
    if best == _SENTINEL:
        return SearchOutcome(
            found=False, m_moves=None, m_steps=None, finder=None,
            n_agents=n_agents, move_budget=move_budget, stats=stats,
        )
    return SearchOutcome(
        found=True, m_moves=best, m_steps=0 if best == 0 else None,
        finder=finder, n_agents=n_agents, move_budget=move_budget, stats=stats,
    )


def _batch_state(n_trials: int, n_agents: int):
    """Fresh pooled-pair bookkeeping shared by every kernel."""
    pair_trial = np.repeat(np.arange(n_trials), n_agents)
    pair_agent = np.tile(np.arange(n_agents), n_trials)
    best = np.full(n_trials, _SENTINEL, dtype=np.int64)
    best_finder = np.full(n_trials, -1, dtype=np.int64)
    trial_iterations = np.zeros(n_trials, dtype=np.int64)
    trial_rounds = np.zeros(n_trials, dtype=np.int64)
    return pair_trial, pair_agent, best, best_finder, trial_iterations, trial_rounds


def _origin_batch(n_trials: int):
    """Every colony finds an origin target after zero moves."""
    zeros = np.zeros(n_trials, dtype=np.int64)
    return zeros, zeros.copy(), zeros.copy(), zeros.copy()


def _count_round(trial_iterations, trial_rounds, pair_trial, n_trials, weight=1):
    """Per-colony diagnostics: scatter-add this round's active pairs."""
    counts = np.bincount(pair_trial, minlength=n_trials)
    trial_iterations += counts * weight
    trial_rounds += counts > 0


def _score_hits(best, best_finder, pair_trial, pair_agent, totals, eligible):
    """Fold eligible finds into each colony's running minimum."""
    if np.any(eligible):
        np.minimum.at(best, pair_trial[eligible], totals[eligible])
        improved = eligible & (totals == best[pair_trial])
        best_finder[pair_trial[improved]] = pair_agent[improved]


def _batch_lshape(
    stop_probability: float,
    n_agents: int,
    n_trials: int,
    target,
    rng: np.random.Generator,
    move_budget: int,
):
    """All trials of a constant-stop-probability sortie algorithm at once."""
    if target == (0, 0):
        return _origin_batch(n_trials)
    (pair_trial, pair_agent, best, best_finder,
     trial_iterations, trial_rounds) = _batch_state(n_trials, n_agents)
    cumulative = np.zeros(n_trials * n_agents, dtype=np.int64)

    expected_len = max(1.0, 2.0 * (1.0 / stop_probability - 1.0))
    max_rounds = int(200 * (move_budget / expected_len + 1)) + 10_000
    for _ in range(max_rounds):
        if pair_trial.size == 0:
            break
        _count_round(trial_iterations, trial_rounds, pair_trial, n_trials)
        sv, lv, sh, lh = _sample_sorties(rng, stop_probability, pair_trial.size)
        hit, moves_at_hit = _sortie_hits(target, sv, lv, sh, lh)
        totals = cumulative + moves_at_hit
        eligible = hit & (totals <= move_budget) & (totals < best[pair_trial])
        _score_hits(best, best_finder, pair_trial, pair_agent, totals, eligible)
        survivors = ~hit
        cumulative = (cumulative + lv + lh)[survivors]
        pair_trial = pair_trial[survivors]
        pair_agent = pair_agent[survivors]
        limit = np.minimum(move_budget, best[pair_trial])
        keep = cumulative < limit
        cumulative = cumulative[keep]
        pair_trial = pair_trial[keep]
        pair_agent = pair_agent[keep]
    return best, best_finder, trial_iterations, trial_rounds


def _batch_uniform(
    n_agents: int,
    ell: int,
    K: int,
    n_trials: int,
    target,
    rng: np.random.Generator,
    move_budget: int,
    max_phase: int,
):
    """All trials of Algorithm 5 at once.

    Per-pair state is ``(phase, calls_left, cumulative)``; phase coins
    are redrawn vectorized (``Geometric(1/rho_i) - 1`` sortie calls per
    phase) whenever a pair exhausts its calls, and every active pair
    contributes one sortie per round with its own phase's stop
    probability — ``_sample_sorties`` accepts the per-pair vector.
    """
    if target == (0, 0):
        return _origin_batch(n_trials)
    discount = math.floor(math.log2(n_agents) / ell) if n_agents > 1 else 0
    (pair_trial, pair_agent, best, best_finder,
     trial_iterations, trial_rounds) = _batch_state(n_trials, n_agents)
    cumulative = np.zeros(n_trials * n_agents, dtype=np.int64)
    phase = np.zeros(n_trials * n_agents, dtype=np.int64)
    calls_left = np.zeros(n_trials * n_agents, dtype=np.int64)

    phase1_len = max(1.0, 2.0 * (2.0**ell - 1.0))
    max_rounds = int(200 * (move_budget / phase1_len + 1)) + 10_000
    for _ in range(max_rounds):
        if pair_trial.size == 0:
            break
        # Refill exhausted phase coins; pairs that run out of phases
        # retire below via the `alive` mask.
        need = calls_left <= 0
        while np.any(need):
            phase[need] += 1
            need &= phase <= max_phase
            if not np.any(need):
                break
            exponent = K + np.maximum(phase[need] - discount, 0)
            rho = np.exp2(exponent.astype(np.float64) * ell)
            calls_left[need] = rng.geometric(1.0 / rho) - 1
            need &= calls_left <= 0
        alive = phase <= max_phase
        if not np.all(alive):
            pair_trial = pair_trial[alive]
            pair_agent = pair_agent[alive]
            cumulative = cumulative[alive]
            phase = phase[alive]
            calls_left = calls_left[alive]
            if pair_trial.size == 0:
                break
        _count_round(trial_iterations, trial_rounds, pair_trial, n_trials)
        stop_p = np.exp2(-(phase.astype(np.float64) * ell))
        sv, lv, sh, lh = _sample_sorties(rng, stop_p, pair_trial.size)
        hit, moves_at_hit = _sortie_hits(target, sv, lv, sh, lh)
        totals = cumulative + moves_at_hit
        eligible = hit & (totals <= move_budget) & (totals < best[pair_trial])
        _score_hits(best, best_finder, pair_trial, pair_agent, totals, eligible)
        survivors = ~hit
        cumulative = (cumulative + lv + lh)[survivors]
        calls_left = calls_left[survivors] - 1
        phase = phase[survivors]
        pair_trial = pair_trial[survivors]
        pair_agent = pair_agent[survivors]
        limit = np.minimum(move_budget, best[pair_trial])
        keep = cumulative < limit
        cumulative = cumulative[keep]
        calls_left = calls_left[keep]
        phase = phase[keep]
        pair_trial = pair_trial[keep]
        pair_agent = pair_agent[keep]
    return best, best_finder, trial_iterations, trial_rounds


def _batch_doubly_uniform(
    n_agents: int,
    ell: int,
    K: int,
    n_trials: int,
    target,
    rng: np.random.Generator,
    move_budget: int,
    max_epoch: int = _DEFAULT_MAX_EPOCH,
):
    """All trials of the doubly uniform search at once.

    Mirrors :func:`repro.sim.fast.fast_doubly_uniform`: epoch ``j``
    commits to the guess ``n_j = 2^j`` and runs phases ``1..j`` of
    Algorithm 5 under that guess.  Per-pair state is ``(epoch, phase,
    calls_left, cumulative)``; when a pair's phase coin runs out it
    advances to the next phase, rolling over to ``(epoch + 1, phase 1)``
    past the epoch's phase range.  The phase-coin exponent under guess
    ``n_j`` is ``K + max(phase - floor(j / ell), 0)`` (the vectorized
    form of :func:`repro.core.uniform.phase_coin_exponent` with
    ``n = 2^j``).
    """
    if target == (0, 0):
        return _origin_batch(n_trials)
    (pair_trial, pair_agent, best, best_finder,
     trial_iterations, trial_rounds) = _batch_state(n_trials, n_agents)
    cumulative = np.zeros(n_trials * n_agents, dtype=np.int64)
    epoch = np.ones(n_trials * n_agents, dtype=np.int64)
    phase = np.zeros(n_trials * n_agents, dtype=np.int64)
    calls_left = np.zeros(n_trials * n_agents, dtype=np.int64)

    phase1_len = max(1.0, 2.0 * (2.0**ell - 1.0))
    max_rounds = int(200 * (move_budget / phase1_len + 1)) + 10_000
    for _ in range(max_rounds):
        if pair_trial.size == 0:
            break
        need = calls_left <= 0
        while np.any(need):
            phase[need] += 1
            rolled = need & (phase > epoch)
            if np.any(rolled):
                epoch[rolled] += 1
                phase[rolled] = 1
            need &= epoch <= max_epoch
            if not np.any(need):
                break
            exponent = K + np.maximum(phase[need] - epoch[need] // ell, 0)
            rho = np.exp2(exponent.astype(np.float64) * ell)
            calls_left[need] = rng.geometric(1.0 / rho) - 1
            need &= calls_left <= 0
        alive = epoch <= max_epoch
        if not np.all(alive):
            pair_trial = pair_trial[alive]
            pair_agent = pair_agent[alive]
            cumulative = cumulative[alive]
            epoch = epoch[alive]
            phase = phase[alive]
            calls_left = calls_left[alive]
            if pair_trial.size == 0:
                break
        _count_round(trial_iterations, trial_rounds, pair_trial, n_trials)
        stop_p = np.exp2(-(phase.astype(np.float64) * ell))
        sv, lv, sh, lh = _sample_sorties(rng, stop_p, pair_trial.size)
        hit, moves_at_hit = _sortie_hits(target, sv, lv, sh, lh)
        totals = cumulative + moves_at_hit
        eligible = hit & (totals <= move_budget) & (totals < best[pair_trial])
        _score_hits(best, best_finder, pair_trial, pair_agent, totals, eligible)
        survivors = ~hit
        cumulative = (cumulative + lv + lh)[survivors]
        calls_left = calls_left[survivors] - 1
        epoch = epoch[survivors]
        phase = phase[survivors]
        pair_trial = pair_trial[survivors]
        pair_agent = pair_agent[survivors]
        limit = np.minimum(move_budget, best[pair_trial])
        keep = cumulative < limit
        cumulative = cumulative[keep]
        calls_left = calls_left[keep]
        epoch = epoch[keep]
        phase = phase[keep]
        pair_trial = pair_trial[keep]
        pair_agent = pair_agent[keep]
    return best, best_finder, trial_iterations, trial_rounds


_WALK_STEPS = np.array([(0, 1), (0, -1), (-1, 0), (1, 0)], dtype=np.int64)


def _batch_random_walk(
    n_agents: int,
    n_trials: int,
    target,
    rng: np.random.Generator,
    move_budget: int,
):
    """All trials of the uniform random walk at once, in lockstep.

    Every step is a move, so all pairs' move counts advance together
    and the first find in simulated time is the exact colony minimum —
    a trial retires the moment any of its pairs hits.  Steps are
    simulated in blocks, with the block length bounded so the
    ``(pairs x block)`` trajectory scratch stays memory-bounded.
    """
    if target == (0, 0):
        return _origin_batch(n_trials)
    (pair_trial, pair_agent, best, best_finder,
     trial_iterations, trial_rounds) = _batch_state(n_trials, n_agents)
    positions = np.zeros((n_trials * n_agents, 2), dtype=np.int64)
    x, y = target
    moves_done = 0
    while moves_done < move_budget and pair_trial.size:
        # The scratch is (pairs x block); bounding their product keeps
        # even huge pooled batches at a few MB per round (block
        # degrades to 1 step when the pair pool alone reaches the cap).
        block = min(
            move_budget - moves_done,
            max(1, _WALK_BLOCK_ELEMENTS // pair_trial.size),
        )
        _count_round(
            trial_iterations, trial_rounds, pair_trial, n_trials, weight=block
        )
        choices = rng.integers(0, 4, size=(pair_trial.size, block))
        trajectory = positions[:, None, :] + np.cumsum(
            _WALK_STEPS[choices], axis=1
        )
        hits = (trajectory[:, :, 0] == x) & (trajectory[:, :, 1] == y)
        pair_hit = hits.any(axis=1)
        if np.any(pair_hit):
            step_of_hit = np.where(pair_hit, hits.argmax(axis=1), block)
            totals = moves_done + step_of_hit + 1
            _score_hits(
                best, best_finder, pair_trial, pair_agent, totals, pair_hit
            )
        positions = trajectory[:, -1, :]
        moves_done += block
        # Lockstep: any later find is later in time, so finished
        # colonies retire wholesale.
        keep = best[pair_trial] == _SENTINEL
        positions = positions[keep]
        pair_trial = pair_trial[keep]
        pair_agent = pair_agent[keep]
    return best, best_finder, trial_iterations, trial_rounds


def _spiral_indices(dx: np.ndarray, dy: np.ndarray) -> np.ndarray:
    """Vectorized :func:`repro.baselines.spiral.spiral_index` in float64.

    Float avoids int64 overflow for offsets beyond ring ~2^31 (late
    Feinerman stages jump that far); any index too large for exact
    float representation is far beyond every realistic quota/budget, so
    the comparisons downstream stay exact where they matter.
    """
    fx = dx.astype(np.float64)
    fy = dy.astype(np.float64)
    r = np.maximum(np.abs(fx), np.abs(fy))
    base = (2.0 * r - 1.0) ** 2
    index = np.where(
        (fx == r) & (fy > -r),
        base + fy + r - 1.0,
        np.where(
            fy == r,
            base + 2.0 * r + (r - 1.0 - fx),
            np.where(
                fx == -r,
                base + 4.0 * r + (r - 1.0 - fy),
                base + 6.0 * r + (fx + r - 1.0),
            ),
        ),
    )
    return np.where(r == 0, 0.0, index)


def _batch_feinerman(
    n_agents: int,
    n_trials: int,
    target,
    rng: np.random.Generator,
    move_budget: int,
    c: float = _FEINERMAN_C,
    max_stage: int = _DEFAULT_MAX_STAGE,
):
    """All trials of the Feinerman et al. baseline at once.

    Mirrors :func:`repro.baselines.feinerman.fast_feinerman`: per
    round, each active pair draws its stage's uniform center, and a
    closed-form spiral-index test decides whether the quota-bounded
    spiral around that center visits the target.  Quotas and spiral
    indices are computed in float64 and clipped to ``move_budget + 1``
    before the integer accounting: any clipped value already exceeds
    every eligibility limit, so outcomes are unaffected while late
    stages (whose raw quotas overflow int64) stay representable.
    """
    if target == (0, 0):
        return _origin_batch(n_trials)
    (pair_trial, pair_agent, best, best_finder,
     trial_iterations, trial_rounds) = _batch_state(n_trials, n_agents)
    cumulative = np.zeros(n_trials * n_agents, dtype=np.int64)
    stages = np.ones(n_trials * n_agents, dtype=np.int64)

    while pair_trial.size:
        _count_round(trial_iterations, trial_rounds, pair_trial, n_trials)
        radii = np.int64(2) ** stages  # max_stage <= 40 keeps this exact
        scale = np.exp2(stages.astype(np.float64))
        quota_f = np.ceil(c * (scale * scale / n_agents + scale))
        quota = np.minimum(quota_f, move_budget + 1).astype(np.int64)
        centers_x = rng.integers(-radii, radii + 1)
        centers_y = rng.integers(-radii, radii + 1)
        walk_moves = np.abs(centers_x) + np.abs(centers_y)
        indices_f = _spiral_indices(target[0] - centers_x, target[1] - centers_y)
        hit = indices_f <= quota_f
        indices = np.minimum(indices_f, move_budget + 1).astype(np.int64)
        totals = cumulative + walk_moves + indices
        eligible = hit & (totals <= move_budget) & (totals < best[pair_trial])
        _score_hits(best, best_finder, pair_trial, pair_agent, totals, eligible)
        survivors = ~hit
        cumulative = cumulative[survivors] + (walk_moves + quota)[survivors]
        stages = stages[survivors] + 1
        pair_trial = pair_trial[survivors]
        pair_agent = pair_agent[survivors]
        limit = np.minimum(move_budget, best[pair_trial])
        keep = (cumulative < limit) & (stages <= max_stage)
        cumulative = cumulative[keep]
        stages = stages[keep]
        pair_trial = pair_trial[keep]
        pair_agent = pair_agent[keep]
    return best, best_finder, trial_iterations, trial_rounds
