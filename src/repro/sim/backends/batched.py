"""The ``batched`` backend: many colonies x many trials in one kernel pass.

The closed-form simulators vectorize over one colony's agents; this
backend flattens the whole request — ``n_trials`` colonies of
``n_agents`` agents — into one pool of (trial, agent) pairs and samples
*every active pair's next iteration in a single draw*.  Since the
kernel extraction the actual math lives in :mod:`repro.sim.kernels`:
six per-family kernels written against the array-namespace shim, which
this backend binds to **NumPy**.  (The ``accelerator`` backend binds
the same kernels to a device namespace; see
:mod:`repro.sim.backends.accelerator`.)

Iterations are drawn from exactly the process distribution, so outcomes
are equal in distribution to the ``reference`` engine — the
integration tests and the golden KS gates check this statistically for
every supported algorithm.  Unlike the per-trial backends, the whole
batch shares one generator stream, so individual trials are not
separately re-seedable (request-level determinism still holds).

Diagnostics are per colony: each trial's outcome carries its own
:class:`~repro.sim.metrics.FastRunStats` — the iterations its own
pairs executed and the rounds in which it still had active pairs.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.sim.backends.base import SimulationBackend, SimulationRequest
from repro.sim.kernels import SENTINEL, numpy_namespace, run_family
from repro.sim.kernels.xp import ArrayNamespace
from repro.sim.metrics import FastRunStats, SearchOutcome

_SENTINEL = SENTINEL

#: Families with a batch kernel (see :func:`repro.sim.kernels.run_family`).
BATCHED_ALGORITHMS = (
    "algorithm1",
    "nonuniform",
    "uniform",
    "doubly-uniform",
    "random-walk",
    "feinerman",
)


class KernelBackendMixin:
    """Shared request -> kernel -> outcome plumbing for kernel backends.

    Subclasses provide :meth:`namespace`; everything else — the
    request-gating reasons, seeding the pooled stream, dispatching to
    the family kernel, converting the result arrays into per-trial
    :class:`SearchOutcome` records — is identical between the NumPy
    and device bindings.
    """

    _SUPPORTED = BATCHED_ALGORITHMS

    def namespace(self) -> ArrayNamespace:
        raise NotImplementedError

    def _kernel_support_reason(
        self, request: SimulationRequest
    ) -> Optional[str]:
        """The request-shaped gating shared by every kernel binding."""
        if request.step_budget is not None:
            return "step_budget set (only reference tracks M_steps)"
        if request.algorithm.name not in self._SUPPORTED:
            return f"no batch kernel for algorithm {request.algorithm.name!r}"
        return None

    def supports(self, request: SimulationRequest) -> bool:
        return self.support_reason(request) is None

    def calibration_trials(self) -> Tuple[int, int]:
        # The batch pass amortizes setup across trials; probe with
        # enough of them that the selector's fitted per-trial cost
        # reflects the amortized regime, not kernel warm-up.
        return (16, 64)

    def run(
        self,
        request: SimulationRequest,
        trial_indices: Optional[Sequence[int]] = None,
    ) -> Tuple[SearchOutcome, ...]:
        return self._run_kernels(request, trial_indices)

    def _run_kernels(
        self,
        request: SimulationRequest,
        trial_indices: Optional[Sequence[int]],
    ) -> Tuple[SearchOutcome, ...]:
        indices = (
            list(range(request.n_trials))
            if trial_indices is None
            else list(trial_indices)
        )
        if not indices:
            return ()
        xp = self.namespace()
        # One pooled stream for the whole batch, anchored at the first
        # trial's address so sharded runs stay deterministic.
        rng = xp.rng(request.trial_seed(indices[0]))
        n_trials = len(indices)
        best, finder, iters, rounds = (
            xp.to_numpy(array)
            for array in run_family(xp, rng, request, n_trials)
        )
        return tuple(
            _outcome(
                int(best[i]), int(finder[i]), request.n_agents,
                request.move_budget,
                FastRunStats(int(iters[i]), int(rounds[i])),
            )
            for i in range(n_trials)
        )


class BatchedBackend(KernelBackendMixin, SimulationBackend):
    """Whole-batch vectorized simulation on the NumPy namespace."""

    name = "batched"

    def namespace(self) -> ArrayNamespace:
        return numpy_namespace()

    def support_reason(self, request: SimulationRequest) -> Optional[str]:
        return self._kernel_support_reason(request)

    def auto_priority(self, request: SimulationRequest) -> int:
        # The batch pass amortizes across trials, so it outranks every
        # per-trial backend for trial batches of any supported
        # algorithm; a single trial is better served by the closed-form
        # per-colony simulators.  (The reference engine still wins
        # requests with a step budget via supports() gating.)
        return 30 if request.n_trials > 1 else 5


def _outcome(
    best: int, finder: int, n_agents: int, move_budget: int, stats: FastRunStats
) -> SearchOutcome:
    if best == _SENTINEL:
        return SearchOutcome(
            found=False, m_moves=None, m_steps=None, finder=None,
            n_agents=n_agents, move_budget=move_budget, stats=stats,
        )
    return SearchOutcome(
        found=True, m_moves=best, m_steps=0 if best == 0 else None,
        finder=finder, n_agents=n_agents, move_budget=move_budget, stats=stats,
    )
