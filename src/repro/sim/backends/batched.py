"""The ``batched`` backend: many colonies x many trials in one NumPy pass.

The closed-form simulators vectorize over one colony's agents; this
backend flattens the whole request — ``n_trials`` colonies of
``n_agents`` agents — into one pool of (trial, agent) pairs and samples
*every active pair's next sortie in a single draw*.  Each round:

1. sample one L-sortie per active pair (vectorized geometric legs),
2. closed-form hit test against the target,
3. scatter per-colony minima (``np.minimum.at``) to update each
   trial's running best find,
4. retire pairs that found the target, exhausted the budget, or can no
   longer beat their own colony's best (the engine's
   retire-when-unimprovable policy, applied per colony).

Sorties are drawn from exactly the process distribution, so outcomes
are equal in distribution to the ``reference`` engine — the
integration tests check this statistically for Algorithm 1,
Non-Uniform-Search, and Algorithm 5.  Unlike the per-trial backends,
the whole batch shares one generator stream, so individual trials are
not separately re-seedable (request-level determinism still holds).
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.sim.backends.base import SimulationBackend, SimulationRequest
from repro.sim.fast import _sample_sorties, _sortie_hits
from repro.sim.metrics import FastRunStats, SearchOutcome

_SENTINEL = np.iinfo(np.int64).max
_DEFAULT_MAX_PHASE = 50


class BatchedBackend(SimulationBackend):
    """Whole-batch vectorized simulation of the paper's sortie algorithms."""

    name = "batched"

    _SUPPORTED = ("algorithm1", "nonuniform", "uniform")

    def supports(self, request: SimulationRequest) -> bool:
        return request.step_budget is None and (
            request.algorithm.name in self._SUPPORTED
        )

    def auto_priority(self, request: SimulationRequest) -> int:
        # The batch pass amortizes across trials; a single trial is
        # better served by the closed-form per-colony simulators.
        return 20 if request.n_trials > 1 else 5

    def run(
        self,
        request: SimulationRequest,
        trial_indices: Optional[Sequence[int]] = None,
    ) -> Tuple[SearchOutcome, ...]:
        indices = (
            list(range(request.n_trials))
            if trial_indices is None
            else list(trial_indices)
        )
        if not indices:
            return ()
        # One pooled stream for the whole batch, anchored at the first
        # trial's address so sharded runs stay deterministic.
        rng = np.random.default_rng(request.trial_seed(indices[0]))
        n_trials = len(indices)
        spec = request.algorithm
        if spec.name in ("algorithm1", "nonuniform"):
            stop_probability = self._stop_probability(request)
            best, finder, stats = _batch_lshape(
                stop_probability,
                request.n_agents,
                n_trials,
                request.target,
                rng,
                request.move_budget,
            )
        else:
            best, finder, stats = _batch_uniform(
                request.n_agents,
                spec.ell or 1,
                spec.K,
                n_trials,
                request.target,
                rng,
                request.move_budget,
                spec.max_phase or _DEFAULT_MAX_PHASE,
            )
        return tuple(
            _outcome(
                int(best[i]), int(finder[i]), request.n_agents,
                request.move_budget, stats,
            )
            for i in range(n_trials)
        )

    @staticmethod
    def _stop_probability(request: SimulationRequest) -> float:
        if request.algorithm.name == "algorithm1":
            return 1.0 / request.algorithm.distance
        from repro.core.nonuniform import NonUniformSearch

        return NonUniformSearch(
            request.algorithm.distance, request.algorithm.ell or 1
        ).stop_probability


def _outcome(
    best: int, finder: int, n_agents: int, move_budget: int, stats: FastRunStats
) -> SearchOutcome:
    if best == _SENTINEL:
        return SearchOutcome(
            found=False, m_moves=None, m_steps=None, finder=None,
            n_agents=n_agents, move_budget=move_budget, stats=stats,
        )
    return SearchOutcome(
        found=True, m_moves=best, m_steps=0 if best == 0 else None,
        finder=finder, n_agents=n_agents, move_budget=move_budget, stats=stats,
    )


def _batch_lshape(
    stop_probability: float,
    n_agents: int,
    n_trials: int,
    target,
    rng: np.random.Generator,
    move_budget: int,
):
    """All trials of a constant-stop-probability sortie algorithm at once."""
    if target == (0, 0):
        return (
            np.zeros(n_trials, dtype=np.int64),
            np.zeros(n_trials, dtype=np.int64),
            FastRunStats(0, 0),
        )
    pair_trial = np.repeat(np.arange(n_trials), n_agents)
    pair_agent = np.tile(np.arange(n_agents), n_trials)
    cumulative = np.zeros(n_trials * n_agents, dtype=np.int64)
    best = np.full(n_trials, _SENTINEL, dtype=np.int64)
    best_finder = np.full(n_trials, -1, dtype=np.int64)

    expected_len = max(1.0, 2.0 * (1.0 / stop_probability - 1.0))
    max_rounds = int(200 * (move_budget / expected_len + 1)) + 10_000
    rounds = 0
    iterations = 0
    for _ in range(max_rounds):
        if pair_trial.size == 0:
            break
        rounds += 1
        count = pair_trial.size
        iterations += count
        sv, lv, sh, lh = _sample_sorties(rng, stop_probability, count)
        hit, moves_at_hit = _sortie_hits(target, sv, lv, sh, lh)
        totals = cumulative + moves_at_hit
        eligible = hit & (totals <= move_budget) & (totals < best[pair_trial])
        if np.any(eligible):
            np.minimum.at(best, pair_trial[eligible], totals[eligible])
            improved = eligible & (totals == best[pair_trial])
            best_finder[pair_trial[improved]] = pair_agent[improved]
        survivors = ~hit
        cumulative = (cumulative + lv + lh)[survivors]
        pair_trial = pair_trial[survivors]
        pair_agent = pair_agent[survivors]
        limit = np.minimum(move_budget, best[pair_trial])
        keep = cumulative < limit
        cumulative = cumulative[keep]
        pair_trial = pair_trial[keep]
        pair_agent = pair_agent[keep]
    return best, best_finder, FastRunStats(iterations, rounds)


def _batch_uniform(
    n_agents: int,
    ell: int,
    K: int,
    n_trials: int,
    target,
    rng: np.random.Generator,
    move_budget: int,
    max_phase: int,
):
    """All trials of Algorithm 5 at once.

    Per-pair state is ``(phase, calls_left, cumulative)``; phase coins
    are redrawn vectorized (``Geometric(1/rho_i) - 1`` sortie calls per
    phase) whenever a pair exhausts its calls, and every active pair
    contributes one sortie per round with its own phase's stop
    probability — ``_sample_sorties`` accepts the per-pair vector.
    """
    if target == (0, 0):
        return (
            np.zeros(n_trials, dtype=np.int64),
            np.zeros(n_trials, dtype=np.int64),
            FastRunStats(0, 0),
        )
    discount = math.floor(math.log2(n_agents) / ell) if n_agents > 1 else 0
    pair_trial = np.repeat(np.arange(n_trials), n_agents)
    pair_agent = np.tile(np.arange(n_agents), n_trials)
    cumulative = np.zeros(n_trials * n_agents, dtype=np.int64)
    phase = np.zeros(n_trials * n_agents, dtype=np.int64)
    calls_left = np.zeros(n_trials * n_agents, dtype=np.int64)
    best = np.full(n_trials, _SENTINEL, dtype=np.int64)
    best_finder = np.full(n_trials, -1, dtype=np.int64)

    phase1_len = max(1.0, 2.0 * (2.0**ell - 1.0))
    max_rounds = int(200 * (move_budget / phase1_len + 1)) + 10_000
    rounds = 0
    iterations = 0
    for _ in range(max_rounds):
        if pair_trial.size == 0:
            break
        rounds += 1
        # Refill exhausted phase coins; pairs that run out of phases
        # retire below via the `alive` mask.
        need = calls_left <= 0
        while np.any(need):
            phase[need] += 1
            need &= phase <= max_phase
            if not np.any(need):
                break
            exponent = K + np.maximum(phase[need] - discount, 0)
            rho = np.exp2(exponent.astype(np.float64) * ell)
            calls_left[need] = rng.geometric(1.0 / rho) - 1
            need &= calls_left <= 0
        alive = phase <= max_phase
        if not np.all(alive):
            pair_trial = pair_trial[alive]
            pair_agent = pair_agent[alive]
            cumulative = cumulative[alive]
            phase = phase[alive]
            calls_left = calls_left[alive]
            if pair_trial.size == 0:
                break
        count = pair_trial.size
        iterations += count
        stop_p = np.exp2(-(phase.astype(np.float64) * ell))
        sv, lv, sh, lh = _sample_sorties(rng, stop_p, count)
        hit, moves_at_hit = _sortie_hits(target, sv, lv, sh, lh)
        totals = cumulative + moves_at_hit
        eligible = hit & (totals <= move_budget) & (totals < best[pair_trial])
        if np.any(eligible):
            np.minimum.at(best, pair_trial[eligible], totals[eligible])
            improved = eligible & (totals == best[pair_trial])
            best_finder[pair_trial[improved]] = pair_agent[improved]
        survivors = ~hit
        cumulative = (cumulative + lv + lh)[survivors]
        calls_left = calls_left[survivors] - 1
        phase = phase[survivors]
        pair_trial = pair_trial[survivors]
        pair_agent = pair_agent[survivors]
        limit = np.minimum(move_budget, best[pair_trial])
        keep = cumulative < limit
        cumulative = cumulative[keep]
        calls_left = calls_left[keep]
        phase = phase[keep]
        pair_trial = pair_trial[keep]
        pair_agent = pair_agent[keep]
    return best, best_finder, FastRunStats(iterations, rounds)
