"""The ``closed_form`` backend: per-trial vectorized simulators.

Absorbs the historical ``fast_*`` entry points behind the uniform
request interface: each supported algorithm maps to the closed-form
simulator in :mod:`repro.sim.fast` (or the Feinerman one in
:mod:`repro.baselines.feinerman`).  Trial ``t`` draws from
``derive_seed(seed, *seed_keys, t)`` with the same generator the
hand-rolled experiment loops used, so migrating a caller to this
backend preserves its exact random stream and therefore its exact
numbers.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.sim.backends.base import SimulationBackend, SimulationRequest
from repro.sim.metrics import SearchOutcome


def _run_algorithm1(request: SimulationRequest, rng: np.random.Generator):
    from repro.sim.fast import fast_algorithm1

    return fast_algorithm1(
        request.algorithm.distance,
        request.n_agents,
        request.target,
        rng,
        request.move_budget,
    )


def _run_nonuniform(request: SimulationRequest, rng: np.random.Generator):
    from repro.sim.fast import fast_nonuniform

    return fast_nonuniform(
        request.algorithm.distance,
        request.algorithm.ell or 1,
        request.n_agents,
        request.target,
        rng,
        request.move_budget,
    )


def _run_uniform(request: SimulationRequest, rng: np.random.Generator):
    from repro.sim.fast import fast_uniform

    kwargs = {}
    if request.algorithm.max_phase is not None:
        kwargs["max_phase"] = request.algorithm.max_phase
    return fast_uniform(
        request.n_agents,
        request.algorithm.ell or 1,
        request.algorithm.K,
        request.target,
        rng,
        request.move_budget,
        **kwargs,
    )


def _run_doubly_uniform(request: SimulationRequest, rng: np.random.Generator):
    from repro.sim.fast import fast_doubly_uniform

    return fast_doubly_uniform(
        request.n_agents,
        request.algorithm.ell or 1,
        request.algorithm.K,
        request.target,
        rng,
        request.move_budget,
    )


def _run_random_walk(request: SimulationRequest, rng: np.random.Generator):
    from repro.sim.fast import fast_random_walk

    return fast_random_walk(
        request.n_agents, request.target, rng, request.move_budget
    )


def _run_feinerman(request: SimulationRequest, rng: np.random.Generator):
    from repro.baselines.feinerman import fast_feinerman

    return fast_feinerman(
        request.n_agents, request.target, rng, request.move_budget
    )


_SIMULATORS: Dict[
    str, Callable[[SimulationRequest, np.random.Generator], SearchOutcome]
] = {
    "algorithm1": _run_algorithm1,
    "nonuniform": _run_nonuniform,
    "uniform": _run_uniform,
    "doubly-uniform": _run_doubly_uniform,
    "random-walk": _run_random_walk,
    "feinerman": _run_feinerman,
}


class ClosedFormBackend(SimulationBackend):
    """Dispatch to the closed-form ``fast_*`` simulators, one trial at a time."""

    name = "closed_form"
    trial_addressed = True

    def supports(self, request: SimulationRequest) -> bool:
        return self.support_reason(request) is None

    def support_reason(self, request: SimulationRequest) -> Optional[str]:
        if request.step_budget is not None:
            # The fast simulators advance whole iterations and cannot
            # enforce a Markov-step budget.
            return "step_budget set (only reference tracks M_steps)"
        if request.algorithm.name not in _SIMULATORS:
            return (
                f"no closed-form simulator for algorithm "
                f"{request.algorithm.name!r}"
            )
        return None

    def auto_priority(self, request: SimulationRequest) -> int:
        # Best single-trial choice; multi-trial batches go to `batched`
        # when it supports the algorithm.
        return 10

    def run(
        self,
        request: SimulationRequest,
        trial_indices: Optional[Sequence[int]] = None,
    ) -> Tuple[SearchOutcome, ...]:
        simulate_one = _SIMULATORS[request.algorithm.name]
        indices = range(request.n_trials) if trial_indices is None else trial_indices
        return tuple(
            simulate_one(
                request, np.random.default_rng(request.trial_seed(trial_index))
            )
            for trial_index in indices
        )
