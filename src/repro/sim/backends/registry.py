"""Backend registry and ``auto`` resolution.

Backends register under a short name (``reference``, ``closed_form``,
``batched``, ``accelerator``).  Callers address them by name or pass
``"auto"`` and let :func:`resolve_backend` pick the best supporting
backend: each backend reports an
:meth:`~repro.sim.backends.base.SimulationBackend.auto_priority`
for the concrete request, so the device-bound accelerator (p40, only
when real hardware is present — otherwise its ``supports()`` declines
outright) outranks the vectorized whole-batch backend (p30) on trial
batches, the closed-form simulators (p10) win single trials, and the
faithful engine is the universal fallback (p100 when a step budget
demands it, p0 otherwise).  ``repro-ants backends`` prints these
numbers per probed request, along with each backend's decline reasons.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.errors import InvalidParameterError
from repro.sim.backends.base import BackendError, SimulationBackend, SimulationRequest

_REGISTRY: Dict[str, SimulationBackend] = {}
_DEFAULTS_LOADED = False

AUTO = "auto"


def register_backend(backend: SimulationBackend, replace: bool = False) -> None:
    """Add a backend instance to the registry.

    Registering a custom backend never displaces the built-ins: the
    defaults load lazily but unconditionally on first use.
    """
    if backend.name == AUTO:
        raise InvalidParameterError('"auto" is reserved and not a backend name')
    _ensure_default_backends()
    if backend.name in _REGISTRY and not replace:
        raise InvalidParameterError(f"backend {backend.name!r} already registered")
    _REGISTRY[backend.name] = backend


def get_backend(name: str) -> SimulationBackend:
    """Look a backend up by name."""
    _ensure_default_backends()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise BackendError(f"unknown backend {name!r}; registered: {known}") from None


def registered_backends() -> Dict[str, SimulationBackend]:
    """A snapshot of the registry (name -> backend)."""
    _ensure_default_backends()
    return dict(_REGISTRY)


def backend_names() -> List[str]:
    """Sorted registered backend names."""
    return sorted(registered_backends())


def resolve_backend(request: SimulationRequest, name: str = AUTO) -> SimulationBackend:
    """Pick the backend that will serve ``request``.

    An explicit name must support the request (``BackendError``
    otherwise — silent fallback would undermine equivalence testing).
    ``"auto"`` picks the supporting backend with the highest
    ``auto_priority``, ties broken by name for determinism.
    """
    _ensure_default_backends()
    if name != AUTO:
        backend = get_backend(name)
        if not backend.supports(request):
            reason = backend.support_reason(request)
            detail = f": {reason}" if reason else ""
            raise BackendError(
                f"backend {name!r} does not support algorithm "
                f"{request.algorithm.name!r}{detail} (try backend='auto')"
            )
        return backend
    candidates = [
        backend for backend in _REGISTRY.values() if backend.supports(request)
    ]
    if not candidates:
        raise BackendError(
            f"no registered backend supports algorithm {request.algorithm.name!r}"
        )
    return max(candidates, key=lambda b: (b.auto_priority(request), b.name))


def supporting_backends(request: SimulationRequest) -> List[SimulationBackend]:
    """Every backend that supports ``request``, in static-rank order.

    The cost-model selector's candidate list: sorted by descending
    ``auto_priority`` with name as the tiebreak, so iteration order —
    and therefore any tie-broken choice downstream — is deterministic.
    The first element is exactly what :func:`resolve_backend` would
    pick for ``"auto"``.
    """
    _ensure_default_backends()
    candidates = [
        backend for backend in _REGISTRY.values() if backend.supports(request)
    ]
    candidates.sort(key=lambda b: (-b.auto_priority(request), b.name))
    return candidates


def backends_introspection() -> Dict[str, Any]:
    """The shared backends payload for CLI ``--json`` and ``/v1/backends``.

    One builder so both surfaces ship the identical shape: per backend
    the family coverage map, the decline reason for **every** declined
    family, and — when the backend is device-bound — its device
    description; plus the ``auto`` resolution per family and the
    available kernel namespaces.  Callers wrap it with their own
    envelope (the server adds ``wire``; both add the selector section).
    """
    from repro.errors import ReproError
    from repro.sim.backends.base import KNOWN_ALGORITHMS, probe_request
    from repro.sim.kernels import available_namespace_names

    backends: Dict[str, Any] = {}
    for name, backend in sorted(registered_backends().items()):
        coverage, declines = backend.coverage_and_reasons()
        entry: Dict[str, Any] = {
            "algorithms": coverage,
            # Why each declined family is declined — "no device",
            # "step_budget set", ... — so an operator can tell a
            # missing GPU from a missing kernel.
            "declines": declines,
        }
        device = backend.device_description()
        if device is not None:
            entry["device"] = device
        backends[name] = entry
    auto: Dict[str, Optional[str]] = {}
    for algorithm in KNOWN_ALGORITHMS:
        probe = probe_request(algorithm)
        try:
            auto[algorithm] = resolve_backend(probe).name
        except ReproError:
            auto[algorithm] = None
    return {
        "backends": backends,
        "auto_resolution": auto,
        "kernel_namespaces": list(available_namespace_names()),
    }


def _ensure_default_backends() -> None:
    """Idempotently register the four built-in backends.

    Import-cycle-safe lazy registration: the backend modules import the
    simulators, which import ``repro.sim.metrics``, so registration
    happens on first use rather than at package import.  Guarded by a
    dedicated flag (not registry emptiness) so a custom backend
    registered first cannot suppress the built-ins.
    """
    global _DEFAULTS_LOADED
    if _DEFAULTS_LOADED:
        return
    _DEFAULTS_LOADED = True
    from repro.sim.backends.accelerator import AcceleratorBackend
    from repro.sim.backends.batched import BatchedBackend
    from repro.sim.backends.closed_form import ClosedFormBackend
    from repro.sim.backends.reference import ReferenceBackend

    register_backend(ReferenceBackend())
    register_backend(ClosedFormBackend())
    register_backend(BatchedBackend())
    register_backend(AcceleratorBackend())
