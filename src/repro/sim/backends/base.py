"""Backend substrate: request/result records and the backend interface.

A :class:`SimulationRequest` is the uniform unit of work every caller
in this repository ultimately produces: *which algorithm*, *how many
agents*, *which target/world*, *what budgets*, *how many trials*, and
*which deterministic seed stream*.  A :class:`SimulationBackend` turns
a request into one :class:`~repro.sim.metrics.SearchOutcome` per trial.

The seeding contract is the load-bearing part: trial ``t`` of a request
draws from ``derive_seed(seed, *seed_keys, t)``.  Backends that simulate
one trial at a time (``reference``, ``closed_form``) honor it exactly,
which makes their outputs bit-identical to the historical hand-rolled
loops in ``experiments/``; the vectorized ``batched`` backend pools the
batch into one stream and is equal in distribution instead.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.errors import InvalidParameterError, ReproError
from repro.grid.geometry import Point, chebyshev_norm
from repro.sim.metrics import SearchOutcome


class BackendError(ReproError):
    """A simulation backend could not serve a request."""


@dataclass(frozen=True)
class AlgorithmSpec:
    """Declarative description of a search algorithm.

    Only the parameters the paper's algorithms actually take are
    modeled; ``n_agents`` lives on the request (algorithms that need it,
    like Algorithm 5 and the Feinerman baseline, read it from there at
    build time).  Use the classmethod constructors — they validate the
    per-algorithm parameter domain eagerly.
    """

    name: str
    distance: Optional[int] = None
    ell: Optional[int] = None
    K: Optional[int] = None
    max_phase: Optional[int] = None

    @classmethod
    def algorithm1(cls, distance: int) -> "AlgorithmSpec":
        """Algorithm 1: knows ``D``, fine ``1/D`` stop coins."""
        if distance < 2:
            raise InvalidParameterError(f"distance must be >= 2, got {distance}")
        return cls(name="algorithm1", distance=distance)

    @classmethod
    def nonuniform(cls, distance: int, ell: int = 1) -> "AlgorithmSpec":
        """Non-Uniform-Search: knows ``D``, coarse ``2^{-l}`` coins."""
        if distance < 2:
            raise InvalidParameterError(f"distance must be >= 2, got {distance}")
        if ell < 1:
            raise InvalidParameterError(f"ell must be >= 1, got {ell}")
        return cls(name="nonuniform", distance=distance, ell=ell)

    @classmethod
    def uniform(
        cls, ell: int = 1, K: Optional[int] = None, max_phase: Optional[int] = None
    ) -> "AlgorithmSpec":
        """Algorithm 5: uniform in ``D``; ``K`` defaults to the calibrated value."""
        from repro.core.uniform import calibrated_K

        if ell < 1:
            raise InvalidParameterError(f"ell must be >= 1, got {ell}")
        resolved_K = calibrated_K(ell) if K is None else K
        if resolved_K < 1:
            raise InvalidParameterError(f"K must be >= 1, got {resolved_K}")
        if max_phase is not None and max_phase < 1:
            raise InvalidParameterError(f"max_phase must be >= 1, got {max_phase}")
        return cls(name="uniform", ell=ell, K=resolved_K, max_phase=max_phase)

    @classmethod
    def doubly_uniform(
        cls, ell: int = 1, K: Optional[int] = None, max_phase: Optional[int] = None
    ) -> "AlgorithmSpec":
        """Doubly uniform search: unknown ``D`` and unknown ``n``."""
        from repro.core.uniform import calibrated_K

        if ell < 1:
            raise InvalidParameterError(f"ell must be >= 1, got {ell}")
        resolved_K = calibrated_K(ell) if K is None else K
        return cls(name="doubly-uniform", ell=ell, K=resolved_K, max_phase=max_phase)

    @classmethod
    def random_walk(cls) -> "AlgorithmSpec":
        """Uniform random walk baseline (chi = 4)."""
        return cls(name="random-walk")

    @classmethod
    def feinerman(cls) -> "AlgorithmSpec":
        """Feinerman et al. harmonic search baseline (chi = Theta(log D))."""
        return cls(name="feinerman")

    @classmethod
    def spiral(cls) -> "AlgorithmSpec":
        """Deterministic spiral: the informed single-agent optimum."""
        return cls(name="spiral")

    @classmethod
    def levy(cls) -> "AlgorithmSpec":
        """Levy walk baseline."""
        return cls(name="levy")

    def build(self, n_agents: int):
        """Instantiate the concrete :class:`~repro.core.base.SearchAlgorithm`.

        The faithful engine needs a live process generator; vectorized
        backends never call this.
        """
        if self.name == "algorithm1":
            from repro.core.algorithm1 import Algorithm1

            return Algorithm1(self.distance)
        if self.name == "nonuniform":
            from repro.core.nonuniform import NonUniformSearch

            return NonUniformSearch(self.distance, self.ell or 1)
        if self.name == "uniform":
            from repro.core.uniform import UniformSearch

            return UniformSearch(n_agents, self.ell or 1, self.K, self.max_phase)
        if self.name == "doubly-uniform":
            from repro.core.doubly_uniform import DoublyUniformSearch

            return DoublyUniformSearch(self.ell or 1, self.K)
        if self.name == "random-walk":
            from repro.baselines.random_walk import RandomWalkSearch

            return RandomWalkSearch()
        if self.name == "feinerman":
            from repro.baselines.feinerman import FeinermanSearch

            return FeinermanSearch(n_agents)
        if self.name == "spiral":
            from repro.baselines.spiral import SpiralSearch

            return SpiralSearch()
        if self.name == "levy":
            from repro.baselines.levy import LevyWalk

            return LevyWalk()
        raise BackendError(f"unknown algorithm spec {self.name!r}")


KNOWN_ALGORITHMS = (
    "algorithm1",
    "nonuniform",
    "uniform",
    "doubly-uniform",
    "random-walk",
    "feinerman",
    "spiral",
    "levy",
)


@dataclass(frozen=True)
class SimulationRequest:
    """One uniform simulation job: algorithm x colony x world x budget x seed.

    Attributes
    ----------
    algorithm:
        The algorithm descriptor.
    n_agents:
        Colony size ``n``.
    target:
        Target cell coordinates.
    move_budget:
        Per-agent move budget.
    step_budget:
        Optional per-agent Markov-step budget (faithful engine only).
    n_trials:
        Independent repetitions of the whole colony search.
    seed / seed_keys:
        Trial ``t`` draws from ``derive_seed(seed, *seed_keys, t)`` —
        the same addressing scheme the experiment sweeps have always
        used, so migrated callers keep their exact random streams.
    distance_bound:
        The world's ``D``; defaults to the spec's distance or the
        target's max-norm, whichever is larger.
    deadline_seconds:
        Optional wall-clock budget for the whole job, measured from
        submission.  An *execution* detail like ``workers`` — it never
        enters the request fingerprint, so deadlined and undeadlined
        runs of the same request share cache entries, and a run that
        died on its deadline resumes from its completed shards.
    """

    algorithm: AlgorithmSpec
    n_agents: int
    target: Point
    move_budget: int
    step_budget: Optional[int] = None
    n_trials: int = 1
    seed: int = 0
    seed_keys: Tuple[int, ...] = ()
    distance_bound: Optional[int] = None
    deadline_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.n_agents < 1:
            raise InvalidParameterError(f"n_agents must be >= 1, got {self.n_agents}")
        if self.move_budget < 1:
            raise InvalidParameterError(
                f"move_budget must be >= 1, got {self.move_budget}"
            )
        if self.n_trials < 1:
            raise InvalidParameterError(f"n_trials must be >= 1, got {self.n_trials}")
        if self.seed < 0:
            raise InvalidParameterError(f"seed must be non-negative, got {self.seed}")
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise InvalidParameterError(
                f"deadline_seconds must be > 0, got {self.deadline_seconds}"
            )
        if self.algorithm.name not in KNOWN_ALGORITHMS:
            raise InvalidParameterError(
                f"unknown algorithm {self.algorithm.name!r}; "
                f"known: {', '.join(KNOWN_ALGORITHMS)}"
            )

    @property
    def effective_distance_bound(self) -> int:
        """The ``D`` used to build the world."""
        if self.distance_bound is not None:
            return self.distance_bound
        candidates = [chebyshev_norm(self.target)]
        if self.algorithm.distance is not None:
            candidates.append(self.algorithm.distance)
        return max(candidates)

    def trial_seed(self, trial_index: int) -> np.random.SeedSequence:
        """The deterministic stream for one trial of this request."""
        from repro.sim.rng import derive_seed

        return derive_seed(self.seed, *self.seed_keys, trial_index)


@dataclass(frozen=True)
class SimulationResult:
    """The outcomes of one request, plus which backend produced them."""

    request: SimulationRequest
    backend: str
    outcomes: Tuple[SearchOutcome, ...]

    @property
    def outcome(self) -> SearchOutcome:
        """The first (often only) trial's outcome."""
        return self.outcomes[0]

    @property
    def find_rate(self) -> float:
        """Fraction of trials that found the target within budget."""
        return float(np.mean([outcome.found for outcome in self.outcomes]))

    def moves_or_budget(self) -> np.ndarray:
        """Per-trial censored move counts (``m_moves`` or the budget)."""
        return np.array(
            [outcome.moves_or_budget for outcome in self.outcomes], dtype=np.int64
        )


class SimulationBackend(ABC):
    """One way of executing :class:`SimulationRequest` jobs."""

    #: Registry key; subclasses override.
    name: str = "abstract"

    #: Whether trial ``t`` of a request draws only from its own
    #: ``derive_seed`` address, independent of ``n_trials`` and shard
    #: layout.  When True, a trial prefix of a longer run is
    #: bit-identical to a standalone shorter run, which is what lets
    #: the experiment compiler merge grid points across different trial
    #: counts.  Stream-anchored backends (batched kernels pool a
    #: request's trials into one generator) leave this False.
    trial_addressed: bool = False

    @abstractmethod
    def supports(self, request: SimulationRequest) -> bool:
        """Whether this backend can serve ``request`` faithfully."""

    def support_reason(self, request: SimulationRequest) -> Optional[str]:
        """Why :meth:`supports` declines ``request`` (None when it doesn't).

        Backends override this with specific gating reasons ("no
        device", "step_budget set", ...) so the CLI ``backends`` table
        and the ``/v1/backends`` route can explain declines instead of
        printing a bare dash.
        """
        if self.supports(request):
            return None
        return f"algorithm {request.algorithm.name!r} not supported"

    @abstractmethod
    def run(
        self,
        request: SimulationRequest,
        trial_indices: Optional[Sequence[int]] = None,
    ) -> Tuple[SearchOutcome, ...]:
        """Execute the request's trials (or the given subset of them).

        ``trial_indices`` lets the parallel sweep executor shard one
        request across processes while preserving per-trial seeds.
        """

    def auto_priority(self, request: SimulationRequest) -> int:
        """Ranking used by ``backend="auto"``; higher wins."""
        return 0

    def cache_name(self) -> str:
        """The identity the result cache keys this backend under.

        Defaults to the registry name.  Backends whose output stream
        depends on more than their code — the accelerator's depends on
        which array namespace/device is bound — must fold that binding
        in, so a host whose binding changes can never replay another
        binding's cached stream.
        """
        return self.name

    def device_description(self) -> Optional[str]:
        """Human-readable device binding, or ``None`` for host backends.

        Introspection surfaces include a ``device`` entry only when this
        returns a string; the accelerator backend overrides it with its
        bound namespace/device (or the unavailability reason).
        """
        return None

    def calibration_trials(self) -> Tuple[int, int]:
        """(low, high) probe trial counts for selector calibration.

        Slow per-trial engines override with tiny counts so a
        micro-profile stays short; vectorized backends override with
        enough trials to expose their per-batch amortization.
        """
        return (4, 16)

    def coverage_and_reasons(self) -> Tuple[Dict[str, bool], Dict[str, str]]:
        """One probe pass: (family -> supported?, family -> decline reason).

        Introspection surfaces (CLI table, ``/v1/backends``) want both;
        a single loop keeps each probe request built and gated once.
        """
        coverage: Dict[str, bool] = {}
        reasons: Dict[str, str] = {}
        for name in KNOWN_ALGORITHMS:
            probe = probe_request(name)
            if probe is None:
                coverage[name] = False
                continue
            reason = self.support_reason(probe)
            coverage[name] = reason is None
            if reason is not None:
                reasons[name] = reason
        return coverage, reasons

    def coverage(self) -> Dict[str, bool]:
        """Which algorithm families this backend supports (for the CLI)."""
        return self.coverage_and_reasons()[0]

    def decline_reasons(self) -> Dict[str, str]:
        """Per-family :meth:`support_reason` strings for declined probes."""
        return self.coverage_and_reasons()[1]


def probe_request(
    algorithm_name: str,
    n_trials: int = 1,
    n_agents: int = 2,
    target: Tuple[int, int] = (4, 3),
    move_budget: int = 1000,
) -> Optional[SimulationRequest]:
    """A representative request per algorithm family.

    Coverage reports probe with the default single trial; the CLI also
    probes with a trial batch to show each backend's
    ``auto_priority`` for the batch case — the number that explains
    what ``auto`` picks for sweeps.  The selector's calibration probes
    reuse the same family builders at its own scale via the keyword
    overrides.
    """
    builders = {
        "algorithm1": lambda: AlgorithmSpec.algorithm1(8),
        "nonuniform": lambda: AlgorithmSpec.nonuniform(8, 1),
        "uniform": lambda: AlgorithmSpec.uniform(1),
        "doubly-uniform": lambda: AlgorithmSpec.doubly_uniform(1),
        "random-walk": AlgorithmSpec.random_walk,
        "feinerman": AlgorithmSpec.feinerman,
        "spiral": AlgorithmSpec.spiral,
        "levy": AlgorithmSpec.levy,
    }
    builder = builders.get(algorithm_name)
    if builder is None:
        return None
    return SimulationRequest(
        algorithm=builder(),
        n_agents=n_agents,
        target=target,
        move_budget=move_budget,
        n_trials=n_trials,
    )
