"""Simulation service, engines, backends, metrics and statistics.

The uniform entry point is :func:`repro.sim.simulate`: build a
:class:`SimulationRequest` (algorithm spec + colony + world + budgets +
seed stream) and let the backend registry dispatch it:

* ``reference`` (:mod:`repro.sim.engine`) — the faithful, step-by-step
  synchronous engine driving agent processes (or automata); tracks
  ``M_steps`` and per-agent outcomes, executes arbitrary automata for
  the lower-bound experiments.
* ``closed_form`` (:mod:`repro.sim.fast`) — numpy-vectorized per-colony
  simulators sampling whole iterations; distribution-exact.
* ``batched`` (:mod:`repro.sim.backends.batched`) — many colonies and
  many trials in one vectorized pass; the high-throughput batch path.

In front of the backends sits a content-addressed result cache
(:mod:`repro.sim.cache`): repeated requests are served from memory or
``~/.cache/repro-ants/`` without resimulation, keyed by (request hash,
backend, code version).

Shared result records live in :mod:`repro.sim.metrics`; deterministic
seeding utilities in :mod:`repro.sim.rng`; estimators and scaling fits
in :mod:`repro.sim.stats`; sweep orchestration (with parallel
``workers=N`` sharding and grid-point -> batched-call compilation via
:class:`SimulationTrial`) in :mod:`repro.sim.runner`.
"""

from repro.sim.backends import (
    AlgorithmSpec,
    BackendError,
    SimulationBackend,
    SimulationRequest,
    SimulationResult,
    backend_names,
    get_backend,
    register_backend,
    registered_backends,
    resolve_backend,
)
from repro.sim.cache import (
    CacheInfo,
    SimulationCache,
    cache_enabled,
    configure_cache,
    get_cache,
    request_fingerprint,
)
from repro.sim.engine import SearchEngine, EngineConfig
from repro.sim.metrics import AgentOutcome, FastRunStats, SearchOutcome, speedup
from repro.sim.rng import generator_from, spawn_generators
from repro.sim.runner import (
    ExperimentRow,
    SimulationTrial,
    Sweep,
    SweepJob,
    censored_moves,
    rows_to_markdown,
)
from repro.sim.service import backend_run_count, simulate
from repro.sim.stats import (
    Estimate,
    bootstrap_mean_ci,
    fit_loglog_slope,
    ks_statistic,
    ks_two_sample_threshold,
    mean_ci,
    summarize,
)
from repro.sim.trace import Execution, TraceRecorder

__all__ = [
    "AlgorithmSpec",
    "BackendError",
    "SimulationBackend",
    "SimulationRequest",
    "SimulationResult",
    "backend_names",
    "get_backend",
    "register_backend",
    "registered_backends",
    "resolve_backend",
    "simulate",
    "backend_run_count",
    "CacheInfo",
    "SimulationCache",
    "cache_enabled",
    "configure_cache",
    "get_cache",
    "request_fingerprint",
    "SearchEngine",
    "EngineConfig",
    "AgentOutcome",
    "FastRunStats",
    "SearchOutcome",
    "speedup",
    "generator_from",
    "spawn_generators",
    "ExperimentRow",
    "SimulationTrial",
    "Sweep",
    "SweepJob",
    "censored_moves",
    "rows_to_markdown",
    "Estimate",
    "bootstrap_mean_ci",
    "fit_loglog_slope",
    "ks_statistic",
    "ks_two_sample_threshold",
    "mean_ci",
    "summarize",
    "Execution",
    "TraceRecorder",
]
