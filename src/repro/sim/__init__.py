"""Simulation service, engines, backends, metrics and statistics.

The uniform entry point is :func:`repro.sim.simulate`: build a
:class:`SimulationRequest` (algorithm spec + colony + world + budgets +
seed stream) and let the backend registry dispatch it:

* ``reference`` (:mod:`repro.sim.engine`) — the faithful, step-by-step
  synchronous engine driving agent processes (or automata); tracks
  ``M_steps`` and per-agent outcomes, executes arbitrary automata for
  the lower-bound experiments.
* ``closed_form`` (:mod:`repro.sim.fast`) — numpy-vectorized per-colony
  simulators sampling whole iterations; distribution-exact.
* ``batched`` (:mod:`repro.sim.backends.batched`) — many colonies and
  many trials in one pass of the device-portable kernel core
  (:mod:`repro.sim.kernels`) on the NumPy namespace; the
  high-throughput CPU batch path.
* ``accelerator`` (:mod:`repro.sim.backends.accelerator`) — the same
  kernels bound to CuPy or torch-CUDA; declines cleanly (with a
  reason) when the host has no device.

In front of the backends sits a content-addressed result cache
(:mod:`repro.sim.cache`): repeated requests are served from memory or
``~/.cache/repro-ants/`` without resimulation, keyed by (request hash,
backend, code version) — with per-shard entries so interrupted jobs
resume, and an LRU-prunable disk layer.

Execution itself lives in the job layer (:mod:`repro.sim.jobs`):
:func:`simulate` is a blocking view over
:meth:`~repro.sim.jobs.JobManager.submit`, and :func:`simulate_async`
returns the :class:`~repro.sim.jobs.SimulationJob` handle directly —
states, per-shard progress, incremental result streaming, and
cancellation with cache-backed resumption.

Shared result records live in :mod:`repro.sim.metrics`; deterministic
seeding utilities in :mod:`repro.sim.rng`; estimators and scaling fits
in :mod:`repro.sim.stats`; sweep orchestration (with parallel
``workers=N`` sharding, grid-point -> batched-call compilation via
:class:`SimulationTrial`, and async :class:`SweepJob` handles) in
:mod:`repro.sim.runner`.
"""

from repro.sim.backends import (
    AlgorithmSpec,
    BackendError,
    SimulationBackend,
    SimulationRequest,
    SimulationResult,
    backend_names,
    get_backend,
    register_backend,
    registered_backends,
    resolve_backend,
)
from repro.sim.cache import (
    CacheInfo,
    PruneResult,
    SimulationCache,
    cache_enabled,
    configure_cache,
    get_cache,
    request_fingerprint,
)
from repro.sim.engine import SearchEngine, EngineConfig
from repro.sim.jobs import (
    JobManager,
    JobProgress,
    JobState,
    ShardResult,
    SimulationJob,
    get_manager,
)
from repro.sim.metrics import AgentOutcome, FastRunStats, SearchOutcome, speedup
from repro.sim.rng import generator_from, spawn_generators
from repro.sim.runner import (
    ExperimentRow,
    SimulationTrial,
    Sweep,
    SweepJob,
    SweepProgress,
    SweepShard,
    censored_moves,
    rows_to_markdown,
)
from repro.sim.selector import (
    CalibrationProfile,
    SimulationPlan,
    calibrate,
    load_profile,
    machine_fingerprint,
    plan_request,
)
from repro.sim.service import (
    AdaptiveRun,
    backend_run_count,
    simulate,
    simulate_adaptive,
    simulate_async,
)
from repro.sim.stats import (
    Estimate,
    bootstrap_mean_ci,
    fit_loglog_slope,
    ks_statistic,
    ks_two_sample_threshold,
    mean_ci,
    summarize,
)
from repro.sim.trace import Execution, TraceRecorder

__all__ = [
    "AlgorithmSpec",
    "BackendError",
    "SimulationBackend",
    "SimulationRequest",
    "SimulationResult",
    "backend_names",
    "get_backend",
    "register_backend",
    "registered_backends",
    "resolve_backend",
    "simulate",
    "simulate_async",
    "simulate_adaptive",
    "backend_run_count",
    "AdaptiveRun",
    "CalibrationProfile",
    "SimulationPlan",
    "calibrate",
    "load_profile",
    "machine_fingerprint",
    "plan_request",
    "JobManager",
    "JobProgress",
    "JobState",
    "ShardResult",
    "SimulationJob",
    "get_manager",
    "CacheInfo",
    "PruneResult",
    "SimulationCache",
    "cache_enabled",
    "configure_cache",
    "get_cache",
    "request_fingerprint",
    "SearchEngine",
    "EngineConfig",
    "AgentOutcome",
    "FastRunStats",
    "SearchOutcome",
    "speedup",
    "generator_from",
    "spawn_generators",
    "ExperimentRow",
    "SimulationTrial",
    "Sweep",
    "SweepJob",
    "SweepProgress",
    "SweepShard",
    "censored_moves",
    "rows_to_markdown",
    "Estimate",
    "bootstrap_mean_ci",
    "fit_loglog_slope",
    "ks_statistic",
    "ks_two_sample_threshold",
    "mean_ci",
    "summarize",
    "Execution",
    "TraceRecorder",
]
