"""Simulation engine, fast vectorized simulators, metrics and statistics.

Two execution paths produce the paper's metrics:

* :mod:`repro.sim.engine` — the faithful, step-by-step synchronous
  engine driving agent processes (or automata).  Used by tests and by
  the lower-bound experiments where step-level fidelity matters.
* :mod:`repro.sim.fast` — numpy-vectorized simulators that sample whole
  iterations (geometric leg lengths + closed-form hit tests) and are
  distribution-exact.  Used by the benchmark sweeps.

Shared result records live in :mod:`repro.sim.metrics`; deterministic
seeding utilities in :mod:`repro.sim.rng`; estimators and scaling fits
in :mod:`repro.sim.stats`; sweep orchestration in
:mod:`repro.sim.runner`.
"""

from repro.sim.engine import SearchEngine, EngineConfig
from repro.sim.metrics import AgentOutcome, SearchOutcome, speedup
from repro.sim.rng import generator_from, spawn_generators
from repro.sim.runner import ExperimentRow, Sweep, rows_to_markdown
from repro.sim.stats import (
    Estimate,
    bootstrap_mean_ci,
    fit_loglog_slope,
    ks_statistic,
    ks_two_sample_threshold,
    mean_ci,
    summarize,
)
from repro.sim.trace import Execution, TraceRecorder

__all__ = [
    "SearchEngine",
    "EngineConfig",
    "AgentOutcome",
    "SearchOutcome",
    "speedup",
    "generator_from",
    "spawn_generators",
    "ExperimentRow",
    "Sweep",
    "rows_to_markdown",
    "Estimate",
    "bootstrap_mean_ci",
    "fit_loglog_slope",
    "ks_statistic",
    "ks_two_sample_threshold",
    "mean_ci",
    "summarize",
    "Execution",
    "TraceRecorder",
]
