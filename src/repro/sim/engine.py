"""The faithful synchronous multi-agent engine.

Runs ``n`` independent agent processes in synchronous rounds (one
Markov-chain step per agent per round, matching the round definition in
Section 2 of the paper) and computes the paper's metrics exactly:

* ``M_moves`` — minimum over agents of the per-agent move count at its
  own first arrival at the target;
* ``M_steps`` — the analogous minimum over steps.

Exactness of the minimum requires running non-finders past the first
find: an agent is only retired when it has found the target, exhausted
its budget, or accumulated at least as many moves as the best find so
far (at which point it can no longer improve the minimum).

This engine is deliberately unoptimized Python: it is the reference
implementation the vectorized simulators in :mod:`repro.sim.fast` are
validated against, and the executor for arbitrary automata in the
lower-bound experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

import numpy as np

from repro.core.actions import Action
from repro.core.base import SearchAlgorithm
from repro.errors import InvalidParameterError
from repro.grid.geometry import Point, manhattan_norm
from repro.grid.world import GridWorld
from repro.sim.metrics import AgentOutcome, SearchOutcome
from repro.sim.rng import spawn_generators
from repro.sim.trace import TraceRecorder


@dataclass(frozen=True)
class EngineConfig:
    """Engine policy knobs.

    Attributes
    ----------
    move_budget:
        Per-agent move budget; an agent exceeding it is retired unfound.
    step_budget:
        Per-agent step budget guarding against algorithms that spin on
        ``NONE``-labeled states without moving (e.g. automata whose
        recurrent class is all-``none``).  Defaults to
        ``64 * move_budget + 4096`` when ``None``.
    count_return_moves:
        Charge oracle returns at their true (Manhattan) path length.
        The paper's metric excludes them; enabling this reproduces the
        "at most a factor 2" claim empirically.
    check_return_path:
        Whether an agent can discover the target while walking the
        oracle's return path.  Off by default, matching the analysis
        (returns are ignored); when on, the engine walks the explicit
        Bresenham path and tests each cell.
    """

    move_budget: int
    step_budget: Optional[int] = None
    count_return_moves: bool = False
    check_return_path: bool = False

    def __post_init__(self) -> None:
        if self.move_budget < 1:
            raise InvalidParameterError(
                f"move_budget must be >= 1, got {self.move_budget}"
            )
        if self.step_budget is not None and self.step_budget < 1:
            raise InvalidParameterError(
                f"step_budget must be >= 1, got {self.step_budget}"
            )

    @property
    def effective_step_budget(self) -> int:
        """The step cap actually enforced."""
        if self.step_budget is not None:
            return self.step_budget
        return 64 * self.move_budget + 4096


class _AgentState:
    """Mutable per-agent bookkeeping (engine-internal)."""

    __slots__ = (
        "agent_id",
        "process",
        "position",
        "moves",
        "steps",
        "found",
        "moves_at_find",
        "steps_at_find",
        "alive",
    )

    def __init__(self, agent_id: int, process: Iterator[Action]) -> None:
        self.agent_id = agent_id
        self.process = process
        self.position: Point = (0, 0)
        self.moves = 0
        self.steps = 0
        self.found = False
        self.moves_at_find: Optional[int] = None
        self.steps_at_find: Optional[int] = None
        self.alive = True

    def outcome(self) -> AgentOutcome:
        return AgentOutcome(
            agent_id=self.agent_id,
            found=self.found,
            moves_at_find=self.moves_at_find,
            steps_at_find=self.steps_at_find,
            total_moves=self.moves,
            total_steps=self.steps,
            final_position=self.position,
        )


class SearchEngine:
    """Drives ``n`` agents of one algorithm against one world."""

    def __init__(self, config: EngineConfig) -> None:
        self._config = config

    @property
    def config(self) -> EngineConfig:
        """The engine's policy configuration."""
        return self._config

    def run(
        self,
        algorithm: SearchAlgorithm,
        n_agents: int,
        world: GridWorld,
        rng: int | np.random.SeedSequence | Sequence[np.random.Generator],
        trace: Optional[TraceRecorder] = None,
    ) -> SearchOutcome:
        """Simulate until the colony minimum is settled.

        ``rng`` may be a seed (fanned out to one stream per agent) or an
        explicit list of per-agent generators.
        """
        if n_agents < 1:
            raise InvalidParameterError(f"n_agents must be >= 1, got {n_agents}")
        generators = self._coerce_generators(rng, n_agents)
        agents = [
            _AgentState(agent_id, algorithm.process(generator))
            for agent_id, generator in enumerate(generators)
        ]
        if world.is_target((0, 0)):
            # Degenerate case the paper sets aside: the target is found
            # by everyone immediately, with zero moves.
            return self._all_found_at_origin(agents, world)

        best: Optional[int] = None
        config = self._config
        step_budget = config.effective_step_budget
        active = list(agents)
        while active:
            still_active: List[_AgentState] = []
            for agent in active:
                best = self._step_agent(agent, world, trace, best)
                if not agent.alive:
                    continue
                if agent.found:
                    agent.alive = False
                elif agent.moves >= config.move_budget or agent.steps >= step_budget:
                    agent.alive = False
                elif best is not None and agent.moves >= best:
                    agent.alive = False
                else:
                    still_active.append(agent)
            active = still_active

        return self._collect(agents, world)

    def _step_agent(
        self,
        agent: _AgentState,
        world: GridWorld,
        trace: Optional[TraceRecorder],
        best: Optional[int],
    ) -> Optional[int]:
        """Advance one agent by one step; returns the updated best find."""
        try:
            action = next(agent.process)
        except StopIteration:
            agent.alive = False
            return best
        agent.steps += 1
        if action.is_move:
            dx, dy = action.direction.vector
            agent.position = (agent.position[0] + dx, agent.position[1] + dy)
            agent.moves += 1
            world.record_visit(agent.position)
            if world.is_target(agent.position):
                best = self._register_find(agent, agent.moves, best)
        elif action is Action.ORIGIN:
            best = self._perform_return(agent, world, best)
        if trace is not None:
            trace.record(agent.agent_id, action, agent.position)
        return best

    def _perform_return(
        self, agent: _AgentState, world: GridWorld, best: Optional[int]
    ) -> Optional[int]:
        """Apply an oracle return: optional path check/cost, then teleport."""
        config = self._config
        if config.check_return_path and agent.position != (0, 0):
            from repro.grid.oracle import bresenham_return_path

            for moves_taken, cell in enumerate(
                bresenham_return_path(agent.position)[1:], start=1
            ):
                world.record_visit(cell)
                if world.is_target(cell):
                    charged = moves_taken if config.count_return_moves else 0
                    best = self._register_find(agent, agent.moves + charged, best)
                    break
        if config.count_return_moves:
            agent.moves += manhattan_norm(agent.position)
        agent.position = (0, 0)
        return best

    @staticmethod
    def _register_find(
        agent: _AgentState, moves_at_find: int, best: Optional[int]
    ) -> Optional[int]:
        if not agent.found:
            agent.found = True
            agent.moves_at_find = moves_at_find
            agent.steps_at_find = agent.steps
        if best is None or moves_at_find < best:
            return moves_at_find
        return best

    def _collect(self, agents: List[_AgentState], world: GridWorld) -> SearchOutcome:
        finders = [agent for agent in agents if agent.found]
        if finders:
            winner = min(finders, key=lambda agent: agent.moves_at_find)
            m_steps = min(
                agent.steps_at_find for agent in finders if agent.steps_at_find is not None
            )
            return SearchOutcome(
                found=True,
                m_moves=winner.moves_at_find,
                m_steps=m_steps,
                finder=winner.agent_id,
                n_agents=len(agents),
                move_budget=self._config.move_budget,
                per_agent=[agent.outcome() for agent in agents],
            )
        return SearchOutcome(
            found=False,
            m_moves=None,
            m_steps=None,
            finder=None,
            n_agents=len(agents),
            move_budget=self._config.move_budget,
            per_agent=[agent.outcome() for agent in agents],
        )

    def _all_found_at_origin(
        self, agents: List[_AgentState], world: GridWorld
    ) -> SearchOutcome:
        world.record_visit((0, 0))
        for agent in agents:
            agent.found = True
            agent.moves_at_find = 0
            agent.steps_at_find = 0
            agent.alive = False
        return SearchOutcome(
            found=True,
            m_moves=0,
            m_steps=0,
            finder=0,
            n_agents=len(agents),
            move_budget=self._config.move_budget,
            per_agent=[agent.outcome() for agent in agents],
        )

    @staticmethod
    def _coerce_generators(
        rng: int | np.random.SeedSequence | Sequence[np.random.Generator],
        n_agents: int,
    ) -> List[np.random.Generator]:
        if isinstance(rng, (int, np.integer, np.random.SeedSequence)):
            return spawn_generators(rng, n_agents)
        generators = list(rng)
        if len(generators) != n_agents:
            raise InvalidParameterError(
                f"need {n_agents} generators, got {len(generators)}"
            )
        return generators
