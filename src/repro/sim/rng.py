"""Deterministic randomness plumbing.

Every simulation in this repository is reproducible from a single
integer seed.  Agents receive statistically independent generators via
:func:`numpy.random.SeedSequence.spawn`, which is the numpy-recommended
way to fan a seed out to parallel streams without correlation.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.errors import InvalidParameterError


def generator_from(seed: int | np.random.SeedSequence | np.random.Generator) -> np.random.Generator:
    """Coerce a seed, seed sequence, or generator into a Generator.

    Passing an existing generator returns it unchanged, which lets
    library functions accept either ``seed=1234`` or a caller-managed
    stream.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if isinstance(seed, (int, np.integer)):
        if seed < 0:
            raise InvalidParameterError(f"seed must be non-negative, got {seed}")
        return np.random.default_rng(int(seed))
    raise InvalidParameterError(f"cannot build a generator from {seed!r}")


def spawn_generators(
    seed: int | np.random.SeedSequence, count: int
) -> List[np.random.Generator]:
    """``count`` independent generators derived from one seed.

    Used to give each of the model's ``n`` agents its own stream: the
    model's agents are independent copies of the same automaton, and
    independent streams are what makes the simulated copies independent.
    """
    if count < 0:
        raise InvalidParameterError(f"count must be non-negative, got {count}")
    sequence = (
        seed
        if isinstance(seed, np.random.SeedSequence)
        else np.random.SeedSequence(int(seed))
    )
    return [np.random.default_rng(child) for child in sequence.spawn(count)]


def derive_seed(seed: int, *keys: int) -> np.random.SeedSequence:
    """A stable child seed for a (seed, key...) combination.

    Experiment sweeps use this so that the trial at ``(D, n, trial_id)``
    is reproducible in isolation, independent of sweep order.
    """
    if seed < 0 or any(key < 0 for key in keys):
        raise InvalidParameterError("seed and keys must be non-negative")
    return np.random.SeedSequence(entropy=seed, spawn_key=tuple(int(k) for k in keys))


def trial_generators(seed: int, keys: Sequence[int], count: int) -> List[np.random.Generator]:
    """Convenience: ``count`` generators for the trial addressed by ``keys``."""
    sequence = derive_seed(seed, *keys)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]
