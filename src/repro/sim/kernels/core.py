"""Device-portable batched kernels for the six simulable families.

These are the whole-batch kernels the ``batched`` backend historically
kept inline (one pool of (trial, agent) pairs, one vectorized draw per
round, scatter-min colony folds) — extracted to run against *any*
:class:`~repro.sim.kernels.xp.ArrayNamespace`, and optimized on the way
out:

* **Blocked multi-round draws (lshape, uniform, doubly-uniform)** —
  the sortie families sample *blocks* of rounds per RNG call: a
  ``(pairs, block)`` matrix of sorties, closed-form prefix-sum move
  accounting, and one scatter fold per block.  The block length
  doubles as the pool drains, so the long tail — a few unretired pairs
  grinding thousands of rounds — collapses from thousands of tiny
  draws into a handful of big ones.  Folding extra post-retirement
  hits is sound because every such total ``t`` satisfies
  ``t >= cumulative >= min(budget, best)`` at the pair's original
  retirement point, so the scatter-min is unaffected.  The
  phase-driven families (``uniform``/``doubly-uniform``) additionally
  carry a per-pair *validity* horizon — a pair's row is live only for
  ``min(block, calls_left)`` columns, the rounds it has left in its
  current phase — so one constant-``p``-per-row matrix draw serves a
  pool whose members sit in different phases.
* **Rotated-axis walk blocks (random-walk)** — in the rotated
  coordinates ``u = x + y, v = x - y`` the 4-way unit step is two
  *independent* fair ±1 coins, so a block of steps is two contiguous
  int8→int16 prefix sums instead of a strided 3-D trajectory cumsum;
  step choices are drawn as uint8 (2 bits used), and pairs whose
  rotated Chebyshev distance exceeds the block length skip the hit
  test entirely (their positions advance by two row sums).
* **Fused per-round draws (feinerman)** — both center coordinates for
  one round come from one RNG call instead of two.
* **Single-pass compaction** — the hit-survivor prune and the
  budget/best prune are merged into one boolean gather per state array
  per block (previously two per round).
* **int32 pair/agent indices** — via :func:`~repro.sim.kernels.xp.index_dtype`
  where the pool size permits, halving gather/scatter index bandwidth.

Outcome distributions are unchanged: iterations are still drawn from
exactly the process distribution, and the golden KS gates
(``tests/unit/test_golden_distributions.py``) hold for all six families
on the default namespace.  Draw *order* differs from the pre-extraction
kernels, so per-request streams moved once — recorded by the
``CODE_VERSION`` bump that shipped with the extraction.

Every kernel returns ``(best, best_finder, trial_iterations,
trial_rounds)`` as namespace arrays; callers convert at the boundary
with ``xp.to_numpy``.
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.obs.trace import child_span
from repro.sim.kernels.xp import ArrayNamespace, KernelRNG, index_dtype

__all__ = [
    "SENTINEL",
    "batch_doubly_uniform",
    "batch_feinerman",
    "batch_lshape",
    "batch_random_walk",
    "batch_uniform",
    "sample_sorties",
    "sortie_hits",
]

#: "No find" marker in the per-trial ``best`` array (int64 max).
SENTINEL = 2**63 - 1

DEFAULT_MAX_PHASE = 50
DEFAULT_MAX_EPOCH = 40
DEFAULT_MAX_STAGE = 40
FEINERMAN_C = 4.0

#: One scratch budget shared by every blocked kernel: the byte size of
#: the largest ``(pairs, block)`` matrix a kernel may materialize per
#: draw.  Expressed in bytes (not elements) so kernels with different
#: scratch dtypes derive their own element counts from the same cap —
#: the sortie kernels' int64 matrices get ``SCRATCH_BYTES // 8``
#: elements, the walk's int16 prefix sums ``SCRATCH_BYTES // 2``.
#: 512 KiB per matrix keeps a kernel's whole working set L2-resident
#: however large the pool or however long the tail — measured 1.5-2.5x
#: faster than 1-4 MB blocks on every family (the pipeline makes ~10
#: elementwise passes over each matrix, so the matrix must outlive one
#: pass in cache), while staying large enough that per-block Python
#: dispatch overhead is noise.
SCRATCH_BYTES = 1 << 19
#: Longest fused round-block (reached only once the pool is tiny).
_MAX_BLOCK = 1 << 12
#: Budgets below 2^23 let the sortie kernels run their whole
#: (pairs x block) move accounting in float32: every total that can
#: still matter (anything <= the budget/best limit) is an integer
#: below the float32-exact ceiling 2^24, with headroom for one more
#: round's comparison.  Beyond-limit sums may round, but they only
#: ever feed ">= limit" comparisons their magnitude already decides.
_FLOAT32_EXACT_BUDGET = 1 << 23
#: Clamp before float -> int64 conversion of per-pair move totals:
#: far above any admissible budget, far below int64 overflow (a
#: float32 inf or 1e30-scale sum would otherwise wrap negative and
#: masquerade as an eligible find).
_TOTAL_CLAMP = 4.0e18


def _move_dtype(xp: ArrayNamespace, move_budget: int):
    """Accounting dtype for blocked move sums: float32 while exact.

    float64 is the fallback for budgets >= 2^23 — same exactness
    argument with a 2^53 ceiling, at int64-equivalent bandwidth.
    """
    return xp.float32 if move_budget < _FLOAT32_EXACT_BUDGET else xp.float64
#: Walk-block cap: int16 prefix sums stay exact only while a block's
#: displacement along one rotated axis (<= block) fits in int16.
_MAX_WALK_BLOCK = 1 << 14


def _block_len(pairs: int, itemsize: int, *caps: int) -> int:
    """Rounds per blocked draw: the shared scratch budget over the pool.

    ``itemsize`` is the widest scratch dtype the kernel materializes at
    ``(pairs, block)`` shape; extra ``caps`` (doubling schedule, rounds
    left, dtype-exactness bounds) clamp further.  Always >= 1 — block
    length degrades gracefully to one round as the pool outgrows the
    budget.
    """
    block = max(1, SCRATCH_BYTES // (itemsize * max(1, pairs)))
    for cap in caps:
        block = min(block, cap)
    return max(1, block)


def sample_sorties(xp: ArrayNamespace, rng: KernelRNG, stop_probability, count):
    """Sample ``count`` independent L-sorties, one draw per variable.

    Returns ``(signs_v, lengths_v, signs_h, lengths_h)``.  The draw
    order matches the historical ``repro.sim.fast`` helper exactly, so
    the per-trial ``closed_form`` simulators keep their byte-identical
    streams on the NumPy namespace.
    """
    signs_v = rng.integers(0, 2, size=count) * 2 - 1
    signs_h = rng.integers(0, 2, size=count) * 2 - 1
    lengths_v = rng.geometric(stop_probability, size=count) - 1
    lengths_h = rng.geometric(stop_probability, size=count) - 1
    return signs_v, lengths_v, signs_h, lengths_h


def _sample_sorties_fused(
    xp: ArrayNamespace, rng: KernelRNG, stop_probability, shape
):
    """Blocked sortie sampling: one sign draw and one length draw.

    ``shape`` is the per-variable shape (e.g. ``(pairs,)`` or
    ``(pairs, block)``); the fused draws stack the vertical/horizontal
    variables on a leading axis of 2.  Same marginal distribution as
    :func:`sample_sorties`, two RNG calls instead of four.
    """
    fused = (2, *shape) if isinstance(shape, tuple) else (2, shape)
    # One float32 uniform draw feeds both variables: for U ~ [0, 1),
    # the integer and fractional parts of 2U are an independent fair
    # bit (the sign) and a fresh uniform (the length's seed) —
    # exactly, not approximately.  float32 halves the fill-and-
    # transform bandwidth; its ~22-bit fraction granularity truncates
    # the geometric tail only past the 1 - 2^-22 quantile, invisible
    # to every distribution gate.
    u = rng.random(size=fused, dtype=xp.float32)
    u += u
    signs = xp.floor(u)
    u -= signs                         # u is now the fresh uniform
    signs += signs
    signs -= 1.0                       # {0, 1} -> {-1, +1}, exact
    # Inverse-CDF geometric minus one: floor(log1p(-U) / log1p(-p)),
    # the same scheme as the torch and cupy bindings' geometric(), so
    # every namespace shares one sampling formula in the blocked
    # kernels.  The clamp guards the p -> 0 corner where log1p(-p)
    # underflows to -0.0 and the division would NaN (no realistic
    # phase reaches it: sorties at such p overshoot any budget in one
    # round).  The augmented-assignment spellings are deliberate —
    # they recycle the block-sized scratch in place, and every binding
    # (ndarray, tensor, cupy array) honors them.
    denominator = xp.minimum(
        xp.astype(xp.log1p(-stop_probability), xp.float32), -1e-30
    )
    u *= -1.0
    lengths = xp.log1p(u)
    lengths /= denominator
    lengths = xp.floor(lengths)
    # Signs and lengths stay float32: every integer a kernel compares
    # or accumulates below the float32-exact ceiling (2^24) is exact,
    # and the callers' whole (pairs x block) accounting pipeline runs
    # at half the bandwidth of an int64 one.  See ``_move_dtype`` for
    # how the callers keep move totals exact.
    return signs[0], lengths[0], signs[1], lengths[1]


def sortie_hits(xp: ArrayNamespace, target, signs_v, lengths_v, signs_h, lengths_h):
    """Vectorized L-path hit test + moves-at-hit.

    Mirrors :func:`repro.grid.geometry.l_path_hit_moves`: a target on
    the vertical leg is reached after ``|y|`` moves; on the horizontal
    leg after ``lengths_v + |x|`` moves.
    """
    x, y = target
    if x != 0:
        # Scalar short-circuit: off-axis targets can never sit on the
        # vertical leg, and ``signs_h * x >= 0`` collapses to a sign
        # test — four fewer elementwise passes on the block matrix.
        # The in-place &= chain reuses one bool buffer instead of
        # allocating an intermediate per conjunction.
        hit = signs_v * lengths_v == y
        hit &= signs_h == (1 if x > 0 else -1)
        hit &= lengths_h >= abs(x)
        return hit, lengths_v + abs(x)
    hit_vertical = (x == 0) & (signs_v * y >= 0) & (lengths_v >= abs(y))
    hit_horizontal = (
        (signs_v * lengths_v == y) & (signs_h * x >= 0) & (lengths_h >= abs(x))
    )
    hit = hit_vertical | hit_horizontal
    moves_at_hit = xp.where(hit_vertical, abs(y), lengths_v + abs(x))
    return hit, moves_at_hit


def _batch_state(xp: ArrayNamespace, n_trials: int, n_agents: int):
    """Fresh pooled-pair bookkeeping shared by every kernel."""
    pairs = n_trials * n_agents
    idx = index_dtype(xp, pairs)
    flat = xp.arange(pairs, dtype=idx)
    pair_trial = flat // n_agents
    pair_agent = flat % n_agents
    best = xp.full(n_trials, SENTINEL, dtype=xp.int64)
    best_finder = xp.full(n_trials, -1, dtype=xp.int64)
    trial_iterations = xp.zeros(n_trials, dtype=xp.int64)
    trial_rounds = xp.zeros(n_trials, dtype=xp.int64)
    return pair_trial, pair_agent, best, best_finder, trial_iterations, trial_rounds


def _origin_batch(xp: ArrayNamespace, n_trials: int):
    """Every colony finds an origin target after zero moves."""
    zeros = xp.zeros(n_trials, dtype=xp.int64)
    return (
        zeros,
        xp.zeros(n_trials, dtype=xp.int64),
        xp.zeros(n_trials, dtype=xp.int64),
        xp.zeros(n_trials, dtype=xp.int64),
    )


def _count_round(
    xp, trial_iterations, trial_rounds, pair_trial, n_trials, weight=1
):
    """Per-colony diagnostics: scatter-add this round's active pairs."""
    counts = xp.bincount(pair_trial, minlength=n_trials)
    trial_iterations += counts * weight
    trial_rounds += xp.astype(counts > 0, xp.int64)


def _score_hits(xp, best, best_finder, pair_trial, pair_agent, totals, eligible):
    """Fold eligible finds into each colony's running minimum.

    The finder is resolved with a scatter-min over agent ids (lowest
    agent wins a same-round tie) rather than a plain scatter write:
    duplicate-index writes are nondeterministic on CUDA, and the
    backends promise per-request determinism per namespace.
    """
    if not xp.any(eligible):
        return
    xp.scatter_min(best, pair_trial[eligible], totals[eligible])
    improved = eligible & (totals == xp.take(best, pair_trial))
    if not xp.any(improved):
        return
    winner = xp.full(xp.size(best), SENTINEL, dtype=xp.int64)
    xp.scatter_min(
        winner, pair_trial[improved], xp.astype(pair_agent[improved], xp.int64)
    )
    decided = winner != SENTINEL
    best_finder[decided] = winner[decided]


def batch_lshape(
    xp: ArrayNamespace,
    rng: KernelRNG,
    stop_probability: float,
    n_agents: int,
    n_trials: int,
    target,
    move_budget: int,
):
    """All trials of a constant-stop-probability sortie algorithm at once.

    The hot kernel, and the one with the blocked-round optimization:
    each RNG call covers a ``(pairs, block)`` matrix of sorties, the
    per-pair first hit inside the block is located with a prefix-sum
    scan, and the whole block folds into the colony minima with one
    scatter.  The block length starts small (most pairs retire within a
    few rounds of a fresh pool) and doubles per iteration up to the
    scratch cap, so a near-drained pool simulates thousands of rounds
    per call.

    Diagnostics count the rounds this blocked execution actually
    spent: a pair counts up to its first hit, or up to the round the
    budget/best limit *as known at block start* would have retired it
    (found by the same prefix scan), never the block tail beyond that.
    When a sibling pair's find lands mid-block, the per-round original
    would have pruned survivors a little earlier, so
    ``FastRunStats`` here is a modest upper bound on the per-round
    kernel's counts — outcomes (``best``/``finder``) are unaffected.
    """
    if target == (0, 0):
        return _origin_batch(xp, n_trials)
    (pair_trial, pair_agent, best, best_finder,
     trial_iterations, trial_rounds) = _batch_state(xp, n_trials, n_agents)
    cumulative = xp.zeros(n_trials * n_agents, dtype=xp.int64)
    acc = _move_dtype(xp, move_budget)

    expected_len = max(1.0, 2.0 * (1.0 / stop_probability - 1.0))
    rounds_left = int(200 * (move_budget / expected_len + 1)) + 10_000
    block = 4
    while xp.size(pair_trial) > 0 and rounds_left > 0:
        pairs = xp.size(pair_trial)
        block = _block_len(pairs, 8, block * 2, rounds_left, _MAX_BLOCK)
        rounds_left -= block
        sv, lv, sh, lh = _sample_sorties_fused(
            xp, rng, stop_probability, (pairs, block)
        )
        hit, moves_at_hit = sortie_hits(xp, target, sv, lv, sh, lh)
        # Move accounting stays in the float accounting dtype end to
        # end (see ``_move_dtype``): sums that still matter are exact,
        # beyond-limit sums only feed comparisons their magnitude
        # already decides.
        if acc is xp.float32:
            leg = lv
            leg += lh
        else:
            leg = xp.astype(lv, acc)
            leg += lh
        cum_after = xp.cumsum(leg, axis=1)            # moves after round j
        cum_after += xp.astype(cumulative, acc)[:, None]

        hit_any = xp.astype(xp.sum(hit, axis=1), xp.bool_)
        first = xp.first_true(hit, axis=1)            # 0 where no hit
        moves_before = xp.take_along(cum_after, first) - xp.take_along(leg, first)
        pair_total = xp.astype(
            xp.minimum(
                moves_before + xp.take_along(moves_at_hit, first), _TOTAL_CLAMP
            ),
            xp.int64,
        )

        # Rounds each pair actually executed inside the block: until
        # its first hit, or until the budget/best prune would have
        # retired it.  The limit is the one known at block start; a
        # sibling's mid-block find would have pruned slightly earlier
        # in the per-round original, so these counts are a modest
        # upper bound (see the kernel docstring).  Rows of cum_after
        # are nondecreasing, so the count of rounds under the limit is
        # the first-exceed index — one comparison and one scan instead
        # of a masked sum.
        limit = xp.astype(
            xp.minimum(move_budget, xp.take(best, pair_trial)), acc
        )
        end_cum_f = cum_after[:, -1]
        rounds_in_block = xp.where(hit_any, first + 1, block)
        exceeds = end_cum_f >= limit
        if xp.any(exceeds):
            # Only rows whose end-of-block cumulative reaches the
            # limit can be cut short; the (pairs, block) comparison
            # and scan run on that sparse subset alone.
            fe = xp.first_true(
                cum_after[exceeds] >= limit[exceeds][:, None], axis=1
            )
            rounds_in_block[exceeds] = xp.minimum(
                rounds_in_block[exceeds], fe + 1
            )
        xp.scatter_add(trial_iterations, pair_trial, rounds_in_block)
        block_rounds = xp.zeros(n_trials, dtype=xp.int64)
        xp.scatter_max(block_rounds, pair_trial, rounds_in_block)
        trial_rounds += block_rounds

        eligible = hit_any & (pair_total <= move_budget) & (
            pair_total < xp.take(best, pair_trial)
        )
        _score_hits(
            xp, best, best_finder, pair_trial, pair_agent, pair_total, eligible
        )

        # Single-pass compaction: a pair survives the block iff it
        # never hit and its end-of-block cumulative still beats the
        # (freshly updated) budget/best limit.  Kept cumulatives sit
        # below that limit, hence in the dtype's exact-integer range.
        keep = ~hit_any & (
            end_cum_f
            < xp.astype(xp.minimum(move_budget, xp.take(best, pair_trial)), acc)
        )
        cumulative = xp.astype(end_cum_f[keep], xp.int64)
        pair_trial = pair_trial[keep]
        pair_agent = pair_agent[keep]
    return best, best_finder, trial_iterations, trial_rounds


def _blocked_phase_rounds(
    xp: ArrayNamespace,
    rng: KernelRNG,
    target,
    move_budget: int,
    best,
    best_finder,
    n_trials: int,
    pair_trial,
    pair_agent,
    cumulative,
    stop_p,
    use,
    block: int,
    trial_iterations,
    trial_rounds,
):
    """One blocked round-batch for a phase-driven sortie family.

    Each pair executes up to ``use <= block`` rounds of L-sorties at
    its own per-row stop probability ``stop_p`` — constant within the
    block, because ``use`` never crosses the pair's phase boundary.  A
    prefix-sum scan locates each pair's first in-block hit and its
    cumulative moves there; columns past a pair's ``use`` horizon are
    discarded draws (masked out of hits and move accounting), so every
    *used* column is distributed exactly as a per-round draw at that
    pair's phase.

    Folds eligible finds and the block's diagnostics, then returns
    ``(keep, end_cum)``: the single-pass compaction mask (no hit, and
    end-of-horizon cumulative still below the refreshed budget/best
    limit) and the cumulative moves at each pair's horizon.  The
    caller gathers its own phase state with ``keep``.
    """
    pairs = xp.size(pair_trial)
    acc = _move_dtype(xp, move_budget)
    sv, lv, sh, lh = _sample_sorties_fused(
        xp, rng, stop_p[None, :, None], (pairs, block)
    )
    hit, moves_at_hit = sortie_hits(xp, target, sv, lv, sh, lh)
    if int(xp.sum(use)) != pairs * block:
        # Columns past a row's horizon are discarded draws; mask them
        # out of the hit test.  Skipped entirely when every row runs
        # the full block (the common steady-state case).
        cols = xp.arange(block, dtype=xp.int64)
        hit &= cols[None, :] < use[:, None]
    # No masking of legs: columns past a row's horizon pollute the
    # prefix only at positions >= use, and every read below gathers at
    # first-hit (< use) or at use - 1.  Move accounting stays in the
    # float accounting dtype end to end (see ``_move_dtype``): sums
    # that still matter are exact, beyond-limit sums only feed
    # comparisons their magnitude already decides.  The float32 path
    # accumulates into the sampler's own buffers (already consumed).
    if acc is xp.float32:
        leg = lv
        leg += lh
    else:
        leg = xp.astype(lv, acc)
        leg += lh
    cum_after = xp.cumsum(leg, axis=1)                # moves after round j
    cum_after += xp.astype(cumulative, acc)[:, None]

    hit_any = xp.astype(xp.sum(hit, axis=1), xp.bool_)
    first = xp.first_true(hit, axis=1)                # 0 where no hit
    moves_before = xp.take_along(cum_after, first) - xp.take_along(leg, first)
    pair_total = xp.astype(
        xp.minimum(
            moves_before + xp.take_along(moves_at_hit, first), _TOTAL_CLAMP
        ),
        xp.int64,
    )

    # Rounds each pair actually executed inside the block: until its
    # first hit, or until the budget/best prune (as known at block
    # start) would have retired it — same modest upper bound as the
    # lshape kernel (see its docstring).
    limit = xp.astype(xp.minimum(move_budget, xp.take(best, pair_trial)), acc)
    end_cum_f = xp.take_along(cum_after, use - 1)
    # Rows of cum_after are nondecreasing over the valid region, so
    # "how many rounds stayed under the limit" is the first-exceed
    # index.  Only rows whose horizon-end cumulative reaches the limit
    # can be cut short, so the (pairs, block) comparison + scan runs
    # on that sparse subset alone — by block start the surviving pool
    # is dominated by rows nowhere near their limit.
    rounds_in_block = xp.where(hit_any, first + 1, use)
    exceeds = end_cum_f >= limit
    if xp.any(exceeds):
        fe = xp.first_true(cum_after[exceeds] >= limit[exceeds][:, None], axis=1)
        alive_sub = xp.minimum(fe, use[exceeds] - 1) + 1
        rounds_in_block[exceeds] = xp.minimum(rounds_in_block[exceeds], alive_sub)
    xp.scatter_add(trial_iterations, pair_trial, rounds_in_block)
    block_rounds = xp.zeros(n_trials, dtype=xp.int64)
    xp.scatter_max(block_rounds, pair_trial, rounds_in_block)
    trial_rounds += block_rounds

    eligible = hit_any & (pair_total <= move_budget) & (
        pair_total < xp.take(best, pair_trial)
    )
    _score_hits(
        xp, best, best_finder, pair_trial, pair_agent, pair_total, eligible
    )

    # Kept cumulatives sit below the refreshed limit, hence in the
    # accounting dtype's exact-integer range; the clamp only guards
    # the int64 conversion of already-doomed rows.
    keep = ~hit_any & (
        end_cum_f
        < xp.astype(xp.minimum(move_budget, xp.take(best, pair_trial)), acc)
    )
    end_cum = xp.astype(xp.minimum(end_cum_f, _TOTAL_CLAMP), xp.int64)
    return keep, end_cum


def _phase_block_len(
    xp: ArrayNamespace, calls_left, pairs: int, prev_block: int,
    rounds_left: int,
) -> int:
    """Block length for a phase-driven kernel's next fused draw.

    Doubles the previous block up to the shared scratch cap (fresh
    pools sit in short early phases; the long tail earns long blocks),
    then halves while draw utilization — ``sum(min(calls_left, block))``
    useful columns out of ``pairs * block`` drawn — would fall below
    1/2, so the discarded tail of a ``(pairs, block)`` matrix never
    costs more RNG than the rounds it retires.
    """
    block = _block_len(pairs, 8, prev_block * 2, rounds_left, _MAX_BLOCK,
                       int(xp.max(calls_left)))
    while block > 4:
        used = int(xp.sum(xp.minimum(calls_left, block)))
        if 2 * used >= pairs * block:
            break
        block //= 2
    return block


def batch_uniform(
    xp: ArrayNamespace,
    rng: KernelRNG,
    n_agents: int,
    ell: int,
    K: int,
    n_trials: int,
    target,
    move_budget: int,
    max_phase: int,
):
    """All trials of Algorithm 5 at once, in blocked rounds.

    Per-pair state is ``(phase, calls_left, cumulative)``; phase coins
    are redrawn vectorized (``Geometric(1/rho_i) - 1`` sortie calls per
    phase) whenever a pair exhausts its calls.  Each loop iteration
    then simulates up to ``block`` rounds per pair in one fused draw
    via :func:`_blocked_phase_rounds`, with the pair's validity horizon
    ``min(block, calls_left)`` keeping every used draw inside its
    current phase.  The block length starts small (fresh pools sit in
    short early phases) and doubles per iteration up to the scratch
    cap and the pool's largest remaining phase budget.
    """
    if target == (0, 0):
        return _origin_batch(xp, n_trials)
    discount = math.floor(math.log2(n_agents) / ell) if n_agents > 1 else 0
    (pair_trial, pair_agent, best, best_finder,
     trial_iterations, trial_rounds) = _batch_state(xp, n_trials, n_agents)
    pairs = n_trials * n_agents
    cumulative = xp.zeros(pairs, dtype=xp.int64)
    phase = xp.zeros(pairs, dtype=xp.int64)
    calls_left = xp.zeros(pairs, dtype=xp.int64)

    phase1_len = max(1.0, 2.0 * (2.0**ell - 1.0))
    rounds_left = int(200 * (move_budget / phase1_len + 1)) + 10_000
    block = 4
    while xp.size(pair_trial) > 0 and rounds_left > 0:
        # Refill exhausted phase coins; pairs that run out of phases
        # retire below via the `alive` mask.
        need = calls_left <= 0
        while xp.any(need):
            phase[need] += 1
            need &= phase <= max_phase
            if not xp.any(need):
                break
            exponent = K + xp.maximum(phase[need] - discount, 0)
            rho = xp.exp2(xp.astype(exponent, xp.float64) * ell)
            calls_left[need] = rng.geometric(1.0 / rho) - 1
            need &= calls_left <= 0
        alive = phase <= max_phase
        if not xp.any(alive):
            break
        if xp.size(pair_trial) != int(xp.sum(xp.astype(alive, xp.int64))):
            pair_trial = pair_trial[alive]
            pair_agent = pair_agent[alive]
            cumulative = cumulative[alive]
            phase = phase[alive]
            calls_left = calls_left[alive]
        block = _phase_block_len(
            xp, calls_left, xp.size(pair_trial), block, rounds_left
        )
        rounds_left -= block
        use = xp.minimum(calls_left, block)
        stop_p = xp.exp2(-(xp.astype(phase, xp.float64) * ell))
        keep, end_cum = _blocked_phase_rounds(
            xp, rng, target, move_budget, best, best_finder, n_trials,
            pair_trial, pair_agent, cumulative, stop_p, use, block,
            trial_iterations, trial_rounds,
        )
        cumulative = end_cum[keep]
        calls_left = (calls_left - use)[keep]
        phase = phase[keep]
        pair_trial = pair_trial[keep]
        pair_agent = pair_agent[keep]
    return best, best_finder, trial_iterations, trial_rounds


def batch_doubly_uniform(
    xp: ArrayNamespace,
    rng: KernelRNG,
    n_agents: int,
    ell: int,
    K: int,
    n_trials: int,
    target,
    move_budget: int,
    max_epoch: int = DEFAULT_MAX_EPOCH,
):
    """All trials of the doubly uniform search at once, in blocked rounds.

    Mirrors :func:`repro.sim.fast.fast_doubly_uniform`: epoch ``j``
    commits to the guess ``n_j = 2^j`` and runs phases ``1..j`` of
    Algorithm 5 under that guess.  Per-pair state is ``(epoch, phase,
    calls_left, cumulative)``; when a pair's phase coin runs out it
    advances to the next phase, rolling over to ``(epoch + 1, phase 1)``
    past the epoch's phase range.  Between refills the pair executes
    blocked rounds exactly as :func:`batch_uniform` — one fused
    ``(pairs, block)`` draw, per-pair ``min(block, calls_left)``
    validity horizons, prefix-sum first-hit scans, and one single-pass
    compaction per block.
    """
    if target == (0, 0):
        return _origin_batch(xp, n_trials)
    (pair_trial, pair_agent, best, best_finder,
     trial_iterations, trial_rounds) = _batch_state(xp, n_trials, n_agents)
    pairs = n_trials * n_agents
    cumulative = xp.zeros(pairs, dtype=xp.int64)
    epoch = xp.full(pairs, 1, dtype=xp.int64)
    phase = xp.zeros(pairs, dtype=xp.int64)
    calls_left = xp.zeros(pairs, dtype=xp.int64)

    phase1_len = max(1.0, 2.0 * (2.0**ell - 1.0))
    rounds_left = int(200 * (move_budget / phase1_len + 1)) + 10_000
    block = 4
    while xp.size(pair_trial) > 0 and rounds_left > 0:
        need = calls_left <= 0
        while xp.any(need):
            phase[need] += 1
            rolled = need & (phase > epoch)
            if xp.any(rolled):
                epoch[rolled] += 1
                phase[rolled] = 1
            need &= epoch <= max_epoch
            if not xp.any(need):
                break
            exponent = K + xp.maximum(phase[need] - epoch[need] // ell, 0)
            rho = xp.exp2(xp.astype(exponent, xp.float64) * ell)
            calls_left[need] = rng.geometric(1.0 / rho) - 1
            need &= calls_left <= 0
        alive = epoch <= max_epoch
        if not xp.any(alive):
            break
        if xp.size(pair_trial) != int(xp.sum(xp.astype(alive, xp.int64))):
            pair_trial = pair_trial[alive]
            pair_agent = pair_agent[alive]
            cumulative = cumulative[alive]
            epoch = epoch[alive]
            phase = phase[alive]
            calls_left = calls_left[alive]
        block = _phase_block_len(
            xp, calls_left, xp.size(pair_trial), block, rounds_left
        )
        rounds_left -= block
        use = xp.minimum(calls_left, block)
        stop_p = xp.exp2(-(xp.astype(phase, xp.float64) * ell))
        keep, end_cum = _blocked_phase_rounds(
            xp, rng, target, move_budget, best, best_finder, n_trials,
            pair_trial, pair_agent, cumulative, stop_p, use, block,
            trial_iterations, trial_rounds,
        )
        cumulative = end_cum[keep]
        calls_left = (calls_left - use)[keep]
        epoch = epoch[keep]
        phase = phase[keep]
        pair_trial = pair_trial[keep]
        pair_agent = pair_agent[keep]
    return best, best_finder, trial_iterations, trial_rounds


def _build_walk_tables():
    """Byte-level walk tables: each drawn byte packs four 2-bit steps.

    For every byte value, ``pre_u[b][k]`` / ``pre_v[b][k]`` are the
    rotated-coordinate displacements after the first ``k + 1`` packed
    steps (field ``k`` uses bits ``2k`` for u and ``2k + 1`` for v, the
    same layout the bit-sliced formulation used, so RNG streams are
    unchanged).  Column 3 doubles as the whole-byte sum.
    """
    pre_u, pre_v = [], []
    for byte in range(256):
        cu = cv = 0
        row_u, row_v = [], []
        for k in range(4):
            code = (byte >> (2 * k)) & 3
            cu += 2 * (code & 1) - 1
            cv += (code & 2) - 1
            row_u.append(cu)
            row_v.append(cv)
        pre_u.append(row_u)
        pre_v.append(row_v)
    return pre_u, pre_v


_WALK_PRE_U, _WALK_PRE_V = _build_walk_tables()


def batch_random_walk(
    xp: ArrayNamespace,
    rng: KernelRNG,
    n_agents: int,
    n_trials: int,
    target,
    move_budget: int,
):
    """All trials of the uniform random walk at once, in lockstep.

    Every step is a move, so all pairs' move counts advance together
    and the first find in simulated time is the exact colony minimum —
    a trial retires the moment any of its pairs hits.  Steps run in
    rotated coordinates ``u = x + y, v = x - y``, where the 4-way unit
    step decomposes into two *independent* fair ±1 coins packed four
    to a drawn byte.

    The scan is two-level: a 256-entry table folds each byte into its
    per-axis displacement, so the prefix sums run over ``block / 4``
    *words* instead of ``block`` steps.  A step inside word ``w`` can
    land on the target only if the remaining displacement at the start
    of the word is within ±4 on both axes (an in-byte prefix moves at
    most 4), so the exact per-step check runs only on that coarse
    candidate set — a ``(candidates, 4)`` table lookup — and folds
    back densely at word granularity.  Pairs whose rotated Chebyshev
    distance (== Manhattan distance on the original lattice) exceeds
    the block length skip the scan and advance by two row sums.
    """
    if target == (0, 0):
        return _origin_batch(xp, n_trials)
    (pair_trial, pair_agent, best, best_finder,
     trial_iterations, trial_rounds) = _batch_state(xp, n_trials, n_agents)
    pairs0 = n_trials * n_agents
    pos_u = xp.zeros(pairs0, dtype=xp.int64)
    pos_v = xp.zeros(pairs0, dtype=xp.int64)
    target_u = target[0] + target[1]
    target_v = target[0] - target[1]
    pre_u = xp.asarray(_WALK_PRE_U, dtype=xp.int8)
    pre_v = xp.asarray(_WALK_PRE_V, dtype=xp.int8)
    sum_u = pre_u[:, 3]
    sum_v = pre_v[:, 3]
    moves_done = 0
    while moves_done < move_budget and xp.size(pair_trial):
        pairs = xp.size(pair_trial)
        # Scratch is word-granular (a fraction of a byte per step), but
        # itemsize stays 2 — the bit-sliced formulation's footprint —
        # so block boundaries, and with them the realized outcomes per
        # seed, match the goldens.  Longer blocks measured < 2% faster.
        block = _block_len(pairs, 2, move_budget - moves_done, _MAX_WALK_BLOCK)
        _count_round(
            xp, trial_iterations, trial_rounds, pair_trial, n_trials,
            weight=block,
        )
        # Four 2-bit steps ride in every drawn byte; the byte tables
        # fold each one into its per-axis displacement in one gather.
        # ``rem`` is how many fields of the final word the block uses.
        n_words = (block + 3) // 4
        rem = block - (n_words - 1) * 4
        raw = rng.integers(0, 256, size=(pairs, n_words), dtype=xp.uint8)
        bu = xp.take(sum_u, raw)
        bv = xp.take(sum_v, raw)
        if rem != 4:
            bu[:, -1] = xp.take(pre_u[:, rem - 1], raw[:, -1])
            bv[:, -1] = xp.take(pre_v[:, rem - 1], raw[:, -1])
        rel_u = target_u - pos_u
        rel_v = target_v - pos_v
        near = (xp.abs(rel_u) <= block) & (xp.abs(rel_v) <= block)
        if not xp.any(near):
            pos_u += xp.astype(xp.sum(bu, axis=1), xp.int64)
            pos_v += xp.astype(xp.sum(bv, axis=1), xp.int64)
            moves_done += block
            continue
        split = int(xp.sum(xp.astype(near, xp.int64))) != pairs
        if split:
            far = ~near
            pos_u[far] += xp.astype(xp.sum(bu[far], axis=1), xp.int64)
            pos_v[far] += xp.astype(xp.sum(bv[far], axis=1), xp.int64)
            bu = bu[near]
            bv = bv[near]
            raw = raw[near]
            scan_trial = pair_trial[near]
            scan_agent = pair_agent[near]
            rel_u = rel_u[near]
            rel_v = rel_v[near]
        else:
            scan_trial = pair_trial
            scan_agent = pair_agent
        cum_u = xp.cumsum(bu, axis=1, dtype=xp.int16)  # cum at word ends
        cum_v = xp.cumsum(bv, axis=1, dtype=xp.int16)
        # Remaining displacement at the *start* of each word.  The
        # int16 casts are exact (|rel| <= block <= _MAX_WALK_BLOCK);
        # the one overflowable difference, |rel| + |cum| = 2 * block =
        # 32768, wraps to -32768 and still fails the +-4 window.
        diff_u = xp.astype(rel_u, xp.int16)[:, None] - (cum_u - bu)
        diff_v = xp.astype(rel_v, xp.int16)[:, None] - (cum_v - bv)
        cand = (xp.abs(diff_u) <= 4) & (xp.abs(diff_v) <= 4)
        if xp.any(cand):
            scanned = xp.size(rel_u)
            k_pre_u = xp.take(pre_u, raw[cand])        # (m, 4) in-byte
            k_pre_v = xp.take(pre_v, raw[cand])
            hit_k = k_pre_u == xp.astype(diff_u[cand], xp.int8)[:, None]
            hit_k &= k_pre_v == xp.astype(diff_v[cand], xp.int8)[:, None]
            hit_words = xp.zeros((scanned, n_words), dtype=xp.bool_)
            hit_words[cand] = xp.astype(xp.sum(hit_k, axis=1), xp.bool_)
            first_k = xp.zeros((scanned, n_words), dtype=xp.int64)
            first_k[cand] = xp.first_true(hit_k, axis=1)
            if rem != 4:
                # Fields past the block end in the final word are
                # undrawn steps; a first match there is no match.
                hit_words[:, -1] &= first_k[:, -1] < rem
            pair_hit = xp.astype(xp.sum(hit_words, axis=1), xp.bool_)
            if xp.any(pair_hit):
                first_word = xp.first_true(hit_words, axis=1)
                step_of_hit = xp.where(
                    pair_hit,
                    first_word * 4 + xp.take_along(first_k, first_word),
                    block,
                )
                totals = moves_done + step_of_hit + 1
                _score_hits(
                    xp, best, best_finder, scan_trial, scan_agent, totals,
                    pair_hit,
                )
        if split:
            pos_u[near] += xp.astype(cum_u[:, -1], xp.int64)
            pos_v[near] += xp.astype(cum_v[:, -1], xp.int64)
        else:
            pos_u += xp.astype(cum_u[:, -1], xp.int64)
            pos_v += xp.astype(cum_v[:, -1], xp.int64)
        moves_done += block
        # Lockstep: any later find is later in time, so finished
        # colonies retire wholesale.
        keep = xp.take(best, pair_trial) == SENTINEL
        pos_u = pos_u[keep]
        pos_v = pos_v[keep]
        pair_trial = pair_trial[keep]
        pair_agent = pair_agent[keep]
    return best, best_finder, trial_iterations, trial_rounds


def _spiral_indices(xp: ArrayNamespace, dx, dy):
    """Vectorized :func:`repro.baselines.spiral.spiral_index` in float64.

    Float avoids int64 overflow for offsets beyond ring ~2^31 (late
    Feinerman stages jump that far); any index too large for exact
    float representation is far beyond every realistic quota/budget, so
    the comparisons downstream stay exact where they matter.
    """
    fx = xp.astype(dx, xp.float64)
    fy = xp.astype(dy, xp.float64)
    r = xp.maximum(xp.abs(fx), xp.abs(fy))
    base = (2.0 * r - 1.0) ** 2
    index = xp.where(
        (fx == r) & (fy > -r),
        base + fy + r - 1.0,
        xp.where(
            fy == r,
            base + 2.0 * r + (r - 1.0 - fx),
            xp.where(
                fx == -r,
                base + 4.0 * r + (r - 1.0 - fy),
                base + 6.0 * r + (fx + r - 1.0),
            ),
        ),
    )
    return xp.where(r == 0, 0.0, index)


def batch_feinerman(
    xp: ArrayNamespace,
    rng: KernelRNG,
    n_agents: int,
    n_trials: int,
    target,
    move_budget: int,
    c: float = FEINERMAN_C,
    max_stage: int = DEFAULT_MAX_STAGE,
):
    """All trials of the Feinerman et al. baseline at once.

    Mirrors :func:`repro.baselines.feinerman.fast_feinerman`: per
    round, each active pair draws its stage's uniform center, and a
    closed-form spiral-index test decides whether the quota-bounded
    spiral around that center visits the target.  Quotas and spiral
    indices are computed in float64 and clipped to ``move_budget + 1``
    before the integer accounting: any clipped value already exceeds
    every eligibility limit, so outcomes are unaffected while late
    stages (whose raw quotas overflow int64) stay representable.
    """
    if target == (0, 0):
        return _origin_batch(xp, n_trials)
    (pair_trial, pair_agent, best, best_finder,
     trial_iterations, trial_rounds) = _batch_state(xp, n_trials, n_agents)
    pairs = n_trials * n_agents
    cumulative = xp.zeros(pairs, dtype=xp.int64)
    stages = xp.full(pairs, 1, dtype=xp.int64)

    while xp.size(pair_trial):
        _count_round(xp, trial_iterations, trial_rounds, pair_trial, n_trials)
        radii = 2 ** stages  # max_stage <= 40 keeps this exact in int64
        scale = xp.exp2(xp.astype(stages, xp.float64))
        quota_f = xp.ceil(c * (scale * scale / n_agents + scale))
        quota = xp.astype(xp.minimum(quota_f, move_budget + 1), xp.int64)
        # One fused draw for both center coordinates per pair.
        centers = rng.integers(-radii, radii + 1, size=(2, xp.size(pair_trial)))
        centers_x, centers_y = centers[0], centers[1]
        walk_moves = xp.abs(centers_x) + xp.abs(centers_y)
        indices_f = _spiral_indices(
            xp, target[0] - centers_x, target[1] - centers_y
        )
        hit = indices_f <= quota_f
        indices = xp.astype(xp.minimum(indices_f, move_budget + 1), xp.int64)
        totals = cumulative + walk_moves + indices
        eligible = hit & (totals <= move_budget) & (
            totals < xp.take(best, pair_trial)
        )
        _score_hits(
            xp, best, best_finder, pair_trial, pair_agent, totals, eligible
        )
        # Single-pass compaction across the hit + budget/best + stage
        # retirement conditions.
        new_cum = cumulative + walk_moves + quota
        new_stages = stages + 1
        keep = (
            ~hit
            & (new_cum < xp.minimum(move_budget, xp.take(best, pair_trial)))
            & (new_stages <= max_stage)
        )
        cumulative = new_cum[keep]
        stages = new_stages[keep]
        pair_trial = pair_trial[keep]
        pair_agent = pair_agent[keep]
    return best, best_finder, trial_iterations, trial_rounds


class _CountingRNG:
    """Forwarding RNG proxy counting draw calls for span attributes.

    Only wrapped around the real RNG when a kernel span is live — the
    untraced hot path never pays the indirection.
    """

    def __init__(self, inner: KernelRNG) -> None:
        self._inner = inner
        self.draw_calls = 0

    def __getattr__(self, name: str):
        attr = getattr(self._inner, name)
        if not callable(attr):
            return attr

        def counted(*args, **kwargs):
            self.draw_calls += 1
            return attr(*args, **kwargs)

        return counted


def run_family(
    xp: ArrayNamespace,
    rng: KernelRNG,
    request,
    n_trials: int,
) -> Tuple:
    """Dispatch one :class:`~repro.sim.backends.base.SimulationRequest`
    batch to its family kernel.

    Shared by the ``batched`` (NumPy) and ``accelerator`` (device)
    backends — the only difference between them is the namespace bound
    here.  Returns the four namespace arrays.

    When an ambient trace exists the dispatch is wrapped in a
    ``kernel.<family>`` span carrying the kernel's working set —
    family, trials, agents, namespace/device, scratch budget, and the
    number of blocked RNG draw calls the kernel issued.
    """
    spec = request.algorithm
    with child_span(
        f"kernel.{spec.name}",
        family=spec.name,
        n_trials=n_trials,
        n_agents=request.n_agents,
        namespace=xp.name,
        device=(
            None
            if getattr(xp, "device", None) is None
            else str(xp.device)
        ),
        move_budget=request.move_budget,
        scratch_bytes=SCRATCH_BYTES,
    ) as sp:
        if sp is None:
            return _dispatch_family(xp, rng, request, n_trials)
        counting = _CountingRNG(rng)
        result = _dispatch_family(xp, counting, request, n_trials)
        sp.set_attribute("rng_draw_calls", counting.draw_calls)
        return result


def _dispatch_family(
    xp: ArrayNamespace,
    rng: KernelRNG,
    request,
    n_trials: int,
) -> Tuple:
    spec = request.algorithm
    if spec.name in ("algorithm1", "nonuniform"):
        return batch_lshape(
            xp, rng, stop_probability_for(request), request.n_agents,
            n_trials, request.target, request.move_budget,
        )
    if spec.name == "uniform":
        return batch_uniform(
            xp, rng, request.n_agents, spec.ell or 1, spec.K, n_trials,
            request.target, request.move_budget,
            spec.max_phase or DEFAULT_MAX_PHASE,
        )
    if spec.name == "doubly-uniform":
        return batch_doubly_uniform(
            xp, rng, request.n_agents, spec.ell or 1, spec.K, n_trials,
            request.target, request.move_budget,
        )
    if spec.name == "random-walk":
        return batch_random_walk(
            xp, rng, request.n_agents, n_trials, request.target,
            request.move_budget,
        )
    if spec.name == "feinerman":
        return batch_feinerman(
            xp, rng, request.n_agents, n_trials, request.target,
            request.move_budget,
        )
    raise ValueError(f"no batch kernel for algorithm {spec.name!r}")


def stop_probability_for(request) -> float:
    """The constant stop probability of an lshape-family request."""
    if request.algorithm.name == "algorithm1":
        return 1.0 / request.algorithm.distance
    from repro.core.nonuniform import NonUniformSearch

    return NonUniformSearch(
        request.algorithm.distance, request.algorithm.ell or 1
    ).stop_probability
