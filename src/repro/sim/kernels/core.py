"""Device-portable batched kernels for the six simulable families.

These are the whole-batch kernels the ``batched`` backend historically
kept inline (one pool of (trial, agent) pairs, one vectorized draw per
round, scatter-min colony folds) — extracted to run against *any*
:class:`~repro.sim.kernels.xp.ArrayNamespace`, and optimized on the way
out:

* **Fused multi-round draws (lshape)** — the constant-stop-probability
  families (``algorithm1``/``nonuniform``) sample *blocks* of rounds
  per RNG call: a ``(pairs, block)`` matrix of sorties, closed-form
  prefix-sum move accounting, and one scatter fold per block.  The
  block length doubles as the pool drains, so the long tail — a few
  unretired pairs grinding thousands of rounds — collapses from
  thousands of tiny draws into a handful of big ones.  Folding extra
  post-retirement hits is sound because every such total ``t``
  satisfies ``t >= cumulative >= min(budget, best)`` at the pair's
  original retirement point, so the scatter-min is unaffected.
* **Fused per-round draws (uniform/doubly-uniform/feinerman)** — signs
  and leg lengths (or center coordinates) for one round come from one
  RNG call each instead of two to four.
* **Single-pass compaction** — the hit-survivor prune and the
  budget/best prune are merged into one boolean gather per state array
  per round (previously two).
* **int32 pair/agent indices** — via :func:`~repro.sim.kernels.xp.index_dtype`
  where the pool size permits, halving gather/scatter index bandwidth.

Outcome distributions are unchanged: iterations are still drawn from
exactly the process distribution, and the golden KS gates
(``tests/unit/test_golden_distributions.py``) hold for all six families
on the default namespace.  Draw *order* differs from the pre-extraction
kernels, so per-request streams moved once — recorded by the
``CODE_VERSION`` bump that shipped with the extraction.

Every kernel returns ``(best, best_finder, trial_iterations,
trial_rounds)`` as namespace arrays; callers convert at the boundary
with ``xp.to_numpy``.
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.sim.kernels.xp import ArrayNamespace, KernelRNG, index_dtype

__all__ = [
    "SENTINEL",
    "batch_doubly_uniform",
    "batch_feinerman",
    "batch_lshape",
    "batch_random_walk",
    "batch_uniform",
    "sample_sorties",
    "sortie_hits",
]

#: "No find" marker in the per-trial ``best`` array (int64 max).
SENTINEL = 2**63 - 1

DEFAULT_MAX_PHASE = 50
DEFAULT_MAX_EPOCH = 40
DEFAULT_MAX_STAGE = 40
FEINERMAN_C = 4.0

# Cap on scratch elements per blocked draw: bounds the (pairs x block)
# matrices to a few MB however large the pool or however long the tail.
_BLOCK_ELEMENTS = 1 << 17
#: Longest fused round-block (reached only once the pool is tiny).
_MAX_BLOCK = 1 << 12
# Cap on trajectory elements per random-walk block.
_WALK_BLOCK_ELEMENTS = 1 << 19


def sample_sorties(xp: ArrayNamespace, rng: KernelRNG, stop_probability, count):
    """Sample ``count`` independent L-sorties, one draw per variable.

    Returns ``(signs_v, lengths_v, signs_h, lengths_h)``.  The draw
    order matches the historical ``repro.sim.fast`` helper exactly, so
    the per-trial ``closed_form`` simulators keep their byte-identical
    streams on the NumPy namespace.
    """
    signs_v = rng.integers(0, 2, size=count) * 2 - 1
    signs_h = rng.integers(0, 2, size=count) * 2 - 1
    lengths_v = rng.geometric(stop_probability, size=count) - 1
    lengths_h = rng.geometric(stop_probability, size=count) - 1
    return signs_v, lengths_v, signs_h, lengths_h


def _sample_sorties_fused(
    xp: ArrayNamespace, rng: KernelRNG, stop_probability, shape
):
    """Blocked sortie sampling: one sign draw and one length draw.

    ``shape`` is the per-variable shape (e.g. ``(pairs,)`` or
    ``(pairs, block)``); the fused draws stack the vertical/horizontal
    variables on a leading axis of 2.  Same marginal distribution as
    :func:`sample_sorties`, two RNG calls instead of four.
    """
    fused = (2, *shape) if isinstance(shape, tuple) else (2, shape)
    signs = rng.integers(0, 2, size=fused) * 2 - 1
    lengths = rng.geometric(stop_probability, size=fused) - 1
    return signs[0], lengths[0], signs[1], lengths[1]


def sortie_hits(xp: ArrayNamespace, target, signs_v, lengths_v, signs_h, lengths_h):
    """Vectorized L-path hit test + moves-at-hit.

    Mirrors :func:`repro.grid.geometry.l_path_hit_moves`: a target on
    the vertical leg is reached after ``|y|`` moves; on the horizontal
    leg after ``lengths_v + |x|`` moves.
    """
    x, y = target
    hit_vertical = (x == 0) & (signs_v * y >= 0) & (lengths_v >= abs(y))
    hit_horizontal = (
        (signs_v * lengths_v == y) & (signs_h * x >= 0) & (lengths_h >= abs(x))
    )
    hit = hit_vertical | hit_horizontal
    moves_at_hit = xp.where(hit_vertical, abs(y), lengths_v + abs(x))
    return hit, moves_at_hit


def _batch_state(xp: ArrayNamespace, n_trials: int, n_agents: int):
    """Fresh pooled-pair bookkeeping shared by every kernel."""
    pairs = n_trials * n_agents
    idx = index_dtype(xp, pairs)
    flat = xp.arange(pairs, dtype=idx)
    pair_trial = flat // n_agents
    pair_agent = flat % n_agents
    best = xp.full(n_trials, SENTINEL, dtype=xp.int64)
    best_finder = xp.full(n_trials, -1, dtype=xp.int64)
    trial_iterations = xp.zeros(n_trials, dtype=xp.int64)
    trial_rounds = xp.zeros(n_trials, dtype=xp.int64)
    return pair_trial, pair_agent, best, best_finder, trial_iterations, trial_rounds


def _origin_batch(xp: ArrayNamespace, n_trials: int):
    """Every colony finds an origin target after zero moves."""
    zeros = xp.zeros(n_trials, dtype=xp.int64)
    return (
        zeros,
        xp.zeros(n_trials, dtype=xp.int64),
        xp.zeros(n_trials, dtype=xp.int64),
        xp.zeros(n_trials, dtype=xp.int64),
    )


def _count_round(
    xp, trial_iterations, trial_rounds, pair_trial, n_trials, weight=1
):
    """Per-colony diagnostics: scatter-add this round's active pairs."""
    counts = xp.bincount(pair_trial, minlength=n_trials)
    trial_iterations += counts * weight
    trial_rounds += xp.astype(counts > 0, xp.int64)


def _score_hits(xp, best, best_finder, pair_trial, pair_agent, totals, eligible):
    """Fold eligible finds into each colony's running minimum.

    The finder is resolved with a scatter-min over agent ids (lowest
    agent wins a same-round tie) rather than a plain scatter write:
    duplicate-index writes are nondeterministic on CUDA, and the
    backends promise per-request determinism per namespace.
    """
    if not xp.any(eligible):
        return
    xp.scatter_min(best, pair_trial[eligible], totals[eligible])
    improved = eligible & (totals == xp.take(best, pair_trial))
    if not xp.any(improved):
        return
    winner = xp.full(xp.size(best), SENTINEL, dtype=xp.int64)
    xp.scatter_min(
        winner, pair_trial[improved], xp.astype(pair_agent[improved], xp.int64)
    )
    decided = winner != SENTINEL
    best_finder[decided] = winner[decided]


def batch_lshape(
    xp: ArrayNamespace,
    rng: KernelRNG,
    stop_probability: float,
    n_agents: int,
    n_trials: int,
    target,
    move_budget: int,
):
    """All trials of a constant-stop-probability sortie algorithm at once.

    The hot kernel, and the one with the blocked-round optimization:
    each RNG call covers a ``(pairs, block)`` matrix of sorties, the
    per-pair first hit inside the block is located with a prefix-sum
    scan, and the whole block folds into the colony minima with one
    scatter.  The block length starts small (most pairs retire within a
    few rounds of a fresh pool) and doubles per iteration up to the
    scratch cap, so a near-drained pool simulates thousands of rounds
    per call.

    Diagnostics count the rounds this blocked execution actually
    spent: a pair counts up to its first hit, or up to the round the
    budget/best limit *as known at block start* would have retired it
    (found by the same prefix scan), never the block tail beyond that.
    When a sibling pair's find lands mid-block, the per-round original
    would have pruned survivors a little earlier, so
    ``FastRunStats`` here is a modest upper bound on the per-round
    kernel's counts — outcomes (``best``/``finder``) are unaffected.
    """
    if target == (0, 0):
        return _origin_batch(xp, n_trials)
    (pair_trial, pair_agent, best, best_finder,
     trial_iterations, trial_rounds) = _batch_state(xp, n_trials, n_agents)
    cumulative = xp.zeros(n_trials * n_agents, dtype=xp.int64)

    expected_len = max(1.0, 2.0 * (1.0 / stop_probability - 1.0))
    rounds_left = int(200 * (move_budget / expected_len + 1)) + 10_000
    block = 4
    while xp.size(pair_trial) > 0 and rounds_left > 0:
        pairs = xp.size(pair_trial)
        block = min(
            block * 2, rounds_left, max(1, _BLOCK_ELEMENTS // pairs), _MAX_BLOCK
        )
        rounds_left -= block
        sv, lv, sh, lh = _sample_sorties_fused(
            xp, rng, stop_probability, (pairs, block)
        )
        hit, moves_at_hit = sortie_hits(xp, target, sv, lv, sh, lh)
        leg = lv + lh
        prefix = xp.cumsum(leg, axis=1)               # moves after round j
        cum_after = cumulative[:, None] + prefix      # (pairs, block)

        hit_any = xp.astype(xp.sum(hit, axis=1), xp.bool_)
        first = xp.first_true(hit, axis=1)            # 0 where no hit
        moves_before = xp.take_along(cum_after, first) - xp.take_along(leg, first)
        pair_total = moves_before + xp.take_along(moves_at_hit, first)

        # Rounds each pair actually executed inside the block: until
        # its first hit, or until the budget/best prune would have
        # retired it.  The limit is the one known at block start; a
        # sibling's mid-block find would have pruned slightly earlier
        # in the per-round original, so these counts are a modest
        # upper bound (see the kernel docstring).
        limit = xp.minimum(move_budget, xp.take(best, pair_trial))
        alive_rounds = (
            xp.sum(xp.astype(cum_after[:, : block - 1] < limit[:, None],
                             xp.int64), axis=1) + 1
        )
        hit_rounds = xp.where(hit_any, first + 1, block)
        rounds_in_block = xp.minimum(hit_rounds, alive_rounds)
        xp.scatter_add(trial_iterations, pair_trial, rounds_in_block)
        block_rounds = xp.zeros(n_trials, dtype=xp.int64)
        xp.scatter_max(block_rounds, pair_trial, rounds_in_block)
        trial_rounds += block_rounds

        eligible = hit_any & (pair_total <= move_budget) & (
            pair_total < xp.take(best, pair_trial)
        )
        _score_hits(
            xp, best, best_finder, pair_trial, pair_agent, pair_total, eligible
        )

        # Single-pass compaction: a pair survives the block iff it
        # never hit and its end-of-block cumulative still beats the
        # (freshly updated) budget/best limit.
        keep = ~hit_any & (
            cum_after[:, -1] < xp.minimum(move_budget, xp.take(best, pair_trial))
        )
        cumulative = cum_after[:, -1][keep]
        pair_trial = pair_trial[keep]
        pair_agent = pair_agent[keep]
    return best, best_finder, trial_iterations, trial_rounds


def batch_uniform(
    xp: ArrayNamespace,
    rng: KernelRNG,
    n_agents: int,
    ell: int,
    K: int,
    n_trials: int,
    target,
    move_budget: int,
    max_phase: int,
):
    """All trials of Algorithm 5 at once.

    Per-pair state is ``(phase, calls_left, cumulative)``; phase coins
    are redrawn vectorized (``Geometric(1/rho_i) - 1`` sortie calls per
    phase) whenever a pair exhausts its calls, and every active pair
    contributes one sortie per round with its own phase's stop
    probability.
    """
    if target == (0, 0):
        return _origin_batch(xp, n_trials)
    discount = math.floor(math.log2(n_agents) / ell) if n_agents > 1 else 0
    (pair_trial, pair_agent, best, best_finder,
     trial_iterations, trial_rounds) = _batch_state(xp, n_trials, n_agents)
    pairs = n_trials * n_agents
    cumulative = xp.zeros(pairs, dtype=xp.int64)
    phase = xp.zeros(pairs, dtype=xp.int64)
    calls_left = xp.zeros(pairs, dtype=xp.int64)

    phase1_len = max(1.0, 2.0 * (2.0**ell - 1.0))
    max_rounds = int(200 * (move_budget / phase1_len + 1)) + 10_000
    for _ in range(max_rounds):
        if xp.size(pair_trial) == 0:
            break
        # Refill exhausted phase coins; pairs that run out of phases
        # retire below via the `alive` mask.
        need = calls_left <= 0
        while xp.any(need):
            phase[need] += 1
            need &= phase <= max_phase
            if not xp.any(need):
                break
            exponent = K + xp.maximum(phase[need] - discount, 0)
            rho = xp.exp2(xp.astype(exponent, xp.float64) * ell)
            calls_left[need] = rng.geometric(1.0 / rho) - 1
            need &= calls_left <= 0
        alive = phase <= max_phase
        if not xp.any(alive):
            break
        if xp.size(pair_trial) != int(xp.sum(xp.astype(alive, xp.int64))):
            pair_trial = pair_trial[alive]
            pair_agent = pair_agent[alive]
            cumulative = cumulative[alive]
            phase = phase[alive]
            calls_left = calls_left[alive]
        _count_round(xp, trial_iterations, trial_rounds, pair_trial, n_trials)
        stop_p = xp.exp2(-(xp.astype(phase, xp.float64) * ell))
        sv, lv, sh, lh = _sample_sorties_fused(
            xp, rng, stop_p, (xp.size(pair_trial),)
        )
        hit, moves_at_hit = sortie_hits(xp, target, sv, lv, sh, lh)
        totals = cumulative + moves_at_hit
        eligible = hit & (totals <= move_budget) & (
            totals < xp.take(best, pair_trial)
        )
        _score_hits(
            xp, best, best_finder, pair_trial, pair_agent, totals, eligible
        )
        # Single-pass compaction: drop hit pairs and budget/best-
        # retired pairs with one gather per state array.
        new_cum = cumulative + lv + lh
        keep = ~hit & (
            new_cum < xp.minimum(move_budget, xp.take(best, pair_trial))
        )
        cumulative = new_cum[keep]
        calls_left = calls_left[keep] - 1
        phase = phase[keep]
        pair_trial = pair_trial[keep]
        pair_agent = pair_agent[keep]
    return best, best_finder, trial_iterations, trial_rounds


def batch_doubly_uniform(
    xp: ArrayNamespace,
    rng: KernelRNG,
    n_agents: int,
    ell: int,
    K: int,
    n_trials: int,
    target,
    move_budget: int,
    max_epoch: int = DEFAULT_MAX_EPOCH,
):
    """All trials of the doubly uniform search at once.

    Mirrors :func:`repro.sim.fast.fast_doubly_uniform`: epoch ``j``
    commits to the guess ``n_j = 2^j`` and runs phases ``1..j`` of
    Algorithm 5 under that guess.  Per-pair state is ``(epoch, phase,
    calls_left, cumulative)``; when a pair's phase coin runs out it
    advances to the next phase, rolling over to ``(epoch + 1, phase 1)``
    past the epoch's phase range.
    """
    if target == (0, 0):
        return _origin_batch(xp, n_trials)
    (pair_trial, pair_agent, best, best_finder,
     trial_iterations, trial_rounds) = _batch_state(xp, n_trials, n_agents)
    pairs = n_trials * n_agents
    cumulative = xp.zeros(pairs, dtype=xp.int64)
    epoch = xp.full(pairs, 1, dtype=xp.int64)
    phase = xp.zeros(pairs, dtype=xp.int64)
    calls_left = xp.zeros(pairs, dtype=xp.int64)

    phase1_len = max(1.0, 2.0 * (2.0**ell - 1.0))
    max_rounds = int(200 * (move_budget / phase1_len + 1)) + 10_000
    for _ in range(max_rounds):
        if xp.size(pair_trial) == 0:
            break
        need = calls_left <= 0
        while xp.any(need):
            phase[need] += 1
            rolled = need & (phase > epoch)
            if xp.any(rolled):
                epoch[rolled] += 1
                phase[rolled] = 1
            need &= epoch <= max_epoch
            if not xp.any(need):
                break
            exponent = K + xp.maximum(phase[need] - epoch[need] // ell, 0)
            rho = xp.exp2(xp.astype(exponent, xp.float64) * ell)
            calls_left[need] = rng.geometric(1.0 / rho) - 1
            need &= calls_left <= 0
        alive = epoch <= max_epoch
        if not xp.any(alive):
            break
        if xp.size(pair_trial) != int(xp.sum(xp.astype(alive, xp.int64))):
            pair_trial = pair_trial[alive]
            pair_agent = pair_agent[alive]
            cumulative = cumulative[alive]
            epoch = epoch[alive]
            phase = phase[alive]
            calls_left = calls_left[alive]
        _count_round(xp, trial_iterations, trial_rounds, pair_trial, n_trials)
        stop_p = xp.exp2(-(xp.astype(phase, xp.float64) * ell))
        sv, lv, sh, lh = _sample_sorties_fused(
            xp, rng, stop_p, (xp.size(pair_trial),)
        )
        hit, moves_at_hit = sortie_hits(xp, target, sv, lv, sh, lh)
        totals = cumulative + moves_at_hit
        eligible = hit & (totals <= move_budget) & (
            totals < xp.take(best, pair_trial)
        )
        _score_hits(
            xp, best, best_finder, pair_trial, pair_agent, totals, eligible
        )
        new_cum = cumulative + lv + lh
        keep = ~hit & (
            new_cum < xp.minimum(move_budget, xp.take(best, pair_trial))
        )
        cumulative = new_cum[keep]
        calls_left = calls_left[keep] - 1
        epoch = epoch[keep]
        phase = phase[keep]
        pair_trial = pair_trial[keep]
        pair_agent = pair_agent[keep]
    return best, best_finder, trial_iterations, trial_rounds


def batch_random_walk(
    xp: ArrayNamespace,
    rng: KernelRNG,
    n_agents: int,
    n_trials: int,
    target,
    move_budget: int,
):
    """All trials of the uniform random walk at once, in lockstep.

    Every step is a move, so all pairs' move counts advance together
    and the first find in simulated time is the exact colony minimum —
    a trial retires the moment any of its pairs hits.  Steps are
    simulated in blocks, with the block length bounded so the
    ``(pairs x block)`` trajectory scratch stays memory-bounded.
    """
    if target == (0, 0):
        return _origin_batch(xp, n_trials)
    (pair_trial, pair_agent, best, best_finder,
     trial_iterations, trial_rounds) = _batch_state(xp, n_trials, n_agents)
    steps_table = xp.asarray(
        [(0, 1), (0, -1), (-1, 0), (1, 0)], dtype=xp.int64
    )
    positions = xp.zeros((n_trials * n_agents, 2), dtype=xp.int64)
    x, y = target
    moves_done = 0
    while moves_done < move_budget and xp.size(pair_trial):
        pairs = xp.size(pair_trial)
        # The scratch is (pairs x block); bounding their product keeps
        # even huge pooled batches at a few MB per round (block
        # degrades to 1 step when the pair pool alone reaches the cap).
        block = min(
            move_budget - moves_done,
            max(1, _WALK_BLOCK_ELEMENTS // pairs),
        )
        _count_round(
            xp, trial_iterations, trial_rounds, pair_trial, n_trials,
            weight=block,
        )
        choices = rng.integers(0, 4, size=(pairs, block))
        trajectory = positions[:, None, :] + xp.cumsum(
            steps_table[choices], axis=1
        )
        hits = (trajectory[:, :, 0] == x) & (trajectory[:, :, 1] == y)
        pair_hit = xp.astype(xp.sum(hits, axis=1), xp.bool_)
        if xp.any(pair_hit):
            step_of_hit = xp.where(
                pair_hit, xp.first_true(hits, axis=1), block
            )
            totals = moves_done + step_of_hit + 1
            _score_hits(
                xp, best, best_finder, pair_trial, pair_agent, totals, pair_hit
            )
        positions = trajectory[:, -1, :]
        moves_done += block
        # Lockstep: any later find is later in time, so finished
        # colonies retire wholesale.
        keep = xp.take(best, pair_trial) == SENTINEL
        positions = positions[keep]
        pair_trial = pair_trial[keep]
        pair_agent = pair_agent[keep]
    return best, best_finder, trial_iterations, trial_rounds


def _spiral_indices(xp: ArrayNamespace, dx, dy):
    """Vectorized :func:`repro.baselines.spiral.spiral_index` in float64.

    Float avoids int64 overflow for offsets beyond ring ~2^31 (late
    Feinerman stages jump that far); any index too large for exact
    float representation is far beyond every realistic quota/budget, so
    the comparisons downstream stay exact where they matter.
    """
    fx = xp.astype(dx, xp.float64)
    fy = xp.astype(dy, xp.float64)
    r = xp.maximum(xp.abs(fx), xp.abs(fy))
    base = (2.0 * r - 1.0) ** 2
    index = xp.where(
        (fx == r) & (fy > -r),
        base + fy + r - 1.0,
        xp.where(
            fy == r,
            base + 2.0 * r + (r - 1.0 - fx),
            xp.where(
                fx == -r,
                base + 4.0 * r + (r - 1.0 - fy),
                base + 6.0 * r + (fx + r - 1.0),
            ),
        ),
    )
    return xp.where(r == 0, 0.0, index)


def batch_feinerman(
    xp: ArrayNamespace,
    rng: KernelRNG,
    n_agents: int,
    n_trials: int,
    target,
    move_budget: int,
    c: float = FEINERMAN_C,
    max_stage: int = DEFAULT_MAX_STAGE,
):
    """All trials of the Feinerman et al. baseline at once.

    Mirrors :func:`repro.baselines.feinerman.fast_feinerman`: per
    round, each active pair draws its stage's uniform center, and a
    closed-form spiral-index test decides whether the quota-bounded
    spiral around that center visits the target.  Quotas and spiral
    indices are computed in float64 and clipped to ``move_budget + 1``
    before the integer accounting: any clipped value already exceeds
    every eligibility limit, so outcomes are unaffected while late
    stages (whose raw quotas overflow int64) stay representable.
    """
    if target == (0, 0):
        return _origin_batch(xp, n_trials)
    (pair_trial, pair_agent, best, best_finder,
     trial_iterations, trial_rounds) = _batch_state(xp, n_trials, n_agents)
    pairs = n_trials * n_agents
    cumulative = xp.zeros(pairs, dtype=xp.int64)
    stages = xp.full(pairs, 1, dtype=xp.int64)

    while xp.size(pair_trial):
        _count_round(xp, trial_iterations, trial_rounds, pair_trial, n_trials)
        radii = 2 ** stages  # max_stage <= 40 keeps this exact in int64
        scale = xp.exp2(xp.astype(stages, xp.float64))
        quota_f = xp.ceil(c * (scale * scale / n_agents + scale))
        quota = xp.astype(xp.minimum(quota_f, move_budget + 1), xp.int64)
        # One fused draw for both center coordinates per pair.
        centers = rng.integers(-radii, radii + 1, size=(2, xp.size(pair_trial)))
        centers_x, centers_y = centers[0], centers[1]
        walk_moves = xp.abs(centers_x) + xp.abs(centers_y)
        indices_f = _spiral_indices(
            xp, target[0] - centers_x, target[1] - centers_y
        )
        hit = indices_f <= quota_f
        indices = xp.astype(xp.minimum(indices_f, move_budget + 1), xp.int64)
        totals = cumulative + walk_moves + indices
        eligible = hit & (totals <= move_budget) & (
            totals < xp.take(best, pair_trial)
        )
        _score_hits(
            xp, best, best_finder, pair_trial, pair_agent, totals, eligible
        )
        # Single-pass compaction across the hit + budget/best + stage
        # retirement conditions.
        new_cum = cumulative + walk_moves + quota
        new_stages = stages + 1
        keep = (
            ~hit
            & (new_cum < xp.minimum(move_budget, xp.take(best, pair_trial)))
            & (new_stages <= max_stage)
        )
        cumulative = new_cum[keep]
        stages = new_stages[keep]
        pair_trial = pair_trial[keep]
        pair_agent = pair_agent[keep]
    return best, best_finder, trial_iterations, trial_rounds


def run_family(
    xp: ArrayNamespace,
    rng: KernelRNG,
    request,
    n_trials: int,
) -> Tuple:
    """Dispatch one :class:`~repro.sim.backends.base.SimulationRequest`
    batch to its family kernel.

    Shared by the ``batched`` (NumPy) and ``accelerator`` (device)
    backends — the only difference between them is the namespace bound
    here.  Returns the four namespace arrays.
    """
    spec = request.algorithm
    if spec.name in ("algorithm1", "nonuniform"):
        return batch_lshape(
            xp, rng, stop_probability_for(request), request.n_agents,
            n_trials, request.target, request.move_budget,
        )
    if spec.name == "uniform":
        return batch_uniform(
            xp, rng, request.n_agents, spec.ell or 1, spec.K, n_trials,
            request.target, request.move_budget,
            spec.max_phase or DEFAULT_MAX_PHASE,
        )
    if spec.name == "doubly-uniform":
        return batch_doubly_uniform(
            xp, rng, request.n_agents, spec.ell or 1, spec.K, n_trials,
            request.target, request.move_budget,
        )
    if spec.name == "random-walk":
        return batch_random_walk(
            xp, rng, request.n_agents, n_trials, request.target,
            request.move_budget,
        )
    if spec.name == "feinerman":
        return batch_feinerman(
            xp, rng, request.n_agents, n_trials, request.target,
            request.move_budget,
        )
    raise ValueError(f"no batch kernel for algorithm {spec.name!r}")


def stop_probability_for(request) -> float:
    """The constant stop probability of an lshape-family request."""
    if request.algorithm.name == "algorithm1":
        return 1.0 / request.algorithm.distance
    from repro.core.nonuniform import NonUniformSearch

    return NonUniformSearch(
        request.algorithm.distance, request.algorithm.ell or 1
    ).stop_probability
