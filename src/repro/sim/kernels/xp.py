"""Array-namespace shim: one kernel source, NumPy / torch / CuPy bindings.

The batched kernels (:mod:`repro.sim.kernels.core`) are pure
gather/scatter/geometric-sampling code — nothing in them is NumPy-
specific except the spelling of ~two dozen array operations.  This
module pins that spelling down as :class:`ArrayNamespace`: a minimal,
explicit surface (creation, elementwise math, reductions, fancy
indexing, scatter reductions, RNG) that binds to

* **NumPy** — always available, the default and the determinism
  anchor: the NumPy binding forwards every call to the exact
  ``np.random.Generator`` methods the pre-extraction kernels used, so
  request-level determinism is preserved bit-for-bit on this namespace;
* **torch** — CPU or CUDA, when importable (``torch_namespace()``);
* **CuPy** — CUDA, when importable (``cupy_namespace()``).

Device resolution for the ``accelerator`` backend lives here too:
:func:`resolve_accelerator` probes CuPy, then torch-CUDA, and returns
``None`` (with a human-readable reason from
:func:`accelerator_unavailable_reason`) when no device-backed namespace
exists.  The ``REPRO_ANTS_ACCELERATOR`` environment variable overrides
the probe — ``torch-cpu`` binds torch without a GPU (how the CI parity
leg exercises the accelerator path end-to-end), ``off`` disables the
backend entirely, ``auto``/unset probes.

Scalar-distribution contracts the bindings must honor:

* ``integers(low, high)`` — uniform on ``[low, high)``; ``low``/``high``
  may be arrays (the Feinerman kernel draws per-pair center boxes);
* ``geometric(p)`` — support ``{1, 2, ...}`` with pmf
  ``(1-p)^(k-1) p``, matching ``np.random.Generator.geometric``; the
  torch binding inverts the CDF from float64 uniforms.
"""

from __future__ import annotations

import os
from typing import Any, Optional, Tuple

import numpy as np

__all__ = [
    "ArrayNamespace",
    "KernelRNG",
    "accelerator_unavailable_reason",
    "available_namespace_names",
    "numpy_namespace",
    "resolve_accelerator",
    "torch_namespace",
    "cupy_namespace",
]

#: Environment override for accelerator binding; see module docstring.
ACCELERATOR_ENV = "REPRO_ANTS_ACCELERATOR"


class KernelRNG:
    """Deterministic draw source bound to one namespace's device."""

    def integers(self, low, high, size=None, dtype=None):
        """Uniform integers on ``[low, high)``; bounds may be arrays.

        ``dtype`` (a namespace dtype handle) narrows the output width —
        the random-walk kernel draws its 2-bit step choices as uint8,
        quartering the draw bandwidth.  ``None`` keeps the binding's
        historical int64 output.
        """
        raise NotImplementedError

    def geometric(self, p, size=None):
        """Geometric on ``{1, 2, ...}``; ``p`` may be an array."""
        raise NotImplementedError

    def random(self, size=None, dtype=None):
        """Uniform draws on ``[0, 1)``; float64 unless ``dtype`` narrows.

        The raw material for inverse-CDF sampling in kernel code: one
        bulk uniform fill plus vectorized transforms beats a
        per-element distribution sampler when ``p`` varies per row
        (NumPy's array-``p`` ``Generator.geometric`` walks elements in
        a C loop; the blocked kernels draw millions per call).  A
        float32 ``dtype`` halves the fill-and-transform bandwidth at
        24-bit granularity — plenty for distribution gates.
        """
        raise NotImplementedError


class ArrayNamespace:
    """The minimal array surface the kernels are written against.

    Subclasses bind one array library (and device).  Every method is a
    thin forwarding wrapper — the point is a *named, closed* op set, so
    porting to a new library is a page of glue, not a kernel rewrite.
    """

    #: Library name: ``numpy``, ``torch``, ``cupy``.
    name: str = "abstract"
    #: Device the arrays live on: ``cpu``, ``cuda``, ``cuda:0``...
    device: str = "cpu"

    # Dtype handles (bound per library).
    int8: Any = None
    int16: Any = None
    int32: Any = None
    int64: Any = None
    uint8: Any = None
    float32: Any = None
    float64: Any = None
    bool_: Any = None

    def is_device_backed(self) -> bool:
        """Whether arrays live on an accelerator device (not host RAM)."""
        return not self.device.startswith("cpu")

    # -- creation ----------------------------------------------------
    def asarray(self, obj, dtype=None):
        raise NotImplementedError

    def zeros(self, shape, dtype=None):
        raise NotImplementedError

    def full(self, shape, fill, dtype=None):
        raise NotImplementedError

    def arange(self, n, dtype=None):
        raise NotImplementedError

    # -- elementwise -------------------------------------------------
    def where(self, cond, a, b):
        raise NotImplementedError

    def minimum(self, a, b):
        raise NotImplementedError

    def maximum(self, a, b):
        raise NotImplementedError

    def abs(self, a):
        raise NotImplementedError

    def exp2(self, a):
        raise NotImplementedError

    def ceil(self, a):
        raise NotImplementedError

    def floor(self, a):
        raise NotImplementedError

    def log1p(self, a):
        raise NotImplementedError

    def astype(self, a, dtype):
        raise NotImplementedError

    # -- reductions / scans ------------------------------------------
    def any(self, a) -> bool:
        raise NotImplementedError

    def sum(self, a, axis=None):
        raise NotImplementedError

    def max(self, a):
        """Largest element of a (nonempty) array, as a 0-d scalar."""
        raise NotImplementedError

    def cumsum(self, a, axis, dtype=None):
        """Prefix sum along ``axis``; ``dtype`` widens (or narrows) the
        accumulator — the walk kernel sums int8 steps into int16."""
        raise NotImplementedError

    def first_true(self, mask, axis):
        """Index of the first ``True`` along ``axis`` (0 where none)."""
        raise NotImplementedError

    def size(self, a) -> int:
        raise NotImplementedError

    # -- gather / scatter --------------------------------------------
    def take(self, a, idx):
        """``a[idx]`` with the index cast the library requires."""
        raise NotImplementedError

    def take_along(self, a, idx):
        """Per-row gather: ``a[i, idx[i]]`` for 2-D ``a``, 1-D ``idx``."""
        raise NotImplementedError

    def scatter_min(self, target, idx, values) -> None:
        """In-place ``target[idx] = min(target[idx], values)`` with duplicates."""
        raise NotImplementedError

    def scatter_max(self, target, idx, values) -> None:
        raise NotImplementedError

    def scatter_add(self, target, idx, values) -> None:
        raise NotImplementedError

    def bincount(self, idx, minlength):
        raise NotImplementedError

    # -- boundary ----------------------------------------------------
    def to_numpy(self, a) -> np.ndarray:
        raise NotImplementedError

    def rng(self, seed_sequence: np.random.SeedSequence) -> KernelRNG:
        """A deterministic generator for this namespace/device."""
        raise NotImplementedError


# ---------------------------------------------------------------------------
# NumPy binding — the default, and the request-determinism anchor.
# ---------------------------------------------------------------------------


class _NumpyRNG(KernelRNG):
    """Transparent wrapper: byte-identical streams to the raw Generator."""

    def __init__(self, generator: np.random.Generator) -> None:
        self.generator = generator

    def integers(self, low, high, size=None, dtype=None):
        if dtype is None:
            return self.generator.integers(low, high, size=size)
        return self.generator.integers(low, high, size=size, dtype=dtype)

    def geometric(self, p, size=None):
        return self.generator.geometric(p, size=size)

    def random(self, size=None, dtype=None):
        if dtype is None:
            return self.generator.random(size=size)
        return self.generator.random(size=size, dtype=dtype)


class NumpyNamespace(ArrayNamespace):
    name = "numpy"
    device = "cpu"

    int8 = np.int8
    int16 = np.int16
    int32 = np.int32
    int64 = np.int64
    uint8 = np.uint8
    float32 = np.float32
    float64 = np.float64
    bool_ = np.bool_

    def asarray(self, obj, dtype=None):
        return np.asarray(obj, dtype=dtype)

    def zeros(self, shape, dtype=None):
        return np.zeros(shape, dtype=dtype)

    def full(self, shape, fill, dtype=None):
        return np.full(shape, fill, dtype=dtype)

    def arange(self, n, dtype=None):
        return np.arange(n, dtype=dtype)

    def where(self, cond, a, b):
        return np.where(cond, a, b)

    def minimum(self, a, b):
        return np.minimum(a, b)

    def maximum(self, a, b):
        return np.maximum(a, b)

    def abs(self, a):
        return np.abs(a)

    def exp2(self, a):
        return np.exp2(a)

    def ceil(self, a):
        return np.ceil(a)

    def floor(self, a):
        return np.floor(a)

    def log1p(self, a):
        return np.log1p(a)

    def astype(self, a, dtype):
        return np.asarray(a).astype(dtype)

    def any(self, a) -> bool:
        return bool(np.any(a))

    def sum(self, a, axis=None):
        return np.sum(a, axis=axis)

    def max(self, a):
        return np.max(a)

    def cumsum(self, a, axis, dtype=None):
        return np.cumsum(a, axis=axis, dtype=dtype)

    def first_true(self, mask, axis):
        return np.argmax(mask, axis=axis)

    def size(self, a) -> int:
        return int(a.size)

    def take(self, a, idx):
        return a[idx]

    def take_along(self, a, idx):
        return np.take_along_axis(a, idx[:, None], axis=1)[:, 0]

    def scatter_min(self, target, idx, values) -> None:
        np.minimum.at(target, idx, values)

    def scatter_max(self, target, idx, values) -> None:
        np.maximum.at(target, idx, values)

    def scatter_add(self, target, idx, values) -> None:
        np.add.at(target, idx, values)

    def bincount(self, idx, minlength):
        return np.bincount(idx, minlength=minlength)

    def to_numpy(self, a) -> np.ndarray:
        return np.asarray(a)

    def rng(self, seed_sequence: np.random.SeedSequence) -> KernelRNG:
        # Exactly the generator the pre-extraction backend built, so
        # the default namespace keeps its historical streams.
        return _NumpyRNG(np.random.default_rng(seed_sequence))


# ---------------------------------------------------------------------------
# torch binding — CPU or CUDA.
# ---------------------------------------------------------------------------


class _TorchRNG(KernelRNG):
    def __init__(self, torch_mod, device: str, seed: int) -> None:
        self._torch = torch_mod
        self._device = device
        self._generator = torch_mod.Generator(device=device)
        self._generator.manual_seed(seed)

    def _shape(self, size) -> Tuple[int, ...]:
        if size is None:
            return ()
        return (size,) if isinstance(size, int) else tuple(size)

    def integers(self, low, high, size=None, dtype=None):
        torch = self._torch
        if isinstance(low, int) and isinstance(high, int):
            return torch.randint(
                low, high, self._shape(size) or (1,),
                generator=self._generator, device=self._device,
                dtype=dtype if dtype is not None else torch.int64,
            ).reshape(self._shape(size))
        # Array bounds: scale float64 uniforms into each [low, high)
        # box.  float64 keeps ranges up to ~2^52 exactly representable,
        # far beyond any kernel's center boxes.
        low_t = torch.as_tensor(low, device=self._device, dtype=torch.float64)
        high_t = torch.as_tensor(high, device=self._device, dtype=torch.float64)
        shape = self._shape(size) or tuple(
            torch.broadcast_shapes(low_t.shape, high_t.shape)
        )
        u = torch.rand(
            shape, generator=self._generator, device=self._device,
            dtype=torch.float64,
        )
        out = (low_t + torch.floor(u * (high_t - low_t))).to(torch.int64)
        return out if dtype is None else out.to(dtype)

    def geometric(self, p, size=None):
        torch = self._torch
        p_t = torch.as_tensor(p, device=self._device, dtype=torch.float64)
        shape = self._shape(size) or tuple(p_t.shape)
        u = torch.rand(
            shape, generator=self._generator, device=self._device,
            dtype=torch.float64,
        )
        # Inverse CDF on {1, 2, ...}: floor(log(1-U)/log(1-p)) + 1;
        # U = 0 maps to 1.  The clamp guards the p -> 0 corner, where
        # log1p(-p) underflows to -0.0 and the division would NaN.
        draws = torch.floor(
            torch.log1p(-u) / torch.log1p(-p_t).clamp(max=-1e-300)
        ) + 1.0
        return draws.to(torch.int64)

    def random(self, size=None, dtype=None):
        return self._torch.rand(
            self._shape(size), generator=self._generator,
            device=self._device,
            dtype=self._torch.float64 if dtype is None else dtype,
        )


class TorchNamespace(ArrayNamespace):
    name = "torch"

    def __init__(self, torch_mod, device: str) -> None:
        self._torch = torch_mod
        self.device = device
        self.int8 = torch_mod.int8
        self.int16 = torch_mod.int16
        self.int32 = torch_mod.int32
        self.int64 = torch_mod.int64
        self.uint8 = torch_mod.uint8
        self.float32 = torch_mod.float32
        self.float64 = torch_mod.float64
        self.bool_ = torch_mod.bool

    def asarray(self, obj, dtype=None):
        return self._torch.as_tensor(obj, dtype=dtype, device=self.device)

    def zeros(self, shape, dtype=None):
        return self._torch.zeros(shape, dtype=dtype, device=self.device)

    def full(self, shape, fill, dtype=None):
        shape = (shape,) if isinstance(shape, int) else tuple(shape)
        return self._torch.full(shape, fill, dtype=dtype, device=self.device)

    def arange(self, n, dtype=None):
        return self._torch.arange(n, dtype=dtype, device=self.device)

    def where(self, cond, a, b):
        torch = self._torch
        if not torch.is_tensor(a):
            a = torch.as_tensor(a, device=self.device)
        if not torch.is_tensor(b):
            b = torch.as_tensor(b, device=self.device)
        a, b = self._promote(a, b)
        return torch.where(cond, a, b)

    def _promote(self, a, b):
        dtype = self._torch.promote_types(a.dtype, b.dtype)
        return a.to(dtype), b.to(dtype)

    def minimum(self, a, b):
        torch = self._torch
        if not torch.is_tensor(b):
            b = torch.as_tensor(b, device=self.device)
        if not torch.is_tensor(a):
            a = torch.as_tensor(a, device=self.device)
        a, b = self._promote(a, b)
        return torch.minimum(a, b)

    def maximum(self, a, b):
        torch = self._torch
        if not torch.is_tensor(b):
            b = torch.as_tensor(b, device=self.device)
        if not torch.is_tensor(a):
            a = torch.as_tensor(a, device=self.device)
        a, b = self._promote(a, b)
        return torch.maximum(a, b)

    def abs(self, a):
        return self._torch.abs(a)

    def exp2(self, a):
        return self._torch.exp2(a)

    def ceil(self, a):
        return self._torch.ceil(a)

    def floor(self, a):
        return self._torch.floor(a)

    def log1p(self, a):
        return self._torch.log1p(a)

    def astype(self, a, dtype):
        return a.to(dtype)

    def any(self, a) -> bool:
        return bool(self._torch.any(a).item())

    def sum(self, a, axis=None):
        if axis is None:
            return self._torch.sum(a)
        return self._torch.sum(a, dim=axis)

    def max(self, a):
        return self._torch.max(a)

    def cumsum(self, a, axis, dtype=None):
        return self._torch.cumsum(a, dim=axis, dtype=dtype)

    def first_true(self, mask, axis):
        # torch.argmax does not promise the *first* maximum, so weight
        # positions in descending order: the first True gets the
        # largest weight.  Rows without a True return 0, which callers
        # mask with an any() check.
        length = mask.shape[axis]
        weights = self._torch.arange(
            length, 0, -1, device=self.device, dtype=self._torch.int64
        )
        return self._torch.argmax(mask.to(self._torch.int64) * weights, dim=axis)

    def size(self, a) -> int:
        return int(a.numel())

    def take(self, a, idx):
        return a[idx.to(self._torch.int64)]

    def take_along(self, a, idx):
        return self._torch.gather(
            a, 1, idx.to(self._torch.int64)[:, None]
        )[:, 0]

    def scatter_min(self, target, idx, values) -> None:
        target.scatter_reduce_(
            0, idx.to(self._torch.int64), values.to(target.dtype),
            reduce="amin", include_self=True,
        )

    def scatter_max(self, target, idx, values) -> None:
        target.scatter_reduce_(
            0, idx.to(self._torch.int64), values.to(target.dtype),
            reduce="amax", include_self=True,
        )

    def scatter_add(self, target, idx, values) -> None:
        target.index_add_(
            0, idx.to(self._torch.int64), values.to(target.dtype)
        )

    def bincount(self, idx, minlength):
        return self._torch.bincount(
            idx.to(self._torch.int64), minlength=minlength
        )

    def to_numpy(self, a) -> np.ndarray:
        return a.detach().cpu().numpy()

    def rng(self, seed_sequence: np.random.SeedSequence) -> KernelRNG:
        # Squash the SeedSequence into torch's int64 seed domain; the
        # derivation is deterministic per request, so request-level
        # determinism holds on this namespace too (with its own stream).
        seed = int(seed_sequence.generate_state(1, np.uint64)[0] >> 1)
        return _TorchRNG(self._torch, self.device, seed)


# ---------------------------------------------------------------------------
# CuPy binding — CUDA only, NumPy-compatible API plus cupyx scatters.
# ---------------------------------------------------------------------------


class _CupyRNG(KernelRNG):
    def __init__(self, cupy_mod, seed: int) -> None:
        self._cupy = cupy_mod
        self.generator = cupy_mod.random.default_rng(seed)

    def integers(self, low, high, size=None, dtype=None):
        if isinstance(low, int) and isinstance(high, int):
            if dtype is None:
                return self.generator.integers(low, high, size=size)
            return self.generator.integers(low, high, size=size, dtype=dtype)
        # CuPy's Generator.integers only takes scalar bounds; scale
        # float64 uniforms into the per-element [low, high) boxes (the
        # Feinerman kernel's center draws), as the torch binding does.
        cupy = self._cupy
        low_a = cupy.asarray(low, dtype=cupy.float64)
        high_a = cupy.asarray(high, dtype=cupy.float64)
        shape = (
            cupy.broadcast(low_a, high_a).shape if size is None else size
        )
        u = self.generator.random(size=shape, dtype=cupy.float64)
        out = (low_a + cupy.floor(u * (high_a - low_a))).astype(cupy.int64)
        return out if dtype is None else out.astype(dtype)

    def geometric(self, p, size=None):
        # CuPy's Generator lacks geometric(); invert the CDF from
        # float64 uniforms (same scheme as the torch binding).
        import cupy

        p_arr = cupy.asarray(p, dtype=cupy.float64)
        shape = p_arr.shape if size is None else size
        u = self.generator.random(size=shape, dtype=cupy.float64)
        return (
            cupy.floor(cupy.log1p(-u) / cupy.log1p(-p_arr)) + 1.0
        ).astype(cupy.int64)

    def random(self, size=None, dtype=None):
        return self.generator.random(
            size=size,
            dtype=self._cupy.float64 if dtype is None else dtype,
        )


class CupyNamespace(NumpyNamespace):
    """CuPy rides the NumPy surface; only the deviations are overridden."""

    name = "cupy"

    def __init__(self, cupy_mod, device: str = "cuda") -> None:
        self._cupy = cupy_mod
        self.device = device
        self.int8 = cupy_mod.int8
        self.int16 = cupy_mod.int16
        self.int32 = cupy_mod.int32
        self.int64 = cupy_mod.int64
        self.uint8 = cupy_mod.uint8
        self.float32 = cupy_mod.float32
        self.float64 = cupy_mod.float64
        self.bool_ = cupy_mod.bool_

    def asarray(self, obj, dtype=None):
        return self._cupy.asarray(obj, dtype=dtype)

    def zeros(self, shape, dtype=None):
        return self._cupy.zeros(shape, dtype=dtype)

    def full(self, shape, fill, dtype=None):
        return self._cupy.full(shape, fill, dtype=dtype)

    def arange(self, n, dtype=None):
        return self._cupy.arange(n, dtype=dtype)

    def where(self, cond, a, b):
        return self._cupy.where(cond, a, b)

    def minimum(self, a, b):
        return self._cupy.minimum(a, b)

    def maximum(self, a, b):
        return self._cupy.maximum(a, b)

    def abs(self, a):
        return self._cupy.abs(a)

    def exp2(self, a):
        return self._cupy.exp2(a)

    def ceil(self, a):
        return self._cupy.ceil(a)

    def floor(self, a):
        return self._cupy.floor(a)

    def log1p(self, a):
        return self._cupy.log1p(a)

    def astype(self, a, dtype):
        return a.astype(dtype)

    def any(self, a) -> bool:
        return bool(self._cupy.any(a))

    def sum(self, a, axis=None):
        return self._cupy.sum(a, axis=axis)

    def max(self, a):
        return self._cupy.max(a)

    def cumsum(self, a, axis, dtype=None):
        return self._cupy.cumsum(a, axis=axis, dtype=dtype)

    def first_true(self, mask, axis):
        return self._cupy.argmax(mask, axis=axis)

    def scatter_min(self, target, idx, values) -> None:
        import cupyx

        cupyx.scatter_min(target, idx, values)

    def scatter_max(self, target, idx, values) -> None:
        import cupyx

        cupyx.scatter_max(target, idx, values)

    def scatter_add(self, target, idx, values) -> None:
        import cupyx

        cupyx.scatter_add(target, idx, values)

    def bincount(self, idx, minlength):
        return self._cupy.bincount(idx, minlength=minlength)

    def take_along(self, a, idx):
        return self._cupy.take_along_axis(a, idx[:, None], axis=1)[:, 0]

    def to_numpy(self, a) -> np.ndarray:
        return self._cupy.asnumpy(a)

    def rng(self, seed_sequence: np.random.SeedSequence) -> KernelRNG:
        seed = int(seed_sequence.generate_state(1, np.uint64)[0] >> 1)
        return _CupyRNG(self._cupy, seed)


# ---------------------------------------------------------------------------
# Binding / resolution.
# ---------------------------------------------------------------------------

_NUMPY_NAMESPACE: Optional[NumpyNamespace] = None
#: ``(resolved?, namespace-or-None, reason-or-None)`` memo for the probe.
_ACCELERATOR_CACHE: Optional[Tuple[Optional[ArrayNamespace], Optional[str]]] = None


def numpy_namespace() -> NumpyNamespace:
    """The default (and always-available) binding."""
    global _NUMPY_NAMESPACE
    if _NUMPY_NAMESPACE is None:
        _NUMPY_NAMESPACE = NumpyNamespace()
    return _NUMPY_NAMESPACE


def torch_namespace(device: str = "cpu") -> Optional[TorchNamespace]:
    """Bind torch on ``device``, or None when torch is unimportable
    (or the device is absent)."""
    try:
        import torch
    except ImportError:
        return None
    if device.startswith("cuda") and not torch.cuda.is_available():
        return None
    return TorchNamespace(torch, device)


def cupy_namespace() -> Optional[CupyNamespace]:
    """Bind CuPy (CUDA), or None when unimportable or device-less."""
    try:
        import cupy

        if cupy.cuda.runtime.getDeviceCount() < 1:
            return None
    except Exception:
        # ImportError, or a CUDA runtime error from a GPU-less host.
        return None
    return CupyNamespace(cupy)


def available_namespace_names() -> Tuple[str, ...]:
    """Importable bindings (not necessarily device-backed), for reports."""
    names = ["numpy"]
    try:
        import torch  # noqa: F401

        names.append("torch")
    except ImportError:
        pass
    try:
        import cupy  # noqa: F401

        names.append("cupy")
    except ImportError:
        pass
    return tuple(names)


def _probe_accelerator() -> Tuple[Optional[ArrayNamespace], Optional[str]]:
    override = os.environ.get(ACCELERATOR_ENV, "").strip().lower()
    if override in ("off", "none", "0", "disabled"):
        return None, f"disabled via {ACCELERATOR_ENV}={override}"
    if override == "torch-cpu":
        ns = torch_namespace("cpu")
        if ns is None:
            return None, (
                f"{ACCELERATOR_ENV}=torch-cpu set but torch is not importable"
            )
        return ns, None
    if override in ("torch", "torch-cuda"):
        ns = torch_namespace("cuda")
        if ns is None:
            return None, (
                f"{ACCELERATOR_ENV}={override} set but no CUDA-capable "
                "torch installation is available"
            )
        return ns, None
    if override == "cupy":
        ns = cupy_namespace()
        if ns is None:
            return None, (
                f"{ACCELERATOR_ENV}=cupy set but no CUDA-capable CuPy "
                "installation is available"
            )
        return ns, None
    if override not in ("", "auto"):
        return None, f"unrecognized {ACCELERATOR_ENV}={override!r}"
    # Auto-probe: CuPy first (purpose-built for CUDA arrays), then
    # torch-CUDA.  A CPU-only torch install is deliberately NOT a
    # device: the accelerator backend must not shadow the tuned NumPy
    # path without actual hardware behind it.
    ns = cupy_namespace()
    if ns is not None:
        return ns, None
    ns = torch_namespace("cuda")
    if ns is not None:
        return ns, None
    missing = [
        name for name in ("cupy", "torch") if name not in
        available_namespace_names()
    ]
    if missing == ["cupy", "torch"]:
        return None, "no device (neither cupy nor torch is installed)"
    return None, "no device (no CUDA-capable namespace binding found)"


def resolve_accelerator(refresh: bool = False) -> Optional[ArrayNamespace]:
    """The device-backed namespace, or None when the host has none.

    The probe is memoized (importing torch is not free); ``refresh``
    re-probes — tests flip ``REPRO_ANTS_ACCELERATOR`` and re-resolve.
    """
    global _ACCELERATOR_CACHE
    if _ACCELERATOR_CACHE is None or refresh:
        _ACCELERATOR_CACHE = _probe_accelerator()
    return _ACCELERATOR_CACHE[0]


def accelerator_unavailable_reason(refresh: bool = False) -> Optional[str]:
    """Why :func:`resolve_accelerator` returned None (None when bound)."""
    global _ACCELERATOR_CACHE
    if _ACCELERATOR_CACHE is None or refresh:
        _ACCELERATOR_CACHE = _probe_accelerator()
    return _ACCELERATOR_CACHE[1]


def _reset_accelerator_cache() -> None:
    """Test hook: forget the memoized probe result."""
    global _ACCELERATOR_CACHE
    _ACCELERATOR_CACHE = None


def index_dtype(xp: ArrayNamespace, n_pairs: int):
    """int32 pair/agent index arrays where the range permits.

    Halving the index bandwidth matters on the long-tail workloads
    where compaction gathers dominate; int64 only past 2^31 pairs.
    """
    return xp.int32 if n_pairs < 2**31 - 1 else xp.int64
