"""Device-portable kernel core for the batched simulation backends.

The package splits the whole-batch simulation into two orthogonal
halves:

* :mod:`repro.sim.kernels.xp` — the *array-namespace shim*: a minimal,
  closed op surface (:class:`~repro.sim.kernels.xp.ArrayNamespace`)
  with NumPy (default), torch (CPU/CUDA) and CuPy bindings, plus the
  device-resolution logic the ``accelerator`` backend gates on;
* :mod:`repro.sim.kernels.core` — the six per-family kernels
  (lshape, uniform, doubly-uniform, random-walk, feinerman, and the
  shared sortie sampling/hit-test helpers), written once against the
  shim.

The ``batched`` backend binds the NumPy namespace; the ``accelerator``
backend binds whatever :func:`~repro.sim.kernels.xp.resolve_accelerator`
finds.  Both funnel through :func:`~repro.sim.kernels.core.run_family`.
"""

from repro.sim.kernels.core import (
    SENTINEL,
    batch_doubly_uniform,
    batch_feinerman,
    batch_lshape,
    batch_random_walk,
    batch_uniform,
    run_family,
    sample_sorties,
    sortie_hits,
    stop_probability_for,
)
from repro.sim.kernels.xp import (
    ArrayNamespace,
    KernelRNG,
    accelerator_unavailable_reason,
    available_namespace_names,
    cupy_namespace,
    numpy_namespace,
    resolve_accelerator,
    torch_namespace,
)

__all__ = [
    "SENTINEL",
    "ArrayNamespace",
    "KernelRNG",
    "accelerator_unavailable_reason",
    "available_namespace_names",
    "batch_doubly_uniform",
    "batch_feinerman",
    "batch_lshape",
    "batch_random_walk",
    "batch_uniform",
    "cupy_namespace",
    "numpy_namespace",
    "resolve_accelerator",
    "run_family",
    "sample_sorties",
    "sortie_hits",
    "stop_probability_for",
    "torch_namespace",
]
