"""Statistics substrate: estimators, intervals, scaling-law fits.

Implemented from scratch on numpy (no scipy dependency): normal
quantiles via the Acklam rational approximation, mean confidence
intervals, bootstrap intervals, and the log-log regression used to fit
scaling exponents (e.g. checking that ``E[M_moves]`` grows like ``D^2``
for one agent and like ``D`` for ``n >= D`` agents).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.errors import InvalidParameterError


def normal_quantile(p: float) -> float:
    """Inverse standard-normal CDF (Acklam's rational approximation).

    Absolute error below 1.15e-9 over (0, 1) — far tighter than any
    statistical use here requires.
    """
    if not 0.0 < p < 1.0:
        raise InvalidParameterError(f"quantile argument must be in (0, 1), got {p}")
    # Coefficients from Peter Acklam's algorithm.
    a = (
        -3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
        1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00,
    )
    b = (
        -5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
        6.680131188771972e01, -1.328068155288572e01,
    )
    c = (
        -7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
        -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00,
    )
    d = (
        7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
        3.754408661907416e00,
    )
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2.0 * math.log(p))
        return (
            ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
        ) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    if p <= 1.0 - p_low:
        q = p - 0.5
        r = q * q
        return (
            ((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]
        ) * q / (
            ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0
        )
    q = math.sqrt(-2.0 * math.log(1.0 - p))
    return -(
        ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
    ) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)


@dataclass(frozen=True)
class Estimate:
    """A point estimate with a symmetric-by-construction interval."""

    mean: float
    std_error: float
    ci_low: float
    ci_high: float
    n_samples: int

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the interval."""
        return self.ci_low <= value <= self.ci_high

    def __str__(self) -> str:
        return f"{self.mean:.4g} [{self.ci_low:.4g}, {self.ci_high:.4g}] (n={self.n_samples})"


def mean_ci(samples: Sequence[float], confidence: float = 0.95) -> Estimate:
    """Normal-approximation confidence interval for the mean."""
    data = np.asarray(samples, dtype=float)
    if data.size == 0:
        raise InvalidParameterError("need at least one sample")
    if not 0.0 < confidence < 1.0:
        raise InvalidParameterError(f"confidence must be in (0, 1), got {confidence}")
    mean = float(data.mean())
    if data.size == 1:
        return Estimate(mean, 0.0, mean, mean, 1)
    std_error = float(data.std(ddof=1) / math.sqrt(data.size))
    z = normal_quantile(0.5 + confidence / 2.0)
    half = z * std_error
    return Estimate(mean, std_error, mean - half, mean + half, int(data.size))


def bootstrap_mean_ci(
    samples: Sequence[float],
    rng: np.random.Generator,
    confidence: float = 0.95,
    n_resamples: int = 2000,
) -> Estimate:
    """Percentile-bootstrap interval for the mean.

    Preferred over the normal interval for the heavily right-skewed
    move-count distributions the search algorithms produce.
    """
    data = np.asarray(samples, dtype=float)
    if data.size == 0:
        raise InvalidParameterError("need at least one sample")
    if n_resamples < 10:
        raise InvalidParameterError(f"n_resamples must be >= 10, got {n_resamples}")
    mean = float(data.mean())
    if data.size == 1:
        return Estimate(mean, 0.0, mean, mean, 1)
    indices = rng.integers(0, data.size, size=(n_resamples, data.size))
    resampled_means = data[indices].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(resampled_means, [alpha, 1.0 - alpha])
    std_error = float(resampled_means.std(ddof=1))
    return Estimate(mean, std_error, float(low), float(high), int(data.size))


def summarize(samples: Sequence[float]) -> Estimate:
    """Shorthand for the default 95% normal interval."""
    return mean_ci(samples)


def geometric_mean(samples: Sequence[float]) -> float:
    """Geometric mean (summary for ratio-style measurements)."""
    data = np.asarray(samples, dtype=float)
    if data.size == 0:
        raise InvalidParameterError("need at least one sample")
    if np.any(data <= 0):
        raise InvalidParameterError("geometric mean requires positive samples")
    return float(np.exp(np.log(data).mean()))


def fit_loglog_slope(
    xs: Sequence[float], ys: Sequence[float]
) -> Tuple[float, float, float]:
    """Least-squares fit of ``log y = slope * log x + intercept``.

    Returns ``(slope, intercept, r_squared)``.  The slope is the scaling
    exponent: the experiments check, e.g., that single-agent Algorithm 1
    move counts scale with exponent ~2 in ``D`` (from ``O(D^2/n + D)``)
    and that the uniform random walk stays near exponent 2 as well while
    the colony algorithms drop toward exponent 1 once ``n >= D``.
    """
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if x.size != y.size or x.size < 2:
        raise InvalidParameterError("need >= 2 paired samples")
    if np.any(x <= 0) or np.any(y <= 0):
        raise InvalidParameterError("log-log fit requires positive values")
    log_x = np.log(x)
    log_y = np.log(y)
    slope, intercept = np.polyfit(log_x, log_y, 1)
    predictions = slope * log_x + intercept
    residual = float(((log_y - predictions) ** 2).sum())
    total = float(((log_y - log_y.mean()) ** 2).sum())
    r_squared = 1.0 if total == 0.0 else 1.0 - residual / total
    return float(slope), float(intercept), r_squared


def ks_statistic(first: Sequence[float], second: Sequence[float]) -> float:
    """Two-sample Kolmogorov-Smirnov statistic ``sup |F1 - F2|``.

    Used by the cross-form equivalence tests: two simulators of the
    same algorithm must produce move-count samples whose empirical
    distributions are close in KS distance, a much stronger requirement
    than matching means.
    """
    a = np.sort(np.asarray(first, dtype=float))
    b = np.sort(np.asarray(second, dtype=float))
    if a.size == 0 or b.size == 0:
        raise InvalidParameterError("need non-empty samples")
    grid = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, grid, side="right") / a.size
    cdf_b = np.searchsorted(b, grid, side="right") / b.size
    return float(np.abs(cdf_a - cdf_b).max())


def ks_two_sample_threshold(
    n_first: int, n_second: int, alpha: float = 0.01
) -> float:
    """Critical KS distance at significance ``alpha`` (asymptotic form).

    ``c(alpha) * sqrt((n + m) / (n m))`` with
    ``c(alpha) = sqrt(-ln(alpha / 2) / 2)`` — the classical large-sample
    approximation, ample for the equal-distribution checks here.
    """
    if n_first < 1 or n_second < 1:
        raise InvalidParameterError("sample sizes must be >= 1")
    if not 0.0 < alpha < 1.0:
        raise InvalidParameterError(f"alpha must be in (0, 1), got {alpha}")
    c_alpha = math.sqrt(-math.log(alpha / 2.0) / 2.0)
    return c_alpha * math.sqrt((n_first + n_second) / (n_first * n_second))


def fit_ratio(
    measured: Sequence[float], predicted: Sequence[float]
) -> Tuple[float, float]:
    """Mean and max of measured/predicted ratios (shape comparisons).

    A bounded max ratio across a sweep is evidence the prediction's
    shape holds with a uniform constant, which is what reproducing an
    ``O(.)`` claim means at finite scale.
    """
    m = np.asarray(measured, dtype=float)
    p = np.asarray(predicted, dtype=float)
    if m.size != p.size or m.size == 0:
        raise InvalidParameterError("need equally many measured and predicted values")
    if np.any(p <= 0):
        raise InvalidParameterError("predicted values must be positive")
    ratios = m / p
    return float(ratios.mean()), float(ratios.max())
