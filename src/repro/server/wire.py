"""The JSON wire schema of the serving layer.

Every value that crosses the HTTP boundary — requests submitted by a
remote client, results returned by the server, shard events streamed
over SSE — is encoded by the functions in this module and decoded by
their ``*_from_wire`` counterparts.  The schema is versioned
(:data:`WIRE_VERSION`, embedded in every envelope) and **round-trip
exact**: a :class:`~repro.sim.backends.base.SimulationRequest` decoded
from its own encoding compares equal to the original, including the
seed stream (``seed``/``seed_keys``), which is what makes remote
execution reproduce local execution bit for bit on the per-trial
backends.

All request and outcome fields that feed the seed stream or the cache
fingerprint are integers (or ``None``), so JSON represents them exactly
— there is no float rounding anywhere that could perturb
reproducibility.  The one float in the schema, ``deadline_seconds``, is
an execution detail excluded from the fingerprint.  Numpy integer
scalars that backends may leave in outcomes are normalized to Python
ints on encode.

Decoding is strict: a payload with the wrong wire version, a missing
field, or a value outside the request's validated domain raises
:class:`WireError` (the server maps it to HTTP 400).
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.sim.backends.base import (
    AlgorithmSpec,
    SimulationRequest,
    SimulationResult,
)
from repro.sim.jobs import JobProgress, JobState, ShardResult
from repro.sim.metrics import AgentOutcome, FastRunStats, SearchOutcome
from repro.sim.selector import SimulationPlan

#: Version of the JSON schema; bumped on any incompatible change.  The
#: server rejects payloads carrying a different version, so a stale
#: client fails loudly instead of silently misinterpreting fields.
WIRE_VERSION = 1


class WireError(ReproError):
    """A wire payload could not be decoded (malformed or wrong version)."""


def opt_int(value: Any, field: str) -> Optional[int]:
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise WireError(f"{field} must be an integer or null, got {value!r}")
    return int(value)


def req_int(value: Any, field: str) -> int:
    result = opt_int(value, field)
    if result is None:
        raise WireError(f"{field} is required")
    return result


def opt_float(value: Any, field: str) -> Optional[float]:
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise WireError(f"{field} must be a number or null, got {value!r}")
    return float(value)


def point(value: Any, field: str) -> Tuple[int, int]:
    if not isinstance(value, Sequence) or len(value) != 2:
        raise WireError(f"{field} must be a two-element [x, y] pair")
    return (req_int(value[0], f"{field}[0]"), req_int(value[1], f"{field}[1]"))


def check_version(payload: Mapping[str, Any]) -> None:
    """Reject payloads from a different schema version."""
    version = payload.get("wire")
    if version != WIRE_VERSION:
        raise WireError(
            f"unsupported wire version {version!r} (this build speaks "
            f"{WIRE_VERSION})"
        )


# -- algorithm spec ------------------------------------------------------


def algorithm_to_wire(spec: AlgorithmSpec) -> Dict[str, Any]:
    """Encode an :class:`AlgorithmSpec` field for field."""
    return {
        "name": spec.name,
        "distance": spec.distance,
        "ell": spec.ell,
        "K": spec.K,
        "max_phase": spec.max_phase,
    }


def algorithm_from_wire(payload: Any) -> AlgorithmSpec:
    """Decode an algorithm spec, preserving the exact field values.

    Construction is direct (not through the classmethod constructors)
    so a calibrated ``K`` chosen by the submitter round-trips verbatim;
    domain validation still happens when the request is built.
    """
    if not isinstance(payload, Mapping):
        raise WireError("algorithm must be an object")
    name = payload.get("name")
    if not isinstance(name, str) or not name:
        raise WireError("algorithm.name must be a non-empty string")
    return AlgorithmSpec(
        name=name,
        distance=opt_int(payload.get("distance"), "algorithm.distance"),
        ell=opt_int(payload.get("ell"), "algorithm.ell"),
        K=opt_int(payload.get("K"), "algorithm.K"),
        max_phase=opt_int(payload.get("max_phase"), "algorithm.max_phase"),
    )


# -- simulation request --------------------------------------------------


def request_to_wire(request: SimulationRequest) -> Dict[str, Any]:
    """Encode a :class:`SimulationRequest`, seeds included."""
    return {
        "wire": WIRE_VERSION,
        "algorithm": algorithm_to_wire(request.algorithm),
        "n_agents": int(request.n_agents),
        "target": [int(request.target[0]), int(request.target[1])],
        "move_budget": int(request.move_budget),
        "step_budget": (
            None if request.step_budget is None else int(request.step_budget)
        ),
        "n_trials": int(request.n_trials),
        "seed": int(request.seed),
        "seed_keys": [int(key) for key in request.seed_keys],
        "distance_bound": (
            None
            if request.distance_bound is None
            else int(request.distance_bound)
        ),
        "deadline_seconds": (
            None
            if request.deadline_seconds is None
            else float(request.deadline_seconds)
        ),
    }


def request_from_wire(payload: Any) -> SimulationRequest:
    """Decode a request; raises :class:`WireError` on malformed input.

    The request's own ``__post_init__`` validation runs afterwards, so
    out-of-domain values (``n_agents < 1``, unknown algorithm name) are
    rejected at the boundary rather than deep inside a backend.
    """
    if not isinstance(payload, Mapping):
        raise WireError("request must be an object")
    check_version(payload)
    seed_keys = payload.get("seed_keys", [])
    if not isinstance(seed_keys, Sequence) or isinstance(seed_keys, str):
        raise WireError("seed_keys must be an array of integers")
    try:
        return SimulationRequest(
            algorithm=algorithm_from_wire(payload.get("algorithm")),
            n_agents=req_int(payload.get("n_agents"), "n_agents"),
            target=point(payload.get("target"), "target"),
            move_budget=req_int(payload.get("move_budget"), "move_budget"),
            step_budget=opt_int(payload.get("step_budget"), "step_budget"),
            n_trials=req_int(payload.get("n_trials", 1), "n_trials"),
            seed=req_int(payload.get("seed", 0), "seed"),
            seed_keys=tuple(
                req_int(key, "seed_keys[]") for key in seed_keys
            ),
            distance_bound=opt_int(
                payload.get("distance_bound"), "distance_bound"
            ),
            deadline_seconds=opt_float(
                payload.get("deadline_seconds"), "deadline_seconds"
            ),
        )
    except ReproError:
        raise
    except (TypeError, ValueError) as error:
        raise WireError(f"malformed request: {error}") from error


# -- outcomes ------------------------------------------------------------


def _agent_to_wire(agent: AgentOutcome) -> Dict[str, Any]:
    return {
        "agent_id": int(agent.agent_id),
        "found": bool(agent.found),
        "moves_at_find": (
            None if agent.moves_at_find is None else int(agent.moves_at_find)
        ),
        "steps_at_find": (
            None if agent.steps_at_find is None else int(agent.steps_at_find)
        ),
        "total_moves": int(agent.total_moves),
        "total_steps": int(agent.total_steps),
        "final_position": [
            int(agent.final_position[0]),
            int(agent.final_position[1]),
        ],
    }


def _agent_from_wire(payload: Any) -> AgentOutcome:
    if not isinstance(payload, Mapping):
        raise WireError("per_agent entries must be objects")
    return AgentOutcome(
        agent_id=req_int(payload.get("agent_id"), "agent_id"),
        found=bool(payload.get("found")),
        moves_at_find=opt_int(payload.get("moves_at_find"), "moves_at_find"),
        steps_at_find=opt_int(payload.get("steps_at_find"), "steps_at_find"),
        total_moves=req_int(payload.get("total_moves"), "total_moves"),
        total_steps=req_int(payload.get("total_steps"), "total_steps"),
        final_position=point(payload.get("final_position"), "final_position"),
    )


def outcome_to_wire(outcome: SearchOutcome) -> Dict[str, Any]:
    """Encode one :class:`SearchOutcome`, per-agent details included."""
    return {
        "found": bool(outcome.found),
        "m_moves": None if outcome.m_moves is None else int(outcome.m_moves),
        "m_steps": None if outcome.m_steps is None else int(outcome.m_steps),
        "finder": None if outcome.finder is None else int(outcome.finder),
        "n_agents": int(outcome.n_agents),
        "move_budget": (
            None if outcome.move_budget is None else int(outcome.move_budget)
        ),
        "per_agent": [_agent_to_wire(agent) for agent in outcome.per_agent],
        "stats": (
            None
            if outcome.stats is None
            else {
                "iterations_executed": int(outcome.stats.iterations_executed),
                "rounds_executed": int(outcome.stats.rounds_executed),
            }
        ),
    }


def outcome_from_wire(payload: Any) -> SearchOutcome:
    """Decode one outcome record."""
    if not isinstance(payload, Mapping):
        raise WireError("outcome must be an object")
    stats = payload.get("stats")
    if stats is not None and not isinstance(stats, Mapping):
        raise WireError("stats must be an object or null")
    per_agent = payload.get("per_agent", [])
    if not isinstance(per_agent, Sequence):
        raise WireError("per_agent must be an array")
    return SearchOutcome(
        found=bool(payload.get("found")),
        m_moves=opt_int(payload.get("m_moves"), "m_moves"),
        m_steps=opt_int(payload.get("m_steps"), "m_steps"),
        finder=opt_int(payload.get("finder"), "finder"),
        n_agents=req_int(payload.get("n_agents"), "n_agents"),
        move_budget=opt_int(payload.get("move_budget"), "move_budget"),
        per_agent=[_agent_from_wire(agent) for agent in per_agent],
        stats=(
            None
            if stats is None
            else FastRunStats(
                iterations_executed=req_int(
                    stats.get("iterations_executed"), "stats.iterations_executed"
                ),
                rounds_executed=req_int(
                    stats.get("rounds_executed"), "stats.rounds_executed"
                ),
            )
        ),
    )


# -- results, shards, progress -------------------------------------------


def result_to_wire(result: SimulationResult) -> Dict[str, Any]:
    """Encode a full :class:`SimulationResult` (request + outcomes)."""
    return {
        "wire": WIRE_VERSION,
        "request": request_to_wire(result.request),
        "backend": result.backend,
        "outcomes": [outcome_to_wire(outcome) for outcome in result.outcomes],
    }


def result_from_wire(payload: Any) -> SimulationResult:
    """Decode a full result."""
    if not isinstance(payload, Mapping):
        raise WireError("result must be an object")
    check_version(payload)
    backend = payload.get("backend")
    if not isinstance(backend, str):
        raise WireError("result.backend must be a string")
    outcomes = payload.get("outcomes")
    if not isinstance(outcomes, Sequence):
        raise WireError("result.outcomes must be an array")
    return SimulationResult(
        request=request_from_wire(payload.get("request")),
        backend=backend,
        outcomes=tuple(outcome_from_wire(outcome) for outcome in outcomes),
    )


def shard_to_wire(shard: ShardResult) -> Dict[str, Any]:
    """Encode one streamed shard completion (an SSE ``shard`` event)."""
    return {
        "shard_index": int(shard.shard_index),
        "trial_start": int(shard.trial_start),
        "trial_count": int(shard.trial_count),
        "from_cache": bool(shard.from_cache),
        "outcomes": [outcome_to_wire(outcome) for outcome in shard.outcomes],
    }


def shard_from_wire(payload: Any) -> ShardResult:
    """Decode one shard event back into a :class:`ShardResult`."""
    if not isinstance(payload, Mapping):
        raise WireError("shard must be an object")
    outcomes = payload.get("outcomes")
    if not isinstance(outcomes, Sequence):
        raise WireError("shard.outcomes must be an array")
    return ShardResult(
        shard_index=req_int(payload.get("shard_index"), "shard_index"),
        trial_start=req_int(payload.get("trial_start"), "trial_start"),
        trial_count=req_int(payload.get("trial_count"), "trial_count"),
        outcomes=tuple(outcome_from_wire(outcome) for outcome in outcomes),
        from_cache=bool(payload.get("from_cache")),
    )


def progress_to_wire(progress: JobProgress) -> Dict[str, Any]:
    """Encode a progress snapshot (embedded in status and SSE events)."""
    return {
        "state": progress.state.value,
        "total_shards": progress.total_shards,
        "done_shards": progress.done_shards,
        "total_trials": progress.total_trials,
        "done_trials": progress.done_trials,
        "cached_shards": progress.cached_shards,
        "fraction": progress.fraction,
    }


def plan_to_wire(plan: SimulationPlan) -> Dict[str, Any]:
    """Encode a selector plan (echoed on planned job submissions).

    Same shape as the plans inside the ``/v1/backends`` selector
    section: backend, shard layout, optional device pin, predicted
    cost, and whether the cost model or the static fallback produced
    it.
    """
    return plan.to_payload()


def state_from_wire(value: Any) -> JobState:
    """Decode a job state string."""
    try:
        return JobState(value)
    except ValueError:
        raise WireError(f"unknown job state {value!r}") from None


# -- traces --------------------------------------------------------------


def trace_to_wire(
    job_id: str, trace_id: str, spans: Sequence[Mapping[str, Any]]
) -> Dict[str, Any]:
    """Encode one job's recorded trace (``GET /v1/jobs/{id}/trace``).

    ``spans`` are the raw :meth:`repro.obs.trace.Span.to_payload`
    dicts; they pass through verbatim so the client can rebuild
    :class:`~repro.obs.trace.Span` objects and merge them with locally
    recorded spans of the same trace.
    """
    return {
        "wire": WIRE_VERSION,
        "job_id": job_id,
        "trace_id": trace_id,
        "spans": [dict(span) for span in spans],
    }


def trace_from_wire(payload: Any) -> Tuple[str, list]:
    """Decode a trace payload to ``(trace_id, span payload dicts)``."""
    if not isinstance(payload, Mapping):
        raise WireError("trace must be an object")
    check_version(payload)
    trace_id = payload.get("trace_id")
    if not isinstance(trace_id, str) or not trace_id:
        raise WireError("trace.trace_id must be a non-empty string")
    spans = payload.get("spans")
    if not isinstance(spans, Sequence):
        raise WireError("trace.spans must be an array")
    for span in spans:
        if not isinstance(span, Mapping):
            raise WireError("trace.spans entries must be objects")
    return trace_id, [dict(span) for span in spans]
