"""The HTTP/SSE serving layer: remote submission over the JobManager.

A :class:`SimulationServer` is a dependency-free (stdlib
``http.server``) front end over the process-wide
:class:`~repro.sim.jobs.JobManager`: remote callers submit
:class:`~repro.sim.backends.base.SimulationRequest` payloads encoded in
the :mod:`repro.server.wire` schema, and the server executes them
through exactly the pipeline local callers use — resolve -> cache ->
shard -> run -> store — so a remote submission with a fixed seed
returns outcomes identical to in-process :func:`repro.sim.simulate`.

Routes (all JSON unless noted)::

    GET    /v1/health              liveness probe
    GET    /v1/backends            registry coverage, decline reasons, auto picks
    GET    /v1/stats               server, job, cache, and metric counters
    GET    /v1/metrics             Prometheus text exposition (text/plain)
    POST   /v1/jobs                submit a request; 429 over --max-jobs
    GET    /v1/jobs                recent jobs (live + ledger records)
    GET    /v1/jobs/{id}           status; falls back to the JSON ledger
    GET    /v1/jobs/{id}/result    full result; ?wait=S long-polls
    GET    /v1/jobs/{id}/events    SSE: shard completions + progress
    GET    /v1/jobs/{id}/trace     recorded trace (raw span payloads)
    DELETE /v1/jobs/{id}           request cancellation
    POST   /v1/sweeps              submit a grid sweep (server-compiled)
    GET    /v1/sweeps/{id}         sweep progress + completed rows
    GET    /v1/sweeps/{id}/events  SSE: rows as grid points complete
    DELETE /v1/sweeps/{id}         cancel a sweep

The SSE stream (``text/event-stream``) emits one ``progress`` event on
connect, one ``shard`` event per completed trial shard — payload =
:func:`~repro.server.wire.shard_to_wire` plus a progress snapshot —
and a terminal ``done``/``failed``/``cancelled`` event, each with a
monotonically increasing ``id:`` field, so a consumer sees every shard
of a multi-shard job in landing order.  Streams come straight from
:meth:`SimulationJob.iter_results`, so cache-served shards stream too.
A consumer whose connection dropped reconnects with the standard
``Last-Event-ID`` header and the server skips everything already
delivered — event ids are stable across connections because the job
replays its emitted shards deterministically.

Submissions may carry an ``idempotency_key`` (a client-chosen opaque
string); resubmitting the same key returns the original unit's status
instead of admitting a duplicate, which is what lets
:class:`~repro.server.client.RemoteClient` retry a POST whose
connection dropped after the server may have admitted it.

Sweep submissions carry a request *template* plus a parameter grid and
are compiled server-side onto the existing
:class:`~repro.sim.runner.SweepJob` path: each grid point overrides
template fields (request- or algorithm-level), and the sweep preserves
the ``derive_seed(seed, *seed_keys, point, trial)`` addressing, so
remote sweep rows equal local :meth:`Sweep.run` rows.

Admission control is intentionally simple: at most ``max_jobs``
non-terminal server-submitted jobs at a time; beyond that ``POST
/v1/jobs`` answers ``429 Too Many Requests`` with a ``Retry-After``
header, and :class:`~repro.server.client.RemoteClient` backs off and
resubmits.
"""

from __future__ import annotations

import contextlib
import json
import os
import re
import threading
import time
from collections import OrderedDict
from dataclasses import asdict, replace
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Mapping, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.errors import InvalidParameterError, JobCancelledError, ReproError
from repro.obs.metrics import get_registry, render_prometheus
from repro.obs.trace import (
    find_trace_for_job,
    parse_traceparent,
    span,
    spans_for_trace,
)
from repro.sim.backends.base import SimulationRequest
from repro.sim.backends.registry import AUTO
from repro.sim.cache import get_cache
from repro.resilience.faults import maybe_inject
from repro.sim.jobs import (
    TERMINAL_STATES,
    JobManager,
    JobState,
    SimulationJob,
    effective_state,
    find_job_record,
    get_manager,
    read_job_records,
)
from repro.sim.runner import SimulationTrial, Sweep, SweepJob
from repro.server import wire
from repro.server.wire import WIRE_VERSION, WireError

#: Seconds a rejected submitter is told to wait before retrying.
RETRY_AFTER_SECONDS = 1

#: Cap on tracked job/sweep handles; oldest terminal ones are evicted.
#: Status lookups still answer: jobs from their JSON ledger records,
#: sweeps from the retained final status payloads.
_MAX_TRACKED = 1024

#: Longest single long-poll on the result route, whatever the client
#: asks for — bounds how long one handler thread can be parked.
_MAX_RESULT_WAIT = 60.0

_JOB_ROUTE = re.compile(
    r"^/v1/jobs/([A-Za-z0-9_.-]+)(/events|/result|/trace)?$"
)
_SWEEP_ROUTE = re.compile(r"^/v1/sweeps/([A-Za-z0-9_.-]+)(/events)?$")

# Per-route HTTP metrics.  Labels use the route *pattern* (ids
# collapsed to {id}), so series cardinality is bounded by the route
# table however many jobs a server handles.
_REGISTRY = get_registry()
_HTTP_REQUESTS = _REGISTRY.counter(
    "repro_http_requests_total",
    "HTTP requests handled, by route pattern, method, and status.",
    ["route", "method", "status"],
)
_HTTP_SECONDS = _REGISTRY.histogram(
    "repro_http_request_seconds",
    "HTTP request handling latency by route pattern (SSE streams count "
    "their full stream lifetime).",
    ["route"],
)


def _route_label(path: str) -> str:
    """Collapse a request path to its route pattern for metric labels."""
    match = _JOB_ROUTE.match(path)
    if match is not None:
        return f"/v1/jobs/{{id}}{match.group(2) or ''}"
    match = _SWEEP_ROUTE.match(path)
    if match is not None:
        return f"/v1/sweeps/{{id}}{match.group(2) or ''}"
    if path in (
        "/v1/health", "/v1/backends", "/v1/stats", "/v1/metrics",
        "/v1/jobs", "/v1/sweeps",
    ):
        return path
    return "other"

#: Request-level fields a sweep grid point may override on the template.
_SWEEP_REQUEST_FIELDS = frozenset(
    {"n_agents", "target", "move_budget", "step_budget", "distance_bound"}
)
#: Algorithm-level fields a grid point may override.
_SWEEP_ALGORITHM_FIELDS = frozenset({"distance", "ell", "K", "max_phase"})


def default_max_workers() -> int:
    """Default per-job ``workers`` cap: the host's cores, floor 8.

    The floor keeps modest sharding available on small hosts — shards
    are also the streaming granularity, not just parallelism — while
    still bounding what one remote request can pin.
    """
    return max(8, os.cpu_count() or 1)


def _clamp_workers(workers: int, cap: int) -> int:
    """Bound a remote ``workers`` request to the server's cap.

    The manager's worker pool grows to the largest ``workers`` ever
    requested and never shrinks, so an uncapped remote value would let
    one request pin hundreds of OS processes for the server's
    lifetime.  Admission control bounds concurrent jobs; this bounds
    what each job may ask for.
    """
    if workers < 1:
        raise WireError(f"workers must be >= 1, got {workers}")
    return min(workers, cap)


class _HTTPFailure(ReproError):
    """Internal: abort the current request with this status + payload."""

    def __init__(
        self, status: int, message: str,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.headers = headers or {}


def _sweep_factory(template: SimulationRequest):
    """A :class:`SimulationTrial` factory applying grid-point overrides.

    The returned callable maps one grid point's parameter dict onto the
    wire template: request-level keys replace request fields,
    algorithm-level keys replace spec fields.  Unknown keys fail the
    submission with 400 rather than being silently dropped.
    """

    def factory(params: Mapping[str, object]) -> SimulationRequest:
        request_kwargs: Dict[str, Any] = {}
        algorithm_kwargs: Dict[str, Any] = {}
        for key, value in params.items():
            if key in _SWEEP_REQUEST_FIELDS:
                # Same strictness as the /v1/jobs request decoder: a
                # non-integer override is a 400, not a 500 from deep
                # inside validation (or a late backend crash).
                if key == "target":
                    value = wire.point(value, "grid.target")
                elif key in ("step_budget", "distance_bound"):
                    value = wire.opt_int(value, f"grid.{key}")
                else:
                    value = wire.req_int(value, f"grid.{key}")
                request_kwargs[key] = value
            elif key in _SWEEP_ALGORITHM_FIELDS:
                algorithm_kwargs[key] = wire.opt_int(value, f"grid.{key}")
            else:
                raise WireError(
                    f"unknown sweep grid key {key!r}; request fields: "
                    f"{sorted(_SWEEP_REQUEST_FIELDS)}, algorithm fields: "
                    f"{sorted(_SWEEP_ALGORITHM_FIELDS)}"
                )
        spec = template.algorithm
        if algorithm_kwargs:
            spec = replace(spec, **algorithm_kwargs)
        return replace(template, algorithm=spec, **request_kwargs)

    return factory


class SimulationServer:
    """HTTP + SSE front end over one process's :class:`JobManager`.

    Parameters
    ----------
    host / port:
        Bind address; ``port=0`` picks an ephemeral port (read it back
        from :attr:`port` — what the tests and benchmarks do).
    max_jobs:
        Concurrency limit: the maximum number of non-terminal
        server-submitted units (a job is one unit, a sweep is one
        unit).  Submissions beyond it receive 429 with ``Retry-After``
        so well-behaved clients back off.
    manager:
        The job manager to execute on; defaults to the process-wide one
        so server-side jobs share the cache, ledger, and worker pool
        with any in-process callers.
    max_workers_per_job:
        Cap on the ``workers`` value any one submission may request
        (the pool never shrinks, so this bounds what a remote caller
        can pin).  Defaults to :func:`default_max_workers`.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8642,
        max_jobs: int = 8,
        manager: Optional[JobManager] = None,
        max_workers_per_job: Optional[int] = None,
    ) -> None:
        if max_jobs < 1:
            raise InvalidParameterError(f"max_jobs must be >= 1, got {max_jobs}")
        self._manager = manager if manager is not None else get_manager()
        self.max_jobs = max_jobs
        self.max_workers_per_job = (
            max_workers_per_job
            if max_workers_per_job is not None
            else default_max_workers()
        )
        if self.max_workers_per_job < 1:
            raise InvalidParameterError(
                f"max_workers_per_job must be >= 1, "
                f"got {self.max_workers_per_job}"
            )
        self._lock = threading.Lock()
        # Serializes admission + submission only, so a slow submit
        # (first-call ledger prune, backend resolution) never blocks
        # the cheap routes that touch `_lock` for a counter bump.
        self._submit_lock = threading.Lock()
        self._jobs: "OrderedDict[str, SimulationJob]" = OrderedDict()
        self._sweeps: "OrderedDict[str, SweepJob]" = OrderedDict()
        # Final status payloads of evicted sweeps (rows are small
        # aggregates); the sweep-side analogue of the jobs ledger.
        self._sweep_records: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        # Idempotency-key -> unit id, so a client retrying a POST whose
        # connection dropped after admission gets the already-submitted
        # unit back instead of a duplicate.  Bounded like the handle
        # maps; a key evicted here means a *very* stale retry, which at
        # worst resubmits (and the result cache absorbs the rerun).
        self._job_keys: "OrderedDict[str, str]" = OrderedDict()
        self._sweep_keys: "OrderedDict[str, str]" = OrderedDict()
        self._sweep_counter = 0
        self._started_at = time.time()
        self._requests_total = 0
        self._jobs_submitted = 0
        self._sweeps_submitted = 0
        self._rejected_429 = 0
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.app = self  # type: ignore[attr-defined]
        self._serve_thread: Optional[threading.Thread] = None

    # -- lifecycle -------------------------------------------------------

    @property
    def host(self) -> str:
        """The bound host."""
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (resolved when constructed with ``port=0``)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL clients should talk to."""
        return f"http://{self.host}:{self.port}"

    def start(self) -> "SimulationServer":
        """Serve on a background daemon thread; returns ``self``."""
        if self._serve_thread is None:
            self._serve_thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-server",
                daemon=True,
            )
            self._serve_thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`close`."""
        self._httpd.serve_forever()

    def close(self) -> None:
        """Stop accepting connections and release the socket."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5.0)
            self._serve_thread = None

    def __enter__(self) -> "SimulationServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- bookkeeping -----------------------------------------------------

    def _count_request(self) -> None:
        with self._lock:
            self._requests_total += 1

    def _active_units(self) -> int:
        """Admission units in flight: live jobs plus live sweeps.

        A sweep counts as one unit however many grid points it holds —
        its children run through the manager with the sweep's own
        worker window, so one unit is what it occupies.
        """
        return sum(
            1 for job in self._jobs.values() if not job.done()
        ) + sum(
            1 for sweep in self._sweeps.values() if not sweep.done()
        )

    def _evict_tracked(self) -> None:
        """Bound the handle maps; called with ``_lock`` held.

        Evicted jobs keep answering from the JSON ledger; evicted
        sweeps leave their final status payload behind in
        ``_sweep_records`` (rows are small aggregates, unlike job
        outcomes), so finished work never flips to 404.
        """
        if len(self._jobs) > _MAX_TRACKED:
            overflow = len(self._jobs) - _MAX_TRACKED
            for key in [
                k for k, job in self._jobs.items() if job.done()
            ][:overflow]:
                del self._jobs[key]
        if len(self._sweeps) > _MAX_TRACKED:
            overflow = len(self._sweeps) - _MAX_TRACKED
            for key in [
                k for k, sweep in self._sweeps.items() if sweep.done()
            ][:overflow]:
                self._sweep_records[key] = self._sweep_status_payload(
                    key, self._sweeps[key]
                )
                del self._sweeps[key]
        while len(self._sweep_records) > _MAX_TRACKED:
            self._sweep_records.popitem(last=False)

    def _admit(self, submit, record, existing=None):
        """Admission-controlled submission shared by jobs and sweeps.

        ``submit()`` produces the handle; ``record(handle)`` registers
        it under the state lock and returns the response id.  The
        dedicated submission lock keeps the capacity bound exact under
        concurrent submitters while `_lock` is only pinned for the
        dict/counter touches, so introspection routes never stall
        behind a slow submit.

        ``existing()`` (optional) is the idempotency probe: evaluated
        under the submission lock *before* the capacity check, so a
        retried POST that matches an already-admitted unit returns its
        id — never consuming capacity, never double-submitting, even
        against a concurrent first attempt.
        """
        with self._submit_lock:
            if existing is not None:
                duplicate = existing()
                if duplicate is not None:
                    return duplicate, True
            with self._lock:
                if self._active_units() >= self.max_jobs:
                    self._rejected_429 += 1
                    raise _HTTPFailure(
                        429,
                        f"at capacity: {self.max_jobs} jobs already running",
                        headers={"Retry-After": str(RETRY_AFTER_SECONDS)},
                    )
            handle = submit()
            with self._lock:
                identifier = record(handle)
                self._evict_tracked()
        return identifier, False

    def get_job(self, job_id: str) -> Optional[SimulationJob]:
        """A live handle for ``job_id``: server-tracked, then manager."""
        with self._lock:
            job = self._jobs.get(job_id)
        return job if job is not None else self._manager.get(job_id)

    def get_sweep(self, sweep_id: str) -> Optional[SweepJob]:
        """The tracked sweep handle, if any."""
        with self._lock:
            return self._sweeps.get(sweep_id)

    # -- operations (called by the handler) ------------------------------

    @staticmethod
    def _idempotency_key(payload: Mapping[str, Any]) -> Optional[str]:
        key = payload.get("idempotency_key")
        if key is None:
            return None
        if not isinstance(key, str) or not key:
            raise WireError("idempotency_key must be a non-empty string")
        return key

    def submit_job(self, payload: Mapping[str, Any]) -> Dict[str, Any]:
        """Admit and submit one job; raises 429 when at capacity.

        A payload carrying an ``idempotency_key`` the server has seen
        before answers with the original job's status (marked
        ``"idempotent_replay": true``) instead of submitting again —
        the contract that makes client-side POST retries safe.
        """
        idempotency_key = self._idempotency_key(payload)
        request = wire.request_from_wire(payload.get("request"))
        backend = payload.get("backend", AUTO)
        if not isinstance(backend, str):
            raise WireError("backend must be a string")
        workers = _clamp_workers(
            wire.req_int(payload.get("workers", 1), "workers"),
            self.max_workers_per_job,
        )
        cache = payload.get("cache")
        if cache is not None and not isinstance(cache, bool):
            raise WireError("cache must be true, false, or null")
        use_plan = payload.get("plan", False)
        if not isinstance(use_plan, bool):
            raise WireError("plan must be true or false")
        plan = None
        if use_plan:
            # Route through the cost-model selector: backend choice and
            # shard layout come from the calibration profile (static
            # fallback when uncalibrated).  ``workers`` becomes the
            # plan's shard cap instead of the literal shard count.
            from repro.sim.selector import plan_request

            plan = plan_request(request, backend=backend, workers=workers)
            backend = AUTO  # the plan carries the backend choice

        def record(job: SimulationJob) -> str:
            self._jobs[job.job_id] = job
            self._jobs_submitted += 1
            if idempotency_key is not None:
                self._job_keys[idempotency_key] = job.job_id
                while len(self._job_keys) > _MAX_TRACKED:
                    self._job_keys.popitem(last=False)
            return job.job_id

        def existing() -> Optional[str]:
            if idempotency_key is None:
                return None
            return self._job_keys.get(idempotency_key)

        job_id, replayed = self._admit(
            lambda: self._manager.submit(
                request, backend=backend, workers=workers, cache=cache,
                plan=plan,
            ),
            record,
            existing=existing,
        )
        status = self.job_status(job_id)
        if replayed:
            status["idempotent_replay"] = True
        elif plan is not None:
            status["plan"] = wire.plan_to_wire(plan)
        return status

    def job_status(self, job_id: str) -> Dict[str, Any]:
        """Status of one job: live progress, or the ledger record.

        Finished jobs evicted from the in-process registry still
        answer — their JSON ledger record is the fallback — so remote
        pollers never see a completed job flip to 404.
        """
        job = self.get_job(job_id)
        if job is not None:
            progress = job.progress()
            error = job.exception()
            return {
                "wire": WIRE_VERSION,
                "job_id": job_id,
                "state": progress.state.value,
                "backend": job.backend,
                "algorithm": job.request.algorithm.name,
                "n_trials": job.request.n_trials,
                "progress": wire.progress_to_wire(progress),
                "error": None if error is None else str(error),
                "source": "live",
            }
        record = find_job_record(job_id)
        if record is None:
            raise _HTTPFailure(404, f"unknown job {job_id!r}")
        # effective_state: a record claiming pending/running whose
        # writing process is dead reports failed-recoverable instead of
        # posing as live forever.
        state = effective_state(record)
        return {
            "wire": WIRE_VERSION,
            "job_id": job_id,
            "state": state,
            "backend": record.get("backend"),
            "algorithm": record.get("algorithm"),
            "n_trials": record.get("n_trials"),
            # Same shape as the live branch's progress_to_wire payload
            # — a client reading one key must not break on eviction.
            "progress": {
                "state": state,
                "total_shards": record.get("total_shards"),
                "done_shards": record.get("done_shards"),
                "total_trials": record.get("n_trials"),
                "done_trials": record.get("done_trials"),
                "cached_shards": record.get("cached_shards"),
                "fraction": (
                    record["done_trials"] / record["n_trials"]
                    if isinstance(record.get("done_trials"), int)
                    and isinstance(record.get("n_trials"), int)
                    and record["n_trials"] > 0
                    else None
                ),
            },
            "error": record.get("error"),
            "source": "ledger",
        }

    def list_jobs(self) -> Dict[str, Any]:
        """Every known job: live server-tracked handles + ledger records."""
        with self._lock:
            live = {job_id: job for job_id, job in self._jobs.items()}
        entries: Dict[str, Dict[str, Any]] = {}
        for record in read_job_records():
            entries[record["job_id"]] = {
                "job_id": record["job_id"],
                "state": effective_state(record),
                "algorithm": record.get("algorithm"),
                "backend": record.get("backend"),
                "n_trials": record.get("n_trials"),
                "submitted_at": record.get("submitted_at"),
                "source": "ledger",
            }
        for job_id, job in live.items():
            progress = job.progress()
            entries[job_id] = {
                "job_id": job_id,
                "state": progress.state.value,
                "algorithm": job.request.algorithm.name,
                "backend": job.backend,
                "n_trials": job.request.n_trials,
                "submitted_at": job._submitted_at,
                "source": "live",
            }
        jobs = sorted(
            entries.values(),
            key=lambda entry: entry.get("submitted_at") or 0,
            reverse=True,
        )
        return {"wire": WIRE_VERSION, "jobs": jobs}

    def job_result(self, job_id: str, wait: float) -> Dict[str, Any]:
        """The full result, long-polling up to ``wait`` seconds.

        202 while still running (the client loops), 410 for cancelled,
        500 for failed — each with the state in the body.
        """
        job = self.get_job(job_id)
        if job is None:
            record = find_job_record(job_id)
            if record is None:
                raise _HTTPFailure(404, f"unknown job {job_id!r}")
            # The record knows the fate but the outcomes left this
            # process's memory; the submitter should resubmit (the
            # result cache makes that free).  409, not 410 — the
            # client maps 410 to "cancelled", and an evicted job most
            # likely completed fine.
            raise _HTTPFailure(
                409,
                f"job {job_id!r} is {record.get('state')} but its outcomes "
                f"are no longer held by the server; resubmit the request "
                f"(the result cache serves it without resimulation)",
            )
        try:
            result = job.result(timeout=min(max(wait, 0.0), _MAX_RESULT_WAIT))
        except TimeoutError:
            raise _HTTPFailure(
                202, f"job {job_id!r} still {job.state.value}"
            ) from None
        except JobCancelledError as error:
            raise _HTTPFailure(410, str(error)) from None
        except BaseException as error:  # noqa: BLE001 — surfaced to client
            raise _HTTPFailure(
                500, f"job {job_id!r} failed: {error}"
            ) from None
        return wire.result_to_wire(result)

    def cancel_job(self, job_id: str) -> Dict[str, Any]:
        """Request cancellation of one job."""
        job = self.get_job(job_id)
        if job is None:
            if find_job_record(job_id) is None:
                raise _HTTPFailure(404, f"unknown job {job_id!r}")
            raise _HTTPFailure(409, f"job {job_id!r} is not running here")
        accepted = job.cancel()
        return {
            "wire": WIRE_VERSION,
            "job_id": job_id,
            "cancelled": accepted,
            "state": job.state.value,
        }

    def submit_sweep(self, payload: Mapping[str, Any]) -> Dict[str, Any]:
        """Compile and submit a sweep onto the :class:`SweepJob` path.

        Honors ``idempotency_key`` exactly like :meth:`submit_job`.
        """
        idempotency_key = self._idempotency_key(payload)
        template = wire.request_from_wire(payload.get("template"))
        grid = payload.get("grid")
        if not isinstance(grid, list) or not all(
            isinstance(point, dict) for point in grid
        ):
            raise WireError("grid must be an array of parameter objects")
        trials = wire.req_int(payload.get("trials", 1), "trials")
        seed = wire.req_int(payload.get("seed", 0), "seed")
        seed_keys = payload.get("seed_keys", [])
        if not isinstance(seed_keys, list):
            raise WireError("seed_keys must be an array of integers")
        backend = payload.get("backend", AUTO)
        if not isinstance(backend, str):
            raise WireError("backend must be a string")
        workers = _clamp_workers(
            wire.req_int(payload.get("workers", 1), "workers"),
            self.max_workers_per_job,
        )
        cache = payload.get("cache")
        if cache is not None and not isinstance(cache, bool):
            raise WireError("cache must be true, false, or null")
        trial = SimulationTrial(
            factory=_sweep_factory(template), backend=backend, cache=cache
        )
        sweep = Sweep(
            trial,
            grid=grid,
            trials=trials,
            seed=seed,
            workers=workers,
            seed_keys=tuple(
                wire.req_int(key, "seed_keys[]") for key in seed_keys
            ),
        )
        def record(handle: SweepJob) -> str:
            self._sweep_counter += 1
            sweep_id = f"sweep-{self._sweep_counter:06d}"
            self._sweeps[sweep_id] = handle
            self._sweeps_submitted += 1
            if idempotency_key is not None:
                self._sweep_keys[idempotency_key] = sweep_id
                while len(self._sweep_keys) > _MAX_TRACKED:
                    self._sweep_keys.popitem(last=False)
            return sweep_id

        def existing() -> Optional[str]:
            if idempotency_key is None:
                return None
            return self._sweep_keys.get(idempotency_key)

        # Sweep.submit() compiles the grid synchronously (applying
        # every factory), so a bad override 400s the submission here
        # rather than failing the background driver.
        sweep_id, replayed = self._admit(
            lambda: sweep.submit(manager=self._manager), record,
            existing=existing,
        )
        status = self.sweep_status(sweep_id)
        if replayed:
            status["idempotent_replay"] = True
        return status

    def _sweep_rows(self, handle: SweepJob) -> List[Dict[str, Any]]:
        return [
            self._row_to_wire(index, row)
            for index, row in handle.completed_rows()
        ]

    @staticmethod
    def _row_to_wire(index: int, row) -> Dict[str, Any]:
        return {
            "point_index": index,
            "params": dict(row.params),
            "estimate": asdict(row.estimate),
            "extras": dict(row.extras),
        }

    def _sweep_status_payload(
        self, sweep_id: str, handle: SweepJob
    ) -> Dict[str, Any]:
        progress = handle.progress()
        return {
            "wire": WIRE_VERSION,
            "sweep_id": sweep_id,
            "state": progress.state.value,
            "progress": {
                "state": progress.state.value,
                "total_points": progress.total_points,
                "done_points": progress.done_points,
                "total_trials": progress.total_trials,
                "done_trials": progress.done_trials,
                "fraction": progress.fraction,
            },
            "rows": self._sweep_rows(handle),
        }

    def sweep_status(self, sweep_id: str) -> Dict[str, Any]:
        """Progress plus every completed row of one sweep.

        Sweeps evicted from the handle map answer from their retained
        final status payload, mirroring the jobs ledger fallback.
        """
        handle = self.get_sweep(sweep_id)
        if handle is not None:
            return self._sweep_status_payload(sweep_id, handle)
        with self._lock:
            retained = self._sweep_records.get(sweep_id)
        if retained is None:
            raise _HTTPFailure(404, f"unknown sweep {sweep_id!r}")
        return retained

    def cancel_sweep(self, sweep_id: str) -> Dict[str, Any]:
        """Cancel one sweep (completed points stay cached)."""
        handle = self.get_sweep(sweep_id)
        if handle is None:
            raise _HTTPFailure(404, f"unknown sweep {sweep_id!r}")
        accepted = handle.cancel()
        return {
            "wire": WIRE_VERSION,
            "sweep_id": sweep_id,
            "cancelled": accepted,
            "state": handle.state.value,
        }

    def backends_payload(self) -> Dict[str, Any]:
        """Registry coverage, declines, auto-resolution and selector plans.

        Delegates to the shared introspection builder so this payload
        and ``repro-ants backends --json`` can never drift apart; the
        ``selector`` section adds the cost-model calibration state and
        the planned execution per family.
        """
        from repro.sim.backends.registry import backends_introspection
        from repro.sim.selector import selector_payload

        return {
            "wire": WIRE_VERSION,
            **backends_introspection(),
            "selector": selector_payload(),
        }

    def stats_payload(self) -> Dict[str, Any]:
        """Server counters + job states + the cache's counters."""
        with self._lock:
            tracked = list(self._jobs.values())
            sweeps = list(self._sweeps.values())
            payload = {
                "wire": WIRE_VERSION,
                "uptime_seconds": round(time.time() - self._started_at, 3),
                "max_jobs": self.max_jobs,
                "requests_total": self._requests_total,
                "jobs_submitted": self._jobs_submitted,
                "sweeps_submitted": self._sweeps_submitted,
                "rejected_429": self._rejected_429,
            }
        states = {state.value: 0 for state in JobState}
        for job in tracked:
            states[job.state.value] += 1
        payload["jobs_by_state"] = states
        payload["jobs_active"] = sum(
            count
            for state, count in states.items()
            if JobState(state) not in TERMINAL_STATES
        )
        payload["sweeps_active"] = sum(
            1 for sweep in sweeps if not sweep.done()
        )
        # What admission actually compares against max_jobs: an
        # operator debugging 429s sees the consumed capacity even when
        # it is all sweeps.
        payload["units_active"] = (
            payload["jobs_active"] + payload["sweeps_active"]
        )
        payload["cache"] = get_cache().info().to_payload()
        payload["metrics"] = get_registry().to_payload()
        return payload

    def job_trace(self, job_id: str) -> Dict[str, Any]:
        """The recorded trace of one job, raw span payloads.

        Served from this process's span ring and the JSONL sink under
        the cache directory — which is also where pool-worker shard
        spans land, so a multi-shard job's trace is complete here.
        """
        trace_id = find_trace_for_job(job_id)
        if trace_id is None:
            raise _HTTPFailure(
                404,
                f"no trace recorded for job {job_id!r} (tracing off, span "
                f"evicted from the ring, or unknown job)",
            )
        return wire.trace_to_wire(
            job_id, trace_id,
            [sp.to_payload() for sp in spans_for_trace(trace_id)],
        )


class _Handler(BaseHTTPRequestHandler):
    """Maps HTTP verbs + paths onto :class:`SimulationServer` operations."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-ants"
    #: Socket timeout: a client that stalls mid-body (or an idle
    #: keep-alive connection) releases its handler thread instead of
    #: parking it forever.  Long-poll waits park in job.result(), not
    #: in socket reads, so they are unaffected.
    timeout = 30

    # Handler threads are per-connection (ThreadingHTTPServer); all
    # shared state lives in the app object behind its lock.

    @property
    def app(self) -> SimulationServer:
        return self.server.app  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: object) -> None:
        # Quiet by default — the CLI serve command is the only place
        # meant for human eyes, and per-request logging would swamp it.
        pass

    def send_response(self, code: int, message: Optional[str] = None) -> None:
        # Remember the status line for the per-route metrics; every
        # response path funnels through here.
        self._last_status = code
        super().send_response(code, message)

    # -- plumbing --------------------------------------------------------

    def _drain_body(self) -> None:
        """Consume any unread request body.

        On a keep-alive connection the next request is framed right
        after this one's body; an error response sent before
        `_read_body()` ran would otherwise leave those bytes in
        ``rfile`` to be misparsed as the next request line.
        """
        if self._body_consumed:
            return
        self._body_consumed = True
        try:
            remaining = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            self.close_connection = True
            return
        while remaining > 0:
            chunk = self.rfile.read(min(remaining, 65536))
            if not chunk:
                self.close_connection = True
                return
            remaining -= len(chunk)

    def _send_json(
        self,
        status: int,
        payload: Mapping[str, Any],
        headers: Optional[Mapping[str, str]] = None,
    ) -> None:
        self._drain_body()
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, failure: _HTTPFailure) -> None:
        self._send_json(
            failure.status,
            {"wire": WIRE_VERSION, "error": str(failure)},
            headers=failure.headers,
        )

    def _send_text(self, status: int, body: str, content_type: str) -> None:
        self._drain_body()
        encoded = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(encoded)))
        self.end_headers()
        self.wfile.write(encoded)

    def _read_body(self) -> Mapping[str, Any]:
        self._body_consumed = True
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise _HTTPFailure(400, "request body required")
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as error:
            raise _HTTPFailure(400, f"invalid JSON body: {error}") from None
        if not isinstance(payload, dict):
            raise _HTTPFailure(400, "request body must be a JSON object")
        return payload

    def _dispatch(self, method: str) -> None:
        self.app._count_request()
        # Per-request state (the handler instance survives across
        # requests on one keep-alive connection).
        self._body_consumed = False
        self._last_status = 0
        parsed = urlparse(self.path)
        route = _route_label(parsed.path)
        # Spans are opened for submissions and for any request carrying
        # a traceparent (the client wants stitching); health probes and
        # bare pollers stay span-free so they cannot flood the ring.
        # Metrics cover every route regardless.
        context = parse_traceparent(self.headers.get("traceparent"))
        traced = context is not None or (
            method == "POST" and parsed.path in ("/v1/jobs", "/v1/sweeps")
        )
        opened = (
            span("server.request", context=context, route=route, method=method)
            if traced
            else contextlib.nullcontext(None)
        )
        start = time.perf_counter()
        try:
            with opened as sp:
                try:
                    self._route(method, parsed.path, parse_qs(parsed.query))
                except _HTTPFailure as failure:
                    self._send_error_json(failure)
                except WireError as error:
                    self._send_error_json(_HTTPFailure(400, str(error)))
                except ReproError as error:
                    # Validation errors from request/backends: 400s.
                    self._send_error_json(_HTTPFailure(400, str(error)))
                except (BrokenPipeError, ConnectionResetError):
                    self.close_connection = True
                except Exception as error:  # noqa: BLE001 — last-resort 500
                    try:
                        self._send_error_json(
                            _HTTPFailure(500, f"internal error: {error}")
                        )
                    except OSError:
                        self.close_connection = True
                if sp is not None:
                    sp.set_attribute("status_code", self._last_status)
                    if self._last_status >= 500:
                        sp.set_status("error")
        finally:
            _HTTP_REQUESTS.inc(
                route=route, method=method, status=str(self._last_status)
            )
            _HTTP_SECONDS.observe(time.perf_counter() - start, route=route)

    do_GET = lambda self: self._dispatch("GET")  # noqa: E731
    do_POST = lambda self: self._dispatch("POST")  # noqa: E731
    do_DELETE = lambda self: self._dispatch("DELETE")  # noqa: E731

    # -- routing ---------------------------------------------------------

    def _route(
        self, method: str, path: str, query: Dict[str, List[str]]
    ) -> None:
        app = self.app
        if method == "GET" and path == "/v1/health":
            self._send_json(200, {"wire": WIRE_VERSION, "status": "ok"})
            return
        if method == "GET" and path == "/v1/backends":
            self._send_json(200, app.backends_payload())
            return
        if method == "GET" and path == "/v1/stats":
            self._send_json(200, app.stats_payload())
            return
        if method == "GET" and path == "/v1/metrics":
            self._send_text(
                200,
                render_prometheus(),
                "text/plain; version=0.0.4; charset=utf-8",
            )
            return
        if path == "/v1/jobs":
            if method == "POST":
                self._send_json(201, app.submit_job(self._read_body()))
                return
            if method == "GET":
                self._send_json(200, app.list_jobs())
                return
        match = _JOB_ROUTE.match(path)
        if match is not None:
            job_id, suffix = match.group(1), match.group(2)
            if method == "GET" and suffix == "/events":
                self._stream_job_events(job_id)
                return
            if method == "GET" and suffix == "/result":
                try:
                    wait = float((query.get("wait") or ["0"])[0])
                except ValueError:
                    raise _HTTPFailure(400, "wait must be a number") from None
                self._send_json(200, app.job_result(job_id, wait))
                return
            if method == "GET" and suffix == "/trace":
                self._send_json(200, app.job_trace(job_id))
                return
            if method == "GET" and suffix is None:
                self._send_json(200, app.job_status(job_id))
                return
            if method == "DELETE" and suffix is None:
                self._send_json(200, app.cancel_job(job_id))
                return
        if path == "/v1/sweeps" and method == "POST":
            self._send_json(201, app.submit_sweep(self._read_body()))
            return
        match = _SWEEP_ROUTE.match(path)
        if match is not None:
            sweep_id, suffix = match.group(1), match.group(2)
            if method == "GET" and suffix == "/events":
                self._stream_sweep_events(sweep_id)
                return
            if method == "GET" and suffix is None:
                self._send_json(200, app.sweep_status(sweep_id))
                return
            if method == "DELETE" and suffix is None:
                self._send_json(200, app.cancel_sweep(sweep_id))
                return
        raise _HTTPFailure(404, f"no route for {method} {path}")

    # -- SSE -------------------------------------------------------------

    def _start_event_stream(self) -> None:
        self._drain_body()
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Connection", "close")
        self.end_headers()
        # No Content-Length: the stream ends when the job does, and the
        # connection closes with it.
        self.close_connection = True

    def _last_event_id(self) -> int:
        """The ``Last-Event-ID`` header, or ``-1`` (send everything).

        A reconnecting SSE consumer sends the id of the last event it
        processed; since job streams replay deterministically from the
        start (``iter_results`` re-yields every emitted shard in
        landing order, with stable sequence ids), skipping events with
        ``id <= Last-Event-ID`` resumes the stream exactly where the
        dropped connection left it — no duplicates, no gaps.
        """
        value = self.headers.get("Last-Event-ID")
        if value is None:
            return -1
        try:
            return int(value)
        except ValueError:
            return -1

    def _send_event(
        self, event_id: int, event: str, data: Mapping[str, Any]
    ) -> None:
        if event_id <= self._resume_after:
            return  # already delivered on a previous connection
        # The chaos seam: a "reset" rule here severs the stream
        # mid-flight (before the event is written), exactly like a
        # dropped socket — what the Last-Event-ID resume tests exercise.
        maybe_inject("server.sse", event_index=event_id, kind=event)
        chunk = (
            f"id: {event_id}\n"
            f"event: {event}\n"
            f"data: {json.dumps(data)}\n\n"
        )
        self.wfile.write(chunk.encode("utf-8"))
        self.wfile.flush()

    def _stream_job_events(self, job_id: str) -> None:
        """SSE: shard-level progress and incremental results of one job."""
        job = self.app.get_job(job_id)
        if job is None:
            raise _HTTPFailure(404, f"unknown or no longer live job {job_id!r}")
        self._resume_after = self._last_event_id()
        self._start_event_stream()
        sequence = 0
        try:
            self._send_event(
                sequence, "progress", wire.progress_to_wire(job.progress())
            )
            try:
                for shard in job.iter_results():
                    sequence += 1
                    payload = wire.shard_to_wire(shard)
                    payload["progress"] = wire.progress_to_wire(job.progress())
                    self._send_event(sequence, "shard", payload)
                sequence += 1
                self._send_event(
                    sequence, "done", wire.progress_to_wire(job.progress())
                )
            except (BrokenPipeError, ConnectionResetError):
                # Transport failure while *writing*, not the job's own
                # error — fall through to the outer handler so a
                # dropped consumer is never reported as a failed job.
                raise
            except JobCancelledError as error:
                sequence += 1
                self._send_event(sequence, "cancelled", {"error": str(error)})
            except Exception as error:  # noqa: BLE001 — job's own failure
                sequence += 1
                self._send_event(sequence, "failed", {"error": str(error)})
        except (BrokenPipeError, ConnectionResetError):
            pass  # consumer went away; the job keeps running

    def _stream_sweep_events(self, sweep_id: str) -> None:
        """SSE: one ``row`` event per completed grid point, in grid order."""
        handle = self.app.get_sweep(sweep_id)
        if handle is None:
            raise _HTTPFailure(404, f"unknown sweep {sweep_id!r}")
        self._resume_after = self._last_event_id()
        self._start_event_stream()
        sequence = 0
        try:
            try:
                for index, row in handle.iter_rows():
                    sequence += 1
                    self._send_event(
                        sequence, "row", SimulationServer._row_to_wire(index, row)
                    )
                sequence += 1
                self._send_event(sequence, "done", {"state": "done"})
            except (BrokenPipeError, ConnectionResetError):
                raise  # transport failure, not the sweep's own error
            except JobCancelledError as error:
                sequence += 1
                self._send_event(sequence, "cancelled", {"error": str(error)})
            except Exception as error:  # noqa: BLE001 — sweep's own failure
                sequence += 1
                self._send_event(sequence, "failed", {"error": str(error)})
        except (BrokenPipeError, ConnectionResetError):
            pass
