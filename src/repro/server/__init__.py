"""HTTP/SSE serving layer: remote submission over the job manager.

Three modules, no third-party dependencies:

* :mod:`repro.server.wire` — the versioned JSON schema; round-trip
  exact for requests (seeds included), outcomes, results, and shard
  events.
* :mod:`repro.server.app` — :class:`~repro.server.app.SimulationServer`,
  a ``ThreadingHTTPServer`` exposing REST routes plus Server-Sent-Events
  streams over :class:`~repro.sim.jobs.JobManager` and
  :class:`~repro.sim.runner.SweepJob`.
* :mod:`repro.server.client` — :class:`~repro.server.client.RemoteClient`,
  the ``simulate()``/``simulate_async()`` facade over HTTP with
  retry/backoff (including the 429 concurrency-limit path).

Start a server with ``repro-ants serve --host H --port P --max-jobs N``
or programmatically::

    from repro.server import RemoteClient, SimulationServer

    with SimulationServer(port=0) as server:
        client = RemoteClient(server.url)
        result = client.simulate(request)   # == local simulate(request)

The submodules import lazily through ``__getattr__`` so importing
:mod:`repro` never pays for the HTTP stack.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "SimulationServer",
    "RemoteClient",
    "RemoteJob",
    "RemoteSweep",
    "RemoteServerError",
    "WIRE_VERSION",
    "WireError",
]

_EXPORTS = {
    "SimulationServer": ("repro.server.app", "SimulationServer"),
    "RemoteClient": ("repro.server.client", "RemoteClient"),
    "RemoteJob": ("repro.server.client", "RemoteJob"),
    "RemoteSweep": ("repro.server.client", "RemoteSweep"),
    "RemoteServerError": ("repro.server.client", "RemoteServerError"),
    "WIRE_VERSION": ("repro.server.wire", "WIRE_VERSION"),
    "WireError": ("repro.server.wire", "WireError"),
}


def __getattr__(name: str) -> Any:
    try:
        module_name, attribute = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro.server' has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attribute)
