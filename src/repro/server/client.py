"""``RemoteClient`` — the ``simulate()`` facade over HTTP.

A dependency-free (stdlib ``urllib``) client for
:class:`~repro.server.app.SimulationServer` mirroring the in-process
facade: :meth:`RemoteClient.simulate` blocks for a full
:class:`~repro.sim.backends.base.SimulationResult`,
:meth:`RemoteClient.simulate_async` returns a :class:`RemoteJob`
handle with the same surface as a local
:class:`~repro.sim.jobs.SimulationJob` — ``iter_results()`` streams
shard completions over SSE, ``result()`` long-polls, ``progress()``
snapshots, ``cancel()`` requests cancellation.

Because the wire schema round-trips requests exactly (seeds included)
and the server executes through the same job pipeline, a remote
``simulate(request)`` on a per-trial backend returns outcomes
**identical** to the local call — the property the integration tests
pin down over a real socket.

Transient failures are retried with exponential backoff: a ``429 Too
Many Requests`` honors the server's ``Retry-After`` header (the
concurrency-limit path), and connection errors (server still booting,
blip) back off geometrically up to ``max_attempts``.  Submissions
carry client-generated idempotency keys, so even POSTs retry safely —
a resubmission after a dropped connection replays the already-admitted
job instead of duplicating it — and SSE consumers resume dropped
streams with ``Last-Event-ID`` instead of raising.
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.error
import urllib.request
import uuid
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Tuple

from repro.errors import InvalidParameterError, JobCancelledError, ReproError
from repro.obs.metrics import get_registry
from repro.obs.trace import current_context, span, traceparent_header
from repro.resilience.faults import maybe_inject
from repro.sim.backends.base import SimulationRequest, SimulationResult
from repro.sim.backends.registry import AUTO
from repro.sim.jobs import JobState, ShardResult
from repro.server import wire
from repro.server.wire import WIRE_VERSION

#: Per-request socket timeout nothing else overrides.
_DEFAULT_TIMEOUT = 30.0

#: How long one result long-poll asks the server to wait.
_RESULT_WAIT = 30.0

_REGISTRY = get_registry()
_RETRIES_TOTAL = _REGISTRY.counter(
    "repro_client_retries_total",
    "Remote client retries absorbed by backoff, by kind.",
    ["kind"],
)
_RETRY_AFTER_SECONDS = _REGISTRY.gauge(
    "repro_client_last_retry_after_seconds",
    "Most recent Retry-After the server sent on a 429 rejection.",
)
# Shared with the job layer's shard retries (same metric, different
# layer label) — one counter tells the whole resilience-retry story.
_LAYER_RETRIES = _REGISTRY.counter(
    "repro_retries_total",
    "Retries performed by the resilience machinery, by layer "
    "(shard: pool shard re-execution; client: HTTP re-request).",
    ["layer"],
)

#: SSE events that end a job/sweep stream; a stream that stops without
#: one of these was dropped mid-flight and is resumed via Last-Event-ID.
_TERMINAL_EVENTS = frozenset({"done", "failed", "cancelled"})


class RemoteServerError(ReproError):
    """The server answered with an error status (or never answered)."""

    def __init__(self, message: str, status: Optional[int] = None) -> None:
        super().__init__(message)
        self.status = status


def _iter_sse(stream) -> Iterator[Tuple[str, Dict[str, Any], Optional[str]]]:
    """Parse a ``text/event-stream`` body into (event, data, id) tuples."""
    event: Optional[str] = None
    event_id: Optional[str] = None
    data_lines: List[str] = []
    for raw in stream:
        line = raw.decode("utf-8").rstrip("\r\n")
        if not line:
            if data_lines:
                yield (
                    event or "message",
                    json.loads("\n".join(data_lines)),
                    event_id,
                )
            event, event_id, data_lines = None, None, []
            continue
        if line.startswith(":"):
            continue
        field, _, value = line.partition(":")
        value = value.removeprefix(" ")
        if field == "event":
            event = value
        elif field == "data":
            data_lines.append(value)
        elif field == "id":
            event_id = value


class RemoteClient:
    """Talk to one :class:`~repro.server.app.SimulationServer`.

    Parameters
    ----------
    base_url:
        ``http://host:port`` of the server.
    timeout:
        Socket timeout per request (SSE streams are exempt — they stay
        open for the job's lifetime).
    max_attempts:
        Total tries per logical request before giving up.
    backoff_seconds / backoff_cap:
        Geometric backoff for connection errors; 429 responses use the
        server's ``Retry-After`` instead (clamped to the cap).
    sleep:
        Injection point for the tests; defaults to :func:`time.sleep`.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = _DEFAULT_TIMEOUT,
        max_attempts: int = 8,
        backoff_seconds: float = 0.2,
        backoff_cap: float = 5.0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if max_attempts < 1:
            raise InvalidParameterError(
                f"max_attempts must be >= 1, got {max_attempts}"
            )
        self.base_url = base_url.rstrip("/")
        self._timeout = timeout
        self._max_attempts = max_attempts
        self._backoff = backoff_seconds
        self._backoff_cap = backoff_cap
        self._sleep = sleep
        #: Diagnostics: how many 429 rejections / connection errors /
        #: dropped SSE streams this client has absorbed by backing off.
        self.retries_429 = 0
        self.retries_connect = 0
        self.retries_stream = 0

    # -- transport -------------------------------------------------------

    def _open(
        self,
        method: str,
        path: str,
        payload: Optional[Mapping[str, Any]] = None,
        stream: bool = False,
        retry: bool = True,
        timeout: Optional[float] = None,
        idempotent: bool = False,
        extra_headers: Optional[Mapping[str, str]] = None,
    ):
        """One HTTP exchange with backoff; returns the open response.

        ``stream=True`` disables the socket timeout and hands back the
        live response object (SSE); otherwise callers use
        :meth:`_call`, which reads and decodes the JSON body.
        ``timeout`` overrides the client default for this exchange
        (the result long-poll must outlast its own ``wait``).

        Retry policy: a 429 is always safe to retry (the server
        rejected before admitting).  Connection errors are retried for
        idempotent methods — GET/DELETE always, and POSTs only when
        ``idempotent=True``, i.e. the payload carries an
        ``idempotency_key`` the server dedups on, so a resubmission of
        a POST whose connection dropped after admission replays the
        original unit instead of duplicating it.
        """
        url = f"{self.base_url}{path}"
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        attempts = self._max_attempts if retry else 1
        retry_connect = retry and (
            idempotent or method in ("GET", "DELETE")
        )
        last_error: Optional[BaseException] = None
        headers = {"Content-Type": "application/json"}
        for name, value in (extra_headers or {}).items():
            headers[name] = value
        # Propagate the ambient span (if any) as a W3C traceparent so
        # the server parents its request/job spans under ours and the
        # stitched trace crosses the process boundary.
        if current_context() is not None:
            headers["traceparent"] = traceparent_header()
        for attempt in range(attempts):
            request = urllib.request.Request(
                url,
                data=body,
                method=method,
                headers=dict(headers),
            )
            try:
                # The chaos seam: a "reset" rule here simulates the
                # connection dropping before (or while) the request is
                # on the wire — the case idempotency keys make safe.
                maybe_inject(
                    "client.http", method=method, path=path, attempt=attempt
                )
                return urllib.request.urlopen(
                    request,
                    timeout=None if stream else (timeout or self._timeout),
                )
            except urllib.error.HTTPError as error:
                if error.code == 429 and attempt + 1 < attempts:
                    # The server is at --max-jobs capacity; honor its
                    # Retry-After, with a floor of the geometric backoff
                    # so a herd of clients still spreads out.
                    retry_after = self._retry_after(error)
                    error.close()
                    self.retries_429 += 1
                    _RETRIES_TOTAL.inc(kind="429")
                    _RETRY_AFTER_SECONDS.set(retry_after)
                    self._sleep(
                        min(
                            max(retry_after, self._backoff * 2**attempt),
                            self._backoff_cap,
                        )
                    )
                    continue
                detail = self._error_detail(error)
                error.close()
                raise RemoteServerError(
                    f"{method} {path} -> {error.code}: {detail}",
                    status=error.code,
                ) from None
            except (urllib.error.URLError, ConnectionResetError) as error:
                last_error = error
                if retry_connect and attempt + 1 < attempts:
                    self.retries_connect += 1
                    _RETRIES_TOTAL.inc(kind="connect")
                    _LAYER_RETRIES.inc(layer="client")
                    self._sleep(
                        min(self._backoff * 2**attempt, self._backoff_cap)
                    )
                    continue
                break
        raise RemoteServerError(
            f"{method} {path} failed after "
            f"{attempt + 1} attempt(s): {last_error}"
        )

    @staticmethod
    def _retry_after(error: urllib.error.HTTPError) -> float:
        try:
            return float(error.headers.get("Retry-After", "0"))
        except (TypeError, ValueError):
            return 0.0

    @staticmethod
    def _error_detail(error: urllib.error.HTTPError) -> str:
        try:
            payload = json.loads(error.read())
            return str(payload.get("error", payload))
        except (OSError, ValueError):
            return error.reason if isinstance(error.reason, str) else "error"

    def _call(
        self,
        method: str,
        path: str,
        payload: Optional[Mapping[str, Any]] = None,
        retry: bool = True,
        timeout: Optional[float] = None,
        idempotent: bool = False,
    ) -> Tuple[int, Dict[str, Any]]:
        """JSON request -> (status, decoded body)."""
        response = self._open(
            method, path, payload=payload, retry=retry, timeout=timeout,
            idempotent=idempotent,
        )
        with response:
            status = response.status
            body = json.loads(response.read() or b"{}")
        return status, body

    def _stream_events(
        self, path: str
    ) -> Iterator[Tuple[str, Dict[str, Any], Optional[str]]]:
        """SSE events from ``path``, resuming across dropped streams.

        Tracks the last delivered event id; when the stream stops
        before a terminal event (severed socket, server blip), the
        client reconnects with the standard ``Last-Event-ID`` header
        and the server skips everything already delivered — the
        consumer sees one seamless, duplicate-free sequence.  Resumes
        are bounded by ``max_attempts``; a stream that keeps dying
        raises :class:`RemoteServerError` so truncated results are
        never mistaken for success.
        """
        last_id: Optional[str] = None
        resumes = 0
        while True:
            headers = {} if last_id is None else {"Last-Event-ID": last_id}
            response = self._open(
                "GET", path, stream=True, extra_headers=headers
            )
            try:
                with response:
                    for event, data, event_id in _iter_sse(response):
                        if event_id is not None:
                            last_id = event_id
                        yield event, data, event_id
                        if event in _TERMINAL_EVENTS:
                            return
            except (http.client.HTTPException, OSError):
                pass  # dropped mid-stream; fall through to resume
            resumes += 1
            if resumes >= self._max_attempts:
                raise RemoteServerError(
                    f"event stream {path} ended before a terminal event "
                    f"after {resumes} resume attempt(s); results may be "
                    f"incomplete"
                )
            self.retries_stream += 1
            _RETRIES_TOTAL.inc(kind="sse_resume")
            _LAYER_RETRIES.inc(layer="client")
            self._sleep(
                min(self._backoff * 2 ** (resumes - 1), self._backoff_cap)
            )

    # -- the facade mirror -----------------------------------------------

    def simulate(
        self,
        request: SimulationRequest,
        backend: str = AUTO,
        workers: int = 1,
        cache: Optional[bool] = None,
    ) -> SimulationResult:
        """Execute remotely and block for the result.

        Mirrors :func:`repro.sim.simulate`: same parameters, same
        outcome values for a fixed seed on per-trial backends.
        """
        with span(
            "client.simulate",
            algorithm=request.algorithm.name,
            n_trials=request.n_trials,
        ):
            return self.submit(
                request, backend=backend, workers=workers, cache=cache
            ).result()

    def simulate_async(
        self,
        request: SimulationRequest,
        backend: str = AUTO,
        workers: int = 1,
        cache: Optional[bool] = None,
    ) -> "RemoteJob":
        """Submit remotely; returns the job handle immediately."""
        return self.submit(
            request, backend=backend, workers=workers, cache=cache
        )

    def submit(
        self,
        request: SimulationRequest,
        backend: str = AUTO,
        workers: int = 1,
        cache: Optional[bool] = None,
        plan: bool = False,
    ) -> "RemoteJob":
        """``POST /v1/jobs`` with 429 backoff; returns a :class:`RemoteJob`.

        ``plan=True`` asks the server to route the job through its
        cost-model selector (:func:`repro.sim.selector.plan_request`);
        the chosen plan comes back in the submission payload
        (``job.submitted["plan"]``).

        Every submission carries a fresh idempotency key, so a POST
        whose connection dropped is retried safely: if the first
        attempt was admitted server-side, the retry replays that job
        instead of duplicating it.
        """
        payload = {
            "wire": WIRE_VERSION,
            "request": wire.request_to_wire(request),
            "backend": backend,
            "workers": workers,
            "cache": cache,
            "idempotency_key": uuid.uuid4().hex,
        }
        if plan:
            payload["plan"] = True
        # The span is live *during* the POST so _open propagates its
        # context as the traceparent — the server's request/job spans
        # become children of client.submit in the stitched trace.
        with span(
            "client.submit",
            algorithm=request.algorithm.name,
            n_trials=request.n_trials,
        ) as sp:
            _, body = self._call(
                "POST", "/v1/jobs", payload=payload, idempotent=True
            )
            if sp is not None:
                sp.set_attribute("job_id", body["job_id"])
        return RemoteJob(self, body["job_id"], submitted=body)

    def submit_sweep(
        self,
        template: SimulationRequest,
        grid: List[Mapping[str, Any]],
        trials: int,
        seed: int,
        seed_keys: Tuple[int, ...] = (),
        backend: str = AUTO,
        workers: int = 1,
        cache: Optional[bool] = None,
    ) -> "RemoteSweep":
        """``POST /v1/sweeps``: a template + grid, compiled server-side."""
        _, body = self._call(
            "POST",
            "/v1/sweeps",
            payload={
                "wire": WIRE_VERSION,
                "template": wire.request_to_wire(template),
                "grid": [dict(point) for point in grid],
                "trials": trials,
                "seed": seed,
                "seed_keys": list(seed_keys),
                "backend": backend,
                "workers": workers,
                "cache": cache,
                "idempotency_key": uuid.uuid4().hex,
            },
            idempotent=True,
        )
        return RemoteSweep(self, body["sweep_id"])

    # -- inspection ------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        """``GET /v1/health``."""
        return self._call("GET", "/v1/health")[1]

    def backends(self) -> Dict[str, Any]:
        """``GET /v1/backends``."""
        return self._call("GET", "/v1/backends")[1]

    def stats(self) -> Dict[str, Any]:
        """``GET /v1/stats``."""
        return self._call("GET", "/v1/stats")[1]

    def metrics(self) -> str:
        """``GET /v1/metrics`` — the Prometheus text exposition."""
        response = self._open("GET", "/v1/metrics")
        with response:
            return response.read().decode("utf-8")

    def jobs(self) -> List[Dict[str, Any]]:
        """``GET /v1/jobs`` — recent jobs, newest first."""
        return self._call("GET", "/v1/jobs")[1]["jobs"]


class RemoteJob:
    """Remote counterpart of :class:`~repro.sim.jobs.SimulationJob`."""

    def __init__(
        self,
        client: RemoteClient,
        job_id: str,
        submitted: Optional[Dict[str, Any]] = None,
    ) -> None:
        self._client = client
        self.job_id = job_id
        #: The submission response (initial status), for convenience.
        self.submitted = submitted

    def status(self) -> Dict[str, Any]:
        """``GET /v1/jobs/{id}`` — the raw status payload."""
        return self._client._call("GET", f"/v1/jobs/{self.job_id}")[1]

    @property
    def state(self) -> JobState:
        """The job's current state (one HTTP round trip)."""
        return wire.state_from_wire(self.status()["state"])

    def done(self) -> bool:
        """Whether the job reached a terminal state."""
        from repro.sim.jobs import TERMINAL_STATES

        return self.state in TERMINAL_STATES

    def progress(self) -> Dict[str, Any]:
        """The status route's progress snapshot."""
        return self.status()["progress"]

    def iter_events(self) -> Iterator[Tuple[str, Dict[str, Any]]]:
        """Raw SSE events: ``(event, data)`` in stream order.

        Events: one initial ``progress``, one ``shard`` per completed
        trial shard, then a terminal ``done``/``failed``/``cancelled``.
        A dropped stream resumes transparently via ``Last-Event-ID``
        (bounded by the client's ``max_attempts``), so consumers see
        one seamless sequence across reconnects.
        """
        for event, data, _ in self._client._stream_events(
            f"/v1/jobs/{self.job_id}/events"
        ):
            yield event, data

    def iter_results(self) -> Iterator[ShardResult]:
        """Stream :class:`ShardResult` values as shards complete.

        The remote mirror of
        :meth:`~repro.sim.jobs.SimulationJob.iter_results`: raises
        :class:`~repro.errors.JobCancelledError` on cancellation,
        :class:`RemoteServerError` if the job failed — or if the SSE
        stream closed before a terminal event (dropped connection,
        server restart), so truncated results are never mistaken for
        success.
        """
        terminal = False
        for event, data in self.iter_events():
            if event == "shard":
                yield wire.shard_from_wire(data)
            elif event == "done":
                terminal = True
            elif event == "cancelled":
                raise JobCancelledError(
                    data.get("error") or f"job {self.job_id} was cancelled"
                )
            elif event == "failed":
                raise RemoteServerError(
                    f"job {self.job_id} failed: {data.get('error')}"
                )
        if not terminal:
            raise RemoteServerError(
                f"event stream for job {self.job_id} ended before a "
                f"terminal event; results may be incomplete"
            )

    def result(self, timeout: Optional[float] = None) -> SimulationResult:
        """Long-poll ``/result`` until terminal; decode the full result."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            wait = _RESULT_WAIT
            if deadline is not None:
                wait = min(wait, deadline - time.monotonic())
                if wait <= 0:
                    raise TimeoutError(
                        f"remote job {self.job_id} still running after "
                        f"{timeout}s"
                    )
            try:
                # Socket timeout strictly above the server-side park so
                # the long-poll answer (a 202 at t = wait) always beats
                # the client's own read timeout.
                status, body = self._client._call(
                    "GET",
                    f"/v1/jobs/{self.job_id}/result?wait={wait:g}",
                    timeout=wait + 15.0,
                )
            except RemoteServerError as error:
                if error.status == 410:
                    raise JobCancelledError(str(error)) from None
                raise
            if status == 200:
                return wire.result_from_wire(body)
            # 202: still running — poll again.

    def trace(self) -> Tuple[str, List[Dict[str, Any]]]:
        """``GET /v1/jobs/{id}/trace`` -> ``(trace_id, span payloads)``.

        The server's recorded spans for this job's trace; merge with
        locally recorded spans of the same trace id for the full
        client -> server -> shards picture.
        """
        _, body = self._client._call(
            "GET", f"/v1/jobs/{self.job_id}/trace"
        )
        return wire.trace_from_wire(body)

    def cancel(self) -> bool:
        """``DELETE /v1/jobs/{id}``; ``True`` if accepted."""
        _, body = self._client._call("DELETE", f"/v1/jobs/{self.job_id}")
        return bool(body.get("cancelled"))


class RemoteSweep:
    """Remote counterpart of :class:`~repro.sim.runner.SweepJob`."""

    def __init__(self, client: RemoteClient, sweep_id: str) -> None:
        self._client = client
        self.sweep_id = sweep_id

    def status(self) -> Dict[str, Any]:
        """``GET /v1/sweeps/{id}`` — progress plus completed rows."""
        return self._client._call("GET", f"/v1/sweeps/{self.sweep_id}")[1]

    def iter_rows(self) -> Iterator[Tuple[int, Dict[str, Any]]]:
        """Stream ``(point_index, row)`` as grid points complete.

        Dropped streams resume via ``Last-Event-ID`` like the job
        event stream.
        """
        terminal = False
        for event, data, _ in self._client._stream_events(
            f"/v1/sweeps/{self.sweep_id}/events"
        ):
            if event == "row":
                yield data["point_index"], data
            elif event == "done":
                terminal = True
            elif event == "cancelled":
                raise JobCancelledError(
                    data.get("error")
                    or f"sweep {self.sweep_id} was cancelled"
                )
            elif event == "failed":
                raise RemoteServerError(
                    f"sweep {self.sweep_id} failed: {data.get('error')}"
                )
        if not terminal:
            raise RemoteServerError(
                f"event stream for sweep {self.sweep_id} ended before a "
                f"terminal event; rows may be incomplete"
            )

    def result(
        self, poll_seconds: float = 0.2, timeout: Optional[float] = None
    ) -> List[Dict[str, Any]]:
        """Poll until terminal; the completed rows in grid order."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            status = self.status()
            state = wire.state_from_wire(status["state"])
            if state is JobState.DONE:
                return status["rows"]
            if state is JobState.CANCELLED:
                raise JobCancelledError(
                    f"sweep {self.sweep_id} was cancelled"
                )
            if state is JobState.FAILED:
                raise RemoteServerError(f"sweep {self.sweep_id} failed")
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"remote sweep {self.sweep_id} still {state.value}"
                )
            self._client._sleep(poll_seconds)

    def cancel(self) -> bool:
        """``DELETE /v1/sweeps/{id}``; ``True`` if accepted."""
        _, body = self._client._call(
            "DELETE", f"/v1/sweeps/{self.sweep_id}"
        )
        return bool(body.get("cancelled"))
