"""E04 — Composite coin correctness (Lemma 3.6).

Lemma 3.6: ``coin(k, l)`` shows tails with probability exactly
``2^{-kl}`` and requires ``ceil(log2 k)`` bits of memory.  The
experiment flips the faithful loop implementation and compares the
empirical rate with the closed form, and checks the mechanical memory
accounting of both the coin object and the product automaton built
on it.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.coin import CompositeCoin
from repro.experiments.base import DEFAULT_SEED, ExperimentResult, check_scale
from repro.experiments.compiler import ExperimentSpec, execute_spec
from repro.sim.runner import ExperimentRow, rows_to_markdown
from repro.sim.stats import mean_ci

_SCALES = {
    "smoke": {"grid": ((1, 1), (2, 1), (3, 1), (2, 2), (4, 1)), "flips": 200_000},
    "paper": {
        "grid": ((1, 1), (2, 1), (3, 1), (4, 1), (6, 1), (2, 2), (3, 2), (2, 3), (8, 1)),
        "flips": 2_000_000,
    },
}


def empirical_tails_rate(
    k: int, ell: int, flips: int, rng: np.random.Generator
) -> float:
    """Empirical tails frequency of the faithful k-flip loop, vectorized.

    The loop "return heads at the first base heads" is equivalent to
    "tails iff all k base flips are tails", which vectorizes as a
    product of Bernoulli draws.
    """
    base_tails = rng.random((flips, k)) < 2.0**-ell
    return float(base_tails.all(axis=1).mean())


def _measure(scale: str = "smoke", seed: int = DEFAULT_SEED) -> ExperimentResult:
    params = _SCALES[check_scale(scale)]
    rng = np.random.default_rng(seed)
    rows = []
    checks = {}
    for k, ell in params["grid"]:
        coin = CompositeCoin(k, ell)
        expected = coin.tails_probability
        measured = empirical_tails_rate(k, ell, params["flips"], rng)
        expected_bits = math.ceil(math.log2(k)) if k > 1 else 0
        rows.append(
            ExperimentRow(
                params={"k": k, "l": ell},
                estimate=mean_ci([measured]),
                extras={
                    "exact 2^-kl": expected,
                    "bits": float(coin.memory_bits),
                    "lemma ceil(log k)": float(expected_bits),
                },
            )
        )
        se = (expected * (1 - expected) / params["flips"]) ** 0.5
        checks[f"k={k} l={ell}: rate within 5 s.e. of 2^-kl"] = (
            abs(measured - expected) <= 5 * se + 1e-6
        )
        checks[f"k={k} l={ell}: memory = ceil(log2 k)"] = (
            coin.memory_bits == expected_bits
        )
    # Spot-check the faithful sequential implementation as well.
    coin = CompositeCoin(2, 1)
    sequential = float(np.mean([coin.flip(rng) for _ in range(40_000)]))
    checks["sequential flip agrees with closed form"] = (
        abs(sequential - 0.25) < 0.01
    )
    table = rows_to_markdown(
        rows, ["k", "l"], "tails rate", ["exact 2^-kl", "bits", "lemma ceil(log k)"]
    )
    return ExperimentResult(
        experiment_id="E04",
        title="coin(k, l): exact tails probability and memory",
        paper_claim="Lemma 3.6: tails probability exactly 2^{-kl}; ceil(log2 k) bits.",
        table=table,
        checks=checks,
        notes=[
            "Both the vectorized all-tails product and the faithful "
            "sequential early-exit loop reproduce 2^{-kl}; the memory "
            "meter matches the lemma bit-for-bit."
        ],
    )


def spec(scale: str = "smoke") -> ExperimentSpec:
    """E04 as data: no declared sweeps — the bespoke measurement is the analyze pass."""
    check_scale(scale)
    return ExperimentSpec(
        experiment_id="E04",
        sweeps=(),
        analyze=lambda context: _measure(context.scale, context.seed),
    )


def run(scale: str = "smoke", seed: int = DEFAULT_SEED) -> ExperimentResult:
    return execute_spec(spec(scale), scale, seed)
