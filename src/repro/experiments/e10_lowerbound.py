"""E10 — The lower bound in action (Theorem 4.1 / Corollary 4.11).

For automata with small, *fixed* chi (constant as ``D`` grows, hence
eventually below ``log log D - omega(1)``), the theorem predicts: within
the horizon ``Delta = D^{2-o(1)}`` the colony covers only ``o(D^2)`` of
the window, misses an adversarially placed target w.h.p., and finds a
uniformly placed target with probability ``o(1)``.

The experiment runs three below-threshold specimens (uniform walk,
biased walk, random bounded machine) against a growing ``D``, measures
coverage and find rates at the explicit horizon ``D^{1.75}``, and
contrasts them with the above-threshold Non-Uniform-Search given the
*same* move budget — the gap the paper's title is about.
"""

from __future__ import annotations

import numpy as np

from repro.core.nonuniform import NonUniformSearch
from repro.experiments.base import DEFAULT_SEED, ExperimentResult, check_scale
from repro.experiments.compiler import ExperimentSpec, execute_spec
from repro.lowerbound.colony import simulate_colony
from repro.lowerbound.coverage import adversarial_target
from repro.lowerbound.theory import horizon_moves
from repro.markov.random_automata import (
    biased_walk_automaton,
    random_bounded_automaton,
    uniform_walk_automaton,
)
from repro.sim.backends import AlgorithmSpec, SimulationRequest
from repro.sim.rng import derive_seed
from repro.sim.runner import ExperimentRow, rows_to_markdown
from repro.sim.service import simulate
from repro.sim.stats import mean_ci

_SCALES = {
    "smoke": {"distances": (24, 48), "n_agents": 8, "trials": 8, "epsilon": 0.25},
    "paper": {
        "distances": (32, 64, 128, 256),
        "n_agents": 16,
        "trials": 20,
        "epsilon": 0.25,
    },
}


def specimens(seed: int):
    """The below-threshold automata the experiment probes."""
    rng = np.random.default_rng(derive_seed(seed, 1000))
    return [
        ("uniform-walk", uniform_walk_automaton()),
        ("biased-walk", biased_walk_automaton([3, 1, 2, 2], ell=3)),
        ("random(b=3,l=2)", random_bounded_automaton(rng, bits=3, ell=2)),
    ]


def _measure(scale: str = "smoke", seed: int = DEFAULT_SEED) -> ExperimentResult:
    params = _SCALES[check_scale(scale)]
    n_agents = params["n_agents"]
    epsilon = params["epsilon"]
    rows = []
    checks = {}
    notes = []

    coverage_by_name: dict[str, list[float]] = {}
    for name, automaton in specimens(seed):
        for distance in params["distances"]:
            horizon = horizon_moves(distance, epsilon)
            target = adversarial_target(automaton, distance)
            found_adversarial = 0
            found_uniform = 0
            coverages = []
            for trial in range(params["trials"]):
                rng = np.random.default_rng(
                    derive_seed(seed, 10, distance, trial)
                )
                result = simulate_colony(
                    automaton,
                    n_agents,
                    horizon,
                    rng,
                    window_radius=distance,
                    target=target,
                )
                coverages.append(result.coverage_fraction)
                found_adversarial += result.found
                uniform_target = (
                    int(rng.integers(-distance, distance + 1)),
                    int(rng.integers(-distance, distance + 1)),
                )
                side = 2 * distance + 1
                found_uniform += bool(
                    result.visited[
                        uniform_target[0] + distance, uniform_target[1] + distance
                    ]
                )
            coverage = float(np.mean(coverages))
            coverage_by_name.setdefault(name, []).append(coverage)
            adversarial_rate = found_adversarial / params["trials"]
            uniform_rate = found_uniform / params["trials"]
            rows.append(
                ExperimentRow(
                    params={"automaton": name, "D": distance},
                    estimate=mean_ci(coverages),
                    extras={
                        "horizon D^1.75": float(horizon),
                        "P[find adversarial]": adversarial_rate,
                        "P[cover uniform]": uniform_rate,
                    },
                )
            )
            checks[f"{name} D={distance}: adversarial target survives"] = (
                adversarial_rate <= 0.25
            )
        series = coverage_by_name[name]
        checks[f"{name}: coverage fraction decays with D"] = series[-1] < series[0]

    # Contrast: the above-threshold algorithm with the same per-agent
    # move budget.  At finite D the optimal-regime constant (~64 D^2/n)
    # crosses below the D^{1.75} horizon only once n >= ~64 D^{0.25}, so
    # the contrast colony is sized accordingly; asymptotically any fixed
    # n separates the regimes.
    contrast_rows = []
    for distance in params["distances"]:
        horizon = horizon_moves(distance, epsilon)
        n_contrast = int(np.ceil(256.0 * distance**0.25))
        request = SimulationRequest(
            algorithm=AlgorithmSpec.nonuniform(distance, 1),
            n_agents=n_contrast,
            target=(distance, distance),
            move_budget=horizon,
            n_trials=params["trials"],
            seed=seed,
            seed_keys=(20, distance),
        )
        rate = simulate(request, backend="closed_form").find_rate
        chi = NonUniformSearch(distance, 1).selection_complexity().chi
        contrast_rows.append(
            ExperimentRow(
                params={"D": distance},
                estimate=mean_ci([rate]),
                extras={"chi": chi, "budget": float(horizon), "n": float(n_contrast)},
            )
        )
        checks[f"nonuniform D={distance}: finds corner within D^1.75 budget"] = (
            rate >= 0.5
        )
    notes.append(
        "Below-threshold machines leave the adversarial cell untouched and "
        "cover a window fraction that shrinks as D grows, while "
        "Non-Uniform-Search (chi ~ log log D) finds the hardest placement "
        "within the same D^{1.75} move budget — the exponential performance "
        "gap of Theorem 4.1."
    )
    notes.append(
        "Fixed automata have constant chi, so they fall below the "
        "log log D - omega(1) threshold for all sufficiently large D; the "
        "D-sweep shows their coverage already obeying the o(D^2) regime at "
        "simulable sizes."
    )

    table = (
        rows_to_markdown(
            rows,
            ["automaton", "D"],
            "coverage fraction",
            ["horizon D^1.75", "P[find adversarial]", "P[cover uniform]"],
        )
        + "\n\nAbove-threshold contrast (Non-Uniform-Search, same budget):\n\n"
        + rows_to_markdown(
            contrast_rows, ["D"], "P[find corner]", ["chi", "budget", "n"]
        )
    )
    return ExperimentResult(
        experiment_id="E10",
        title="Below-threshold automata cannot beat D^{2-o(1)}",
        paper_claim=(
            "Theorem 4.1 / Corollary 4.11: chi <= log log D - omega(1) implies "
            "some in-window placement stays unfound for D^{2-o(1)} moves "
            "w.h.p., and a uniform placement is found w.p. o(1)."
        ),
        table=table,
        checks=checks,
        notes=notes,
    )


def spec(scale: str = "smoke") -> ExperimentSpec:
    """E10 as data: no declared sweeps — the bespoke measurement is the analyze pass."""
    check_scale(scale)
    return ExperimentSpec(
        experiment_id="E10",
        sweeps=(),
        analyze=lambda context: _measure(context.scale, context.seed),
    )


def run(scale: str = "smoke", seed: int = DEFAULT_SEED) -> ExperimentResult:
    return execute_spec(spec(scale), scale, seed)
