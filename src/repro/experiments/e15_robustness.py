"""E15 — Perturbation robustness: why chi charges for fine probabilities.

(Extension beyond the paper's formal results, implementing its Section 1
motivation.)  The argument: a probability realized by a noisy physical
process carries *additive* error, so a ``1/2^l`` bias has relative
error ``~ eps 2^l`` — fine coins are fragile, coarse coins are robust,
and composing coarse coins into fine ones (Algorithm 2) buys back the
precision at a memory price the chi metric makes visible.

Measured here:

* the realized stop probability of a direct ``1/D`` coin vs the
  composite ``coin(k, l)`` under per-agent additive noise ``eps`` on
  every *base* coin;
* the end-to-end search cost of Algorithm 1 (direct fine coin) vs
  Non-Uniform-Search (coarse coins composed) under the same noise.

The composite coin's realized tails probability is ``prod(p_i')`` over
``k`` noisy base coins — relative error ``~ k * eps * 2^l`` — versus the
direct coin's ``~ eps * D``.  For ``eps = c/D`` the direct coin's walk
lengths explode (some agents essentially never stop) while the
composite machine drifts by a constant factor.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core import theory
from repro.experiments.base import DEFAULT_SEED, ExperimentResult, check_scale
from repro.experiments.compiler import ExperimentSpec, execute_spec
from repro.grid.geometry import Point
from repro.robustness.perturbation import perturb_probability
from repro.sim.fast import lshape_first_find
from repro.sim.rng import derive_seed
from repro.sim.runner import ExperimentRow, rows_to_markdown
from repro.sim.stats import mean_ci

_SCALES = {
    "smoke": {"distance": 64, "n_agents": 8, "trials": 60, "noise_factors": (0.25, 0.5, 1.0)},
    "paper": {
        "distance": 256,
        "n_agents": 8,
        "trials": 300,
        "noise_factors": (0.125, 0.25, 0.5, 1.0),
    },
}


def realized_direct_stop(
    distance: int, epsilon: float, rng: np.random.Generator
) -> float:
    """A noisy agent's realized ``1/D`` stop probability."""
    return max(perturb_probability(1.0 / distance, epsilon, rng), 1e-12)


def realized_composite_stop(
    distance: int, ell: int, epsilon: float, rng: np.random.Generator
) -> float:
    """A noisy agent's realized composite stop probability.

    ``coin(k, l)`` stops when all ``k`` noisy base coins show tails:
    the realized probability is the product of ``k`` independently
    perturbed ``2^{-l}`` biases.
    """
    k = max(1, math.ceil(math.log2(distance) / ell))
    product = 1.0
    for _ in range(k):
        product *= perturb_probability(2.0**-ell, epsilon, rng)
    return max(product, 1e-12)


def noisy_search_mean(
    distance: int,
    n_agents: int,
    target: Point,
    realized_stop,
    trials: int,
    seed: int,
    tag: int,
) -> float:
    """Mean M_moves when each trial's colony shares one noisy machine."""
    budget = 256 * int(theory.expected_moves_upper_bound(distance, n_agents)) + 10_000
    samples = []
    for trial in range(trials):
        rng = np.random.default_rng(derive_seed(seed, tag, trial))
        stop = realized_stop(rng)
        outcome = lshape_first_find(stop, n_agents, target, rng, budget)
        samples.append(outcome.moves_or_budget)
    return float(np.mean(samples))


def _measure(scale: str = "smoke", seed: int = DEFAULT_SEED) -> ExperimentResult:
    params = _SCALES[check_scale(scale)]
    distance, n_agents = params["distance"], params["n_agents"]
    ell = 1
    target = (distance, distance)
    rows = []
    checks = {}
    notes = []

    clean_mean = noisy_search_mean(
        distance, n_agents, target,
        lambda rng: 1.0 / distance, params["trials"], seed, 0,
    )

    for factor in params["noise_factors"]:
        epsilon = factor / distance
        direct_mean = noisy_search_mean(
            distance, n_agents, target,
            lambda rng: realized_direct_stop(distance, epsilon, rng),
            params["trials"], seed, 1,
        )
        composite_mean = noisy_search_mean(
            distance, n_agents, target,
            lambda rng: realized_composite_stop(distance, ell, epsilon, rng),
            params["trials"], seed, 2,
        )
        direct_ratio = direct_mean / clean_mean
        composite_ratio = composite_mean / clean_mean
        rows.append(
            ExperimentRow(
                params={"eps*D": factor},
                estimate=mean_ci([direct_mean]),
                extras={
                    "clean mean": clean_mean,
                    "direct degradation": direct_ratio,
                    "composite mean": composite_mean,
                    "composite degradation": composite_ratio,
                },
            )
        )
        checks[f"eps*D={factor}: composite tolerates noise (<= 3x)"] = (
            composite_ratio <= 3.0
        )
        if factor >= 0.5:
            checks[f"eps*D={factor}: composite beats direct"] = (
                composite_mean < direct_mean
            )

    # Microscopic view: realized stop probabilities.
    rng = np.random.default_rng(derive_seed(seed, 3))
    epsilon = 1.0 / distance
    direct_stops = [
        realized_direct_stop(distance, epsilon, rng) for _ in range(4000)
    ]
    composite_stops = [
        realized_composite_stop(distance, ell, epsilon, rng) for _ in range(4000)
    ]
    direct_cv = float(np.std(direct_stops) / np.mean(direct_stops))
    composite_cv = float(np.std(composite_stops) / np.mean(composite_stops))
    checks["realized bias spread: composite tighter than direct"] = (
        composite_cv < direct_cv
    )
    notes.append(
        f"At eps = 1/D the direct 1/D coin's realized bias has coefficient "
        f"of variation {direct_cv:.2f} (some agents essentially never stop "
        f"walking) versus {composite_cv:.2f} for the composed coarse coins — "
        f"the Section 1 motivation for charging log2(l) in chi, quantified."
    )

    table = rows_to_markdown(
        rows,
        ["eps*D"],
        "direct-coin mean",
        [
            "clean mean",
            "direct degradation",
            "composite mean",
            "composite degradation",
        ],
    )
    return ExperimentResult(
        experiment_id="E15",
        title=f"Additive-noise robustness at D={distance} (extension)",
        paper_claim=(
            "Section 1 (motivation): small probabilities are sensitive to "
            "additive disturbances; probability boosting via memory "
            "(Algorithm 2) hides that cost, which chi makes explicit."
        ),
        table=table,
        checks=checks,
        notes=notes,
    )


def spec(scale: str = "smoke") -> ExperimentSpec:
    """E15 as data: no declared sweeps — the bespoke measurement is the analyze pass."""
    check_scale(scale)
    return ExperimentSpec(
        experiment_id="E15",
        sweeps=(),
        analyze=lambda context: _measure(context.scale, context.seed),
    )


def run(scale: str = "smoke", seed: int = DEFAULT_SEED) -> ExperimentResult:
    return execute_spec(spec(scale), scale, seed)
