"""Experiment compiler: declarative specs -> merged IR -> fused plans.

The sixteen experiment modules used to be sixteen hand-rolled scripts:
each built its own :class:`~repro.sim.runner.Sweep`, re-simulated its
own grid points, and ran strictly after the previous one.  This module
splits that monolith into the classic three compiler stages (the same
front / IR / backend shape AutoSketch uses for sketch compilation):

**Front end — declarative specs.**  Every experiment module exports
``spec(scale) -> ExperimentSpec``: the experiment's simulation workload
as data (:class:`SweepSpec` — request factory x parameter grid x trial
count x seed-key address) plus an ``analyze`` callback that turns
executed rows into the experiment's :class:`ExperimentResult` (tables,
checks, notes).  :func:`execute_spec` is the *uncompiled* executor: it
runs each sweep through the exact :class:`~repro.sim.runner.Sweep`
invocation the historical ``run()`` used — same trial form, grid order,
trial count, seed keys — so ``run()`` delegating to it is bit-identical
to the pre-compiler behaviour.

**IR — canonical points, merged across experiments.**
:func:`compile_program` binds every (sweep, grid point) to its concrete
:class:`~repro.sim.backends.base.SimulationRequest` and canonicalizes
it to a ``(family/params/seed-address fingerprint, backend)`` key with
the trial count normalized out.  Points that agree on the key — within
one experiment or across experiments — merge into one
:class:`MergedPoint` whose trial count is the *max* over subscribers,
so one simulation serves every subscriber.  Trial-count merging is only
legal for **trial-addressed** backends (``reference``,
``closed_form``), whose trial ``t`` depends only on its own
``derive_seed`` address — a prefix of a longer run is bit-identical to
a shorter run.  Stream-anchored backends (``batched``, ``accelerator``)
pool a request's trials into one stream shaped by the batch size, so
their points merge only at exactly equal trial counts (where the merge
is the identity the content-addressed cache already provides).  Points
whose merged request is already satisfied by the cache are marked and
never re-executed.

**Backend — lowered fused execution.**  :func:`execute_program` asks
:func:`repro.sim.selector.plan_request` for each surviving point (the
backend pinned to the static resolution the uncompiled sweep path uses,
and stream-anchored backends clamped to one shard, so cache entries and
outcome streams line up bit-for-bit), submits all points concurrently
through :meth:`repro.sim.jobs.JobManager.run_many`, and scatters each
merged result back into every subscriber's row space: the subscriber's
own request entry is stored in the cache (a trial prefix of the merged
outcomes where trial counts differ).  Finalization then runs every
experiment's ``analyze`` over :func:`execute_spec` — whose sweep
lookups now hit the warmed cache with zero re-simulation — in a worker
process per experiment when ``workers > 1``, which is what parallelizes
the bespoke (non-sweep) analysis work across cores.

The compiled and uncompiled paths therefore produce byte-identical
``ExperimentResult`` sections; ``python -m repro.experiments --compile``
and ``repro-ants report`` front this module.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import InvalidParameterError
from repro.experiments.base import ExperimentResult, check_scale
from repro.sim.backends.base import SimulationRequest
from repro.sim.backends.registry import resolve_backend
from repro.sim.cache import (
    cache_enabled,
    configure_cache,
    get_cache,
    request_fingerprint,
)
from repro.sim.jobs import get_manager
from repro.sim.runner import ExperimentRow, SimulationTrial, Sweep
from repro.sim.selector import load_profile, plan_request

__all__ = [
    "SweepSpec",
    "ExperimentSpec",
    "SpecContext",
    "execute_spec",
    "MergedPoint",
    "Subscriber",
    "CompileStats",
    "CompiledProgram",
    "compile_program",
    "execute_program",
    "ProgramReport",
]


# -- front end: declarative specs -----------------------------------------


@dataclass(frozen=True)
class SweepSpec:
    """One declared sweep: a request factory over a parameter grid.

    The spec is seed-free and worker-free — execution binds the master
    seed and worker count, so the same spec can be executed uncompiled
    (:func:`execute_spec`) or lowered through the IR
    (:func:`compile_program`) with identical addressing: trial ``t`` of
    grid point ``i`` always draws from ``derive_seed(seed, *seed_keys,
    i, t)``.
    """

    name: str
    trial: SimulationTrial
    grid: Tuple[Mapping[str, object], ...]
    trials: int
    seed_keys: Tuple[int, ...] = ()

    def to_sweep(self, seed: int, workers: int = 1) -> Sweep:
        """The executable :class:`Sweep` this spec declares."""
        return Sweep(
            self.trial,
            list(self.grid),
            trials=self.trials,
            seed=seed,
            seed_keys=self.seed_keys,
            workers=workers,
        )

    def bound_requests(self, seed: int) -> List[SimulationRequest]:
        """Per-point requests under the sweep's seed addressing."""
        return self.to_sweep(seed).compile_requests()


@dataclass(frozen=True)
class ExperimentSpec:
    """One experiment as data: declared sweeps plus an analysis pass.

    ``analyze`` receives a :class:`SpecContext` carrying the executed
    rows of every declared sweep (by name) and produces the experiment's
    :class:`ExperimentResult`.  Experiments whose measurement is not a
    grid sweep (bespoke numpy loops, colony simulators) declare no
    sweeps and do all their work inside ``analyze`` — they still gain a
    spec, which is what lets the compiled report run their analysis in
    parallel worker processes.
    """

    experiment_id: str
    sweeps: Tuple[SweepSpec, ...]
    analyze: Callable[["SpecContext"], ExperimentResult]

    def sweep(self, name: str) -> SweepSpec:
        for candidate in self.sweeps:
            if candidate.name == name:
                return candidate
        raise InvalidParameterError(
            f"{self.experiment_id} declares no sweep {name!r}"
        )


@dataclass
class SpecContext:
    """What an experiment's ``analyze`` pass sees at execution time."""

    scale: str
    seed: int
    workers: int = 1
    on_progress: Optional[Callable] = None
    _rows: Dict[str, List[ExperimentRow]] = field(default_factory=dict)

    def rows(self, name: str) -> List[ExperimentRow]:
        """The executed rows of one declared sweep, in grid order."""
        if name not in self._rows:
            raise InvalidParameterError(f"no executed sweep named {name!r}")
        return self._rows[name]


def execute_spec(
    spec: ExperimentSpec,
    scale: str,
    seed: int,
    workers: int = 1,
    on_progress: Optional[Callable] = None,
) -> ExperimentResult:
    """The uncompiled executor: run declared sweeps, then analyze.

    Each sweep executes through the exact :class:`Sweep` invocation the
    historical per-experiment ``run()`` performed, in declaration
    order, so results are bit-identical to the pre-spec behaviour.
    After a compiled program has warmed the result cache, the same
    lookups are served without simulating — which is how the compiled
    path reuses this function for finalization.
    """
    check_scale(scale)
    context = SpecContext(
        scale=scale, seed=seed, workers=workers, on_progress=on_progress
    )
    for sweep_spec in spec.sweeps:
        rows = sweep_spec.to_sweep(seed, workers).run(progress=on_progress)
        context._rows[sweep_spec.name] = rows
    return spec.analyze(context)


# -- IR: canonical point keys, merged across experiments ------------------


@dataclass(frozen=True)
class Subscriber:
    """One (experiment, sweep, grid point) consuming a merged point."""

    experiment_id: str
    sweep_name: str
    point_index: int
    trials: int
    request: SimulationRequest


@dataclass
class MergedPoint:
    """One unique simulation the program must provide.

    ``request`` carries the max trial count over subscribers;
    ``trial_addressed`` records whether the resolved backend derives
    each trial from its own seed address (prefix-stable), which is the
    legality condition for cross-trial-count merging and for scattering
    trial prefixes back to smaller subscribers.
    """

    request: SimulationRequest
    backend: str
    resolved_name: str
    cache_backend: str
    trial_addressed: bool
    subscribers: List[Subscriber] = field(default_factory=list)
    cache_satisfied: bool = False

    @property
    def family(self) -> str:
        return self.request.algorithm.name


@dataclass(frozen=True)
class CompileStats:
    """What the IR pass did to the declared workload."""

    declared_points: int
    merged_points: int
    cache_satisfied: int
    trials_declared: int
    trials_to_run: int
    points_by_family: Dict[str, int]

    @property
    def to_run(self) -> int:
        return self.merged_points - self.cache_satisfied

    def summary(self) -> str:
        families = ", ".join(
            f"{family}:{count}"
            for family, count in sorted(self.points_by_family.items())
        )
        return (
            f"{self.declared_points} declared points -> "
            f"{self.merged_points} unique -> {self.cache_satisfied} cached "
            f"-> {self.to_run} to run "
            f"({self.trials_to_run}/{self.trials_declared} trials; {families})"
        )


@dataclass
class CompiledProgram:
    """The IR: merged points grouped per family, plus provenance."""

    scale: str
    seed: int
    specs: List[ExperimentSpec]
    points: List[MergedPoint]
    stats: CompileStats

    def points_to_run(self) -> List[MergedPoint]:
        return [point for point in self.points if not point.cache_satisfied]


def _canonical_key(
    request: SimulationRequest, cache_backend: str, trial_addressed: bool
) -> Tuple:
    """The merge identity of one bound grid point.

    The fingerprint is taken with ``n_trials`` normalized to 1 so that
    points differing only in repetition count collide; for backends
    whose stream is anchored to the whole batch the real trial count is
    appended, restricting the merge to exact repeats.
    """
    canonical = request_fingerprint(replace(request, n_trials=1))
    if trial_addressed:
        return (canonical, cache_backend)
    return (canonical, cache_backend, request.n_trials)


def compile_program(
    specs: Sequence[ExperimentSpec], scale: str, seed: int
) -> CompiledProgram:
    """IR pass: canonicalize, merge across experiments, dedup vs cache.

    Every declared (sweep, point) becomes a :class:`Subscriber` of
    exactly one :class:`MergedPoint`; merged trial counts are the max
    over subscribers.  Points whose merged request the content-addressed
    cache already satisfies are marked ``cache_satisfied`` and will not
    be executed (their subscribers are still scattered).
    """
    check_scale(scale)
    cache = get_cache() if cache_enabled() else None
    merged: Dict[Tuple, MergedPoint] = {}
    declared = 0
    trials_declared = 0
    for spec in specs:
        for sweep_spec in spec.sweeps:
            if sweep_spec.trial.cache is False:
                # A sweep that opts out of the cache has no channel to
                # receive pre-warmed results; leave it to finalization.
                continue
            for index, request in enumerate(sweep_spec.bound_requests(seed)):
                declared += 1
                trials_declared += request.n_trials
                resolved = resolve_backend(request, sweep_spec.trial.backend)
                key = _canonical_key(
                    request, resolved.cache_name(), resolved.trial_addressed
                )
                subscriber = Subscriber(
                    experiment_id=spec.experiment_id,
                    sweep_name=sweep_spec.name,
                    point_index=index,
                    trials=request.n_trials,
                    request=request,
                )
                point = merged.get(key)
                if point is None:
                    merged[key] = MergedPoint(
                        request=request,
                        backend=sweep_spec.trial.backend,
                        resolved_name=resolved.name,
                        cache_backend=resolved.cache_name(),
                        trial_addressed=resolved.trial_addressed,
                        subscribers=[subscriber],
                    )
                else:
                    if request.n_trials > point.request.n_trials:
                        point.request = request  # max trial count wins
                    point.subscribers.append(subscriber)
    points = list(merged.values())
    satisfied = 0
    if cache is not None:
        for point in points:
            if cache.lookup(point.request, point.cache_backend) is not None:
                point.cache_satisfied = True
                satisfied += 1
    by_family: Dict[str, int] = {}
    trials_to_run = 0
    for point in points:
        if point.cache_satisfied:
            continue
        by_family[point.family] = by_family.get(point.family, 0) + 1
        trials_to_run += point.request.n_trials
    stats = CompileStats(
        declared_points=declared,
        merged_points=len(points),
        cache_satisfied=satisfied,
        trials_declared=trials_declared,
        trials_to_run=trials_to_run,
        points_by_family=by_family,
    )
    return CompiledProgram(
        scale=scale, seed=seed, specs=list(specs), points=points, stats=stats
    )


# -- backend: lowering and fused execution --------------------------------


@dataclass
class ProgramReport:
    """What one compiled program execution produced."""

    results: Dict[str, ExperimentResult]
    stats: CompileStats
    points_executed: int
    scattered_entries: int
    warm_seconds: float
    finalize_seconds: float


def _finalize_experiment(
    experiment_id: str, scale: str, seed: int, cache_dir: Optional[str]
) -> ExperimentResult:
    """Worker-process entry: one experiment's finalization pass.

    Re-binds the worker's process-global cache to the coordinator's
    directory so the warmed disk entries are visible, then executes the
    experiment's spec — sweeps replay from cache; bespoke analysis runs
    here, which is what the compiled path parallelizes across workers.
    """
    from repro.experiments import SPEC_REGISTRY

    if cache_dir is not None:
        cache = get_cache()
        if str(cache.directory) != cache_dir:
            configure_cache(directory=cache_dir)
    spec = SPEC_REGISTRY[experiment_id](scale)
    return execute_spec(spec, scale, seed)


def _plan_point(point: MergedPoint, workers: int, profile):
    """Lower one merged point to its execution plan.

    The backend is pinned to the static resolution the uncompiled sweep
    path uses (the cost model only plans the shard layout), and
    non-trial-addressed backends are clamped to a single shard — the
    layout :class:`~repro.sim.runner.SweepJob` executes — so the
    outcome stream, and therefore every cache entry and table value,
    is bit-identical to the uncompiled path.
    """
    plan = plan_request(
        point.request,
        backend=point.resolved_name,
        workers=workers,
        profile=profile,
    )
    if not point.trial_addressed and plan.n_shards != 1:
        plan = replace(plan, n_shards=1, workers=1)
    return plan


def execute_program(
    program: CompiledProgram,
    workers: int = 1,
    on_progress: Optional[Callable[[str], None]] = None,
) -> ProgramReport:
    """Execute the IR: fused simulation, scatter, parallel finalize."""
    say = on_progress or (lambda message: None)
    cache = get_cache() if cache_enabled() else None
    manager = get_manager()
    started = time.perf_counter()
    executed = 0
    scattered = 0

    if cache is not None:
        to_run = program.points_to_run()
        profile = load_profile()
        plans = [_plan_point(point, workers, profile) for point in to_run]
        if to_run:
            say(
                f"simulating {len(to_run)} fused points "
                f"({program.stats.trials_to_run} trials) "
                f"across {workers} worker(s)"
            )
        manager.run_many(
            [point.request for point in to_run],
            plans=plans,
            run_in_pool=workers > 1,
            pool_size=workers,
            max_in_flight=max(2 * workers, 2),
            ledger=False,
        )
        executed = len(to_run)
        # Scatter: store each subscriber's own request entry so the
        # finalization sweeps hit the cache under their native keys.
        for point in program.points:
            prefixes = [
                subscriber
                for subscriber in point.subscribers
                if subscriber.trials < point.request.n_trials
            ]
            if not prefixes:
                continue
            outcomes = cache.lookup(point.request, point.cache_backend)
            if outcomes is None:
                continue  # cache degraded mid-run; finalize re-simulates
            for subscriber in prefixes:
                if (
                    cache.lookup(subscriber.request, point.cache_backend)
                    is None
                ):
                    cache.store(
                        subscriber.request,
                        point.cache_backend,
                        tuple(outcomes[: subscriber.trials]),
                    )
                    scattered += 1
    warm_seconds = time.perf_counter() - started

    started = time.perf_counter()
    results: Dict[str, ExperimentResult] = {}
    ordered = sorted(program.specs, key=lambda spec: spec.experiment_id)
    cache_dir = str(cache.directory) if cache is not None else None
    if workers > 1 and len(ordered) > 1:
        say(f"finalizing {len(ordered)} experiments in {workers} processes")
        with ProcessPoolExecutor(max_workers=min(workers, len(ordered))) as pool:
            futures = {
                spec.experiment_id: pool.submit(
                    _finalize_experiment,
                    spec.experiment_id,
                    program.scale,
                    program.seed,
                    cache_dir,
                )
                for spec in ordered
            }
            for experiment_id, future in futures.items():
                results[experiment_id] = future.result()
    else:
        for spec in ordered:
            results[spec.experiment_id] = execute_spec(
                spec, program.scale, program.seed
            )
    finalize_seconds = time.perf_counter() - started
    return ProgramReport(
        results=results,
        stats=program.stats,
        points_executed=executed,
        scattered_entries=scattered,
        warm_seconds=warm_seconds,
        finalize_seconds=finalize_seconds,
    )
