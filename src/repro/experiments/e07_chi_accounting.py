"""E07 — Non-Uniform-Search chi accounting and performance (Theorem 3.7).

Theorem 3.7: Non-Uniform-Search finds targets within distance ``D`` in
``O(D^2/n + D)`` expected moves with ``chi = log log D + O(1)``.  The
experiment tabulates the declared chi (``3 + ceil(log2 k)`` bits plus
``log2 l``) and the mechanical chi of the explicit product automaton
against ``log2 log2 D`` across four orders of magnitude of ``D``, and
verifies that replacing Algorithm 1's ``1/D`` coin with the composite
coin leaves performance within the ``2^l``-factor the proof allows.

The performance-parity section is a declared sweep (closed-form
backend, one point per algorithm variant) so the experiment compiler
can fuse and cache it with the rest of the program; the chi accounting
is pure arithmetic and stays in the analysis pass.
"""

from __future__ import annotations

from typing import Mapping

from repro.core import theory
from repro.core.nonuniform import NonUniformSearch, build_nonuniform_automaton
from repro.core.selection import chi_threshold
from repro.experiments.base import DEFAULT_SEED, ExperimentResult, check_scale
from repro.experiments.compiler import (
    ExperimentSpec,
    SpecContext,
    SweepSpec,
    execute_spec,
)
from repro.sim.backends import AlgorithmSpec, SimulationRequest
from repro.sim.runner import ExperimentRow, SimulationTrial, rows_to_markdown

_SCALES = {
    "smoke": {
        "distances": (16, 256, 4096),
        "ells": (1, 2),
        "perf_distance": 64,
        "trials": 80,
    },
    "paper": {
        "distances": (16, 64, 256, 1024, 4096, 65536, 2**20),
        "ells": (1, 2, 4),
        "perf_distance": 256,
        "trials": 400,
    },
}

_PERF_AGENTS = 8


def parity_request(params: Mapping[str, object]) -> SimulationRequest:
    """One performance-parity variant: Algorithm 1 or nonuniform(l)."""
    distance = int(params["D"])
    n_agents = int(params["n"])
    ell = int(params["l"])
    spec = (
        AlgorithmSpec.algorithm1(distance)
        if ell == 0
        else AlgorithmSpec.nonuniform(distance, ell)
    )
    budget = 64 * int(theory.expected_moves_upper_bound(distance, n_agents)) + 10_000
    return SimulationRequest(
        algorithm=spec,
        n_agents=n_agents,
        target=(distance, distance),
        move_budget=budget,
    )


def _perf_grid(params) -> tuple:
    distance = params["perf_distance"]
    # l = 0 encodes the Algorithm 1 comparator; grid order matches the
    # historical loop (algorithm1 first, then ascending l).  With the
    # sweep's point-index seed addressing this reproduces the previous
    # derive_seed(seed, 7, ell, trial) streams exactly whenever the
    # ells are consecutive from 1 (both committed scales); a sparse
    # ell grid would re-key those streams — equal in distribution, and
    # E07's checks are margin-based (the module has re-keyed this
    # stream once before, for the same request-contract reason).
    return tuple(
        {"D": distance, "n": _PERF_AGENTS, "l": ell}
        for ell in (0, *params["ells"])
    )


def spec(scale: str = "smoke") -> ExperimentSpec:
    """E07 as data: the parity sweep; chi accounting lives in analyze."""
    params = _SCALES[check_scale(scale)]
    return ExperimentSpec(
        experiment_id="E07",
        sweeps=(
            SweepSpec(
                name="parity",
                trial=SimulationTrial(parity_request, backend="closed_form"),
                grid=_perf_grid(params),
                trials=params["trials"],
                seed_keys=(7,),
            ),
        ),
        analyze=_analyze,
    )


def _analyze(context: SpecContext) -> ExperimentResult:
    params = _SCALES[context.scale]
    rows = []
    checks = {}
    notes = []

    from repro.sim.stats import mean_ci

    for distance in params["distances"]:
        threshold = chi_threshold(distance)
        for ell in params["ells"]:
            algorithm = NonUniformSearch(distance, ell)
            declared = algorithm.selection_complexity()
            extras = {
                "log2 log2 D": threshold,
                "declared chi": declared.chi,
                "chi - loglogD": declared.chi - threshold,
            }
            if distance <= 4096:  # automata get large past this
                mechanical = build_nonuniform_automaton(
                    distance, ell
                ).selection_complexity()
                extras["automaton chi"] = mechanical.chi
                checks[f"D={distance} l={ell}: automaton chi within 2 of declared"] = (
                    abs(mechanical.chi - declared.chi) <= 2.0
                )
            rows.append(
                ExperimentRow(
                    params={"D": distance, "l": ell},
                    estimate=mean_ci([declared.chi]),
                    extras=extras,
                )
            )
            checks[f"D={distance} l={ell}: chi <= loglogD + 6"] = (
                declared.chi <= threshold + 6.0
            )

    # chi - log log D must stay bounded as D grows (the O(1) claim).
    ell = 1
    offsets = [
        NonUniformSearch(d, ell).selection_complexity().chi - chi_threshold(d)
        for d in params["distances"]
    ]
    checks["chi - loglogD bounded across D sweep"] = max(offsets) - min(offsets) <= 2.0
    notes.append(
        f"chi - log2 log2 D stays within [{min(offsets):.2f}, {max(offsets):.2f}] "
        f"across the sweep — the Theorem 3.7 additive constant."
    )

    # Performance parity with Algorithm 1 (same D, n).
    distance = params["perf_distance"]
    n_agents = _PERF_AGENTS
    grid = _perf_grid(params)
    sweep = context.rows("parity")
    perf_rows = []
    base = None
    for point, row in zip(grid, sweep):
        ell = int(point["l"])
        label = "algorithm1" if ell == 0 else f"nonuniform l={ell}"
        mean = row.estimate.mean
        if base is None:
            base = mean
        perf_rows.append(
            ExperimentRow(
                params={"algorithm": label},
                estimate=row.estimate,
                extras={"ratio vs algorithm1": mean / base},
            )
        )
        if ell != 0:
            checks[f"l={ell}: slowdown <= 4 * 2^l"] = mean / base <= 4.0 * 2.0**ell

    table = (
        rows_to_markdown(
            rows,
            ["D", "l"],
            "chi",
            ["log2 log2 D", "declared chi", "chi - loglogD", "automaton chi"],
        )
        + f"\n\nPerformance parity at D={distance}, n={n_agents} (corner target):\n\n"
        + rows_to_markdown(
            perf_rows, ["algorithm"], "E[M_moves]", ["ratio vs algorithm1"]
        )
    )
    return ExperimentResult(
        experiment_id="E07",
        title="Non-Uniform-Search: chi = log log D + O(1) at unchanged performance",
        paper_claim=(
            "Theorem 3.7: O(D^2/n + D) moves with chi(A) = "
            "log2(ceil(log2 D / l)) + log2(l) + 3."
        ),
        table=table,
        checks=checks,
        notes=notes,
    )


def run(scale: str = "smoke", seed: int = DEFAULT_SEED) -> ExperimentResult:
    return execute_spec(spec(scale), scale, seed)
