"""E07 — Non-Uniform-Search chi accounting and performance (Theorem 3.7).

Theorem 3.7: Non-Uniform-Search finds targets within distance ``D`` in
``O(D^2/n + D)`` expected moves with ``chi = log log D + O(1)``.  The
experiment tabulates the declared chi (``3 + ceil(log2 k)`` bits plus
``log2 l``) and the mechanical chi of the explicit product automaton
against ``log2 log2 D`` across four orders of magnitude of ``D``, and
verifies that replacing Algorithm 1's ``1/D`` coin with the composite
coin leaves performance within the ``2^l``-factor the proof allows.
"""

from __future__ import annotations

import numpy as np

from repro.core import theory
from repro.core.nonuniform import NonUniformSearch, build_nonuniform_automaton
from repro.core.selection import chi_threshold
from repro.experiments.base import DEFAULT_SEED, ExperimentResult, check_scale
from repro.sim.backends import AlgorithmSpec, SimulationRequest
from repro.sim.runner import ExperimentRow, rows_to_markdown
from repro.sim.service import simulate
from repro.sim.stats import mean_ci

_SCALES = {
    "smoke": {
        "distances": (16, 256, 4096),
        "ells": (1, 2),
        "perf_distance": 64,
        "trials": 80,
    },
    "paper": {
        "distances": (16, 64, 256, 1024, 4096, 65536, 2**20),
        "ells": (1, 2, 4),
        "perf_distance": 256,
        "trials": 400,
    },
}


def run(scale: str = "smoke", seed: int = DEFAULT_SEED) -> ExperimentResult:
    params = _SCALES[check_scale(scale)]
    rows = []
    checks = {}
    notes = []

    for distance in params["distances"]:
        threshold = chi_threshold(distance)
        for ell in params["ells"]:
            algorithm = NonUniformSearch(distance, ell)
            declared = algorithm.selection_complexity()
            extras = {
                "log2 log2 D": threshold,
                "declared chi": declared.chi,
                "chi - loglogD": declared.chi - threshold,
            }
            if distance <= 4096:  # automata get large past this
                mechanical = build_nonuniform_automaton(
                    distance, ell
                ).selection_complexity()
                extras["automaton chi"] = mechanical.chi
                checks[f"D={distance} l={ell}: automaton chi within 2 of declared"] = (
                    abs(mechanical.chi - declared.chi) <= 2.0
                )
            rows.append(
                ExperimentRow(
                    params={"D": distance, "l": ell},
                    estimate=mean_ci([declared.chi]),
                    extras=extras,
                )
            )
            checks[f"D={distance} l={ell}: chi <= loglogD + 6"] = (
                declared.chi <= threshold + 6.0
            )

    # chi - log log D must stay bounded as D grows (the O(1) claim).
    ell = 1
    offsets = [
        NonUniformSearch(d, ell).selection_complexity().chi - chi_threshold(d)
        for d in params["distances"]
    ]
    checks["chi - loglogD bounded across D sweep"] = max(offsets) - min(offsets) <= 2.0
    notes.append(
        f"chi - log2 log2 D stays within [{min(offsets):.2f}, {max(offsets):.2f}] "
        f"across the sweep — the Theorem 3.7 additive constant."
    )

    # Performance parity with Algorithm 1 (same D, n).
    distance = params["perf_distance"]
    n_agents = 8
    target = (distance, distance)
    budget = 64 * int(theory.expected_moves_upper_bound(distance, n_agents)) + 10_000
    perf_rows = []
    base = None
    for label, ell in [("algorithm1", None), *[(f"nonuniform l={e}", e) for e in params["ells"]]]:
        spec = (
            AlgorithmSpec.algorithm1(distance)
            if ell is None
            else AlgorithmSpec.nonuniform(distance, ell)
        )
        # Deliberate stream re-keying: the historical loop drew from
        # derive_seed(seed, 7, trial, ell) with the trial key in the
        # middle, which the request contract (trial index always last)
        # cannot express.  The new streams derive_seed(seed, 7, ell,
        # trial) are equal in distribution; E07's checks are margin
        # based and unaffected.
        request = SimulationRequest(
            algorithm=spec,
            n_agents=n_agents,
            target=target,
            move_budget=budget,
            n_trials=params["trials"],
            seed=seed,
            seed_keys=(7, ell or 0),
        )
        samples = simulate(request, backend="closed_form").moves_or_budget()
        mean = float(np.mean(samples))
        if base is None:
            base = mean
        perf_rows.append(
            ExperimentRow(
                params={"algorithm": label},
                estimate=mean_ci(samples),
                extras={"ratio vs algorithm1": mean / base},
            )
        )
        if ell is not None:
            checks[f"l={ell}: slowdown <= 4 * 2^l"] = mean / base <= 4.0 * 2.0**ell

    table = (
        rows_to_markdown(
            rows,
            ["D", "l"],
            "chi",
            ["log2 log2 D", "declared chi", "chi - loglogD", "automaton chi"],
        )
        + f"\n\nPerformance parity at D={distance}, n={n_agents} (corner target):\n\n"
        + rows_to_markdown(
            perf_rows, ["algorithm"], "E[M_moves]", ["ratio vs algorithm1"]
        )
    )
    return ExperimentResult(
        experiment_id="E07",
        title="Non-Uniform-Search: chi = log log D + O(1) at unchanged performance",
        paper_claim=(
            "Theorem 3.7: O(D^2/n + D) moves with chi(A) = "
            "log2(ceil(log2 D / l)) + log2(l) + 3."
        ),
        table=table,
        checks=checks,
        notes=notes,
    )
