"""E06 — search(k, l) visit probabilities (Lemma 3.9).

Lemma 3.9: one sortie from the origin visits each point of the
``2^{kl}``-square with probability at least ``2^{-(kl+6)}``, using
``ceil(log2 k) + 2`` bits.  The experiment measures visit frequencies
over a probe lattice with vectorized sorties, checks them against the
exact closed form, and verifies the floor across the *entire* square
using the closed form (the empirical probes guard the closed form
itself).
"""

from __future__ import annotations

import numpy as np

from repro.core.square_search import (
    search_memory_bits,
    visit_probability,
    visit_probability_lower_bound,
)
from repro.experiments.base import DEFAULT_SEED, ExperimentResult, check_scale
from repro.experiments.compiler import ExperimentSpec, execute_spec
from repro.sim.runner import ExperimentRow, rows_to_markdown
from repro.sim.stats import mean_ci

_SCALES = {
    "smoke": {"k": 3, "ell": 1, "sorties": 400_000},
    "paper": {"k": 5, "ell": 1, "sorties": 4_000_000},
}


def empirical_visit_rates(
    k: int, ell: int, probes, sorties: int, rng: np.random.Generator
):
    """Vectorized sorties -> visit frequency per probe point."""
    p = 2.0 ** -(k * ell)
    sv = rng.integers(0, 2, size=sorties) * 2 - 1
    sh = rng.integers(0, 2, size=sorties) * 2 - 1
    lv = rng.geometric(p, size=sorties) - 1
    lh = rng.geometric(p, size=sorties) - 1
    rates = []
    for x, y in probes:
        hit_vertical = (x == 0) & (sv * y >= 0) & (lv >= abs(y))
        hit_horizontal = (sv * lv == y) & (sh * x >= 0) & (lh >= abs(x))
        rates.append(float((hit_vertical | hit_horizontal).mean()))
    return rates


def _measure(scale: str = "smoke", seed: int = DEFAULT_SEED) -> ExperimentResult:
    params = _SCALES[check_scale(scale)]
    k, ell = params["k"], params["ell"]
    side = 2 ** (k * ell)
    rng = np.random.default_rng(seed)

    probes = [
        (0, side), (side, 0), (side, side), (side // 2, side // 2),
        (1, 1), (0, 1), (1, 0), (-side, side), (side // 4, -side),
    ]
    rates = empirical_visit_rates(k, ell, probes, params["sorties"], rng)
    floor = visit_probability_lower_bound(k, ell)

    rows = []
    checks = {}
    for (x, y), measured in zip(probes, rates):
        exact = visit_probability(k, ell, (x, y))
        rows.append(
            ExperimentRow(
                params={"target": f"({x},{y})"},
                estimate=mean_ci([measured]),
                extras={"exact": exact, "floor 2^-(kl+6)": floor},
            )
        )
        se = (exact * (1 - exact) / params["sorties"]) ** 0.5
        checks[f"({x},{y}): measured ~ exact"] = abs(measured - exact) <= 5 * se + 1e-5
        checks[f"({x},{y}): exact >= floor"] = exact >= floor

    # Exhaustive floor check across the whole square via the closed form.
    worst = min(
        visit_probability(k, ell, (x, y))
        for x in range(-side, side + 1, max(1, side // 16))
        for y in range(-side, side + 1, max(1, side // 16))
    )
    checks["closed-form floor holds across the square"] = worst >= floor
    checks["memory = ceil(log k) + 2"] = search_memory_bits(k) == (
        (k - 1).bit_length() + 2
    )

    table = rows_to_markdown(
        rows, ["target"], "visit rate", ["exact", "floor 2^-(kl+6)"]
    )
    return ExperimentResult(
        experiment_id="E06",
        title=f"search(k={k}, l={ell}): visit probability over the {side}-square",
        paper_claim=(
            "Lemma 3.9: every point of the 2^{kl}-square is visited w.p. "
            ">= 2^{-(kl+6)}; ceil(log2 k) + 2 bits."
        ),
        table=table,
        checks=checks,
        notes=[
            "The interior diagonal is the worst case (needs an exact "
            "vertical stop and a long horizontal reach); the measured "
            "rates bracket the closed form within Monte-Carlo error."
        ],
    )


def spec(scale: str = "smoke") -> ExperimentSpec:
    """E06 as data: no declared sweeps — the bespoke measurement is the analyze pass."""
    check_scale(scale)
    return ExperimentSpec(
        experiment_id="E06",
        sweeps=(),
        analyze=lambda context: _measure(context.scale, context.seed),
    )


def run(scale: str = "smoke", seed: int = DEFAULT_SEED) -> ExperimentResult:
    return execute_spec(spec(scale), scale, seed)
