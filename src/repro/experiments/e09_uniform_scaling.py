"""E09 — Uniform algorithm performance (Theorem 3.14).

Theorem 3.14: the first of ``n`` agents running Algorithm 5 finds a
target within (unknown) distance ``D`` after expected
``(D^2/n + D) * 2^{O(l)}`` moves.  Two sweeps:

* over ``D`` at fixed ``n`` and ``l=1`` — the measured mean must track
  the ``D^2/n + D`` shape with a bounded (if large) constant;
* over ``l`` at fixed ``(D, n)`` — the ``2^{O(l)}`` overshoot, fitted
  as an exponent.

``K`` is instantiated per ``l`` via
:func:`repro.core.uniform.calibrated_K`; the resulting ``2^{K l}``
constant (~2^8) is the concrete value of the theorem's "sufficiently
large constant" and dominates the measured overshoot.

Declared as an :class:`ExperimentSpec` so the compiler can fuse the
grid points with other experiments'; ``run()`` executes the spec
uncompiled.
"""

from __future__ import annotations

from typing import Callable, Mapping, Optional

import numpy as np

from repro.core import theory
from repro.core.uniform import calibrated_K
from repro.experiments.base import DEFAULT_SEED, ExperimentResult, check_scale
from repro.experiments.compiler import (
    ExperimentSpec,
    SpecContext,
    SweepSpec,
    execute_spec,
)
from repro.sim.backends import AlgorithmSpec, SimulationRequest
from repro.sim.runner import (
    ExperimentRow,
    SimulationTrial,
    rows_to_markdown,
)
from repro.sim.stats import fit_loglog_slope

_SCALES = {
    "smoke": {
        "distances": (8, 16, 32, 64),
        "n_agents": 4,
        "ells": (1, 2),
        "ell_distance": 32,
        "trials": 40,
    },
    "paper": {
        "distances": (8, 16, 32, 64, 128, 256),
        "n_agents": 8,
        "ells": (1, 2, 3),
        "ell_distance": 32,
        "trials": 200,
    },
}


def uniform_corner_request(params: Mapping[str, object]) -> SimulationRequest:
    """Algorithm 5 hunting the corner target at one ``(D, n, l)`` point."""
    distance = int(params["D"])
    n_agents = int(params["n"])
    ell = int(params["l"])
    K = calibrated_K(ell)
    budget = int(
        64.0 * 2.0 ** (K * ell) * theory.expected_moves_shape(distance, n_agents)
    ) + 100_000
    return SimulationRequest(
        algorithm=AlgorithmSpec.uniform(ell, K),
        n_agents=n_agents,
        target=(distance, distance),
        move_budget=budget,
    )


def spec(scale: str = "smoke") -> ExperimentSpec:
    """E09 as data: the D-sweep and the l-overshoot sweep."""
    params = _SCALES[check_scale(scale)]
    n_agents = params["n_agents"]
    grid_d = tuple(
        {"D": distance, "n": n_agents, "l": 1}
        for distance in params["distances"]
    )
    grid_ell = tuple(
        {"D": params["ell_distance"], "n": n_agents, "l": ell}
        for ell in params["ells"]
    )
    return ExperimentSpec(
        experiment_id="E09",
        sweeps=(
            SweepSpec(
                name="d_sweep",
                trial=SimulationTrial(uniform_corner_request),
                grid=grid_d,
                trials=params["trials"],
                seed_keys=(0,),
            ),
            SweepSpec(
                name="ell_sweep",
                trial=SimulationTrial(uniform_corner_request),
                grid=grid_ell,
                trials=params["trials"],
                seed_keys=(1,),
            ),
        ),
        analyze=_analyze,
    )


def _analyze(context: SpecContext) -> ExperimentResult:
    params = _SCALES[context.scale]
    n_agents = params["n_agents"]
    checks = {}
    notes = []

    sweep_d = context.rows("d_sweep")
    rows_d = []
    means = []
    for row in sweep_d:
        distance = int(row.params["D"])
        mean = row.estimate.mean
        means.append(mean)
        shape = theory.expected_moves_shape(distance, n_agents)
        rows_d.append(
            ExperimentRow(
                params={"D": distance},
                estimate=row.estimate,
                extras={"shape D^2/n+D": shape, "ratio/shape": mean / shape},
            )
        )
    ratios = [row.extras["ratio/shape"] for row in rows_d]
    checks["shape ratio bounded across D sweep (l=1)"] = max(ratios) <= 16 * min(
        ratios
    )
    slope, _, r2 = fit_loglog_slope(params["distances"], means)
    notes.append(
        f"D-sweep at n={n_agents}, l=1 (K={calibrated_K(1)}): fitted exponent "
        f"{slope:.2f} (r^2={r2:.3f}); D^2/n dominates once D > n so the "
        f"exponent sits between 1 and 2."
    )
    checks["D-sweep exponent in [0.8, 2.3]"] = 0.8 <= slope <= 2.3

    distance = params["ell_distance"]
    sweep_ell = context.rows("ell_sweep")
    rows_ell = []
    base = None
    overshoots = []
    for row in sweep_ell:
        ell = int(row.params["l"])
        K = calibrated_K(ell)
        mean = row.estimate.mean
        if base is None:
            base = mean
        overshoot = mean / theory.expected_moves_shape(distance, n_agents)
        overshoots.append(overshoot)
        rows_ell.append(
            ExperimentRow(
                params={"l": ell},
                estimate=row.estimate,
                extras={
                    "K(l)": float(K),
                    "overshoot vs shape": overshoot,
                    "ratio vs l=1": mean / base,
                },
            )
        )
        checks[f"l={ell}: overshoot within [1, 2^(Kl+6)]"] = (
            1.0 <= overshoot <= 2.0 ** (K * ell + 6)
        )
    if len(params["ells"]) >= 2:
        exponents = np.polyfit(params["ells"], np.log2(overshoots), 1)
        fitted_c = float(exponents[0])
        notes.append(
            f"Overshoot fit: moves/(D^2/n + D) ~ 2^(c*l + const) with "
            f"c = {fitted_c:.2f}. With per-l calibrated K the product K(l)*l "
            f"is nearly constant (~8), so the measured overshoot is flat in "
            f"l — consistent with the 2^{{O(l)}} *upper* envelope; the cost "
            f"lives in the ~2^{{K(l) l}} ~ 2^8 constant. E14's fixed-K sweep "
            f"shows the growth the envelope allows."
        )
        checks["overshoot exponent c <= 5 (upper envelope)"] = fitted_c <= 5.0

    table = (
        rows_to_markdown(
            rows_d, ["D"], "E[M_moves]", ["shape D^2/n+D", "ratio/shape"]
        )
        + f"\n\nOvershoot sweep at D={distance}, n={n_agents}:\n\n"
        + rows_to_markdown(
            rows_ell,
            ["l"],
            "E[M_moves]",
            ["K(l)", "overshoot vs shape", "ratio vs l=1"],
        )
    )
    return ExperimentResult(
        experiment_id="E09",
        title="Algorithm 5: (D^2/n + D) * 2^{O(l)} expected moves",
        paper_claim=(
            "Theorem 3.14: expected M_moves = 2^{O(l)} (D + D^2/n) for "
            "chi <= 3 log log D + O(1)."
        ),
        table=table,
        checks=checks,
        notes=notes,
    )


def run(
    scale: str = "smoke",
    seed: int = DEFAULT_SEED,
    workers: int = 1,
    on_progress: Optional[Callable] = None,
) -> ExperimentResult:
    return execute_spec(spec(scale), scale, seed, workers, on_progress)
