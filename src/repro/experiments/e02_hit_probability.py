"""E02 — Per-iteration hit probability (Lemma 3.4).

Lemma 3.4: a single Algorithm-1 iteration finds a target anywhere in the
``D``-window with probability at least ``1/(64D)``, so ``n`` agents all
miss with probability ``q <= (1 - 1/(64D))^n <= max{1 - Omega(n/D), 1/2}``.

The experiment measures empirical per-iteration hit rates for the hard
placements (corner, axes, diagonal), compares them against both the
exact closed form and the lemma's floor, and tabulates the colony miss
probability ``q`` against its envelope.
"""

from __future__ import annotations

import numpy as np

from repro.core import theory
from repro.experiments.base import DEFAULT_SEED, ExperimentResult, check_scale
from repro.experiments.compiler import ExperimentSpec, execute_spec
from repro.sim.runner import ExperimentRow, rows_to_markdown
from repro.sim.stats import mean_ci

_SCALES = {
    "smoke": {"distances": (16, 64), "iterations": 60_000, "n_agents": (16, 256)},
    "paper": {
        "distances": (16, 64, 256, 512),
        "iterations": 600_000,
        "n_agents": (1, 16, 64, 256, 1024, 4096),
    },
}


def empirical_hit_rate(
    distance: int, target, iterations: int, rng: np.random.Generator
) -> float:
    """Vectorized per-iteration hit frequency for one target."""
    p = 1.0 / distance
    sv = rng.integers(0, 2, size=iterations) * 2 - 1
    sh = rng.integers(0, 2, size=iterations) * 2 - 1
    lv = rng.geometric(p, size=iterations) - 1
    lh = rng.geometric(p, size=iterations) - 1
    x, y = target
    hit_vertical = (x == 0) & (sv * y >= 0) & (lv >= abs(y))
    hit_horizontal = (sv * lv == y) & (sh * x >= 0) & (lh >= abs(x))
    return float((hit_vertical | hit_horizontal).mean())


def _measure(scale: str = "smoke", seed: int = DEFAULT_SEED) -> ExperimentResult:
    params = _SCALES[check_scale(scale)]
    rng = np.random.default_rng(seed)
    rows = []
    checks = {}
    for distance in params["distances"]:
        floor = theory.hit_probability_lower_bound(distance)
        for label, target in (
            ("corner", (distance, distance)),
            ("x-axis", (distance, 0)),
            ("y-axis", (0, distance)),
            ("diagonal/2", (distance // 2, distance // 2)),
        ):
            measured = empirical_hit_rate(
                distance, target, params["iterations"], rng
            )
            exact = theory.hit_probability_exact(1.0 / distance, target)
            rows.append(
                ExperimentRow(
                    params={"D": distance, "target": label},
                    estimate=mean_ci([measured]),
                    extras={"exact": exact, "lemma 1/(64D)": floor},
                )
            )
            checks[f"D={distance} {label}: exact >= 1/(64D)"] = exact >= floor
            tolerance = 4.0 * (exact / params["iterations"]) ** 0.5 + 1e-4
            checks[f"D={distance} {label}: measured ~ exact"] = (
                abs(measured - exact) <= tolerance
            )

    # Colony miss probability for the corner placement.
    q_rows = []
    for distance in params["distances"]:
        exact_corner = theory.hit_probability_exact(
            1.0 / distance, (distance, distance)
        )
        for n_agents in params["n_agents"]:
            q_measured = (1.0 - exact_corner) ** n_agents
            q_bound = theory.miss_probability_upper_bound(distance, n_agents)
            q_rows.append(
                ExperimentRow(
                    params={"D": distance, "n": n_agents},
                    estimate=mean_ci([q_measured]),
                    extras={"envelope (1-1/64D)^n": q_bound},
                )
            )
            checks[f"D={distance} n={n_agents}: q <= envelope"] = (
                q_measured <= q_bound + 1e-12
            )

    table = (
        rows_to_markdown(rows, ["D", "target"], "hit rate", ["exact", "lemma 1/(64D)"])
        + "\n\nColony miss probability (corner target):\n\n"
        + rows_to_markdown(q_rows, ["D", "n"], "q", ["envelope (1-1/64D)^n"])
    )
    return ExperimentResult(
        experiment_id="E02",
        title="Per-iteration hit probability and colony miss probability",
        paper_claim=(
            "Lemma 3.4: each iteration hits any window target w.p. >= 1/(64D); "
            "q <= max{1 - Omega(n/D), 1/2}."
        ),
        table=table,
        checks=checks,
        notes=[
            "The corner (D, D) is the minimizer among probed placements, as "
            "the proof's case analysis predicts; the exact formula sits a "
            "constant factor above the 1/(64D) floor."
        ],
    )


def spec(scale: str = "smoke") -> ExperimentSpec:
    """E02 as data: no declared sweeps — the bespoke measurement is the analyze pass."""
    check_scale(scale)
    return ExperimentSpec(
        experiment_id="E02",
        sweeps=(),
        analyze=lambda context: _measure(context.scale, context.seed),
    )


def run(scale: str = "smoke", seed: int = DEFAULT_SEED) -> ExperimentResult:
    return execute_spec(spec(scale), scale, seed)
