"""E08 — Phase structure of Algorithm 5 (Lemmas 3.10, 3.12, 3.13).

Three phase-level claims feed Theorem 3.14's proof:

* Lemma 3.10 — expected moves to complete phase ``i`` satisfy
  ``R_i <= 4 rho_i 2^{il}``;
* Lemma 3.12 — w.h.p. the colony executes at least ``2^{(K/2+i)l}``
  ``search(i, l)`` calls during phase ``i``;
* Lemma 3.13 — for ``i >= i0 = ceil(log_{2^l} D)`` the target is found
  during phase ``i`` with probability at least ``1 - 2^{-(2l+1)}``.

The experiment samples phases directly from their defining
distributions (call counts geometric in ``1/rho_i``, sortie legs
geometric in ``2^{-il}``) and measures all three quantities.
"""

from __future__ import annotations

import numpy as np

from repro.core import theory
from repro.core.uniform import first_covering_phase, rho
from repro.experiments.base import DEFAULT_SEED, ExperimentResult, check_scale
from repro.experiments.compiler import ExperimentSpec, execute_spec
from repro.sim.runner import ExperimentRow, rows_to_markdown
from repro.sim.stats import mean_ci

_SCALES = {
    # K must be "sufficiently large" for Lemma 3.13's floor; see
    # repro.core.uniform.calibrated_K (K=8 at l=1).
    "smoke": {"n_agents": 8, "ell": 1, "K": 8, "distance": 32, "trials": 2000},
    "paper": {"n_agents": 16, "ell": 1, "K": 8, "distance": 128, "trials": 20_000},
}


def sample_phase_moves(
    phase: int, n_agents: int, ell: int, K: int, trials: int, rng: np.random.Generator
) -> np.ndarray:
    """Moves one agent spends inside phase ``i`` (sum of its sorties)."""
    rho_i = rho(phase, n_agents, ell, K)
    calls = rng.geometric(1.0 / rho_i, size=trials) - 1
    p_i = 2.0 ** -(phase * ell)
    moves = np.zeros(trials)
    # Sum `calls` sortie lengths per trial; negative binomial gives the
    # sum of geometrics in one draw per trial.
    positive = calls > 0
    if positive.any():
        counts = 2 * calls[positive]  # two legs per sortie
        moves[positive] = rng.negative_binomial(counts, p_i)
    return moves


def sample_colony_calls(
    phase: int, n_agents: int, ell: int, K: int, trials: int, rng: np.random.Generator
) -> np.ndarray:
    """Total search(i, l) calls by all n agents in phase i."""
    rho_i = rho(phase, n_agents, ell, K)
    calls = rng.geometric(1.0 / rho_i, size=(trials, n_agents)) - 1
    return calls.sum(axis=1)


def sample_phase_find(
    phase: int,
    n_agents: int,
    ell: int,
    K: int,
    target,
    trials: int,
    rng: np.random.Generator,
) -> float:
    """Fraction of trials in which some agent finds the target in phase i."""
    p_i = 2.0 ** -(phase * ell)
    p_hit = theory.hit_probability_exact(p_i, target)
    calls = rng.geometric(1.0 / rho(phase, n_agents, ell, K), size=(trials, n_agents)) - 1
    total_calls = calls.sum(axis=1)
    miss = (1.0 - p_hit) ** total_calls
    return float(1.0 - miss.mean())


def _measure(scale: str = "smoke", seed: int = DEFAULT_SEED) -> ExperimentResult:
    params = _SCALES[check_scale(scale)]
    n_agents, ell, K = params["n_agents"], params["ell"], params["K"]
    distance = params["distance"]
    trials = params["trials"]
    rng = np.random.default_rng(seed)
    i0 = first_covering_phase(distance, ell)
    phases = list(range(1, i0 + 3))

    rows = []
    checks = {}
    target = (distance, distance)
    find_floor = theory.uniform_find_probability_per_phase(ell)
    for phase in phases:
        moves = sample_phase_moves(phase, n_agents, ell, K, trials, rng)
        moves_bound = theory.uniform_phase_moves_upper_bound(phase, n_agents, ell, K)
        calls = sample_colony_calls(phase, n_agents, ell, K, trials, rng)
        calls_floor = 2.0 ** ((K / 2 + phase) * ell)
        calls_ok_fraction = float((calls >= calls_floor).mean())
        find_rate = (
            sample_phase_find(phase, n_agents, ell, K, target, trials, rng)
            if phase >= i0
            else float("nan")
        )
        rows.append(
            ExperimentRow(
                params={"phase": phase},
                estimate=mean_ci(moves),
                extras={
                    "bound 4*rho_i*2^il": moves_bound,
                    "P[calls >= 2^((K/2+i)l)]": calls_ok_fraction,
                    "find prob (i>=i0)": find_rate,
                    "find floor": find_floor if phase >= i0 else float("nan"),
                },
            )
        )
        checks[f"phase {phase}: E[moves] <= bound"] = float(moves.mean()) <= moves_bound
        checks[f"phase {phase}: calls floor holds in >= 60% of trials"] = (
            calls_ok_fraction >= 0.60
        )
        if phase >= i0:
            checks[f"phase {phase}: find prob >= floor - 0.05"] = (
                find_rate >= find_floor - 0.05
            )

    table = rows_to_markdown(
        rows,
        ["phase"],
        "E[moves in phase]",
        [
            "bound 4*rho_i*2^il",
            "P[calls >= 2^((K/2+i)l)]",
            "find prob (i>=i0)",
            "find floor",
        ],
    )
    return ExperimentResult(
        experiment_id="E08",
        title=(
            f"Algorithm 5 phase structure (n={n_agents}, l={ell}, K={K}, "
            f"D={distance}, i0={i0})"
        ),
        paper_claim=(
            "Lemma 3.10: R_i <= 4 rho_i 2^{il}; Lemma 3.12: >= 2^{(K/2+i)l} "
            "searches per phase w.h.p.; Lemma 3.13: past i0 each phase finds "
            "w.p. >= 1 - 2^{-(2l+1)}."
        ),
        table=table,
        checks=checks,
        notes=[
            "K is instantiated via calibrated_K: Lemma 3.13's per-phase find "
            "floor 1 - 2^{-(2l+1)} only holds once 2^{Kl} dominates the "
            "2^{il+6} worst-case visit odds — with a too-small K the phase "
            "find probability stalls below the floor and Theorem 3.14's "
            "geometric series diverges (we verified this failure mode at "
            "K=2 before calibrating).",
        ],
    )


def spec(scale: str = "smoke") -> ExperimentSpec:
    """E08 as data: no declared sweeps — the bespoke measurement is the analyze pass."""
    check_scale(scale)
    return ExperimentSpec(
        experiment_id="E08",
        sweeps=(),
        analyze=lambda context: _measure(context.scale, context.seed),
    )


def run(scale: str = "smoke", seed: int = DEFAULT_SEED) -> ExperimentResult:
    return execute_spec(spec(scale), scale, seed)
