"""E05 — walk(k, l) length distribution (Lemma 3.8).

Lemma 3.8 makes three claims about the geometric walk: every length in
``0..2^{kl}`` has probability at least ``2^{-(kl+2)}``; at least
``2^{kl}`` moves happen with probability >= 1/4; and the expectation is
below ``2^{kl}``.  The experiment verifies all three on empirical
histograms and on the exact pmf.
"""

from __future__ import annotations

import numpy as np

from repro.core.walk import walk_length_pmf, walk_length_tail
from repro.experiments.base import DEFAULT_SEED, ExperimentResult, check_scale
from repro.experiments.compiler import ExperimentSpec, execute_spec
from repro.sim.runner import ExperimentRow, rows_to_markdown
from repro.sim.stats import mean_ci

_SCALES = {
    "smoke": {"grid": ((2, 1), (3, 1), (2, 2)), "samples": 200_000},
    "paper": {"grid": ((2, 1), (3, 1), (4, 1), (2, 2), (3, 2), (2, 3)), "samples": 2_000_000},
}


def _measure(scale: str = "smoke", seed: int = DEFAULT_SEED) -> ExperimentResult:
    params = _SCALES[check_scale(scale)]
    rng = np.random.default_rng(seed)
    rows = []
    checks = {}
    for k, ell in params["grid"]:
        side = 2 ** (k * ell)
        p = 2.0 ** -(k * ell)
        lengths = rng.geometric(p, size=params["samples"]) - 1

        histogram = np.bincount(lengths[lengths <= side], minlength=side + 1)
        empirical_pmf = histogram / params["samples"]
        pmf_floor = 2.0 ** -(k * ell + 2)
        measured_min_pmf = float(empirical_pmf.min())
        exact_min_pmf = min(walk_length_pmf(k, ell, i) for i in (0, side))

        tail_measured = float((lengths >= side).mean())
        tail_exact = walk_length_tail(k, ell, side)
        mean_measured = float(lengths.mean())

        rows.append(
            ExperimentRow(
                params={"k": k, "l": ell},
                estimate=mean_ci([mean_measured]),
                extras={
                    "mean bound 2^kl": float(side),
                    "min pmf on 0..2^kl": measured_min_pmf,
                    "pmf floor 2^-(kl+2)": pmf_floor,
                    "P[len>=2^kl]": tail_measured,
                    "tail floor 1/4": 0.25,
                },
            )
        )
        checks[f"k={k} l={ell}: exact pmf >= floor"] = exact_min_pmf >= pmf_floor
        # Empirical minimum is noisy; allow statistical slack.
        se = (pmf_floor / params["samples"]) ** 0.5
        checks[f"k={k} l={ell}: empirical pmf >= floor - 5 s.e."] = (
            measured_min_pmf >= pmf_floor - 5 * se
        )
        checks[f"k={k} l={ell}: tail >= 1/4"] = tail_measured >= 0.25 - 0.01
        checks[f"k={k} l={ell}: mean < 2^kl"] = mean_measured < side
        checks[f"k={k} l={ell}: tail matches closed form"] = (
            abs(tail_measured - tail_exact) < 0.01
        )
    table = rows_to_markdown(
        rows,
        ["k", "l"],
        "mean length",
        [
            "mean bound 2^kl",
            "min pmf on 0..2^kl",
            "pmf floor 2^-(kl+2)",
            "P[len>=2^kl]",
            "tail floor 1/4",
        ],
    )
    return ExperimentResult(
        experiment_id="E05",
        title="walk(k, l): per-length floor, tail mass, expectation",
        paper_claim=(
            "Lemma 3.8: P[len = i] >= 2^{-(kl+2)} for i <= 2^{kl}; "
            "P[len >= 2^{kl}] >= 1/4; E[len] < 2^{kl}."
        ),
        table=table,
        checks=checks,
        notes=[
            "The exact pmf minimum over 0..2^{kl} is attained at 2^{kl} "
            "and sits roughly 4/e above the lemma floor, matching the "
            "(1 - 1/m)^m >= 1/4 estimate the proof uses."
        ],
    )


def spec(scale: str = "smoke") -> ExperimentSpec:
    """E05 as data: no declared sweeps — the bespoke measurement is the analyze pass."""
    check_scale(scale)
    return ExperimentSpec(
        experiment_id="E05",
        sweeps=(),
        analyze=lambda context: _measure(context.scale, context.seed),
    )


def run(scale: str = "smoke", seed: int = DEFAULT_SEED) -> ExperimentResult:
    return execute_spec(spec(scale), scale, seed)
