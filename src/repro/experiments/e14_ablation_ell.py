"""E14 — Ablation: trading memory bits for probability fineness.

The paper's discussion section singles out the ``b`` vs ``l`` trade
inside ``chi = b + log2(l)``: raising ``l`` (coarser... finer base
coins are *smaller* ``l``; larger ``l`` means the machine may use
probabilities as small as ``2^{-l}``) lets the uniform algorithm shrink
its counters by ``3 log2(l)`` bits while paying only ``log2(l)`` in the
metric — but the running time inflates by ``2^{O(l)}`` because distance
estimates overshoot by up to a factor ``2^l``.

The experiment fixes ``(D, n)`` and sweeps ``l``, tabulating the
declared bits, chi, and measured moves — the quantitative version of
the paper's "more bits of memory might be of greater utility than
having access to smaller probabilities".  Both the calibrated-K and
fixed-K sweeps are declared specs compiling to single batched-backend
calls per ``l``.
"""

from __future__ import annotations

from typing import Callable, Mapping, Optional

from repro.core import theory
from repro.core.uniform import UniformSearch, calibrated_K
from repro.experiments.base import DEFAULT_SEED, ExperimentResult, check_scale
from repro.experiments.compiler import (
    ExperimentSpec,
    SpecContext,
    SweepSpec,
    execute_spec,
)
from repro.sim.backends import AlgorithmSpec, SimulationRequest
from repro.sim.runner import (
    ExperimentRow,
    SimulationTrial,
    rows_to_markdown,
)

_SCALES = {
    # The distances are chosen so the phase grid 2^{i0 l} genuinely
    # overshoots D for l > 1 (at D = 64 every l in {1,2,3} aligns with
    # 2^{i0 l} = 64 exactly and the inflation story inverts — a real
    # finite-size effect worth knowing about, see the notes).
    "smoke": {"distance": 32, "n_agents": 4, "ells": (1, 2, 3), "trials": 30},
    "paper": {"distance": 128, "n_agents": 8, "ells": (1, 2, 3), "trials": 150},
}

#: Fixed-K companion sweep constants (see the notes in the analysis).
_FIXED_DISTANCE = 32
_FIXED_ELLS = (1, 2)


def ablation_request(params: Mapping[str, object]) -> SimulationRequest:
    """Algorithm 5 with an explicit ``(l, K)`` at the corner target."""
    distance = int(params["D"])
    n_agents = int(params["n"])
    ell = int(params["l"])
    K = int(params["K"])
    budget = int(
        64.0
        * 2.0 ** (K * ell)
        * theory.uniform_expected_moves_shape(distance, n_agents, ell, 2.0)
    ) + 100_000
    return SimulationRequest(
        algorithm=AlgorithmSpec.uniform(ell, K),
        n_agents=n_agents,
        target=(distance, distance),
        move_budget=budget,
    )


def _calibrated_grid(params) -> tuple:
    return tuple(
        {
            "D": params["distance"],
            "n": params["n_agents"],
            "l": ell,
            "K": calibrated_K(ell),
        }
        for ell in params["ells"]
    )


def _fixed_grid(params) -> tuple:
    return tuple(
        {
            "D": _FIXED_DISTANCE,
            "n": params["n_agents"],
            "l": ell,
            "K": calibrated_K(1),
        }
        for ell in _FIXED_ELLS
    )


def spec(scale: str = "smoke") -> ExperimentSpec:
    """E14 as data: calibrated-K and fixed-K ablation sweeps."""
    params = _SCALES[check_scale(scale)]
    return ExperimentSpec(
        experiment_id="E14",
        sweeps=(
            SweepSpec(
                name="calibrated",
                trial=SimulationTrial(ablation_request),
                grid=_calibrated_grid(params),
                trials=params["trials"],
                seed_keys=(15,),
            ),
            SweepSpec(
                name="fixed_k",
                trial=SimulationTrial(ablation_request),
                grid=_fixed_grid(params),
                trials=max(10, params["trials"] // 3),
                seed_keys=(16,),
            ),
        ),
        analyze=_analyze,
    )


def _analyze(context: SpecContext) -> ExperimentResult:
    params = _SCALES[context.scale]
    distance, n_agents = params["distance"], params["n_agents"]
    rows = []
    checks = {}
    notes = []

    grid = _calibrated_grid(params)
    sweep = context.rows("calibrated")

    bits_list = []
    means = []
    for point, row in zip(grid, sweep):
        ell = int(point["l"])
        K = int(point["K"])
        algorithm = UniformSearch(n_agents, ell, K)
        complexity = algorithm.selection_complexity_for_distance(distance)
        bits_list.append(complexity.bits)
        mean = row.estimate.mean
        means.append(mean)
        rows.append(
            ExperimentRow(
                params={"l": ell},
                estimate=row.estimate,
                extras={
                    "K(l)": float(K),
                    "bits b": float(complexity.bits),
                    "chi": complexity.chi,
                    "moves ratio vs l=1": mean / means[0],
                },
            )
        )

    checks["memory bits decrease (weakly) as l grows"] = all(
        b2 <= b1 for b1, b2 in zip(bits_list, bits_list[1:])
    )
    checks["run time inflates as l grows"] = means[-1] > means[0]
    growth = means[-1] / means[0]
    ell_span = params["ells"][-1] - params["ells"][0]
    checks["inflation is at most ~2^(4l)"] = growth <= 2.0 ** (4 * ell_span + 2)
    notes.append(
        f"Raising l from {params['ells'][0]} to {params['ells'][-1]} saves "
        f"{bits_list[0] - bits_list[-1]} memory bits but inflates expected "
        f"moves by {growth:.1f}x — the discussion section's asymmetry "
        f"(memory can simulate fine probabilities, not vice versa) in "
        f"numbers."
    )

    # Fixed-K companion sweep: with the paper's literal "one constant K
    # for all l" reading, the per-phase sortie count is ~2^{Kl} and the
    # 2^{O(l)} cost growth becomes visible directly.  Run at a fixed
    # small distance — the point is the constant's growth, and the
    # earlier phases' sunk sortie counts scale like 4^{Kl} in wall time.
    fixed_K = calibrated_K(1)
    fixed_distance = _FIXED_DISTANCE
    fixed_grid = _fixed_grid(params)
    fixed_sweep = context.rows("fixed_k")
    fixed_rows = []
    fixed_means = []
    for point, row in zip(fixed_grid, fixed_sweep):
        fixed_means.append(row.estimate.mean)
        fixed_rows.append(
            ExperimentRow(
                params={"l": int(point["l"])},
                estimate=row.estimate,
                extras={
                    "K": float(fixed_K),
                    "ratio vs l=1": fixed_means[-1] / fixed_means[0],
                },
            )
        )
    fixed_growth = fixed_means[-1] / fixed_means[0]
    calibrated_ratio_at_2 = means[1] / means[0] if len(means) > 1 else 1.0
    checks["fixed-K: one extra l costs >= 2x"] = fixed_growth >= 2.0
    checks["fixed-K inflates more than calibrated-K at the same step"] = (
        fixed_growth > calibrated_ratio_at_2
    )
    notes.append(
        f"With K fixed at {fixed_K} (D={fixed_distance}), moving l from 1 "
        f"to 2 multiplies the expected moves by {fixed_growth:.1f}x, versus "
        f"{calibrated_ratio_at_2:.1f}x under per-l calibration — the literal "
        f"constant-K reading of the 2^{{O(l)}} factor. The colony minimum "
        f"softens the naive 2^{{Kl}} prediction because per-phase sortie "
        f"counts are geometric (std = mean), so the luckiest agent skips "
        f"most of a phase."
    )
    notes.append(
        "Finite-size alignment caveat: when 2^{i0 l} = D exactly for every "
        "l (e.g. D = 64 with l in {1,2,3}), larger l can even be *cheaper* "
        "because fewer sunk phases precede i0; the distances here are "
        "chosen so the l > 1 grids genuinely overshoot."
    )

    table = (
        rows_to_markdown(
            rows, ["l"], "E[M_moves]", ["K(l)", "bits b", "chi", "moves ratio vs l=1"]
        )
        + f"\n\nFixed K = {fixed_K} companion sweep:\n\n"
        + rows_to_markdown(fixed_rows, ["l"], "E[M_moves]", ["K", "ratio vs l=1"])
    )
    return ExperimentResult(
        experiment_id="E14",
        title=f"b vs l ablation for Algorithm 5 at D={distance}, n={n_agents}",
        paper_claim=(
            "Discussion: chi = b + log2(l) hides an asymmetry — the uniform "
            "algorithm can trade 3 log l memory bits for a 2^{O(l)} slowdown."
        ),
        table=table,
        checks=checks,
        notes=notes,
    )


def run(
    scale: str = "smoke",
    seed: int = DEFAULT_SEED,
    workers: int = 1,
    on_progress: Optional[Callable] = None,
) -> ExperimentResult:
    return execute_spec(spec(scale), scale, seed, workers, on_progress)
