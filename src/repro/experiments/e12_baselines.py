"""E12 — Head-to-head baseline comparison (related-work context).

Places the paper's algorithms next to the comparators its introduction
cites: the Feinerman et al. style search (optimal but chi = Theta(log
D)) and the uniform random walk (chi = 4 but speed-up capped at
``min{log n, D}``).  Everything runs at the same ``(D, n)`` with the
same corner target, as one declared sweep — every (algorithm, n) grid
point is a single batched-backend call, and the spec form lets the
experiment compiler fuse these points with any other experiment
touching the same families.
"""

from __future__ import annotations

from typing import Callable, Mapping, Optional

from repro.baselines.feinerman import FeinermanSearch
from repro.baselines.random_walk import RandomWalkSearch
from repro.baselines.spiral import spiral_index
from repro.core import theory
from repro.core.nonuniform import NonUniformSearch
from repro.core.uniform import UniformSearch, calibrated_K
from repro.experiments.base import DEFAULT_SEED, ExperimentResult, check_scale
from repro.experiments.compiler import (
    ExperimentSpec,
    SpecContext,
    SweepSpec,
    execute_spec,
)
from repro.sim.backends import AlgorithmSpec, SimulationRequest
from repro.sim.runner import (
    ExperimentRow,
    SimulationTrial,
    rows_to_markdown,
)

_SCALES = {
    "smoke": {"distance": 32, "n_values": (1, 8), "trials": 40},
    "paper": {"distance": 64, "n_values": (1, 4, 16, 64), "trials": 200},
}

_ALGORITHMS = ("algorithm1", "nonuniform(l=1)", "uniform(l=1)", "feinerman", "random-walk")


def _spec_for(name: str, distance: int) -> AlgorithmSpec:
    if name == "algorithm1":
        return AlgorithmSpec.algorithm1(distance)
    if name == "nonuniform(l=1)":
        return AlgorithmSpec.nonuniform(distance, 1)
    if name == "uniform(l=1)":
        return AlgorithmSpec.uniform(1, calibrated_K(1))
    if name == "feinerman":
        return AlgorithmSpec.feinerman()
    return AlgorithmSpec.random_walk()


def baseline_request(params: Mapping[str, object]) -> SimulationRequest:
    """One comparator at one colony size, corner target, shared budget."""
    distance = int(params["D"])
    return SimulationRequest(
        algorithm=_spec_for(str(params["algorithm"]), distance),
        n_agents=int(params["n"]),
        target=(distance, distance),
        move_budget=600 * distance * distance,  # ~600x the single-spiral optimum
    )


def _grid(params) -> tuple:
    return tuple(
        {"algorithm": name, "n": n_agents, "D": params["distance"]}
        for n_agents in params["n_values"]
        for name in _ALGORITHMS
    )


def spec(scale: str = "smoke") -> ExperimentSpec:
    """E12 as data: one comparator sweep plus the head-to-head analysis."""
    params = _SCALES[check_scale(scale)]
    return ExperimentSpec(
        experiment_id="E12",
        sweeps=(
            SweepSpec(
                name="baselines",
                trial=SimulationTrial(baseline_request),
                grid=_grid(params),
                trials=params["trials"],
                seed_keys=(12,),
            ),
        ),
        analyze=_analyze,
    )


def _analyze(context: SpecContext) -> ExperimentResult:
    params = _SCALES[context.scale]
    distance = params["distance"]
    target = (distance, distance)
    rows = []
    checks = {}

    chi_values = {
        "algorithm1": None,
        "nonuniform(l=1)": NonUniformSearch(distance, 1).selection_complexity().chi,
        "uniform(l=1)": UniformSearch(1, 1).selection_complexity_for_distance(
            distance
        ).chi,
        "feinerman": FeinermanSearch(1).selection_complexity_for_distance(
            distance
        ).chi,
        "random-walk": RandomWalkSearch().selection_complexity().chi,
    }
    from repro.core.algorithm1 import Algorithm1

    chi_values["algorithm1"] = Algorithm1(distance).selection_complexity().chi

    grid = _grid(params)
    sweep = context.rows("baselines")

    means = {}
    for point, row in zip(grid, sweep):
        name = str(point["algorithm"])
        n_agents = int(point["n"])
        mean = row.estimate.mean
        means[(name, n_agents)] = mean
        rows.append(
            ExperimentRow(
                params={"algorithm": name, "n": n_agents},
                estimate=row.estimate,
                extras={
                    "chi": chi_values[name] or 0.0,
                    "shape D^2/n+D": theory.expected_moves_shape(
                        distance, n_agents
                    ),
                },
            )
        )

    spiral_optimum = spiral_index(target)
    n_large = params["n_values"][-1]
    for name in ("algorithm1", "nonuniform(l=1)", "feinerman"):
        checks[f"{name}: within 64x of informed single-agent optimum at n=1"] = (
            means[(name, 1)] <= 64 * spiral_optimum
        )
        checks[f"{name}: speeds up with n"] = (
            means[(name, n_large)] < means[(name, 1)]
        )
    checks["random walk loses to every structured search at n=1"] = all(
        means[("random-walk", 1)] >= means[(name, 1)]
        for name in ("algorithm1", "nonuniform(l=1)", "feinerman")
    )
    checks["nonuniform chi far below feinerman chi"] = (
        chi_values["nonuniform(l=1)"] < chi_values["feinerman"] / 3
    )

    table = rows_to_markdown(
        rows, ["algorithm", "n"], "E[M_moves]", ["chi", "shape D^2/n+D"]
    )
    return ExperimentResult(
        experiment_id="E12",
        title=f"Baselines head-to-head at D={distance} (corner target)",
        paper_claim=(
            "Context (Sections 1, related work): Feinerman et al. achieve "
            "O(D^2/n + D) with chi = Theta(log D); uniform random walks have "
            "tiny chi but speed-up min{log n, D}."
        ),
        table=table,
        checks=checks,
        notes=[
            "The paper's algorithms match the Feinerman-style comparator's "
            "performance at a double-exponentially smaller chi; the random "
            "walk's move counts are dominated by its budget cap, reflecting "
            "its ~D^2 log D hitting time.",
        ],
    )


def run(
    scale: str = "smoke",
    seed: int = DEFAULT_SEED,
    workers: int = 1,
    on_progress: Optional[Callable] = None,
) -> ExperimentResult:
    return execute_spec(spec(scale), scale, seed, workers, on_progress)
