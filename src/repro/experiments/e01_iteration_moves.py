"""E01 — Iteration move counts (Lemmas 3.1 and 3.2).

Lemma 3.1: the expected number of moves per iteration of Algorithm 1 is
``R <= 2D`` (exactly ``2(D-1)``).  Lemma 3.2: conditioning on *missing*
the target inflates the expectation by at most a factor two,
``R_hat <= 2R``.

The experiment samples iterations directly (two geometric legs), splits
them by whether they would have found a corner target, and compares
both conditional means against the lemmas' envelopes.
"""

from __future__ import annotations

import numpy as np

from repro.core import theory
from repro.experiments.base import DEFAULT_SEED, ExperimentResult, check_scale
from repro.experiments.compiler import ExperimentSpec, execute_spec
from repro.sim.runner import ExperimentRow, rows_to_markdown
from repro.sim.stats import mean_ci

_SCALES = {
    "smoke": {"distances": (8, 32, 128), "iterations": 40_000},
    "paper": {"distances": (8, 16, 32, 64, 128, 256, 512, 1024), "iterations": 400_000},
}


def sample_iterations(distance: int, iterations: int, rng: np.random.Generator):
    """Sample iteration legs and corner-target hit flags, vectorized."""
    p = 1.0 / distance
    sv = rng.integers(0, 2, size=iterations) * 2 - 1
    sh = rng.integers(0, 2, size=iterations) * 2 - 1
    lv = rng.geometric(p, size=iterations) - 1
    lh = rng.geometric(p, size=iterations) - 1
    target = (distance, distance)
    hit = (sv * lv == target[1]) & (sh > 0) & (lh >= target[0])
    lengths = lv + lh
    return lengths, hit


def _measure(scale: str = "smoke", seed: int = DEFAULT_SEED) -> ExperimentResult:
    params = _SCALES[check_scale(scale)]
    rng = np.random.default_rng(seed)
    rows = []
    checks = {}
    notes = []
    for distance in params["distances"]:
        lengths, hit = sample_iterations(distance, params["iterations"], rng)
        estimate = mean_ci(lengths)
        missed = lengths[~hit]
        conditional = mean_ci(missed) if missed.size else estimate
        bound = theory.iteration_moves_upper_bound(distance)
        conditional_bound = theory.conditional_iteration_moves_upper_bound(distance)
        rows.append(
            ExperimentRow(
                params={"D": distance},
                estimate=estimate,
                extras={
                    "exact 2(D-1)": 2.0 * (distance - 1),
                    "lemma 2D": bound,
                    "R_hat measured": conditional.mean,
                    "lemma 4D": conditional_bound,
                },
            )
        )
        checks[f"D={distance}: R <= 2D"] = estimate.mean <= bound
        checks[f"D={distance}: R_hat <= 2R"] = conditional.mean <= 2.0 * estimate.mean
    notes.append(
        "R matches the exact value 2(D-1); conditioning on a miss changes "
        "the mean by well under the lemma's factor-2 allowance because a "
        "single iteration hits a corner target only with probability "
        "Theta(1/D)."
    )
    table = rows_to_markdown(
        rows,
        ["D"],
        "R measured",
        ["exact 2(D-1)", "lemma 2D", "R_hat measured", "lemma 4D"],
    )
    return ExperimentResult(
        experiment_id="E01",
        title="Expected moves per iteration of Algorithm 1",
        paper_claim="Lemma 3.1: R <= 2D; Lemma 3.2: R_hat <= 2R.",
        table=table,
        checks=checks,
        notes=notes,
    )


def spec(scale: str = "smoke") -> ExperimentSpec:
    """E01 as data: no declared sweeps — the bespoke measurement is the analyze pass."""
    check_scale(scale)
    return ExperimentSpec(
        experiment_id="E01",
        sweeps=(),
        analyze=lambda context: _measure(context.scale, context.seed),
    )


def run(scale: str = "smoke", seed: int = DEFAULT_SEED) -> ExperimentResult:
    return execute_spec(spec(scale), scale, seed)
