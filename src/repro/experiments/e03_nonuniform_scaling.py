"""E03 — Algorithm 1 performance scaling (Theorem 3.5).

Theorem 3.5: ``n`` agents running Algorithm 1 find any target within
distance ``D`` in expected ``O(D^2/n + D)`` moves, with the proof's
explicit envelope ``4D / (1 - q)``.

Two sweeps: over ``D`` at fixed ``n`` (fitting the scaling exponent,
which should fall from ~2 toward ~1 as ``n`` approaches ``D``), and
over ``n`` at fixed ``D`` (the speed-up curve, which should track
``min{n, D}`` up to constants).

The experiment is declared as an :class:`ExperimentSpec` — the sweeps
as data, the table/check construction as the ``analyze`` pass — so the
experiment compiler can merge its grid points with every other
experiment's and execute one fused program; ``run()`` executes the same
spec uncompiled.
"""

from __future__ import annotations

from typing import Callable, Mapping, Optional

from repro.core import theory
from repro.experiments.base import DEFAULT_SEED, ExperimentResult, check_scale
from repro.experiments.compiler import (
    ExperimentSpec,
    SpecContext,
    SweepSpec,
    execute_spec,
)
from repro.sim.backends import AlgorithmSpec, SimulationRequest
from repro.sim.runner import (
    ExperimentRow,
    SimulationTrial,
    rows_to_markdown,
)
from repro.sim.stats import fit_loglog_slope

_SCALES = {
    "smoke": {
        "distances": (16, 32, 64, 128),
        "n_for_d_sweep": (1, 16),
        "d_for_n_sweep": 64,
        "n_values": (1, 4, 16, 64),
        "trials": 60,
    },
    "paper": {
        "distances": (16, 32, 64, 128, 256, 512, 1024),
        "n_for_d_sweep": (1, 16),
        "d_for_n_sweep": 256,
        "n_values": (1, 4, 16, 64, 256, 1024),
        "trials": 400,
    },
}


def corner_request(params: Mapping[str, object]) -> SimulationRequest:
    """Algorithm 1 hunting the corner target at one ``(D, n)`` point."""
    distance = int(params["D"])
    n_agents = int(params["n"])
    budget = 64 * int(theory.expected_moves_upper_bound(distance, n_agents)) + 10_000
    return SimulationRequest(
        algorithm=AlgorithmSpec.algorithm1(distance),
        n_agents=n_agents,
        target=(distance, distance),
        move_budget=budget,
    )


def spec(scale: str = "smoke") -> ExperimentSpec:
    """E03 as data: the two scaling sweeps plus the analysis pass."""
    params = _SCALES[check_scale(scale)]
    grid_d = tuple(
        {"n": n_agents, "D": distance}
        for n_agents in params["n_for_d_sweep"]
        for distance in params["distances"]
    )
    grid_n = tuple(
        {"D": params["d_for_n_sweep"], "n": n_agents}
        for n_agents in params["n_values"]
    )
    return ExperimentSpec(
        experiment_id="E03",
        sweeps=(
            SweepSpec(
                name="d_sweep",
                trial=SimulationTrial(corner_request),
                grid=grid_d,
                trials=params["trials"],
                seed_keys=(0,),
            ),
            SweepSpec(
                name="n_sweep",
                trial=SimulationTrial(corner_request),
                grid=grid_n,
                trials=params["trials"],
                seed_keys=(1,),
            ),
        ),
        analyze=_analyze,
    )


def _analyze(context: SpecContext) -> ExperimentResult:
    params = _SCALES[context.scale]
    checks = {}
    notes = []

    sweep_d = context.rows("d_sweep")
    rows_d = []
    slopes = {}
    means_by_point = {
        (row.params["n"], row.params["D"]): row for row in sweep_d
    }
    for n_agents in params["n_for_d_sweep"]:
        means = []
        for distance in params["distances"]:
            row = means_by_point[(n_agents, distance)]
            mean = row.estimate.mean
            means.append(mean)
            envelope = theory.expected_moves_upper_bound(distance, n_agents)
            shape = theory.expected_moves_shape(distance, n_agents)
            rows_d.append(
                ExperimentRow(
                    params={"n": n_agents, "D": distance},
                    estimate=row.estimate,
                    extras={
                        "shape D^2/n+D": shape,
                        "proof envelope": envelope,
                        "ratio/shape": mean / shape,
                    },
                )
            )
            checks[f"n={n_agents} D={distance}: mean <= proof envelope"] = (
                mean <= envelope
            )
        slope, _, r2 = fit_loglog_slope(params["distances"], means)
        slopes[n_agents] = slope
        notes.append(
            f"n={n_agents}: fitted M_moves ~ D^{slope:.2f} (r^2={r2:.3f}); "
            f"Theorem 3.5 predicts exponent 2 while D^2/n dominates and "
            f"exponent 1 once n >= D."
        )
    checks["single agent scales ~ D^2"] = 1.7 <= slopes[1] <= 2.2

    distance = params["d_for_n_sweep"]
    sweep_n = context.rows("n_sweep")
    rows_n = []
    base_moves = sweep_n[0].estimate.mean
    for row in sweep_n:
        n_agents = int(row.params["n"])
        mean = row.estimate.mean
        measured_speedup = base_moves / mean
        cap = theory.speedup_upper_bound(distance, n_agents)
        rows_n.append(
            ExperimentRow(
                params={"D": distance, "n": n_agents},
                estimate=row.estimate,
                extras={
                    "speed-up": measured_speedup,
                    "cap min(n,D)": cap,
                },
            )
        )
        if n_agents <= distance:
            # Linear regime: speed-up ~ n.  Factor-2 slack absorbs
            # Monte-Carlo noise in the ratio of two heavy-tailed means.
            checks[f"D={distance} n={n_agents}: speed-up <= 2 * min(n, D)"] = (
                measured_speedup <= 2.0 * cap
            )
        else:
            # Saturated regime (n > D): the asymptotic cap min{n, D}
            # hides the ratio of the proofs' constants (E1 ~ 120 D^2 vs
            # E_n >= 2D), so the sound finite-D check is the absolute
            # floor: reaching the corner needs 2D moves.
            checks[f"D={distance} n={n_agents}: E[M_moves] >= 2D"] = (
                mean >= 2.0 * distance
            )
    largest_n = params["n_values"][-1]
    speedup_at_largest = base_moves / sweep_n[-1].estimate.mean
    checks["speed-up grows substantially with n"] = speedup_at_largest >= min(
        largest_n, distance
    ) / 16

    table = (
        rows_to_markdown(
            rows_d,
            ["n", "D"],
            "E[M_moves]",
            ["shape D^2/n+D", "proof envelope", "ratio/shape"],
        )
        + f"\n\nSpeed-up sweep at D={distance} (corner target):\n\n"
        + rows_to_markdown(rows_n, ["D", "n"], "E[M_moves]", ["speed-up", "cap min(n,D)"])
    )
    return ExperimentResult(
        experiment_id="E03",
        title="Algorithm 1: E[M_moves] = O(D^2/n + D) and the speed-up curve",
        paper_claim="Theorem 3.5: minimum over n agents of expected moves is O(D^2/n + D).",
        table=table,
        checks=checks,
        notes=notes,
    )


def run(
    scale: str = "smoke",
    seed: int = DEFAULT_SEED,
    workers: int = 1,
    on_progress: Optional[Callable] = None,
) -> ExperimentResult:
    return execute_spec(spec(scale), scale, seed, workers, on_progress)
