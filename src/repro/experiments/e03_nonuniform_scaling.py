"""E03 — Algorithm 1 performance scaling (Theorem 3.5).

Theorem 3.5: ``n`` agents running Algorithm 1 find any target within
distance ``D`` in expected ``O(D^2/n + D)`` moves, with the proof's
explicit envelope ``4D / (1 - q)``.

Two sweeps: over ``D`` at fixed ``n`` (fitting the scaling exponent,
which should fall from ~2 toward ~1 as ``n`` approaches ``D``), and
over ``n`` at fixed ``D`` (the speed-up curve, which should track
``min{n, D}`` up to constants).
"""

from __future__ import annotations

from repro.core import theory
from repro.experiments.base import DEFAULT_SEED, ExperimentResult, check_scale
from repro.sim.backends import AlgorithmSpec, SimulationRequest
from repro.sim.runner import ExperimentRow, rows_to_markdown
from repro.sim.service import simulate
from repro.sim.stats import fit_loglog_slope, mean_ci

_SCALES = {
    "smoke": {
        "distances": (16, 32, 64, 128),
        "n_for_d_sweep": (1, 16),
        "d_for_n_sweep": 64,
        "n_values": (1, 4, 16, 64),
        "trials": 60,
    },
    "paper": {
        "distances": (16, 32, 64, 128, 256, 512, 1024),
        "n_for_d_sweep": (1, 16),
        "d_for_n_sweep": 256,
        "n_values": (1, 4, 16, 64, 256, 1024),
        "trials": 400,
    },
}


def mean_moves(
    distance: int, n_agents: int, trials: int, seed: int, tag: int
) -> float:
    """Mean colony M_moves over trials for the corner target.

    Uses the closed_form backend: per-trial seed streams match the
    historical hand-rolled loop bit for bit.
    """
    budget = 64 * int(theory.expected_moves_upper_bound(distance, n_agents)) + 10_000
    request = SimulationRequest(
        algorithm=AlgorithmSpec.algorithm1(distance),
        n_agents=n_agents,
        target=(distance, distance),
        move_budget=budget,
        n_trials=trials,
        seed=seed,
        seed_keys=(tag, distance, n_agents),
    )
    return float(simulate(request, backend="closed_form").moves_or_budget().mean())


def run(scale: str = "smoke", seed: int = DEFAULT_SEED) -> ExperimentResult:
    params = _SCALES[check_scale(scale)]
    checks = {}
    notes = []

    rows_d = []
    slopes = {}
    for n_agents in params["n_for_d_sweep"]:
        means = []
        for distance in params["distances"]:
            mean = mean_moves(distance, n_agents, params["trials"], seed, 0)
            means.append(mean)
            envelope = theory.expected_moves_upper_bound(distance, n_agents)
            shape = theory.expected_moves_shape(distance, n_agents)
            rows_d.append(
                ExperimentRow(
                    params={"n": n_agents, "D": distance},
                    estimate=mean_ci([mean]),
                    extras={
                        "shape D^2/n+D": shape,
                        "proof envelope": envelope,
                        "ratio/shape": mean / shape,
                    },
                )
            )
            checks[f"n={n_agents} D={distance}: mean <= proof envelope"] = (
                mean <= envelope
            )
        slope, _, r2 = fit_loglog_slope(params["distances"], means)
        slopes[n_agents] = slope
        notes.append(
            f"n={n_agents}: fitted M_moves ~ D^{slope:.2f} (r^2={r2:.3f}); "
            f"Theorem 3.5 predicts exponent 2 while D^2/n dominates and "
            f"exponent 1 once n >= D."
        )
    checks["single agent scales ~ D^2"] = 1.7 <= slopes[1] <= 2.2

    rows_n = []
    base_moves = None
    distance = params["d_for_n_sweep"]
    for n_agents in params["n_values"]:
        mean = mean_moves(distance, n_agents, params["trials"], seed, 1)
        if base_moves is None:
            base_moves = mean
        measured_speedup = base_moves / mean
        cap = theory.speedup_upper_bound(distance, n_agents)
        rows_n.append(
            ExperimentRow(
                params={"D": distance, "n": n_agents},
                estimate=mean_ci([mean]),
                extras={
                    "speed-up": measured_speedup,
                    "cap min(n,D)": cap,
                },
            )
        )
        if n_agents <= distance:
            # Linear regime: speed-up ~ n.  Factor-2 slack absorbs
            # Monte-Carlo noise in the ratio of two heavy-tailed means.
            checks[f"D={distance} n={n_agents}: speed-up <= 2 * min(n, D)"] = (
                measured_speedup <= 2.0 * cap
            )
        else:
            # Saturated regime (n > D): the asymptotic cap min{n, D}
            # hides the ratio of the proofs' constants (E1 ~ 120 D^2 vs
            # E_n >= 2D), so the sound finite-D check is the absolute
            # floor: reaching the corner needs 2D moves.
            checks[f"D={distance} n={n_agents}: E[M_moves] >= 2D"] = (
                mean >= 2.0 * distance
            )
    largest_n = params["n_values"][-1]
    speedup_at_largest = base_moves / mean_moves(
        distance, largest_n, params["trials"], seed, 1
    )
    checks["speed-up grows substantially with n"] = speedup_at_largest >= min(
        largest_n, distance
    ) / 16

    table = (
        rows_to_markdown(
            rows_d,
            ["n", "D"],
            "E[M_moves]",
            ["shape D^2/n+D", "proof envelope", "ratio/shape"],
        )
        + f"\n\nSpeed-up sweep at D={distance} (corner target):\n\n"
        + rows_to_markdown(rows_n, ["D", "n"], "E[M_moves]", ["speed-up", "cap min(n,D)"])
    )
    return ExperimentResult(
        experiment_id="E03",
        title="Algorithm 1: E[M_moves] = O(D^2/n + D) and the speed-up curve",
        paper_claim="Theorem 3.5: minimum over n agents of expected moves is O(D^2/n + D).",
        table=table,
        checks=checks,
        notes=notes,
    )
