"""E11 — Drift-line concentration (Corollary 4.10).

Corollary 4.10: once an agent sits in a recurrent class ``C``, its
position after ``r`` rounds deviates from the straight line
``r * p_vec(C)`` by at most ``o(D/|S|)`` w.h.p.  For a fixed machine
run to horizon ``r ~ D^{1.75}`` this predicts the *normalized* maximal
deviation ``max_dev / (D / |S|)`` shrinks as ``D`` grows (deviations
are diffusive, ``~ sqrt(r) = D^{0.875} << D``).

The experiment measures that normalized deviation for drifting, looping
and diffusive machines across a ``D`` sweep.
"""

from __future__ import annotations

import numpy as np

from repro.core.actions import Action
from repro.experiments.base import DEFAULT_SEED, ExperimentResult, check_scale
from repro.experiments.compiler import ExperimentSpec, execute_spec
from repro.lowerbound.drift import drift_profile, measure_max_deviation
from repro.lowerbound.theory import horizon_moves
from repro.markov.random_automata import (
    biased_walk_automaton,
    cycle_automaton,
    uniform_walk_automaton,
)
from repro.sim.rng import derive_seed
from repro.sim.runner import ExperimentRow, rows_to_markdown
from repro.sim.stats import mean_ci

_SCALES = {
    "smoke": {"distances": (32, 64, 128), "trials": 5, "epsilon": 0.5},
    "paper": {"distances": (32, 64, 128, 256, 512), "trials": 12, "epsilon": 0.25},
}


def specimens():
    return [
        ("uniform-walk", uniform_walk_automaton()),
        ("biased-walk", biased_walk_automaton([5, 1, 1, 1], ell=3)),
        (
            "square-loop",
            cycle_automaton(
                [Action.UP, Action.RIGHT, Action.DOWN, Action.LEFT], name="loop"
            ),
        ),
    ]


def _measure(scale: str = "smoke", seed: int = DEFAULT_SEED) -> ExperimentResult:
    params = _SCALES[check_scale(scale)]
    rows = []
    checks = {}
    notes = []
    for name, automaton in specimens():
        lines = drift_profile(automaton)
        drift = lines[0].drift
        normalized_by_distance = []
        for distance in params["distances"]:
            horizon = horizon_moves(distance, params["epsilon"])
            tube = distance / automaton.n_states
            deviations = []
            for trial in range(params["trials"]):
                rng = np.random.default_rng(derive_seed(seed, 11, distance, trial))
                deviation, _ = measure_max_deviation(
                    automaton, rounds=horizon, rng=rng
                )
                deviations.append(deviation / tube)
            normalized = float(np.mean(deviations))
            normalized_by_distance.append(normalized)
            rows.append(
                ExperimentRow(
                    params={"automaton": name, "D": distance},
                    estimate=mean_ci(deviations),
                    extras={
                        "rounds D^{2-eps}": float(horizon),
                        "drift_x": drift[0],
                        "drift_y": drift[1],
                    },
                )
            )
        checks[f"{name}: normalized deviation shrinks with D"] = (
            normalized_by_distance[-1] <= normalized_by_distance[0] + 0.05
        )
        notes.append(
            f"{name}: max |X_r - r*p| / (D/|S|) falls from "
            f"{normalized_by_distance[0]:.3f} to {normalized_by_distance[-1]:.3f} "
            f"across the D sweep — the o(D/|S|) envelope in action."
        )
    table = rows_to_markdown(
        rows,
        ["automaton", "D"],
        "max dev / (D/|S|)",
        ["rounds D^{2-eps}", "drift_x", "drift_y"],
    )
    return ExperimentResult(
        experiment_id="E11",
        title="Trajectories concentrate on per-class drift lines",
        paper_claim=(
            "Corollary 4.10: ||X_r - r p_vec|| = o(D/|S|) w.h.p. for agents "
            "inside a recurrent class."
        ),
        table=table,
        checks=checks,
        notes=notes,
    )


def spec(scale: str = "smoke") -> ExperimentSpec:
    """E11 as data: no declared sweeps — the bespoke measurement is the analyze pass."""
    check_scale(scale)
    return ExperimentSpec(
        experiment_id="E11",
        sweeps=(),
        analyze=lambda context: _measure(context.scale, context.seed),
    )


def run(scale: str = "smoke", seed: int = DEFAULT_SEED) -> ExperimentResult:
    return execute_spec(spec(scale), scale, seed)
