"""E16 — Mixing inside recurrent classes (Corollary 4.6 / Lemma A.2).

(Companion experiment for the lower bound's middle step.)  Corollary 4.6
asserts that within a recurrent class, ``beta = c |S| ln(D) / p0^{|S|}``
rounds bring the state distribution within ``1/D^c`` of stationarity —
via Rosenthal's lemma with the conservative Doeblin pair
``(k0, eps) = (|S|, p0^{|S|})``.

The experiment computes, for specimen chains: the exact total-variation
distance to stationarity after ``k`` steps, the Rosenthal envelope
``(1 - eps)^{floor(k/k0)}``, and the block length ``beta`` at a given
``D`` — verifying envelope domination everywhere and showing how much
slack the proof's constants carry (orders of magnitude, which is why
the coupling argument survives every union bound it is fed into).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.base import DEFAULT_SEED, ExperimentResult, check_scale
from repro.experiments.compiler import ExperimentSpec, execute_spec
from repro.markov.classify import classify_states
from repro.markov.coupling import (
    doeblin_epsilon,
    mixing_block_length,
    rosenthal_envelope,
)
from repro.markov.random_automata import (
    biased_walk_automaton,
    random_bounded_automaton,
    uniform_walk_automaton,
)
from repro.markov.stationary import stationary_distribution, total_variation
from repro.sim.rng import derive_seed
from repro.sim.runner import ExperimentRow, rows_to_markdown
from repro.sim.stats import mean_ci

_SCALES = {
    "smoke": {"steps": (1, 2, 4, 8, 16, 32), "distance": 64},
    "paper": {"steps": (1, 2, 4, 8, 16, 32, 64, 128, 256), "distance": 256},
}


def specimens(seed: int):
    rng = np.random.default_rng(derive_seed(seed, 1600))
    return [
        ("uniform-walk", uniform_walk_automaton()),
        ("biased-walk", biased_walk_automaton([3, 1, 2, 2], ell=3)),
        ("random(b=2,l=2)", random_bounded_automaton(rng, bits=2, ell=2)),
    ]


def _measure(scale: str = "smoke", seed: int = DEFAULT_SEED) -> ExperimentResult:
    params = _SCALES[check_scale(scale)]
    distance = params["distance"]
    rows = []
    checks = {}
    notes = []

    for name, automaton in specimens(seed):
        chain = automaton.to_markov_chain()
        classification = classify_states(chain)
        members = sorted(classification.recurrent_classes[0])
        sub = chain.restricted_to(members)
        pi = stationary_distribution(sub)
        epsilon = doeblin_epsilon(sub)
        k0 = sub.n_states
        beta = mixing_block_length(sub, distance)

        measured_final = None
        for k in params["steps"]:
            measured = total_variation(sub.distribution_after(k), pi)
            envelope = rosenthal_envelope(k, k0, epsilon)
            measured_final = measured
            rows.append(
                ExperimentRow(
                    params={"chain": name, "k": k},
                    estimate=mean_ci([measured]),
                    extras={
                        "rosenthal envelope": envelope,
                        "doeblin eps": epsilon,
                        "beta(D)": float(beta),
                    },
                )
            )
            checks[f"{name} k={k}: measured TV <= envelope"] = (
                measured <= envelope + 1e-12
            )
        checks[f"{name}: mixed well before beta"] = (
            measured_final is not None and measured_final < 0.05
        )
        notes.append(
            f"{name}: exact TV reaches {measured_final:.2e} within "
            f"{params['steps'][-1]} steps while the proof budgets "
            f"beta = {beta} rounds at D = {distance} — the envelope's "
            f"slack is what lets Section 4 afford a union bound over "
            f"Delta/beta groups."
        )

    table = rows_to_markdown(
        rows,
        ["chain", "k"],
        "TV to stationarity",
        ["rosenthal envelope", "doeblin eps", "beta(D)"],
    )
    return ExperimentResult(
        experiment_id="E16",
        title="Doeblin/Rosenthal mixing envelopes inside recurrent classes",
        paper_claim=(
            "Corollary 4.6 via Lemma A.2: ||pi_{r+beta,s} - pi|| <= "
            "(1 - p0^{|S|})^{floor(k/|S|)}, so beta = c |S| ln(D)/p0^{|S|} "
            "rounds suffice for 1/D^c closeness."
        ),
        table=table,
        checks=checks,
        notes=notes,
    )


def spec(scale: str = "smoke") -> ExperimentSpec:
    """E16 as data: no declared sweeps — the bespoke measurement is the analyze pass."""
    check_scale(scale)
    return ExperimentSpec(
        experiment_id="E16",
        sweeps=(),
        analyze=lambda context: _measure(context.scale, context.seed),
    )


def run(scale: str = "smoke", seed: int = DEFAULT_SEED) -> ExperimentResult:
    return execute_spec(spec(scale), scale, seed)
