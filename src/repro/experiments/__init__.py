"""Experiment registry: one entry per reproduced theorem/lemma.

The paper is pure theory (no tables or figures), so the reproduction
defines one experiment per result — see DESIGN.md Section 5 for the
index.  Each experiment module exposes two views of the same
experiment:

* ``run(scale, seed) -> ExperimentResult`` — execute it standalone
  (:data:`REGISTRY`), producing a markdown table of paper-predicted vs
  measured values plus named boolean checks;
* ``spec(scale) -> ExperimentSpec`` — the experiment as data
  (:data:`SPEC_REGISTRY`): declared simulation sweeps plus an analysis
  pass, which is what the experiment compiler
  (:mod:`repro.experiments.compiler`) merges, dedups, and executes as
  one fused program.  ``run`` is defined as the uncompiled execution of
  ``spec``, so the two views can never drift apart.

``python -m repro.experiments`` regenerates EXPERIMENTS.md content
(``--compile`` routes through the compiler); the benchmark harness
under ``benchmarks/`` times each experiment's kernel.

Scales: ``smoke`` finishes in seconds (used by integration tests and
benchmark defaults); ``paper`` is the fuller sweep recorded in
EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.experiments.base import ExperimentResult
from repro.experiments.compiler import ExperimentSpec

from repro.experiments.e01_iteration_moves import run as run_e01, spec as spec_e01
from repro.experiments.e02_hit_probability import run as run_e02, spec as spec_e02
from repro.experiments.e03_nonuniform_scaling import run as run_e03, spec as spec_e03
from repro.experiments.e04_coin import run as run_e04, spec as spec_e04
from repro.experiments.e05_walk import run as run_e05, spec as spec_e05
from repro.experiments.e06_square_search import run as run_e06, spec as spec_e06
from repro.experiments.e07_chi_accounting import run as run_e07, spec as spec_e07
from repro.experiments.e08_phase_structure import run as run_e08, spec as spec_e08
from repro.experiments.e09_uniform_scaling import run as run_e09, spec as spec_e09
from repro.experiments.e10_lowerbound import run as run_e10, spec as spec_e10
from repro.experiments.e11_drift import run as run_e11, spec as spec_e11
from repro.experiments.e12_baselines import run as run_e12, spec as spec_e12
from repro.experiments.e13_tradeoff_frontier import run as run_e13, spec as spec_e13
from repro.experiments.e14_ablation_ell import run as run_e14, spec as spec_e14
from repro.experiments.e15_robustness import run as run_e15, spec as spec_e15
from repro.experiments.e16_mixing import run as run_e16, spec as spec_e16

REGISTRY: Dict[str, Callable[..., ExperimentResult]] = {
    "E01": run_e01,
    "E02": run_e02,
    "E03": run_e03,
    "E04": run_e04,
    "E05": run_e05,
    "E06": run_e06,
    "E07": run_e07,
    "E08": run_e08,
    "E09": run_e09,
    "E10": run_e10,
    "E11": run_e11,
    "E12": run_e12,
    "E13": run_e13,
    "E14": run_e14,
    "E15": run_e15,
    "E16": run_e16,
}

#: The declarative view: experiment id -> ``spec(scale)`` factory.
SPEC_REGISTRY: Dict[str, Callable[[str], ExperimentSpec]] = {
    "E01": spec_e01,
    "E02": spec_e02,
    "E03": spec_e03,
    "E04": spec_e04,
    "E05": spec_e05,
    "E06": spec_e06,
    "E07": spec_e07,
    "E08": spec_e08,
    "E09": spec_e09,
    "E10": spec_e10,
    "E11": spec_e11,
    "E12": spec_e12,
    "E13": spec_e13,
    "E14": spec_e14,
    "E15": spec_e15,
    "E16": spec_e16,
}

__all__ = ["REGISTRY", "SPEC_REGISTRY", "ExperimentResult", "ExperimentSpec"]
