"""E13 — The selection-complexity / performance frontier (headline claim).

The theorem pair frames the trade-off as a *horizon* question: within
``Delta = D^{2-o(1)}`` moves per agent, an above-threshold colony finds
any window target w.h.p. (Theorems 3.5/3.7), while a below-threshold
colony misses an adversarially placed one w.h.p. (Theorem 4.1).  The
frontier experiment fixes ``D``, gives every strategy the *same*
per-agent move budget ``Delta = D^{1.75}`` and the same colony size,
and measures ``P[M_moves <= Delta]`` — each below-threshold specimen
evaluated on its own adversarial placement (the bound is existential
per algorithm), each above-threshold algorithm on the corner, its
worst placement.

The above-threshold strategies are a declared sweep (one batched call
per strategy, with the standard ``find_rate`` extra supplying
``P[find <= Delta]``) the experiment compiler can fuse; the
below-threshold automata keep the faithful colony simulator inside the
analysis pass, which is what the lower bound is stated over.

Notes on fairness at finite ``D``: the colony is sized
``n = ceil(256 D^{1/4})`` so that the optimal regime's explicit
constant (``~118 D^2/n``) sits below the horizon — asymptotically any
fixed ``n`` works.  Algorithm 5 appears in the table but is excluded
from the cliff check: its calibrated-K constant (``2^{Kl} ~ 256``,
experiment E09) defers the crossover ``2^K D <= D^{1.75}`` past
``D ~ 10^4``, which is out of smoke-scale reach; its D-scaling is
established separately by E09.

Mean censored move counts are reported for context; raw means are
budget artifacts for heavy-tailed walkers (the 2-D lattice hitting
time has infinite expectation), which is precisely why the theorem is
stated over horizons.
"""

from __future__ import annotations

from typing import Callable, Mapping, Optional

import numpy as np

from repro.baselines.feinerman import FeinermanSearch
from repro.core.algorithm1 import Algorithm1
from repro.core.nonuniform import NonUniformSearch
from repro.core.selection import chi_threshold
from repro.core.uniform import UniformSearch, calibrated_K
from repro.experiments.base import DEFAULT_SEED, ExperimentResult, check_scale
from repro.experiments.compiler import (
    ExperimentSpec,
    SpecContext,
    SweepSpec,
    execute_spec,
)
from repro.lowerbound.colony import simulate_colony
from repro.lowerbound.coverage import adversarial_target
from repro.lowerbound.theory import horizon_moves
from repro.markov.random_automata import (
    biased_walk_automaton,
    random_bounded_automaton,
    uniform_walk_automaton,
)
from repro.sim.backends import AlgorithmSpec, SimulationRequest
from repro.sim.rng import derive_seed
from repro.sim.runner import (
    ExperimentRow,
    SimulationTrial,
    rows_to_markdown,
)
from repro.sim.stats import mean_ci

_SCALES = {
    "smoke": {"distance": 32, "trials": 20, "epsilon": 0.25},
    "paper": {"distance": 64, "trials": 60, "epsilon": 0.25},
}

#: Above-threshold strategies, in frontier-sweep grid order.
_FAST_STRATEGIES = (
    "algorithm1",
    "nonuniform(l=1)",
    "uniform(l=1)",
    "feinerman",
)


def frontier_request(params: Mapping[str, object]) -> SimulationRequest:
    """One above-threshold strategy at the shared horizon budget."""
    distance = int(params["D"])
    strategy = str(params["strategy"])
    if strategy == "algorithm1":
        spec = AlgorithmSpec.algorithm1(distance)
    elif strategy == "nonuniform(l=1)":
        spec = AlgorithmSpec.nonuniform(distance, 1)
    elif strategy == "uniform(l=1)":
        spec = AlgorithmSpec.uniform(1, calibrated_K(1))
    else:
        spec = AlgorithmSpec.feinerman()
    return SimulationRequest(
        algorithm=spec,
        n_agents=int(params["n"]),
        target=(distance, distance),
        move_budget=int(params["horizon"]),
    )


def _frontier_grid(params) -> tuple:
    distance = params["distance"]
    horizon = horizon_moves(distance, params["epsilon"])
    n_agents = int(np.ceil(256.0 * distance**0.25))
    return tuple(
        {"strategy": name, "n": n_agents, "D": distance, "horizon": horizon}
        for name in _FAST_STRATEGIES
    )


def spec(scale: str = "smoke") -> ExperimentSpec:
    """E13 as data: the above-threshold sweep; colonies run in analyze."""
    params = _SCALES[check_scale(scale)]
    return ExperimentSpec(
        experiment_id="E13",
        sweeps=(
            SweepSpec(
                name="frontier",
                trial=SimulationTrial(frontier_request),
                grid=_frontier_grid(params),
                trials=params["trials"],
                seed_keys=(13,),
            ),
        ),
        analyze=_analyze,
    )


def _analyze(context: SpecContext) -> ExperimentResult:
    params = _SCALES[context.scale]
    seed = context.seed
    distance = params["distance"]
    horizon = horizon_moves(distance, params["epsilon"])
    n_agents = int(np.ceil(256.0 * distance**0.25))
    threshold = chi_threshold(distance)
    rows = []
    checks = {}

    def colony_entry(name, automaton):
        target = adversarial_target(automaton, distance)

        def runner():
            results = []
            for trial in range(params["trials"]):
                rng = np.random.default_rng(derive_seed(seed, 13, trial))
                result = simulate_colony(
                    automaton, n_agents, horizon, rng,
                    window_radius=distance, target=target,
                )
                results.append(
                    (result.found, result.m_moves if result.found else horizon)
                )
            return results

        return name, automaton.selection_complexity().chi, runner

    fast_specs = {
        "algorithm1": Algorithm1(distance).selection_complexity().chi,
        "nonuniform(l=1)": NonUniformSearch(distance, 1).selection_complexity().chi,
        "uniform(l=1)": UniformSearch(n_agents, 1)
        .selection_complexity_for_distance(distance)
        .chi,
        "feinerman": FeinermanSearch(n_agents)
        .selection_complexity_for_distance(distance)
        .chi,
    }
    fast_regime = {
        "algorithm1": "above",
        "nonuniform(l=1)": "above",
        "uniform(l=1)": "above*",
        "feinerman": "above",
    }
    grid = _frontier_grid(params)
    fast_rows = context.rows("frontier")

    adversary_rng = np.random.default_rng(derive_seed(seed, 999))
    random_machine = random_bounded_automaton(adversary_rng, bits=3, ell=2)
    colony_entries = [
        colony_entry("uniform-walk", uniform_walk_automaton()),
        colony_entry("biased-walk", biased_walk_automaton([3, 1, 2, 2], ell=3)),
        colony_entry("random(b=3,l=2)", random_machine),
    ]

    entries = []
    for name, chi, runner in colony_entries:
        trial_results = runner()
        finds = sum(found for found, _ in trial_results)
        moves = [float(count) for _, count in trial_results]
        rate = finds / params["trials"]
        entries.append((name, "below", chi, mean_ci(moves), rate))
    for point, row in zip(grid, fast_rows):
        name = str(point["strategy"])
        entries.append(
            (
                name,
                fast_regime[name],
                fast_specs[name],
                row.estimate,
                row.extras["find_rate"],
            )
        )

    find_rates = {"below": [], "above": []}
    for name, regime, chi, estimate, rate in sorted(entries, key=lambda e: e[2]):
        if regime in find_rates:
            find_rates[regime].append(rate)
        rows.append(
            ExperimentRow(
                params={"strategy": name, "regime": regime},
                estimate=estimate,
                extras={
                    "chi": chi,
                    "P[find <= Delta]": rate,
                    "threshold loglogD": threshold,
                },
            )
        )

    worst_above = min(find_rates["above"])
    best_below = max(find_rates["below"])
    checks["all above-threshold find within the horizon (rate >= 0.5)"] = (
        worst_above >= 0.5
    )
    checks["all below-threshold miss their adversarial target (rate <= 0.25)"] = (
        best_below <= 0.25
    )
    checks["frontier cliff: worst above > best below"] = worst_above > best_below

    table = rows_to_markdown(
        rows,
        ["strategy", "regime"],
        "censored E[M_moves]",
        ["chi", "P[find <= Delta]", "threshold loglogD"],
    )
    return ExperimentResult(
        experiment_id="E13",
        title=(
            f"chi vs performance frontier at D={distance}, n={n_agents}, "
            f"Delta=D^{{1.75}}={horizon}"
        ),
        paper_claim=(
            "Headline: within D^{2-o(1)} moves, chi >= log log D + O(1) "
            "algorithms find any window target w.h.p.; chi <= log log D - "
            "omega(1) algorithms miss an adversarial placement w.h.p."
        ),
        table=table,
        checks=checks,
        notes=[
            "Below-threshold specimens are evaluated on their own "
            "adversarial placements (the lower bound is existential per "
            "algorithm); above-threshold algorithms face the corner, their "
            "worst case. Algorithm 5 (regime 'above*') is excluded from the "
            "cliff check — its 2^{Kl} constant defers the finite-D "
            "crossover; E09 carries its scaling evidence."
        ],
    )


def run(
    scale: str = "smoke",
    seed: int = DEFAULT_SEED,
    workers: int = 1,
    on_progress: Optional[Callable] = None,
) -> ExperimentResult:
    return execute_spec(spec(scale), scale, seed, workers, on_progress)
