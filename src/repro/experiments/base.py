"""Shared experiment result record and helpers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import InvalidParameterError

DEFAULT_SEED = 20140507  # arXiv submission date of the paper

VALID_SCALES = ("smoke", "paper")


@dataclass
class ExperimentResult:
    """One experiment's rendered outcome.

    Attributes
    ----------
    experiment_id:
        The repo's experiment index (``E01``..``E14``; DESIGN.md
        Section 5).
    title:
        One-line description.
    paper_claim:
        The theorem/lemma being reproduced, quoted as a formula.
    table:
        Markdown table of parameters, measured values, and predictions.
    checks:
        Named pass/fail assertions (paper-shape versus measurement).
        The integration tests require every check to pass at smoke
        scale.
    notes:
        Free-form findings (fitted exponents, constants, caveats).
    """

    experiment_id: str
    title: str
    paper_claim: str
    table: str
    checks: Dict[str, bool] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    @property
    def all_passed(self) -> bool:
        """Whether every named check succeeded."""
        return all(self.checks.values())

    def to_markdown(self) -> str:
        """Full markdown section for EXPERIMENTS.md."""
        lines = [
            f"### {self.experiment_id} — {self.title}",
            "",
            f"**Paper claim.** {self.paper_claim}",
            "",
            self.table,
            "",
        ]
        if self.notes:
            lines.append("**Notes.**")
            lines.extend(f"- {note}" for note in self.notes)
            lines.append("")
        lines.append("**Checks.**")
        for name, passed in self.checks.items():
            marker = "PASS" if passed else "FAIL"
            lines.append(f"- [{marker}] {name}")
        lines.append("")
        return "\n".join(lines)


def check_scale(scale: str) -> str:
    """Validate the scale argument."""
    if scale not in VALID_SCALES:
        raise InvalidParameterError(
            f"scale must be one of {VALID_SCALES}, got {scale!r}"
        )
    return scale
