"""Terminal-friendly visualization (no plotting dependencies offline).

ASCII line charts, scatter plots and heatmaps used by the example
scripts and the CLI to render trade-off frontiers, scaling curves and
coverage maps.
"""

from repro.vis.asciiplot import heatmap, line_chart, scatter_chart

__all__ = ["heatmap", "line_chart", "scatter_chart"]
