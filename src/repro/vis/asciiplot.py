"""ASCII charts: line plots, scatter plots, and heatmaps.

Minimal but correct: axes are linearly (or log-) scaled into a
character canvas; multiple series get distinct glyphs and a legend.
Intended for example scripts and CLI output, not publication graphics.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence

import numpy as np

from repro.errors import InvalidParameterError

_SERIES_GLYPHS = "ox+*#@%&"
_HEAT_RAMP = " .:-=+*#%@"


def _scale(values: Sequence[float], log: bool) -> list[float]:
    if log:
        if any(v <= 0 for v in values):
            raise InvalidParameterError("log scaling requires positive values")
        return [math.log10(v) for v in values]
    return [float(v) for v in values]


def _to_canvas_coordinates(
    values: list[float], size: int
) -> list[int]:
    low, high = min(values), max(values)
    if high == low:
        return [size // 2 for _ in values]
    return [
        min(size - 1, max(0, round((v - low) / (high - low) * (size - 1))))
        for v in values
    ]


def line_chart(
    xs: Sequence[float],
    series: Dict[str, Sequence[float]],
    *,
    width: int = 64,
    height: int = 18,
    log_x: bool = False,
    log_y: bool = False,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render several aligned series against shared x values.

    Points are plotted (no interpolation): with the narrow canvases
    used here, interpolation would suggest precision the data lacks.
    """
    if not series:
        raise InvalidParameterError("need at least one series")
    if len(series) > len(_SERIES_GLYPHS):
        raise InvalidParameterError(
            f"at most {len(_SERIES_GLYPHS)} series supported, got {len(series)}"
        )
    n = len(xs)
    if n == 0 or any(len(ys) != n for ys in series.values()):
        raise InvalidParameterError("all series must match the x vector's length")
    if width < 8 or height < 4:
        raise InvalidParameterError("canvas too small")

    x_scaled = _scale(xs, log_x)
    all_y = [y for ys in series.values() for y in ys]
    y_scaled_all = _scale(all_y, log_y)
    y_low, y_high = min(y_scaled_all), max(y_scaled_all)

    canvas = [[" "] * width for _ in range(height)]
    columns = _to_canvas_coordinates(x_scaled, width)
    for glyph, (name, ys) in zip(_SERIES_GLYPHS, series.items()):
        y_scaled = _scale(ys, log_y)
        for col, y in zip(columns, y_scaled):
            if y_high == y_low:
                row = height // 2
            else:
                row = round((y - y_low) / (y_high - y_low) * (height - 1))
            canvas[height - 1 - row][col] = glyph

    lines = []
    if title:
        lines.append(title)
    y_top = 10**y_high if log_y else y_high
    y_bottom = 10**y_low if log_y else y_low
    lines.append(f"{y_label} max = {y_top:.4g}")
    lines.extend("|" + "".join(row) for row in canvas)
    lines.append("+" + "-" * width)
    lines.append(
        f"{y_label} min = {y_bottom:.4g}; {x_label} in "
        f"[{min(xs):.4g}, {max(xs):.4g}]" + ("  (log x)" if log_x else "")
        + ("  (log y)" if log_y else "")
    )
    legend = "   ".join(
        f"{glyph} = {name}" for glyph, name in zip(_SERIES_GLYPHS, series)
    )
    lines.append("legend: " + legend)
    return "\n".join(lines)


def scatter_chart(
    points: Sequence[tuple[float, float]],
    *,
    width: int = 64,
    height: int = 18,
    title: str = "",
    labels: Sequence[str] | None = None,
) -> str:
    """Scatter points on a canvas; optional single-character labels."""
    if not points:
        raise InvalidParameterError("need at least one point")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    columns = _to_canvas_coordinates([float(x) for x in xs], width)
    rows = _to_canvas_coordinates([float(y) for y in ys], height)
    canvas = [[" "] * width for _ in range(height)]
    for index, (col, row) in enumerate(zip(columns, rows)):
        glyph = "o"
        if labels is not None and index < len(labels) and labels[index]:
            glyph = labels[index][0]
        canvas[height - 1 - row][col] = glyph
    lines = []
    if title:
        lines.append(title)
    lines.append(f"y in [{min(ys):.4g}, {max(ys):.4g}]")
    lines.extend("|" + "".join(row) for row in canvas)
    lines.append("+" + "-" * width)
    lines.append(f"x in [{min(xs):.4g}, {max(xs):.4g}]")
    return "\n".join(lines)


def heatmap(
    grid: np.ndarray,
    *,
    max_side: int = 64,
    title: str = "",
) -> str:
    """Render a 2-D array as a density heatmap.

    Larger values map to denser glyphs.  Arrays bigger than
    ``max_side`` in either dimension are block-averaged down, which is
    what coverage maps want (the question is "where is mass", not
    per-cell values).  Rows are rendered top-to-bottom as
    north-to-south, matching the grid convention (positive y is up).
    """
    array = np.asarray(grid, dtype=float)
    if array.ndim != 2:
        raise InvalidParameterError(f"grid must be 2-D, got {array.ndim}-D")
    if array.size == 0:
        raise InvalidParameterError("grid must be non-empty")

    def shrink(a: np.ndarray, axis: int) -> np.ndarray:
        size = a.shape[axis]
        if size <= max_side:
            return a
        factor = math.ceil(size / max_side)
        pad = (-size) % factor
        if pad:
            padding = [(0, 0), (0, 0)]
            padding[axis] = (0, pad)
            a = np.pad(a, padding, constant_values=0.0)
        new_shape = list(a.shape)
        new_shape[axis] = a.shape[axis] // factor
        if axis == 0:
            a = a.reshape(new_shape[0], factor, a.shape[1]).mean(axis=1)
        else:
            a = a.reshape(a.shape[0], new_shape[1], factor).mean(axis=2)
        return a

    array = shrink(shrink(array, 0), 1)
    low, high = float(array.min()), float(array.max())
    span = high - low
    lines = []
    if title:
        lines.append(title)
    # Transpose: array is indexed [x, y]; render rows of decreasing y.
    for y in range(array.shape[1] - 1, -1, -1):
        row_chars = []
        for x in range(array.shape[0]):
            value = array[x, y]
            level = 0 if span == 0 else int((value - low) / span * (len(_HEAT_RAMP) - 1))
            row_chars.append(_HEAT_RAMP[level])
        lines.append("".join(row_chars))
    lines.append(f"range [{low:.4g}, {high:.4g}]")
    return "\n".join(lines)
