"""Doubly uniform search: unknown ``D`` *and* unknown ``n``.

The paper treats ``n`` as known ("for simplicity ... algorithms that
are non-uniform in n") and notes that the standard technique of
Feinerman et al. [12] lifts the result to unknown ``n``.  This module
implements that lift for Algorithm 5.

The transformation: run in *epochs* ``j = 1, 2, ...``; epoch ``j``
commits to the guess ``n_j = 2^j`` and executes the first ``j`` phases
of Algorithm 5 parameterized by ``n_j``.  Guesses that are too small
merely make the phase coins stingier (fewer sorties per phase — the
colony under-searches but loses only a bounded factor per epoch), while
guesses past ``log2 n`` reproduce the known-``n`` schedule; because
epoch costs grow geometrically, the total is dominated by the first
epoch whose guess and phase range are both sufficient, yielding the
same ``(D^2/n + D) * 2^{O(l)}`` shape with an extra polylogarithmic
factor — matching [12]'s ``O(log^{1+eps})``-competitiveness barrier for
fully uniform algorithms.

Selection complexity: the epoch counter spans ``log2 n_j = j`` values,
adding one ``log2 log2``-sized register on top of Algorithm 5's three,
so chi stays ``O(log log (D n))``.
"""

from __future__ import annotations

import math
from typing import Iterator

import numpy as np

from repro.core.actions import Action
from repro.core.base import SearchAlgorithm
from repro.core.coin import CompositeCoin
from repro.core.selection import MemoryMeter, SelectionComplexity
from repro.core.square_search import search_process
from repro.core.uniform import calibrated_K, first_covering_phase, phase_coin_exponent
from repro.errors import InvalidParameterError


class DoublyUniformSearch(SearchAlgorithm):
    """Algorithm 5 wrapped in the guess-``n``-by-doubling epochs of [12].

    Parameters
    ----------
    ell:
        Base-coin fineness ``l``.
    K:
        Algorithm 5's constant; defaults to the calibrated value.
    max_epoch:
        Optional truncation (chi accounting and bounded runs).
    """

    def __init__(
        self,
        ell: int = 1,
        K: int | None = None,
        max_epoch: int | None = None,
    ) -> None:
        if ell < 1:
            raise InvalidParameterError(f"ell must be >= 1, got {ell}")
        if max_epoch is not None and max_epoch < 1:
            raise InvalidParameterError(f"max_epoch must be >= 1, got {max_epoch}")
        self._ell = ell
        self._K = calibrated_K(ell) if K is None else K
        if self._K < 1:
            raise InvalidParameterError(f"K must be >= 1, got {self._K}")
        self._max_epoch = max_epoch

    @property
    def ell(self) -> int:
        """Base-coin fineness ``l``."""
        return self._ell

    @property
    def K(self) -> int:
        """The phase-coin constant in use."""
        return self._K

    def process(self, rng: np.random.Generator) -> Iterator[Action]:
        epoch = 0
        while True:
            epoch += 1
            if self._max_epoch is not None and epoch > self._max_epoch:
                while True:
                    yield Action.NONE
            guessed_n = 2**epoch
            for phase in range(1, epoch + 1):
                exponent = phase_coin_exponent(phase, guessed_n, self._ell, self._K)
                coin = CompositeCoin(exponent, self._ell)
                while not coin.flip(rng):  # heads: one more sortie
                    yield from search_process(rng, phase, self._ell)
                    yield Action.ORIGIN

    def sufficient_epoch(self, distance: int, n_agents: int) -> int:
        """First epoch whose guess and phase range cover ``(D, n)``.

        The epoch must reach phase ``i0(D)`` and guess at least ``n``:
        ``j* = max(i0, ceil(log2 n))``.
        """
        if n_agents < 1:
            raise InvalidParameterError(f"n_agents must be >= 1, got {n_agents}")
        i0 = first_covering_phase(distance, self._ell)
        return max(i0, max(1, math.ceil(math.log2(max(2, n_agents)))))

    def memory_meter_for(self, distance: int, n_agents: int) -> MemoryMeter:
        """Declared registers through the sufficient epoch."""
        epoch = self.sufficient_epoch(distance, n_agents) + 1
        exponent = phase_coin_exponent(epoch, 2**epoch, self._ell, self._K)
        return (
            MemoryMeter()
            .declare("epoch_counter", epoch)
            .declare("phase_counter", epoch)
            .declare("phase_coin_counter", max(2, exponent))
            .declare("search_coin_counter", epoch)
            .declare("search_direction", 4)
            .declare("control", 4)
        )

    def selection_complexity_for(
        self, distance: int, n_agents: int
    ) -> SelectionComplexity:
        """``chi = O(log log (D n))``: four counters of ``log2 j*`` bits."""
        meter = self.memory_meter_for(distance, n_agents)
        return SelectionComplexity(bits=meter.bits, ell=float(self._ell))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DoublyUniformSearch(ell={self._ell}, K={self._K}, "
            f"max_epoch={self._max_epoch})"
        )
