"""Algorithm 3: ``walk(k, l, dir)`` — a geometric-length directed walk.

The agent repeatedly flips ``coin(k, l)`` (Algorithm 2) and takes one
step in direction ``dir`` for every heads, stopping at the first tails.
The walk length is therefore ``Geometric(2^{-kl}) - 1``: roughly
uniform coverage of ``0..2^{kl}`` in the sense of Lemma 3.8 — every
length in that range has probability at least ``2^{-(kl+2)}``, at least
``2^{kl}`` steps happen with probability >= 1/4, and the expectation is
below ``2^{kl}``.
"""

from __future__ import annotations

import math
from typing import Iterator

import numpy as np

from repro.core.actions import ACTION_FOR_DIRECTION, Action
from repro.core.coin import CompositeCoin
from repro.errors import InvalidParameterError
from repro.grid.geometry import Direction


def walk_process(
    rng: np.random.Generator,
    k: int,
    ell: int,
    direction: Direction,
    *,
    emit_internal: bool = False,
) -> Iterator[Action]:
    """The faithful Algorithm 3 as a finite generator of actions.

    Yields one move action per heads of the composite coin and stops at
    the first tails.  When ``emit_internal`` is set, every base-coin
    flip additionally yields an ``Action.NONE`` step so that the step
    count (the paper's ``M_steps``) matches the product automaton; the
    default emits moves only, which is what ``M_moves`` measures.
    """
    coin = CompositeCoin(k, ell)
    move = ACTION_FOR_DIRECTION[direction]
    while True:
        if emit_internal:
            outcome = _flip_with_internal_steps(rng, coin)
            tails = yield from outcome
        else:
            tails = coin.flip(rng)
        if tails:
            return
        yield move


def _flip_with_internal_steps(rng: np.random.Generator, coin: CompositeCoin):
    """Composite flip that yields a NONE step per base flip.

    Implemented as a sub-generator returning the flip outcome via
    ``return`` (captured by ``yield from``).
    """
    from repro.core.coin import flip_base_coin

    for _ in range(coin.k):
        yield Action.NONE
        if not flip_base_coin(rng, coin.ell):
            return False
    return True


def sample_walk_length(rng: np.random.Generator, k: int, ell: int) -> int:
    """Distribution-exact walk length in one draw: ``Geometric(2^{-kl}) - 1``.

    The fast simulators use this instead of flipping coins one by one.
    """
    return CompositeCoin(k, ell).geometric_heads_run(rng)


def walk_length_pmf(k: int, ell: int, length: int) -> float:
    """Exact probability that the walk takes exactly ``length`` moves.

    ``P[len = i] = (1 - p)^i * p`` with ``p = 2^{-kl}``.
    """
    if length < 0:
        raise InvalidParameterError(f"length must be non-negative, got {length}")
    p = 2.0 ** -(k * ell)
    return (1.0 - p) ** length * p


def walk_length_tail(k: int, ell: int, length: int) -> float:
    """Exact probability that the walk takes at least ``length`` moves.

    ``P[len >= i] = (1 - p)^i``; Lemma 3.8 lower-bounds the value at
    ``i = 2^{kl}`` by ``1/4``.
    """
    if length < 0:
        raise InvalidParameterError(f"length must be non-negative, got {length}")
    p = 2.0 ** -(k * ell)
    return (1.0 - p) ** length


def walk_memory_bits(k: int) -> int:
    """Memory of Algorithm 3: the coin counter, ``ceil(log2 k)`` bits."""
    return math.ceil(math.log2(k)) if k > 1 else 0
