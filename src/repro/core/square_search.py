"""Algorithm 4: ``search(k, l)`` — one L-shaped sortie from the origin.

A fair coin picks up or down, Algorithm 3 walks that way; a fair coin
picks left or right, Algorithm 3 walks that way.  Lemma 3.9: when
called at the origin, every grid point of the ``2^{kl}``-square is
visited with probability at least ``2^{-(kl+6)}``, using
``ceil(log2 k) + 2`` bits.

The closed-form visit probability implemented here is exact (not just
the lemma's lower bound), which the experiments compare measurements
against; the lemma's bound is then checked as a corollary.
"""

from __future__ import annotations

import math
from typing import Iterator

import numpy as np

from repro.core.actions import Action
from repro.core.walk import walk_length_tail, walk_process, walk_memory_bits
from repro.errors import InvalidParameterError
from repro.grid.geometry import Direction, Point


def search_process(
    rng: np.random.Generator,
    k: int,
    ell: int,
    *,
    emit_internal: bool = False,
) -> Iterator[Action]:
    """One faithful ``search(k, l)`` sortie (finite generator of actions).

    The caller is responsible for being at the origin (the engine
    enforces this for the composed algorithms) and for issuing the
    return afterwards, exactly as in the paper's Algorithm 5.
    """
    vertical = Direction.UP if rng.random() < 0.5 else Direction.DOWN
    yield from walk_process(rng, k, ell, vertical, emit_internal=emit_internal)
    horizontal = Direction.LEFT if rng.random() < 0.5 else Direction.RIGHT
    yield from walk_process(rng, k, ell, horizontal, emit_internal=emit_internal)


def visit_probability(k: int, ell: int, target: Point) -> float:
    """Exact probability that one sortie visits ``target``.

    With ``p = 2^{-kl}`` and target ``(x, y)``:

    * ``(0, 0)``: probability 1 (the sortie starts there);
    * ``x = 0, y != 0``: the vertical sign must match (1/2) and the
      vertical walk must reach ``|y|``: ``(1/2)(1-p)^{|y|}``;
    * ``y = 0, x != 0``: the vertical walk must halt immediately (``p``,
      any sign), the horizontal sign must match and reach ``|x|``:
      ``p * (1/2)(1-p)^{|x|}``;
    * otherwise: vertical sign matches and the walk stops *exactly* at
      ``|y|`` (``(1/2)(1-p)^{|y|} p``), horizontal sign matches and
      reaches ``|x|``: ``(1/4) p (1-p)^{|x|+|y|}``.
    """
    p = 2.0 ** -(k * ell)
    x, y = target
    if x == 0 and y == 0:
        return 1.0
    if x == 0:
        return 0.5 * (1.0 - p) ** abs(y)
    if y == 0:
        return 0.5 * p * (1.0 - p) ** abs(x)
    return 0.25 * p * (1.0 - p) ** (abs(x) + abs(y))


def visit_probability_lower_bound(k: int, ell: int) -> float:
    """Lemma 3.9's uniform lower bound ``2^{-(kl+6)}`` over the square.

    Valid for every target in ``[-2^{kl}, 2^{kl}]^2``; the proof
    combines a ``1/2^{kl+2}`` exact-stop bound with two ``1/2`` sign
    choices and a ``1/4`` reach bound.
    """
    return 2.0 ** -(k * ell + 6)


def sortie_reaches(k: int, ell: int, radius: int) -> float:
    """Probability one walk leg reaches at least ``radius``: ``(1-p)^radius``.

    Convenience wrapper over :func:`walk_length_tail` used by the
    experiment code.
    """
    return walk_length_tail(k, ell, radius)


def search_memory_bits(k: int) -> int:
    """Lemma 3.9's memory claim: coin counter plus 2 direction bits."""
    return walk_memory_bits(k) + 2


def expected_sortie_moves(k: int, ell: int) -> float:
    """Expected moves of one sortie: two legs of mean ``1/p - 1`` each."""
    p = 2.0 ** -(k * ell)
    return 2.0 * (1.0 / p - 1.0)


def check_square_parameters(k: int, ell: int) -> None:
    """Validate the ``(k, l)`` pair shared by Algorithms 2-5."""
    if k < 1:
        raise InvalidParameterError(f"k must be >= 1, got {k}")
    if ell < 1:
        raise InvalidParameterError(f"ell must be >= 1, got {ell}")
    if k * ell > 60:
        raise InvalidParameterError(
            f"2^(k*l) = 2^{k * ell} overflows the simulator's integer range"
        )


def square_side(k: int, ell: int) -> int:
    """The side parameter ``2^{kl}`` of the square Lemma 3.9 covers."""
    check_square_parameters(k, ell)
    return 2 ** (k * ell)


def chi_of_search(k: int, ell: int) -> float:
    """``chi`` of a standalone sortie machine: ``(log k + 2) + log2 l``."""
    bits = search_memory_bits(k)
    return bits + math.log2(max(1, ell))
