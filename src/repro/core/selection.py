"""The selection-complexity metric ``chi(A) = b + log2(l)`` (Section 2).

``b = ceil(log2 |S|)`` is the number of memory bits needed to encode the
automaton's state set and ``1/2^l`` lower-bounds every non-zero
transition probability.  The paper identifies ``log log D`` as the
threshold for ``chi`` below which no substantial speed-up is possible.

Two accounting styles are supported:

* **mechanical** — compute ``b`` and ``l`` directly from an explicit
  :class:`~repro.core.automaton.Automaton` (see
  :meth:`SelectionComplexity.of_automaton`);
* **declared** — procedural implementations register their registers
  with a :class:`MemoryMeter` (one entry per counter/flag with its value
  range), which yields the same ``b`` the paper's counting arguments
  use (e.g. ``ceil(log2 k)`` bits for Algorithm 2's loop counter).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict

from repro.errors import InvalidParameterError


@dataclass(frozen=True)
class SelectionComplexity:
    """The pair ``(b, l)`` and the derived ``chi = b + log2(l)``.

    Attributes
    ----------
    bits:
        Memory bits ``b = ceil(log2 |S|)``.
    ell:
        The probability fineness ``l``: all probabilities used are at
        least ``1/2^l``.  Real-valued; clamped to ``>= 1`` because every
        non-trivial algorithm uses probabilities <= 1/2 and the metric's
        ``log2(l)`` term is undefined below 1.
    """

    bits: int
    ell: float

    def __post_init__(self) -> None:
        if self.bits < 0:
            raise InvalidParameterError(f"bits must be non-negative, got {self.bits}")
        if self.ell < 1.0:
            raise InvalidParameterError(f"ell must be >= 1, got {self.ell}")

    @property
    def chi(self) -> float:
        """``chi = b + log2(l)``."""
        return self.bits + math.log2(self.ell)

    @classmethod
    def of_automaton(cls, automaton) -> "SelectionComplexity":
        """Mechanical accounting from an explicit automaton.

        ``b = ceil(log2 |S|)``; ``l = max(1, log2(1 / p_min))`` where
        ``p_min`` is the smallest non-zero transition probability.
        """
        n_states = automaton.n_states
        bits = max(0, math.ceil(math.log2(n_states))) if n_states > 1 else 0
        p_min = automaton.min_positive_probability()
        ell = max(1.0, math.log2(1.0 / p_min)) if p_min < 1.0 else 1.0
        return cls(bits=bits, ell=ell)

    def __str__(self) -> str:
        return f"chi={self.chi:.3f} (b={self.bits}, l={self.ell:.3f})"


@dataclass
class MemoryMeter:
    """Declared-register accounting of the memory bits ``b``.

    Procedural algorithm implementations cannot have their state set
    enumerated mechanically, so they *declare* their state layout: one
    named register per counter/flag with the number of distinct values
    it ranges over.  ``bits`` then matches the paper's counting
    arguments (Algorithm 2 stores a loop counter in ``ceil(log2 k)``
    bits, Algorithm 4 adds 2 direction bits, ...).
    """

    registers: Dict[str, int] = field(default_factory=dict)

    def declare(self, name: str, n_values: int) -> "MemoryMeter":
        """Declare register ``name`` ranging over ``n_values`` values.

        Returns ``self`` so declarations chain fluently.  Re-declaring a
        name widens it to the maximum of the two ranges (useful when a
        register is reused across subroutine calls).
        """
        if n_values < 1:
            raise InvalidParameterError(
                f"register {name!r} must have at least one value, got {n_values}"
            )
        self.registers[name] = max(self.registers.get(name, 1), n_values)
        return self

    @property
    def bits(self) -> int:
        """Total bits: sum over registers of ``ceil(log2 n_values)``."""
        return sum(
            max(0, math.ceil(math.log2(n))) if n > 1 else 0
            for n in self.registers.values()
        )

    @property
    def n_states(self) -> int:
        """Size of the product state space (for cross-checks)."""
        product = 1
        for n in self.registers.values():
            product *= n
        return product


def chi_threshold(distance: int) -> float:
    """The paper's threshold ``log2 log2 D`` for the chi metric.

    Below it (by a growing margin), Theorem 4.1 forbids substantial
    speed-up; at ``log log D + O(1)``, Theorem 3.7 achieves optimal
    speed-up.
    """
    if distance < 2:
        raise InvalidParameterError(f"distance must be >= 2, got {distance}")
    if distance < 4:
        return 0.0
    return math.log2(math.log2(distance))


def is_below_threshold(chi: float, distance: int, *, margin: float = 0.0) -> bool:
    """True iff ``chi <= log log D - margin``.

    The lower bound requires the gap ``margin`` to grow with ``D``
    (``omega(1)``); finite experiments pick an explicit margin.
    """
    return chi <= chi_threshold(distance) - margin
