"""The paper's primary contribution: search algorithms and the chi metric.

This subpackage contains faithful implementations of every algorithm in
Section 3 of the paper, the selection-complexity metric ``chi`` of
Section 2, and the closed-form theoretical predictions that the
benchmark experiments compare against.

Every algorithm is available in two equivalent forms:

* a *process* — a Python generator yielding :class:`~repro.core.actions.Action`
  values, mirroring the paper's pseudocode and driven by the faithful
  engine in :mod:`repro.sim.engine`;
* an *automaton* — an explicit probabilistic finite state machine
  (:class:`~repro.core.automaton.Automaton`), mirroring the paper's
  formal model and enabling mechanical ``chi`` accounting and the
  Markov-chain analysis of Section 4.
"""

from repro.core.actions import Action, ACTION_VECTORS, MOVE_ACTIONS
from repro.core.automaton import Automaton, AutomatonAlgorithm
from repro.core.base import SearchAlgorithm
from repro.core.coin import CompositeCoin, flip_base_coin
from repro.core.selection import (
    MemoryMeter,
    SelectionComplexity,
    chi_threshold,
    is_below_threshold,
)
from repro.core.algorithm1 import Algorithm1, build_algorithm1_automaton
from repro.core.doubly_uniform import DoublyUniformSearch
from repro.core.nonuniform import NonUniformSearch
from repro.core.walk import walk_process
from repro.core.square_search import search_process
from repro.core.uniform import UniformSearch, calibrated_K
from repro.core import theory

__all__ = [
    "Action",
    "ACTION_VECTORS",
    "MOVE_ACTIONS",
    "Automaton",
    "AutomatonAlgorithm",
    "SearchAlgorithm",
    "CompositeCoin",
    "flip_base_coin",
    "MemoryMeter",
    "SelectionComplexity",
    "chi_threshold",
    "is_below_threshold",
    "Algorithm1",
    "build_algorithm1_automaton",
    "DoublyUniformSearch",
    "NonUniformSearch",
    "walk_process",
    "search_process",
    "UniformSearch",
    "calibrated_K",
    "theory",
]
