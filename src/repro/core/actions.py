"""The action alphabet of the labeling function ``M`` (paper, Section 2).

The model labels every automaton state with one of six actions:
``up/down/left/right`` (grid moves), ``origin`` (oracle-assisted return
to the origin) and ``none`` (internal computation, no grid effect).
A *move* is a step whose state is labeled with one of the four
directions; ``M_moves`` counts only those.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, Tuple

from repro.grid.geometry import Direction


class Action(Enum):
    """One grid action, the codomain of the labeling function ``M``."""

    UP = "up"
    DOWN = "down"
    LEFT = "left"
    RIGHT = "right"
    ORIGIN = "origin"
    NONE = "none"

    @property
    def is_move(self) -> bool:
        """True iff this action is counted by the ``M_moves`` metric."""
        return self in MOVE_ACTIONS

    @property
    def direction(self) -> Direction:
        """The :class:`Direction` of a move action.

        Raises :class:`ValueError` for ``ORIGIN``/``NONE``, which do not
        correspond to a direction.
        """
        try:
            return _ACTION_DIRECTIONS[self]
        except KeyError:
            raise ValueError(f"{self} is not a move action") from None


_ACTION_DIRECTIONS: Dict[Action, Direction] = {
    Action.UP: Direction.UP,
    Action.DOWN: Direction.DOWN,
    Action.LEFT: Direction.LEFT,
    Action.RIGHT: Direction.RIGHT,
}

MOVE_ACTIONS = frozenset(_ACTION_DIRECTIONS)

ACTION_VECTORS: Dict[Action, Tuple[int, int]] = {
    Action.UP: (0, 1),
    Action.DOWN: (0, -1),
    Action.LEFT: (-1, 0),
    Action.RIGHT: (1, 0),
    Action.ORIGIN: (0, 0),
    Action.NONE: (0, 0),
}
"""Displacement applied by each action (ORIGIN teleports; see engine)."""

ACTION_FOR_DIRECTION: Dict[Direction, Action] = {
    direction: action for action, direction in _ACTION_DIRECTIONS.items()
}
