"""Probabilistic finite automata: the paper's formal agent model.

Section 2 models each agent as a tuple ``(S, s0, delta)`` — a finite
state set, a start state, and a map from states to distributions over
states — together with a labeling function ``M: S -> Action``.  This
module implements that object directly: a row-stochastic transition
matrix plus a label per state.

The automaton form serves three purposes:

* mechanical ``chi`` accounting (state count -> bits, smallest positive
  transition probability -> ``l``);
* the Markov-chain analysis of Section 4 (via :meth:`Automaton.to_markov_chain`);
* an execution form that the equivalence tests compare against the
  pseudocode-style generator processes.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Optional, Sequence

import numpy as np

from repro.core.actions import Action
from repro.core.base import SearchAlgorithm
from repro.core.selection import SelectionComplexity
from repro.errors import InvalidParameterError

_PROBABILITY_ATOL = 1e-12


class Automaton:
    """An agent automaton ``(S, s0, delta)`` with labeling ``M``.

    Parameters
    ----------
    transitions:
        Row-stochastic ``(|S|, |S|)`` matrix; entry ``[i, j]`` is the
        probability of stepping from state ``i`` to state ``j``.
    labels:
        One :class:`Action` per state (the labeling function ``M``).
    start:
        Index of ``s0``.  The model requires ``M(s0) = ORIGIN``; this is
        validated.
    name:
        Optional human-readable identifier.
    """

    def __init__(
        self,
        transitions: np.ndarray,
        labels: Sequence[Action],
        start: int = 0,
        name: str = "automaton",
    ) -> None:
        matrix = np.asarray(transitions, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise InvalidParameterError(
                f"transition matrix must be square, got shape {matrix.shape}"
            )
        n = matrix.shape[0]
        if len(labels) != n:
            raise InvalidParameterError(
                f"need one label per state: {n} states, {len(labels)} labels"
            )
        if not 0 <= start < n:
            raise InvalidParameterError(f"start state {start} out of range 0..{n - 1}")
        if np.any(matrix < -_PROBABILITY_ATOL):
            raise InvalidParameterError("transition probabilities must be non-negative")
        row_sums = matrix.sum(axis=1)
        bad = np.flatnonzero(np.abs(row_sums - 1.0) > 1e-9)
        if bad.size:
            raise InvalidParameterError(
                f"rows must sum to 1; rows {bad.tolist()} sum to "
                f"{row_sums[bad].tolist()}"
            )
        if labels[start] is not Action.ORIGIN:
            raise InvalidParameterError(
                f"the model requires M(s0) = ORIGIN, got {labels[start]}"
            )
        self._matrix = np.clip(matrix, 0.0, 1.0)
        self._labels: List[Action] = list(labels)
        self._start = start
        self._name = name
        # Row-wise cumulative sums let step() draw a successor with one
        # uniform variate + binary search, which the vectorized
        # multi-agent simulator relies on.
        self._cumulative = np.cumsum(self._matrix, axis=1)
        self._cumulative[:, -1] = 1.0

    @property
    def name(self) -> str:
        """Human-readable identifier."""
        return self._name

    @property
    def n_states(self) -> int:
        """``|S|``."""
        return self._matrix.shape[0]

    @property
    def start(self) -> int:
        """Index of the start state ``s0``."""
        return self._start

    @property
    def labels(self) -> List[Action]:
        """The labeling function as a list indexed by state."""
        return list(self._labels)

    @property
    def matrix(self) -> np.ndarray:
        """A defensive copy of the transition matrix."""
        return self._matrix.copy()

    def label(self, state: int) -> Action:
        """``M(state)``."""
        return self._labels[state]

    def min_positive_probability(self) -> float:
        """The smallest non-zero transition probability (defines ``l``)."""
        positive = self._matrix[self._matrix > 0.0]
        if positive.size == 0:
            raise InvalidParameterError("automaton has no transitions")
        return float(positive.min())

    def selection_complexity(self) -> SelectionComplexity:
        """Mechanical ``chi`` accounting per Section 2."""
        return SelectionComplexity.of_automaton(self)

    def step(self, rng: np.random.Generator, state: int) -> int:
        """Sample the successor of ``state``."""
        u = rng.random()
        return int(np.searchsorted(self._cumulative[state], u, side="right"))

    def step_many(self, rng: np.random.Generator, states: np.ndarray) -> np.ndarray:
        """Vectorized successor sampling for an array of agent states.

        This is the kernel of the lower-bound colony simulator: ``n``
        agents advance one synchronous round in O(n log |S|).
        """
        u = rng.random(states.shape[0])
        rows = self._cumulative[states]
        # searchsorted per row: count thresholds strictly below u.
        return (rows < u[:, None]).sum(axis=1).astype(np.int64)

    def walk(self, rng: np.random.Generator, length: int) -> np.ndarray:
        """Sample a state path of ``length`` steps starting at ``s0``.

        Returns the visited states *after* each step (``length`` entries,
        excluding ``s0`` itself).
        """
        states = np.empty(length, dtype=np.int64)
        current = self._start
        for index in range(length):
            current = self.step(rng, current)
            states[index] = current
        return states

    def to_markov_chain(self):
        """The underlying Markov chain ``(S, P)`` used by Section 4.

        Imported lazily so :mod:`repro.markov` stays independent of the
        core package.
        """
        from repro.markov.chain import MarkovChain

        state_names = [
            f"s{i}:{label.value}" for i, label in enumerate(self._labels)
        ]
        return MarkovChain(self._matrix, start=self._start, state_names=state_names)

    def move_vectors(self) -> np.ndarray:
        """Per-state displacement vectors as an ``(|S|, 2)`` int array.

        ``ORIGIN`` and ``NONE`` rows are zero; the engine applies the
        ORIGIN teleport separately.
        """
        from repro.core.actions import ACTION_VECTORS

        return np.array(
            [ACTION_VECTORS[label] for label in self._labels], dtype=np.int64
        )

    def origin_state_mask(self) -> np.ndarray:
        """Boolean mask of states labeled ORIGIN (teleport states)."""
        return np.array(
            [label is Action.ORIGIN for label in self._labels], dtype=bool
        )

    def memory_bits(self) -> int:
        """``b = ceil(log2 |S|)``."""
        return math.ceil(math.log2(self.n_states)) if self.n_states > 1 else 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Automaton(name={self._name!r}, n_states={self.n_states})"


class AutomatonAlgorithm(SearchAlgorithm):
    """Adapter running an explicit automaton as a search algorithm.

    The process form simply walks the automaton and yields each visited
    state's label; the faithful engine then applies moves/teleports.
    The start state itself emits no action (the execution semantics
    start *at* ``s0`` with the agent already at the origin).
    """

    def __init__(self, automaton: Automaton) -> None:
        self._automaton = automaton

    @property
    def name(self) -> str:
        return self._automaton.name

    def process(self, rng: np.random.Generator) -> Iterator[Action]:
        automaton = self._automaton
        state = automaton.start
        while True:
            state = automaton.step(rng, state)
            yield automaton.label(state)

    def selection_complexity(self) -> SelectionComplexity:
        return self._automaton.selection_complexity()

    def automaton(self) -> Optional[Automaton]:
        return self._automaton
