"""Algorithm 2: composing coarse coins into fine ones.

The paper's ``coin(k, l)`` flips a base coin ``C_{1/2^l}`` (tails with
probability ``1/2^l``) exactly ``k`` times and reports tails only if
every flip was tails — yielding tails probability exactly ``2^{-kl}``
while storing nothing but a ``ceil(log2 k)``-bit loop counter
(Lemma 3.6).  This is the trick that lets the search algorithms reach
probability ``1/D`` using only probability ``1/2^l`` events, making the
"memory can buy probability fineness" half of the chi trade-off
concrete.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.selection import MemoryMeter, SelectionComplexity
from repro.errors import InvalidParameterError


def flip_base_coin(rng: np.random.Generator, ell: int) -> bool:
    """One flip of the base coin ``C_{1/2^l}``; True means tails.

    This is the only random primitive the paper's agents possess (plus
    the fair coin, which is ``ell = 1``).
    """
    if ell < 1:
        raise InvalidParameterError(f"ell must be >= 1, got {ell}")
    return bool(rng.random() < 2.0**-ell)


class CompositeCoin:
    """``coin(k, l)``: tails with probability exactly ``2^{-k l}``.

    Parameters
    ----------
    k:
        Number of base-coin flips per composite flip (the loop bound of
        Algorithm 2).  Must be >= 1.
    ell:
        Fineness of the base coin: tails probability ``1/2^l``.

    Notes
    -----
    :meth:`flip` performs the faithful ``k``-flip loop (so its step cost
    matches the paper's accounting); :meth:`flip_fast` draws from the
    same Bernoulli distribution in one shot and is what the vectorized
    simulators use.  A statistical test asserts the two agree.
    """

    def __init__(self, k: int, ell: int) -> None:
        if k < 1:
            raise InvalidParameterError(f"k must be >= 1, got {k}")
        if ell < 1:
            raise InvalidParameterError(f"ell must be >= 1, got {ell}")
        self._k = k
        self._ell = ell

    @property
    def k(self) -> int:
        """The number of base flips per composite flip."""
        return self._k

    @property
    def ell(self) -> int:
        """The base coin's fineness ``l``."""
        return self._ell

    @property
    def tails_probability(self) -> float:
        """Exactly ``2^{-k l}`` (Lemma 3.6)."""
        return 2.0 ** -(self._k * self._ell)

    @property
    def memory_bits(self) -> int:
        """The loop counter's ``ceil(log2 k)`` bits (Lemma 3.6)."""
        return math.ceil(math.log2(self._k)) if self._k > 1 else 0

    def memory_meter(self) -> MemoryMeter:
        """Declared-register layout: a single counter over ``k`` values."""
        return MemoryMeter().declare("coin_loop_counter", self._k)

    def selection_complexity(self) -> SelectionComplexity:
        """``chi`` contribution of the coin subroutine alone."""
        return SelectionComplexity(bits=self.memory_bits, ell=float(self._ell))

    def flip(self, rng: np.random.Generator) -> bool:
        """Faithful Algorithm 2: loop ``k`` base flips; True means tails.

        Returns heads (False) as soon as any base flip shows heads,
        exactly as the pseudocode's early ``return heads`` does.
        """
        for _ in range(self._k):
            if not flip_base_coin(rng, self._ell):
                return False
        return True

    def flip_fast(self, rng: np.random.Generator) -> bool:
        """Distribution-equivalent single-draw flip; True means tails."""
        return bool(rng.random() < self.tails_probability)

    def geometric_heads_run(self, rng: np.random.Generator) -> int:
        """Number of consecutive heads before the first tails.

        Distributed ``Geometric(p) - 1`` with ``p = 2^{-kl}``: exactly
        the length distribution of the walks in Algorithms 1 and 3.
        Sampled in one draw for the fast simulators.
        """
        return int(rng.geometric(self.tails_probability)) - 1

    @classmethod
    def for_target_probability(cls, ell: int, target_exponent: int) -> "CompositeCoin":
        """Build the coin with tails probability ``2^{-target_exponent}``.

        Uses ``k = ceil(target_exponent / ell)`` base flips, so the
        realized probability is ``2^{-k l} <= 2^{-target_exponent}``
        (the paper's choice ``k = ceil(log D / l)`` for probability
        ``~1/D``).
        """
        if target_exponent < 1:
            raise InvalidParameterError(
                f"target_exponent must be >= 1, got {target_exponent}"
            )
        k = max(1, math.ceil(target_exponent / ell))
        return cls(k, ell)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CompositeCoin(k={self._k}, ell={self._ell}, p=2^-{self._k * self._ell})"
