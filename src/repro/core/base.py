"""Common interface of all search algorithms in this repository.

A search algorithm is anything that can produce a fresh agent *process*
— an infinite generator of :class:`~repro.core.actions.Action` values —
given an independent random generator.  Identical agents (the model's
assumption) are obtained by calling :meth:`SearchAlgorithm.process` once
per agent with per-agent RNG streams.

Algorithms optionally expose their selection complexity (the paper's
``chi``) and, when available, an explicit automaton form.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Iterator, Optional

import numpy as np

from repro.core.actions import Action

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.core.automaton import Automaton
    from repro.core.selection import SelectionComplexity


class SearchAlgorithm(ABC):
    """Base class for the paper's algorithms and all baselines."""

    @property
    def name(self) -> str:
        """Human-readable algorithm name (defaults to the class name)."""
        return type(self).__name__

    @abstractmethod
    def process(self, rng: np.random.Generator) -> Iterator[Action]:
        """Return a fresh agent process.

        The generator must be infinite (agents never halt in the model;
        engines decide when to stop consuming) and must draw all its
        randomness from ``rng`` so that distinct agents given distinct
        generators are independent.
        """

    def selection_complexity(self) -> Optional["SelectionComplexity"]:
        """The algorithm's ``chi`` accounting, when defined.

        Returns ``None`` for baselines whose chi is unbounded or not
        meaningful (e.g. oracle-driven deterministic spirals).
        """
        return None

    def automaton(self) -> Optional["Automaton"]:
        """The explicit finite-automaton form, when one is constructed.

        Only algorithms with a finite state representation (possibly
        after truncation) return one; processes remain the primary
        execution form.
        """
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"
