"""Algorithm 1: the non-uniform search with direct ``1/D`` coins.

Each iteration: pick a vertical direction fairly, walk a
``Geometric(1/D) - 1`` number of steps, pick a horizontal direction
fairly, walk again, return to the origin.  Theorem 3.5 shows ``n``
copies find any target within max-norm distance ``D`` in expected
``O(D^2/n + D)`` moves.

The module provides both execution forms:

* :class:`Algorithm1` — the generator process matching the pseudocode;
* :func:`build_algorithm1_automaton` — the explicit five-state machine
  from the paper's figure (states ``origin/up/down/left/right``), whose
  three-bit encoding the paper quotes.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.core.actions import Action
from repro.core.automaton import Automaton
from repro.core.base import SearchAlgorithm
from repro.core.selection import MemoryMeter, SelectionComplexity
from repro.errors import InvalidParameterError


class Algorithm1(SearchAlgorithm):
    """The paper's Algorithm 1 (knows ``D``; probabilities ``1/D``).

    Parameters
    ----------
    distance:
        The known distance bound ``D``; must be >= 2 (the paper treats
        ``D in {0, 1}`` separately as trivial).
    """

    def __init__(self, distance: int) -> None:
        if distance < 2:
            raise InvalidParameterError(f"distance must be >= 2, got {distance}")
        self._distance = distance

    @property
    def distance(self) -> int:
        """The known distance bound ``D``."""
        return self._distance

    @property
    def stop_probability(self) -> float:
        """Per-move stop probability of each walk: ``1/D``."""
        return 1.0 / self._distance

    def process(self, rng: np.random.Generator) -> Iterator[Action]:
        stop = self.stop_probability
        while True:
            vertical = Action.UP if rng.random() < 0.5 else Action.DOWN
            while rng.random() >= stop:  # coin C_{1/D} shows heads
                yield vertical
            horizontal = Action.LEFT if rng.random() < 0.5 else Action.RIGHT
            while rng.random() >= stop:
                yield horizontal
            yield Action.ORIGIN

    def selection_complexity(self) -> SelectionComplexity:
        """Mechanical chi of the five-state machine: ``b=3, l~log2 D``.

        Note the folded automaton's finest probability is
        ``1/(2D) * (1 - 1/D)``; the paper quotes ``l = log D`` because
        the algorithm only *uses* the coins ``C_{1/2}`` and ``C_{1/D}``.
        We report the automaton's exact accounting.
        """
        return build_algorithm1_automaton(self._distance).selection_complexity()

    def memory_meter(self) -> MemoryMeter:
        """Declared layout: a single five-valued control register."""
        return MemoryMeter().declare("control", 5)

    def automaton(self) -> Automaton:
        return build_algorithm1_automaton(self._distance)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Algorithm1(distance={self._distance})"


def build_algorithm1_automaton(distance: int) -> Automaton:
    """The explicit five-state machine from the paper's figure.

    States (in index order): ``origin, up, down, left, right``; the
    labeling function matches the state names.  Transition
    probabilities fold the fair direction choices and the geometric
    stopping rule of the walks:

    * ``origin -> up/down``: ``(1/2)(1 - 1/D)`` each — a vertical walk
      starts and takes its first move;
    * ``origin -> left/right``: ``(1/(2D))(1 - 1/D)`` each — the
      vertical walk halts immediately (probability ``1/D``) and the
      horizontal walk takes its first move;
    * ``origin -> origin``: ``1/D^2`` — both walks halt immediately;
    * ``up -> up`` (and ``down -> down``): ``1 - 1/D`` — the vertical
      walk continues;
    * ``up -> left/right``: ``(1/(2D))(1 - 1/D)`` each; ``up -> origin``:
      ``1/D^2`` (symmetrically for ``down``);
    * ``left -> left`` / ``right -> right``: ``1 - 1/D``; ``left/right
      -> origin``: ``1/D``.
    """
    if distance < 2:
        raise InvalidParameterError(f"distance must be >= 2, got {distance}")
    d = float(distance)
    stop = 1.0 / d
    go = 1.0 - stop

    origin, up, down, left, right = range(5)
    matrix = np.zeros((5, 5), dtype=float)

    # Leaving the origin: vertical walk first.
    matrix[origin, up] = 0.5 * go
    matrix[origin, down] = 0.5 * go
    matrix[origin, left] = 0.5 * stop * go
    matrix[origin, right] = 0.5 * stop * go
    matrix[origin, origin] = stop * stop

    for vertical in (up, down):
        matrix[vertical, vertical] = go
        matrix[vertical, left] = 0.5 * stop * go
        matrix[vertical, right] = 0.5 * stop * go
        matrix[vertical, origin] = stop * stop

    for horizontal in (left, right):
        matrix[horizontal, horizontal] = go
        matrix[horizontal, origin] = stop

    labels = [Action.ORIGIN, Action.UP, Action.DOWN, Action.LEFT, Action.RIGHT]
    return Automaton(
        matrix, labels, start=origin, name=f"algorithm1(D={distance})"
    )
