"""Non-Uniform-Search (Theorem 3.7): Algorithm 1 built from coarse coins.

Replace every ``C_{1/D}`` flip of Algorithm 1 with ``coin(k, l)`` where
``k = ceil(log2(D) / l)``.  The realized stop probability is
``2^{-kl} in (1/(2^l D), 1/D]`` — the walks get (at most a ``2^l``
factor) longer, which the analysis absorbs into the ``O(.)``.  Memory is
the three-bit control of Algorithm 1 plus the coin's ``ceil(log2 k)``
counter, hence ``chi = log log D + O(1)``: the paper's headline upper
bound for known ``D``.

The product automaton built by :func:`build_nonuniform_automaton`
realizes the same behaviour with every transition probability in
``{1, 1/2, 2^{-l}, 1 - 2^{-l}}``, so its mechanical ``chi`` accounting
agrees with the declared one.
"""

from __future__ import annotations

import math
from typing import Iterator

import numpy as np

from repro.core.actions import Action
from repro.core.automaton import Automaton
from repro.core.base import SearchAlgorithm
from repro.core.coin import CompositeCoin
from repro.core.selection import MemoryMeter, SelectionComplexity
from repro.core.square_search import search_process
from repro.errors import InvalidParameterError


class NonUniformSearch(SearchAlgorithm):
    """Algorithm ``Non-Uniform-Search`` (knows ``D``, base coins ``C_{1/2^l}``).

    Parameters
    ----------
    distance:
        The known distance bound ``D >= 2``.
    ell:
        Fineness of the available base coin; probabilities used are
        ``1/2`` and ``1/2^l`` only.
    """

    def __init__(self, distance: int, ell: int = 1) -> None:
        if distance < 2:
            raise InvalidParameterError(f"distance must be >= 2, got {distance}")
        if ell < 1:
            raise InvalidParameterError(f"ell must be >= 1, got {ell}")
        self._distance = distance
        self._ell = ell
        self._k = max(1, math.ceil(math.log2(distance) / ell))
        self._coin = CompositeCoin(self._k, ell)

    @property
    def distance(self) -> int:
        """The known distance bound ``D``."""
        return self._distance

    @property
    def ell(self) -> int:
        """The base-coin fineness ``l``."""
        return self._ell

    @property
    def k(self) -> int:
        """The coin-loop bound ``k = ceil(log2(D) / l)``."""
        return self._k

    @property
    def stop_probability(self) -> float:
        """Realized per-move stop probability ``2^{-kl} <= 1/D``."""
        return self._coin.tails_probability

    def process(self, rng: np.random.Generator) -> Iterator[Action]:
        while True:
            yield from search_process(rng, self._k, self._ell)
            yield Action.ORIGIN

    def memory_meter(self) -> MemoryMeter:
        """Declared layout: Algorithm 1 control + Algorithm 2 counter."""
        return (
            MemoryMeter()
            .declare("control", 5)
            .declare("coin_loop_counter", self._k)
        )

    def selection_complexity(self) -> SelectionComplexity:
        """Declared accounting: ``b = 3 + ceil(log2 k)``, ``l`` as given.

        Matches Theorem 3.7's ``chi = log log D + O(1)``.
        """
        return SelectionComplexity(
            bits=3 + self._coin.memory_bits, ell=float(self._ell)
        )

    def automaton(self) -> Automaton:
        return build_nonuniform_automaton(self._distance, self._ell)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NonUniformSearch(distance={self._distance}, ell={self._ell})"


def build_nonuniform_automaton(distance: int, ell: int) -> Automaton:
    """Explicit product automaton of Non-Uniform-Search.

    State layout (``4k + 7`` states for ``k = ceil(log2(D)/l)``):

    * ``origin`` — labeled ORIGIN; deterministically enters the vertical
      direction choice;
    * ``choose_v`` / ``choose_h`` — fair-coin direction choices (NONE);
    * per direction ``d``: ``move_d`` (labeled ``d``) and flip states
      ``flip_d_c`` for ``c = 0..k-1`` (NONE), meaning "about to flip the
      ``(c+1)``-th base coin of the current composite flip, having seen
      ``c`` consecutive tails".

    Transitions: from ``flip_d_c``, heads (``1 - 2^{-l}``) moves (to
    ``move_d``); tails (``2^{-l}``) advances to ``flip_d_{c+1}``; the
    ``k``-th consecutive tails ends the walk — vertical walks fall
    through to ``choose_h``, horizontal walks to ``origin``.  After a
    move the composite flip restarts (``move_d -> flip_d_0`` with
    probability 1).  Every probability is in
    ``{1, 1/2, 2^{-l}, 1 - 2^{-l}}``: the mechanical ``l`` equals the
    declared one, and ``b = ceil(log2(4k + 7)) = log2 log2 D + O(1)``.
    """
    if distance < 2:
        raise InvalidParameterError(f"distance must be >= 2, got {distance}")
    if ell < 1:
        raise InvalidParameterError(f"ell must be >= 1, got {ell}")
    k = max(1, math.ceil(math.log2(distance) / ell))
    p_tails = 2.0**-ell
    p_heads = 1.0 - p_tails

    directions = [Action.UP, Action.DOWN, Action.LEFT, Action.RIGHT]
    names: list[str] = []
    labels: list[Action] = []
    index: dict[str, int] = {}

    def add_state(name: str, label: Action) -> int:
        index[name] = len(names)
        names.append(name)
        labels.append(label)
        return index[name]

    add_state("origin", Action.ORIGIN)
    add_state("choose_v", Action.NONE)
    add_state("choose_h", Action.NONE)
    for action in directions:
        add_state(f"move_{action.value}", action)
        for c in range(k):
            add_state(f"flip_{action.value}_{c}", Action.NONE)

    n = len(names)
    matrix = np.zeros((n, n), dtype=float)

    def walk_exit(action: Action) -> int:
        """Where a finished walk in direction ``action`` transfers to."""
        if action in (Action.UP, Action.DOWN):
            return index["choose_h"]
        return index["origin"]

    def wire_flip(source: int, action: Action, tails_so_far: int) -> None:
        """Outgoing edges of a state about to flip a base coin."""
        matrix[source, index[f"move_{action.value}"]] += p_heads
        if tails_so_far + 1 < k:
            matrix[source, index[f"flip_{action.value}_{tails_so_far + 1}"]] += p_tails
        else:
            matrix[source, walk_exit(action)] += p_tails

    matrix[index["origin"], index["choose_v"]] = 1.0
    matrix[index["choose_v"], index["flip_up_0"]] = 0.5
    matrix[index["choose_v"], index["flip_down_0"]] = 0.5
    matrix[index["choose_h"], index["flip_left_0"]] = 0.5
    matrix[index["choose_h"], index["flip_right_0"]] = 0.5

    for action in directions:
        # After each move the composite flip restarts from zero tails.
        matrix[index[f"move_{action.value}"], index[f"flip_{action.value}_0"]] = 1.0
        for c in range(k):
            wire_flip(index[f"flip_{action.value}_{c}"], action, c)

    return Automaton(
        matrix, labels, start=index["origin"], name=f"nonuniform(D={distance},l={ell})"
    )
