"""Algorithm 5: the uniform search (``D`` unknown).

Phase ``i = 1, 2, ...`` runs ``search(i, l)`` sorties (each followed by
a return to the origin) for as long as ``coin(K + max{i -
floor(log2(n)/l), 0}, l)`` keeps showing heads; the tails probability of
that phase coin is ``1/rho_i`` with ``rho_i = 2^{(K + max{i -
floor(log2 n / l), 0}) l}``, so a phase performs about ``rho_i`` sorties
covering the ``2^{il}``-square.  Theorem 3.14: the first of ``n``
agents finds a target within distance ``D`` after expected
``(D^2/n + D) * 2^{O(l)}`` moves, with ``chi <= 3 log log D + O(1)``.

``K`` is the paper's "sufficiently large constant"; it is an explicit
parameter here (default 2) and experiment E08 probes its effect.
"""

from __future__ import annotations

import math
from typing import Iterator

import numpy as np

from repro.core.actions import Action
from repro.core.base import SearchAlgorithm
from repro.core.coin import CompositeCoin
from repro.core.selection import MemoryMeter, SelectionComplexity
from repro.core.square_search import search_process
from repro.errors import InvalidParameterError

DEFAULT_K = 2


def calibrated_K(ell: int) -> int:
    """The smallest ``K`` that makes Algorithm 5's analysis go through.

    The paper takes ``K`` to be a "sufficiently large constant".  What
    "sufficient" means is quantitative: phase ``i >= i0`` must find the
    target with probability at least ``1 - 2^{-(2l+1)}`` (Lemma 3.13),
    because each further phase multiplies the move cost by ``~2^{2l}``
    — with a weaker per-phase find probability the expected running
    time *diverges*.  Using Lemma 3.9's worst-case visit bound
    ``2^{-(il+6)}`` and the colony's ``~2^{(K+i)l}`` sortie calls per
    phase, the per-phase miss probability is
    ``exp(-2^{Kl - 6})``; requiring it to be at most ``2^{-(2l+1)}``
    gives ``K*l >= 6 + log2((2l+1) ln 2)``.

    The returned ``K`` scales like ``~8/l``: finer base coins (small
    ``l``) need a larger constant, which is the hidden cost driving the
    ``2^{O(l)}`` factor in Theorem 3.14 at practical sizes.
    """
    if ell < 1:
        raise InvalidParameterError(f"ell must be >= 1, got {ell}")
    required_exponent = 6.0 + math.log2((2 * ell + 1) * math.log(2))
    return max(2, math.ceil(required_exponent / ell))


def phase_coin_exponent(phase: int, n_agents: int, ell: int, K: int = DEFAULT_K) -> int:
    """The phase coin's ``k`` parameter: ``K + max{i - floor(log2(n)/l), 0}``."""
    if phase < 1:
        raise InvalidParameterError(f"phase must be >= 1, got {phase}")
    if n_agents < 1:
        raise InvalidParameterError(f"n_agents must be >= 1, got {n_agents}")
    discount = math.floor(math.log2(n_agents) / ell) if n_agents > 1 else 0
    return K + max(phase - discount, 0)


def rho(phase: int, n_agents: int, ell: int, K: int = DEFAULT_K) -> float:
    """``rho_i = 2^{(K + max{i - floor(log2 n / l), 0}) l}`` (Lemma 3.10)."""
    return 2.0 ** (phase_coin_exponent(phase, n_agents, ell, K) * ell)


def first_covering_phase(distance: int, ell: int) -> int:
    """``i0 = ceil(log_{2^l} D)``: first phase whose square covers distance D."""
    if distance < 1:
        raise InvalidParameterError(f"distance must be >= 1, got {distance}")
    if distance == 1:
        return 1
    return max(1, math.ceil(math.log2(distance) / ell))


class UniformSearch(SearchAlgorithm):
    """The paper's Algorithm 5 — uniform in ``D``, non-uniform in ``n``.

    Parameters
    ----------
    n_agents:
        The colony size ``n`` the state machine is built for (the paper
        treats ``n`` as known; its uniform-in-``n`` wrapper is a
        separate standard transformation).
    ell:
        Base-coin fineness ``l``.
    K:
        The "sufficiently large constant" of Algorithm 5.
    max_phase:
        Optional truncation for chi accounting and for bounding runs;
        the process itself keeps iterating phases forever if ``None``.
    """

    def __init__(
        self,
        n_agents: int,
        ell: int = 1,
        K: int = DEFAULT_K,
        max_phase: int | None = None,
    ) -> None:
        if n_agents < 1:
            raise InvalidParameterError(f"n_agents must be >= 1, got {n_agents}")
        if ell < 1:
            raise InvalidParameterError(f"ell must be >= 1, got {ell}")
        if K < 1:
            raise InvalidParameterError(f"K must be >= 1, got {K}")
        if max_phase is not None and max_phase < 1:
            raise InvalidParameterError(f"max_phase must be >= 1, got {max_phase}")
        self._n_agents = n_agents
        self._ell = ell
        self._K = K
        self._max_phase = max_phase

    @property
    def n_agents(self) -> int:
        """The colony size the machine is parameterized for."""
        return self._n_agents

    @property
    def ell(self) -> int:
        """Base-coin fineness ``l``."""
        return self._ell

    @property
    def K(self) -> int:
        """Algorithm 5's constant ``K``."""
        return self._K

    def phase_coin(self, phase: int) -> CompositeCoin:
        """The phase-``i`` continuation coin."""
        return CompositeCoin(
            phase_coin_exponent(phase, self._n_agents, self._ell, self._K), self._ell
        )

    def process(self, rng: np.random.Generator) -> Iterator[Action]:
        phase = 0
        while True:
            phase += 1
            if self._max_phase is not None and phase > self._max_phase:
                # Truncated machines idle forever past the last phase;
                # engines treat a budget overrun as "not found".
                while True:
                    yield Action.NONE
            coin = self.phase_coin(phase)
            while not coin.flip(rng):  # heads: perform one more sortie
                yield from search_process(rng, phase, self._ell)
                yield Action.ORIGIN

    def memory_meter_for_distance(self, distance: int) -> MemoryMeter:
        """Declared register layout for finding targets within ``distance``.

        Running up to phase ``i0(D) + O(1)`` requires: the phase counter
        (``log2 i`` bits), the phase coin's loop counter
        (``log2(K + i)`` bits), and the sortie's ``search(i, l)``
        counter plus two direction bits — three counters, i.e.
        ``b = 3 log2 log2 D - 3 log2 l + O(1)``.
        """
        phase = first_covering_phase(distance, self._ell) + 1
        exponent = phase_coin_exponent(phase, self._n_agents, self._ell, self._K)
        return (
            MemoryMeter()
            .declare("phase_counter", phase)
            .declare("phase_coin_counter", exponent)
            .declare("search_coin_counter", phase)
            .declare("search_direction", 4)
            .declare("control", 4)
        )

    def selection_complexity_for_distance(self, distance: int) -> SelectionComplexity:
        """``chi <= 3 log log D + O(1)`` accounting (Theorem 3.14)."""
        meter = self.memory_meter_for_distance(distance)
        return SelectionComplexity(bits=meter.bits, ell=float(self._ell))

    def selection_complexity(self) -> SelectionComplexity | None:
        """Chi of the truncated machine, when a truncation is set."""
        if self._max_phase is None:
            return None
        side = 2 ** min(60, self._max_phase * self._ell)
        return self.selection_complexity_for_distance(side)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"UniformSearch(n_agents={self._n_agents}, ell={self._ell}, "
            f"K={self._K}, max_phase={self._max_phase})"
        )
