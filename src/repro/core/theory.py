"""Closed-form predictions from the paper's analysis (Section 3).

Every lemma/theorem of the upper-bound section is reflected here as an
explicit, finite-``D`` formula — both the exact quantities the proofs
manipulate (per-iteration hit probabilities, geometric means) and the
bounds they derive.  The experiment suite compares measurements against
these functions; keeping them in one module makes the paper-to-code
mapping auditable.
"""

from __future__ import annotations

import math

from repro.core.uniform import first_covering_phase, phase_coin_exponent, rho
from repro.errors import InvalidParameterError
from repro.grid.geometry import Point

__all__ = [
    "expected_iteration_moves",
    "iteration_moves_upper_bound",
    "conditional_iteration_moves_upper_bound",
    "hit_probability_exact",
    "hit_probability_lower_bound",
    "miss_probability_exact",
    "miss_probability_upper_bound",
    "expected_moves_upper_bound",
    "expected_moves_shape",
    "optimal_lower_bound",
    "speedup_upper_bound",
    "uniform_expected_moves_shape",
    "uniform_phase_moves_upper_bound",
    "first_covering_phase",
    "phase_coin_exponent",
    "rho",
]


def expected_iteration_moves(stop_probability: float) -> float:
    """Exact expected moves of one L-sortie: two legs of mean ``1/p - 1``.

    For Algorithm 1 (``p = 1/D``) this is ``2(D - 1) < 2D``, the
    quantity Lemma 3.1 bounds by ``2D``.
    """
    _check_probability(stop_probability)
    return 2.0 * (1.0 / stop_probability - 1.0)


def iteration_moves_upper_bound(distance: int) -> float:
    """Lemma 3.1: ``R <= 2D``."""
    return 2.0 * distance


def conditional_iteration_moves_upper_bound(distance: int) -> float:
    """Lemma 3.2: ``R_hat <= 2R <= 4D``."""
    return 4.0 * distance


def hit_probability_exact(stop_probability: float, target: Point) -> float:
    """Exact probability one sortie visits ``target`` (see Lemma 3.4).

    Identical in structure to
    :func:`repro.core.square_search.visit_probability`, parameterized by
    the stop probability instead of ``(k, l)``.
    """
    _check_probability(stop_probability)
    p = stop_probability
    x, y = target
    if x == 0 and y == 0:
        return 1.0
    if x == 0:
        return 0.5 * (1.0 - p) ** abs(y)
    if y == 0:
        return 0.5 * p * (1.0 - p) ** abs(x)
    return 0.25 * p * (1.0 - p) ** (abs(x) + abs(y))


def hit_probability_lower_bound(distance: int) -> float:
    """Lemma 3.4's per-iteration hit bound ``1/(64 D)``.

    Valid for every target with both coordinates in ``[-D, D]`` (the
    proof combines a ``1/(4D)`` exact-stop bound, a ``1/4`` reach bound,
    and two fair sign choices; the paper rolls the factors into
    ``1/(64D)``).
    """
    if distance < 2:
        raise InvalidParameterError(f"distance must be >= 2, got {distance}")
    return 1.0 / (64.0 * distance)


def miss_probability_exact(stop_probability: float, target: Point, n_agents: int) -> float:
    """Probability that all ``n`` agents miss in one iteration each."""
    single = hit_probability_exact(stop_probability, target)
    return (1.0 - single) ** n_agents


def miss_probability_upper_bound(distance: int, n_agents: int) -> float:
    """Lemma 3.4: ``q <= (1 - 1/(64D))^n <= max{1 - Omega(n/D), 1/2}``.

    Returns the explicit ``(1 - 1/(64D))^n`` envelope the proof derives
    before asymptotic rounding.
    """
    return (1.0 - hit_probability_lower_bound(distance)) ** n_agents


def expected_moves_upper_bound(distance: int, n_agents: int) -> float:
    """Theorem 3.5's pre-asymptotic bound ``4D / (1 - q)``.

    With ``q = (1 - 1/(64D))^n`` this is ``O(D^2/n + D)`` — the explicit
    constant the proof produces, not a fitted one.
    """
    q = miss_probability_upper_bound(distance, n_agents)
    return 4.0 * distance / (1.0 - q)


def expected_moves_shape(distance: int, n_agents: int) -> float:
    """The shape function ``D^2/n + D`` used for scaling fits."""
    return distance * distance / n_agents + distance


def optimal_lower_bound(distance: int, n_agents: int) -> float:
    """The straightforward ``Omega(D + D^2/n)`` lower bound (Section 2).

    Any algorithm — even knowing ``n`` and ``D`` and communicating —
    needs ``D`` moves to reach distance ``D``, and ``n`` agents need
    ``D^2/n`` moves each to visit ``Theta(D^2)`` cells.
    """
    return max(float(distance), distance * distance / (4.0 * n_agents))


def speedup_upper_bound(distance: int, n_agents: int) -> float:
    """The best possible speed-up ``min{n, D}`` (discussion, Section 1)."""
    return float(min(n_agents, distance))


def uniform_phase_moves_upper_bound(
    phase: int, n_agents: int, ell: int, K: int
) -> float:
    """Lemma 3.10: ``R_i <= 4 rho_i 2^{il}``."""
    return 4.0 * rho(phase, n_agents, ell, K) * 2.0 ** (phase * ell)


def uniform_expected_moves_shape(
    distance: int, n_agents: int, ell: int, overshoot_exponent: float = 1.0
) -> float:
    """Theorem 3.14's shape ``(D^2/n + D) * 2^{c l}``.

    ``overshoot_exponent`` is the constant ``c`` in ``2^{O(l)}``; the
    ablation experiment (E14) fits it empirically.
    """
    return expected_moves_shape(distance, n_agents) * 2.0 ** (
        overshoot_exponent * ell
    )


def uniform_find_probability_per_phase(ell: int) -> float:
    """Lemma 3.13: past ``i0`` every phase finds w.p. ``>= 1 - 2^{-(2l+1)}``."""
    return 1.0 - 2.0 ** -(2 * ell + 1)


def nonuniform_chi_prediction(distance: int, ell: int) -> float:
    """Theorem 3.7: ``chi = log2 ceil(log2 D / l) + log2 l + 3``."""
    if distance < 2:
        raise InvalidParameterError(f"distance must be >= 2, got {distance}")
    k = max(1, math.ceil(math.log2(distance) / ell))
    return (math.log2(k) if k > 1 else 0.0) + math.log2(max(1, ell)) + 3.0


def uniform_chi_prediction(distance: int, ell: int) -> float:
    """Theorem 3.14: ``chi <= 3 (log2 log2 D - log2 l) + O(1)``.

    Returns the leading term ``3 log2 log2 D - 3 log2 l + log2 l``
    (+0 constant); experiments compare measured chi minus this value
    and check the difference stays bounded as ``D`` grows.
    """
    if distance < 4:
        return math.log2(max(1, ell))
    return 3.0 * (math.log2(math.log2(distance)) - math.log2(ell)) + math.log2(
        max(1, ell)
    )


def _check_probability(p: float) -> None:
    if not 0.0 < p <= 1.0:
        raise InvalidParameterError(f"probability must be in (0, 1], got {p}")
