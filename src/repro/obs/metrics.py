"""Process-wide metrics registry: counters, gauges, histograms.

The runtime counterpart of the paper's metric discipline — measured,
attributable cost per simulated colony — for the *system* that runs
the colonies: jobs submitted/completed, shards run vs cache-served,
cache hit/miss/store traffic, selector plan sources and
predicted-vs-actual error, kernel colonies/sec per family, HTTP
per-route request counts and latency.  Zero dependencies, cheap enough
to stay on by default (an increment is one dict lookup and an integer
add under a lock), and exported three ways:

* ``GET /v1/metrics`` — Prometheus text exposition format 0.0.4
  (:meth:`MetricsRegistry.render_prometheus`), scrapeable by any
  standard collector;
* ``GET /v1/stats`` — the same values as JSON
  (:meth:`MetricsRegistry.to_payload`);
* ``repro-ants metrics [--watch]`` — human-readable CLI view.

Metric types follow the Prometheus model:

* :class:`Counter` — monotone accumulator (``_total`` naming);
* :class:`Gauge` — a value that goes both ways (last ``Retry-After``,
  in-flight jobs);
* :class:`Histogram` — fixed-boundary cumulative buckets plus sum and
  count; boundaries are chosen at creation and never resampled, so
  merging across scrapes is sound.

All three support labels: ``counter.inc(1, backend="batched")`` keeps
one child series per label-value combination.  Creation is
get-or-create by name through one process-wide
:class:`MetricsRegistry` (:func:`get_registry`), so instrumented
modules can declare their metrics at import time without coordination;
re-declaring a name with a different type or label set is an error —
silently forking a series would corrupt both.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BOUNDARIES",
    "MetricsRegistry",
    "get_registry",
    "render_prometheus",
]

#: Default latency histogram boundaries (seconds): sub-millisecond
#: cache probes through multi-second sweep submissions.  Fixed at
#: creation so bucket counts stay mergeable across scrapes.
LATENCY_BOUNDARIES: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)


def _label_key(
    labelnames: Tuple[str, ...], labels: Mapping[str, Any]
) -> Tuple[str, ...]:
    """Normalize one observation's labels to the declared order."""
    if set(labels) != set(labelnames):
        raise ValueError(
            f"labels {sorted(labels)} do not match declared "
            f"labelnames {sorted(labelnames)}"
        )
    return tuple(str(labels[name]) for name in labelnames)


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')
    )


def _escape_help(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _series(name: str, labelnames: Tuple[str, ...], key: Tuple[str, ...],
            extra: Optional[Tuple[str, str]] = None) -> str:
    """One exposition line's series part: ``name{label="value",...}``."""
    pairs = [
        f'{label}="{_escape_label_value(value)}"'
        for label, value in zip(labelnames, key)
    ]
    if extra is not None:
        pairs.append(f'{extra[0]}="{_escape_label_value(extra[1])}"')
    if not pairs:
        return name
    return f"{name}{{{','.join(pairs)}}}"


class _Metric:
    """Shared naming/labeling/locking of the three metric types."""

    kind = "untyped"

    def __init__(
        self, name: str, help: str, labelnames: Sequence[str] = ()
    ) -> None:
        self.name = name
        self.help = help
        self.labelnames: Tuple[str, ...] = tuple(labelnames)
        self._lock = threading.Lock()

    def _key(self, labels: Mapping[str, Any]) -> Tuple[str, ...]:
        return _label_key(self.labelnames, labels)

    # Subclasses implement render_lines() and value_payload().


class Counter(_Metric):
    """Monotone accumulator, optionally labeled."""

    kind = "counter"

    def __init__(
        self, name: str, help: str, labelnames: Sequence[str] = ()
    ) -> None:
        super().__init__(name, help, labelnames)
        self._values: Dict[Tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease ({amount})")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        """The current value of one label combination (0 if never set)."""
        with self._lock:
            return self._values.get(self._key(labels), 0.0)

    def total(self) -> float:
        """Sum over every label combination."""
        with self._lock:
            return sum(self._values.values())

    def render_lines(self) -> List[str]:
        with self._lock:
            items = sorted(self._values.items())
        return [
            f"{_series(self.name, self.labelnames, key)} {_format_value(value)}"
            for key, value in items
        ]

    def value_payload(self) -> List[Dict[str, Any]]:
        with self._lock:
            items = sorted(self._values.items())
        return [
            {"labels": dict(zip(self.labelnames, key)), "value": value}
            for key, value in items
        ]


class Gauge(_Metric):
    """A value that can go up and down, optionally labeled."""

    kind = "gauge"

    def __init__(
        self, name: str, help: str, labelnames: Sequence[str] = ()
    ) -> None:
        super().__init__(name, help, labelnames)
        self._values: Dict[Tuple[str, ...], float] = {}

    def set(self, value: float, **labels: Any) -> None:
        with self._lock:
            self._values[self._key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: Any) -> float:
        with self._lock:
            return self._values.get(self._key(labels), 0.0)

    render_lines = Counter.render_lines
    value_payload = Counter.value_payload


class Histogram(_Metric):
    """Fixed-boundary cumulative histogram with sum and count.

    ``boundaries`` are the upper bounds of the finite buckets (an
    implicit ``+Inf`` bucket closes the set); a boundary list chosen at
    creation is part of the metric's identity.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        boundaries: Sequence[float] = LATENCY_BOUNDARIES,
    ) -> None:
        super().__init__(name, help, labelnames)
        bounds = tuple(float(b) for b in boundaries)
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise ValueError(
                f"histogram {name} boundaries must be strictly increasing "
                f"and non-empty, got {boundaries!r}"
            )
        self.boundaries = bounds
        # Per label key: ([finite bucket counts..., +Inf count], sum).
        self._buckets: Dict[Tuple[str, ...], List[int]] = {}
        self._sums: Dict[Tuple[str, ...], float] = {}

    def observe(self, value: float, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            buckets = self._buckets.get(key)
            if buckets is None:
                buckets = [0] * (len(self.boundaries) + 1)
                self._buckets[key] = buckets
                self._sums[key] = 0.0
            index = len(self.boundaries)
            for i, bound in enumerate(self.boundaries):
                if value <= bound:
                    index = i
                    break
            buckets[index] += 1
            self._sums[key] += float(value)

    def count(self, **labels: Any) -> int:
        """Total observations for one label combination."""
        with self._lock:
            return sum(self._buckets.get(self._key(labels), ()))

    def sum(self, **labels: Any) -> float:
        with self._lock:
            return self._sums.get(self._key(labels), 0.0)

    def render_lines(self) -> List[str]:
        with self._lock:
            items = sorted(
                (key, list(buckets), self._sums[key])
                for key, buckets in self._buckets.items()
            )
        lines: List[str] = []
        for key, buckets, total in items:
            cumulative = 0
            for bound, count in zip(
                (*self.boundaries, math.inf), buckets
            ):
                cumulative += count
                series = _series(
                    f"{self.name}_bucket", self.labelnames, key,
                    extra=("le", _format_value(bound)),
                )
                lines.append(f"{series} {cumulative}")
            lines.append(
                f"{_series(self.name + '_sum', self.labelnames, key)} "
                f"{_format_value(total)}"
            )
            lines.append(
                f"{_series(self.name + '_count', self.labelnames, key)} "
                f"{cumulative}"
            )
        return lines

    def value_payload(self) -> List[Dict[str, Any]]:
        with self._lock:
            items = sorted(
                (key, list(buckets), self._sums[key])
                for key, buckets in self._buckets.items()
            )
        return [
            {
                "labels": dict(zip(self.labelnames, key)),
                "buckets": dict(
                    zip(
                        [_format_value(b) for b in (*self.boundaries, math.inf)],
                        buckets,
                    )
                ),
                "sum": total,
                "count": sum(buckets),
            }
            for key, buckets, total in items
        ]


class MetricsRegistry:
    """Get-or-create home of every metric in the process.

    Instrumented modules declare metrics at import time; declaring the
    same name twice returns the existing instance when the type and
    label set match and raises otherwise (a silently forked series
    would corrupt both claimants).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Metric] = {}

    def _get_or_create(self, cls, name: str, help: str,
                       labelnames: Sequence[str], **kwargs) -> Any:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls or existing.labelnames != tuple(
                    labelnames
                ):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind} with labels {existing.labelnames}"
                    )
                return existing
            metric = cls(name, help, labelnames, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(
        self, name: str, help: str, labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(
        self, name: str, help: str, labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        boundaries: Sequence[float] = LATENCY_BOUNDARIES,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labelnames, boundaries=boundaries
        )

    def metrics(self) -> List[_Metric]:
        """Every registered metric, sorted by name."""
        with self._lock:
            return [self._metrics[name] for name in sorted(self._metrics)]

    def render_prometheus(self) -> str:
        """The whole registry in Prometheus text format 0.0.4."""
        lines: List[str] = []
        for metric in self.metrics():
            lines.append(f"# HELP {metric.name} {_escape_help(metric.help)}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            lines.extend(metric.render_lines())
        return "\n".join(lines) + "\n"

    def to_payload(self) -> Dict[str, Any]:
        """JSON-ready snapshot of every metric (the /v1/stats shape)."""
        return {
            metric.name: {
                "type": metric.kind,
                "help": metric.help,
                "values": metric.value_payload(),
            }
            for metric in self.metrics()
        }

    def reset(self) -> None:
        """Drop every metric (tests only — instrumented modules hold
        references to their metric objects, which keep accumulating;
        re-declaring after a reset creates fresh instances for new
        callers only)."""
        with self._lock:
            self._metrics.clear()


_GLOBAL_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry every instrumented module shares."""
    return _GLOBAL_REGISTRY


def render_prometheus() -> str:
    """Shorthand: the process registry in Prometheus text format."""
    return _GLOBAL_REGISTRY.render_prometheus()
