"""Distributed tracing: spans, ambient context, ring buffer, JSONL sink.

One simulated sweep crosses seven layers (request → plan → job → shard
→ kernel → cache → wire) and, when remote, two processes.  This module
gives every crossing a :class:`Span` — trace id, parent id, name,
start/end wall-times, attributes, status — and stitches them into one
tree:

* **Ambient context.**  The current span lives in a ``contextvars``
  context variable, so nested ``with span(...)`` blocks parent
  automatically across threads spawned per-request.  Boundaries that
  contextvars cannot cross carry the context explicitly:
  ``ProcessPoolExecutor`` shard tasks pickle a
  :class:`SpanContext` into the task payload and :func:`attach` it in
  the worker; HTTP requests carry a W3C-style ``traceparent`` header
  (:func:`traceparent_header` / :func:`parse_traceparent`) so a
  ``RemoteClient`` span becomes the parent of the server's job span.
* **Storage.**  Finished spans land in a bounded in-memory ring buffer
  (default 4096 spans — a 10k-span flood stays bounded) and, when a
  cache directory is configured, an append-only JSONL sink at
  ``<cache>/traces/<trace_id>.jsonl`` — one small ``O_APPEND`` line
  per span, safe across the shard worker processes that share the
  directory.  Sink files are pruned oldest-first past
  ``_SINK_MAX_FILES`` so long-lived servers do not grow without bound.
* **Rendering.**  :func:`render_trace` draws the tree with per-span
  durations and self-time (duration minus child durations) for
  ``repro-ants trace``; ``GET /v1/jobs/{id}/trace`` serves the raw
  payloads.

Tracing is on by default and cheap (a disabled or ambient-less
``child_span`` is one contextvar read); ``REPRO_ANTS_TRACE=0`` or
:func:`configure_tracing(enabled=False)` compiles it out entirely,
which is the baseline the ``bench_obs`` overhead gate compares
against.
"""

from __future__ import annotations

import contextlib
import contextvars
import json
import os
import re
import threading
import time
import uuid
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterator, List, Optional, Sequence

__all__ = [
    "Span",
    "SpanContext",
    "attach",
    "child_span",
    "clear_ring",
    "configure_tracing",
    "current_context",
    "current_span",
    "find_trace_for_job",
    "parse_traceparent",
    "render_trace",
    "ring_spans",
    "span",
    "spans_for_trace",
    "trace_dir",
    "traceparent_header",
    "tracing_enabled",
]


def _env_flag(name: str, default: bool) -> bool:
    raw = os.environ.get(name)
    if raw is None:
        return default
    return raw.strip().lower() not in ("0", "false", "no", "off", "")


_DEFAULT_RING_SIZE = 4096
_SINK_MAX_FILES = 512
_SINK_PRUNE_EVERY = 100


@dataclass(frozen=True)
class SpanContext:
    """The picklable identity of a span: what a child needs to parent
    under it from another thread, process, or host."""

    trace_id: str
    span_id: str

    def to_payload(self) -> Dict[str, str]:
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "SpanContext":
        return cls(
            trace_id=str(payload["trace_id"]),
            span_id=str(payload["span_id"]),
        )


@dataclass
class Span:
    """One timed operation in a trace tree."""

    name: str
    trace_id: str
    span_id: str
    parent_id: Optional[str] = None
    start_time: float = 0.0
    end_time: Optional[float] = None
    attributes: Dict[str, Any] = field(default_factory=dict)
    status: str = "ok"

    @property
    def context(self) -> SpanContext:
        return SpanContext(trace_id=self.trace_id, span_id=self.span_id)

    @property
    def duration(self) -> Optional[float]:
        if self.end_time is None:
            return None
        return self.end_time - self.start_time

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def set_status(self, status: str) -> None:
        self.status = status

    def to_payload(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_time": self.start_time,
            "end_time": self.end_time,
            "attributes": self.attributes,
            "status": self.status,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "Span":
        return cls(
            name=str(payload["name"]),
            trace_id=str(payload["trace_id"]),
            span_id=str(payload["span_id"]),
            parent_id=payload.get("parent_id"),
            start_time=float(payload.get("start_time") or 0.0),
            end_time=(
                None
                if payload.get("end_time") is None
                else float(payload["end_time"])
            ),
            attributes=dict(payload.get("attributes") or {}),
            status=str(payload.get("status") or "ok"),
        )


class _TraceState:
    """Process-wide tracing configuration and the finished-span ring."""

    def __init__(self) -> None:
        self.enabled = _env_flag("REPRO_ANTS_TRACE", True)
        self.sink_enabled = _env_flag("REPRO_ANTS_TRACE_SINK", True)
        self.lock = threading.Lock()
        self.ring: Deque[Span] = deque(maxlen=_DEFAULT_RING_SIZE)
        self.sink_writes = 0


_STATE = _TraceState()

_CURRENT: contextvars.ContextVar[Optional[SpanContext]] = (
    contextvars.ContextVar("repro_obs_span", default=None)
)


def configure_tracing(
    enabled: Optional[bool] = None,
    ring_size: Optional[int] = None,
    sink: Optional[bool] = None,
) -> None:
    """Adjust tracing at runtime (tests, benchmarks, embedders).

    ``enabled=False`` compiles tracing out: ``span()``/``child_span()``
    yield ``None`` and touch nothing.  ``ring_size`` re-bounds the
    in-memory ring (existing spans carry over up to the new bound).
    ``sink=False`` keeps the ring but stops writing JSONL files.
    """
    with _STATE.lock:
        if enabled is not None:
            _STATE.enabled = bool(enabled)
        if sink is not None:
            _STATE.sink_enabled = bool(sink)
        if ring_size is not None:
            if ring_size < 1:
                raise ValueError(f"ring_size must be >= 1, got {ring_size}")
            _STATE.ring = deque(_STATE.ring, maxlen=int(ring_size))


def tracing_enabled() -> bool:
    return _STATE.enabled


def current_context() -> Optional[SpanContext]:
    """The ambient span context, if any (picklable; pass across
    thread/process boundaries and :func:`attach` on the far side)."""
    return _CURRENT.get()


# The span object itself is not put in the contextvar (it would pickle
# into worker payloads); live spans are looked up by id when a child
# needs to mutate its parent.  In practice only the context is needed.
_LIVE: Dict[str, Span] = {}


def current_span() -> Optional[Span]:
    """The live ambient span object, when it belongs to this process."""
    ctx = _CURRENT.get()
    if ctx is None:
        return None
    return _LIVE.get(ctx.span_id)


def attach(context: Optional[SpanContext]) -> contextvars.Token:
    """Install ``context`` as the ambient parent (worker-process entry
    point); returns a token for ``detach`` via ``_CURRENT.reset``."""
    return _CURRENT.set(context)


def _new_trace_id() -> str:
    return uuid.uuid4().hex


def _new_span_id() -> str:
    return uuid.uuid4().hex[:16]


def _record(sp: Span) -> None:
    with _STATE.lock:
        _STATE.ring.append(sp)
        sink_on = _STATE.sink_enabled
    if sink_on:
        _sink_write(sp)


@contextlib.contextmanager
def span(
    name: str,
    context: Optional[SpanContext] = None,
    **attributes: Any,
) -> Iterator[Optional[Span]]:
    """Open a span under the ambient parent (or ``context`` when
    given), make it ambient for the body, and record it on exit.

    Yields the :class:`Span` — or ``None`` when tracing is disabled,
    so instrumentation sites guard attribute writes with
    ``if sp is not None``.  An exception escaping the body marks the
    span's status ``error`` and re-raises.
    """
    if not _STATE.enabled:
        yield None
        return
    parent = context if context is not None else _CURRENT.get()
    sp = Span(
        name=name,
        trace_id=parent.trace_id if parent else _new_trace_id(),
        span_id=_new_span_id(),
        parent_id=parent.span_id if parent else None,
        start_time=time.time(),
        attributes=dict(attributes),
    )
    _LIVE[sp.span_id] = sp
    token = _CURRENT.set(sp.context)
    try:
        yield sp
    except BaseException:
        sp.status = "error"
        raise
    finally:
        _CURRENT.reset(token)
        _LIVE.pop(sp.span_id, None)
        sp.end_time = time.time()
        _record(sp)


@contextlib.contextmanager
def child_span(name: str, **attributes: Any) -> Iterator[Optional[Span]]:
    """Like :func:`span`, but a no-op unless an ambient parent exists.

    Interior instrumentation (cache lookups, selector plans, kernel
    entries) uses this so bare calls outside any traced operation do
    not pollute the ring with orphan single-span traces — and cost one
    contextvar read.
    """
    if not _STATE.enabled or _CURRENT.get() is None:
        yield None
        return
    with span(name, **attributes) as sp:
        yield sp


# --------------------------------------------------------------------------
# Ring access


def ring_spans() -> List[Span]:
    """Snapshot of the finished-span ring, oldest first."""
    with _STATE.lock:
        return list(_STATE.ring)


def clear_ring() -> None:
    with _STATE.lock:
        _STATE.ring.clear()


# --------------------------------------------------------------------------
# JSONL sink under the cache directory


def trace_dir() -> Optional[str]:
    """``<cache>/traces``, or ``None`` when no cache dir is usable."""
    try:
        from repro.sim.cache import get_cache  # lazy: cache imports obs.metrics

        directory = get_cache().directory
    except Exception:
        return None
    if directory is None:
        return None
    return os.path.join(str(directory), "traces")


def _sink_write(sp: Span) -> None:
    base = trace_dir()
    if base is None:
        return
    try:
        os.makedirs(base, exist_ok=True)
        path = os.path.join(base, f"{sp.trace_id}.jsonl")
        line = json.dumps(sp.to_payload(), separators=(",", ":"))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
    except OSError:
        return
    with _STATE.lock:
        _STATE.sink_writes += 1
        due = _STATE.sink_writes % _SINK_PRUNE_EVERY == 0
    if due:
        _prune_sink(base)


def _prune_sink(base: str) -> None:
    try:
        entries = [
            (entry.stat().st_mtime, entry.path)
            for entry in os.scandir(base)
            if entry.name.endswith(".jsonl")
        ]
    except OSError:
        return
    if len(entries) <= _SINK_MAX_FILES:
        return
    entries.sort()
    for _mtime, path in entries[: len(entries) - _SINK_MAX_FILES]:
        try:
            os.remove(path)
        except OSError:
            pass


def _sink_spans(trace_id: str) -> List[Span]:
    base = trace_dir()
    if base is None:
        return []
    path = os.path.join(base, f"{trace_id}.jsonl")
    spans: List[Span] = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    spans.append(Span.from_payload(json.loads(line)))
                except (ValueError, KeyError):
                    continue
    except OSError:
        return []
    return spans


def spans_for_trace(trace_id: str) -> List[Span]:
    """Every recorded span of one trace: ring ∪ sink, deduplicated by
    span id (a finished-span line in the sink wins over a ring copy)."""
    merged: Dict[str, Span] = {}
    for sp in ring_spans():
        if sp.trace_id == trace_id:
            merged[sp.span_id] = sp
    for sp in _sink_spans(trace_id):
        merged[sp.span_id] = sp
    return sorted(merged.values(), key=lambda sp: sp.start_time)


def find_trace_for_job(job_id: str) -> Optional[str]:
    """The trace id whose job span carries ``job_id`` — ring first,
    then a sink scan (cheap substring probe before JSON parsing)."""
    for sp in reversed(ring_spans()):
        if sp.attributes.get("job_id") == job_id:
            return sp.trace_id
    base = trace_dir()
    if base is None:
        return None
    try:
        entries = sorted(
            (entry.stat().st_mtime, entry.path, entry.name)
            for entry in os.scandir(base)
            if entry.name.endswith(".jsonl")
        )
    except OSError:
        return None
    needle = json.dumps(job_id)
    for _mtime, path, name in reversed(entries):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError:
            continue
        if needle in text:
            return name[: -len(".jsonl")]
    return None


# --------------------------------------------------------------------------
# W3C traceparent propagation

_TRACEPARENT_RE = re.compile(
    r"^00-([0-9a-f]{32})-([0-9a-f]{16})-[0-9a-f]{2}$"
)


def traceparent_header(context: Optional[SpanContext] = None) -> Optional[str]:
    """Render the ambient (or given) context as a ``traceparent``
    value, W3C Trace Context style: ``00-<trace>-<span>-01``."""
    ctx = context if context is not None else _CURRENT.get()
    if ctx is None:
        return None
    return f"00-{ctx.trace_id}-{ctx.span_id}-01"


def parse_traceparent(value: Optional[str]) -> Optional[SpanContext]:
    """Parse a ``traceparent`` header; ``None`` on absence/malformation
    (a bad header from an untrusted client must not fail the request)."""
    if not value:
        return None
    match = _TRACEPARENT_RE.match(value.strip().lower())
    if match is None:
        return None
    return SpanContext(trace_id=match.group(1), span_id=match.group(2))


# --------------------------------------------------------------------------
# Tree rendering for the CLI


def render_trace(spans: Sequence[Span]) -> str:
    """ASCII tree of one trace with per-span duration and self-time.

    Spans whose parent is absent (e.g. the client half of a remote
    trace when only the server's sink is readable) are promoted to
    roots rather than dropped.
    """
    if not spans:
        return "(no spans)"
    by_id = {sp.span_id: sp for sp in spans}
    children: Dict[Optional[str], List[Span]] = {}
    for sp in spans:
        parent = sp.parent_id if sp.parent_id in by_id else None
        children.setdefault(parent, []).append(sp)
    for siblings in children.values():
        siblings.sort(key=lambda sp: (sp.start_time, sp.name))

    def duration_of(sp: Span) -> float:
        return sp.duration if sp.duration is not None else 0.0

    lines: List[str] = []

    def walk(sp: Span, prefix: str, tail: bool, root: bool) -> None:
        kids = children.get(sp.span_id, [])
        total = duration_of(sp)
        self_time = max(0.0, total - sum(duration_of(k) for k in kids))
        label = f"{sp.name}  {total * 1000:.1f}ms"
        if kids:
            label += f" (self {self_time * 1000:.1f}ms)"
        if sp.status != "ok":
            label += f" [{sp.status}]"
        detail = _span_detail(sp)
        if detail:
            label += f"  {detail}"
        if root:
            lines.append(label)
            child_prefix = ""
        else:
            connector = "└─ " if tail else "├─ "
            lines.append(prefix + connector + label)
            child_prefix = prefix + ("   " if tail else "│  ")
        for i, kid in enumerate(kids):
            walk(kid, child_prefix, i == len(kids) - 1, False)

    roots = children.get(None, [])
    for i, root_span in enumerate(roots):
        if i:
            lines.append("")
        walk(root_span, "", True, True)
    return "\n".join(lines)


_DETAIL_KEYS = (
    "job_id", "backend", "family", "algorithm", "n_trials",
    "shard_index", "source", "outcome", "level", "route", "status_code",
)


def _span_detail(sp: Span) -> str:
    parts = [
        f"{key}={sp.attributes[key]}"
        for key in _DETAIL_KEYS
        if key in sp.attributes
    ]
    return " ".join(parts)
