"""repro.obs — stdlib-only observability: tracing and metrics.

Two halves, importable without pulling in the simulation stack:

* :mod:`repro.obs.trace` — spans with ambient (contextvars) parenting,
  explicit context capture across process pools and ``traceparent``
  headers across HTTP, a bounded in-memory ring, and a JSONL sink
  under the cache directory.
* :mod:`repro.obs.metrics` — a process-wide registry of counters,
  gauges, and fixed-boundary histograms with Prometheus text and JSON
  exposition.

Both stay on by default; the ``bench_obs`` CI gate holds their cost on
the batched hot path under 5%.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    LATENCY_BOUNDARIES,
    MetricsRegistry,
    get_registry,
    render_prometheus,
)
from repro.obs.trace import (
    Span,
    SpanContext,
    attach,
    child_span,
    clear_ring,
    configure_tracing,
    current_context,
    current_span,
    find_trace_for_job,
    parse_traceparent,
    render_trace,
    ring_spans,
    span,
    spans_for_trace,
    trace_dir,
    traceparent_header,
    tracing_enabled,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BOUNDARIES",
    "MetricsRegistry",
    "Span",
    "SpanContext",
    "attach",
    "child_span",
    "clear_ring",
    "configure_tracing",
    "current_context",
    "current_span",
    "find_trace_for_job",
    "get_registry",
    "parse_traceparent",
    "render_prometheus",
    "render_trace",
    "ring_spans",
    "span",
    "spans_for_trace",
    "trace_dir",
    "traceparent_header",
    "tracing_enabled",
]
