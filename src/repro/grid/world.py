"""The searched world: target location plus optional visit accounting.

:class:`GridWorld` is deliberately small.  The grid itself is never
materialized (agents carry integer coordinates); the world only knows
where the target is, answers "is this the target?" queries, and — when
asked to — records the set of distinct cells the colony has visited
inside the ``D``-window.  That visited set is exactly the quantity the
lower bound (Theorem 4.1) reasons about: low-chi colonies cover only
``o(D^2)`` of the ``Theta(D^2)`` window cells.
"""

from __future__ import annotations

from typing import Iterable, Set

from repro.errors import InvalidParameterError
from repro.grid.geometry import Point, chebyshev_norm


class GridWorld:
    """An infinite grid with a single target at max-norm distance <= D.

    Parameters
    ----------
    target:
        Grid coordinates of the target.
    distance_bound:
        The ``D`` of the problem statement.  The target must lie within
        max-norm distance ``D`` of the origin; this is validated eagerly.
    track_visits:
        When true, :meth:`record_visit` accumulates the set of distinct
        cells visited inside the ``[-D, D]^2`` window, enabling coverage
        measurements for the lower-bound experiments.  Defaults to off
        because the set costs memory proportional to coverage.
    """

    def __init__(
        self, target: Point, distance_bound: int, *, track_visits: bool = False
    ) -> None:
        if distance_bound < 0:
            raise InvalidParameterError(
                f"distance_bound must be non-negative, got {distance_bound}"
            )
        if chebyshev_norm(target) > distance_bound:
            raise InvalidParameterError(
                f"target {target} lies outside max-norm distance {distance_bound}"
            )
        self._target = target
        self._distance_bound = distance_bound
        self._track_visits = track_visits
        self._visited: Set[Point] = set()

    @property
    def target(self) -> Point:
        """The target's coordinates."""
        return self._target

    @property
    def distance_bound(self) -> int:
        """The problem's distance bound ``D``."""
        return self._distance_bound

    @property
    def target_distance(self) -> int:
        """Actual max-norm distance of the target from the origin."""
        return chebyshev_norm(self._target)

    def is_target(self, point: Point) -> bool:
        """True iff ``point`` is the target cell."""
        return point == self._target

    def record_visit(self, point: Point) -> None:
        """Record that some agent stood on ``point``.

        Only cells inside the ``[-D, D]^2`` window are retained; the
        lower bound's coverage statement concerns that window only.
        No-op unless the world was built with ``track_visits=True``.
        """
        if self._track_visits and chebyshev_norm(point) <= self._distance_bound:
            self._visited.add(point)

    def record_visits(self, points: Iterable[Point]) -> None:
        """Record a batch of visits (see :meth:`record_visit`)."""
        for point in points:
            self.record_visit(point)

    @property
    def visited_cells(self) -> frozenset[Point]:
        """The distinct window cells visited so far (frozen snapshot)."""
        return frozenset(self._visited)

    @property
    def window_size(self) -> int:
        """Number of cells in the ``[-D, D]^2`` window: ``(2D+1)^2``."""
        side = 2 * self._distance_bound + 1
        return side * side

    def coverage_fraction(self) -> float:
        """Fraction of window cells visited: ``|visited| / (2D+1)^2``.

        The lower bound predicts this stays ``o(1)`` for below-threshold
        colonies even after ``D^{2-o(1)}`` moves per agent.
        """
        return len(self._visited) / self.window_size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GridWorld(target={self._target}, D={self._distance_bound}, "
            f"visited={len(self._visited)})"
        )
