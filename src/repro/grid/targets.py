"""Target-placement strategies.

The paper's statements quantify over target positions in two ways:

* *adversarial* — "there is a placement of the target within distance D"
  (the lower bound, Theorem 4.1), and the upper bounds hold for *every*
  placement within distance ``D``;
* *uniform random* — "a target placed uniformly at random in the square
  of side 2D centered at the origin" (the second clause of Theorem 4.1).

Each strategy here is a small callable object: ``placement(rng) ->
Point``.  Deterministic strategies ignore the generator argument, which
keeps the experiment-runner interface uniform.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.errors import InvalidParameterError
from repro.grid.geometry import Point, chebyshev_norm


class TargetPlacement(ABC):
    """Strategy interface producing a target within max-norm distance D."""

    def __init__(self, distance_bound: int) -> None:
        if distance_bound < 0:
            raise InvalidParameterError(
                f"distance_bound must be non-negative, got {distance_bound}"
            )
        self._distance_bound = distance_bound

    @property
    def distance_bound(self) -> int:
        """The ``D`` this placement is bounded by."""
        return self._distance_bound

    @abstractmethod
    def place(self, rng: np.random.Generator) -> Point:
        """Return target coordinates with ``chebyshev_norm <= D``."""

    def __call__(self, rng: np.random.Generator) -> Point:
        point = self.place(rng)
        if chebyshev_norm(point) > self._distance_bound:
            raise InvalidParameterError(
                f"{type(self).__name__} produced {point}, outside distance "
                f"{self._distance_bound}"
            )
        return point


class FixedTarget(TargetPlacement):
    """Always the same target cell.

    ``distance_bound`` defaults to the target's own norm, i.e. the
    tightest admissible ``D``.
    """

    def __init__(self, target: Point, distance_bound: int | None = None) -> None:
        norm = chebyshev_norm(target)
        if distance_bound is None:
            distance_bound = norm
        if norm > distance_bound:
            raise InvalidParameterError(
                f"target {target} lies outside max-norm distance {distance_bound}"
            )
        super().__init__(distance_bound)
        self._target = target

    def place(self, rng: np.random.Generator) -> Point:
        return self._target


class CornerTarget(TargetPlacement):
    """The corner ``(D, D)`` of the window — a canonical hard placement.

    The corner maximizes both max-norm and L1 distance, so it needs both
    legs of an L-sortie to reach their extremes simultaneously; the
    upper-bound proofs' worst-case constants are exercised here.
    """

    def place(self, rng: np.random.Generator) -> Point:
        return (self._distance_bound, self._distance_bound)


class UniformSquareTarget(TargetPlacement):
    """Uniform over all cells of the square ``[-D, D]^2``.

    Matches the "placed uniformly at random in the square of side 2D"
    clause of Theorem 4.1.
    """

    def place(self, rng: np.random.Generator) -> Point:
        d = self._distance_bound
        x = int(rng.integers(-d, d + 1))
        y = int(rng.integers(-d, d + 1))
        return (x, y)


class RingTarget(TargetPlacement):
    """Uniform over the cells at *exactly* max-norm distance ``D``.

    The hardest distance compatible with the bound: expected-time upper
    bounds are tight for targets on this ring.
    """

    def place(self, rng: np.random.Generator) -> Point:
        d = self._distance_bound
        if d == 0:
            return (0, 0)
        # The ring has 8d cells. Index them: 2 horizontal edges of
        # (2d + 1) cells each, 2 vertical edges of (2d - 1) interior
        # cells each.
        index = int(rng.integers(0, 8 * d))
        top_edge = 2 * d + 1
        if index < top_edge:
            return (index - d, d)
        index -= top_edge
        if index < top_edge:
            return (index - d, -d)
        index -= top_edge
        side = 2 * d - 1
        if index < side:
            return (d, index - d + 1)
        index -= side
        return (-d, index - d + 1)
