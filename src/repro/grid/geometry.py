"""Geometric primitives for the planar search model (paper, Section 2).

The model measures target distance in the max-norm (Chebyshev norm),
which the paper notes is a constant-factor approximation of grid hop
distance.  Agents move in the four cardinal directions.

The workhorse of this module is the closed-form *L-path* family of
functions.  One iteration of the paper's Algorithm 1 (and one call of
Algorithm 4's ``search``) walks a vertical leg followed by a horizontal
leg — an "L" shape anchored at the origin.  Testing whether such a
sortie visits a given target, and after how many moves, has a closed
form; the vectorized fast simulators in :mod:`repro.sim.fast` are built
on exactly these predicates, and the property tests check them against
brute-force enumeration of the path.
"""

from __future__ import annotations

from enum import Enum
from typing import Iterator, Tuple

Point = Tuple[int, int]
"""A grid coordinate.  Plain tuples keep the hot paths allocation-light."""

ORIGIN: Point = (0, 0)


class Direction(Enum):
    """The four grid directions an agent can move in.

    The enum values are the unit vectors applied to an agent's position,
    matching the execution semantics in the paper's model section
    (``up`` increments ``y``, ``right`` increments ``x``, ...).
    """

    UP = (0, 1)
    DOWN = (0, -1)
    LEFT = (-1, 0)
    RIGHT = (1, 0)

    @property
    def vector(self) -> Point:
        """The ``(dx, dy)`` unit vector of this direction."""
        return self.value

    @property
    def opposite(self) -> "Direction":
        """The direction pointing the other way."""
        return _OPPOSITES[self]

    @property
    def is_vertical(self) -> bool:
        """True for UP/DOWN, False for LEFT/RIGHT."""
        return self.value[0] == 0

    def step(self, point: Point) -> Point:
        """Return ``point`` advanced one unit in this direction."""
        dx, dy = self.value
        return (point[0] + dx, point[1] + dy)


_OPPOSITES = {
    Direction.UP: Direction.DOWN,
    Direction.DOWN: Direction.UP,
    Direction.LEFT: Direction.RIGHT,
    Direction.RIGHT: Direction.LEFT,
}

VERTICAL_DIRECTIONS = (Direction.UP, Direction.DOWN)
HORIZONTAL_DIRECTIONS = (Direction.LEFT, Direction.RIGHT)


def chebyshev(a: Point, b: Point) -> int:
    """Max-norm (Chebyshev) distance between two points.

    This is the distance notion used throughout the paper ("distance
    measured in terms of the max-norm", Section 2).
    """
    return max(abs(a[0] - b[0]), abs(a[1] - b[1]))


def chebyshev_norm(p: Point) -> int:
    """Max-norm distance of ``p`` from the origin."""
    return max(abs(p[0]), abs(p[1]))


def manhattan(a: Point, b: Point) -> int:
    """L1 (hop) distance between two points: the true grid path length."""
    return abs(a[0] - b[0]) + abs(a[1] - b[1])


def manhattan_norm(p: Point) -> int:
    """L1 distance of ``p`` from the origin."""
    return abs(p[0]) + abs(p[1])


def l_path_points(
    vertical_sign: int, vertical_len: int, horizontal_sign: int, horizontal_len: int
) -> Iterator[Point]:
    """Yield every point visited by an L-shaped sortie from the origin.

    The sortie walks ``vertical_len`` moves with vertical sign
    ``vertical_sign`` (+1 = up, -1 = down), then ``horizontal_len``
    moves with horizontal sign ``horizontal_sign`` (+1 = right,
    -1 = left).  The origin itself is yielded first; the corner point is
    yielded once (not duplicated between the legs).

    This is the reference enumeration the closed-form predicates below
    are property-tested against.
    """
    _check_sign(vertical_sign)
    _check_sign(horizontal_sign)
    if vertical_len < 0 or horizontal_len < 0:
        raise ValueError("leg lengths must be non-negative")
    for j in range(vertical_len + 1):
        yield (0, vertical_sign * j)
    corner_y = vertical_sign * vertical_len
    for i in range(1, horizontal_len + 1):
        yield (horizontal_sign * i, corner_y)


def l_path_hits(
    target: Point,
    vertical_sign: int,
    vertical_len: int,
    horizontal_sign: int,
    horizontal_len: int,
) -> bool:
    """Closed-form test: does the L-shaped sortie visit ``target``?

    Equivalent to ``target in l_path_points(...)`` but O(1).  The target
    is on the vertical leg iff it sits on the y-axis, on the chosen side,
    within the leg's reach; it is on the horizontal leg iff it sits at
    the corner's height, on the chosen side, within reach.
    """
    x, y = target
    on_vertical = x == 0 and y * vertical_sign >= 0 and abs(y) <= vertical_len
    corner_y = vertical_sign * vertical_len
    on_horizontal = (
        y == corner_y and x * horizontal_sign >= 0 and abs(x) <= horizontal_len
    )
    return on_vertical or on_horizontal


def l_path_hit_moves(
    target: Point,
    vertical_sign: int,
    vertical_len: int,
    horizontal_sign: int,
    horizontal_len: int,
) -> int | None:
    """Number of moves at which the sortie first reaches ``target``.

    Returns ``None`` when the sortie misses the target.  The move count
    is the paper's ``M_moves`` contribution of the final, successful
    iteration (Lemma 3.3 bounds it by ``2D``): ``|y|`` moves if the
    target lies on the vertical leg, else ``vertical_len + |x|``.
    """
    x, y = target
    if x == 0 and y * vertical_sign >= 0 and abs(y) <= vertical_len:
        return abs(y)
    corner_y = vertical_sign * vertical_len
    if y == corner_y and x * horizontal_sign >= 0 and abs(x) <= horizontal_len:
        return vertical_len + abs(x)
    return None


def square_lattice(radius: int) -> Iterator[Point]:
    """Yield all grid points of the square ``[-radius, radius]^2``.

    There are ``(2*radius + 1)**2`` of them — the ``Theta(D^2)`` points
    the lower bound argues cannot all be covered by low-chi agents.
    """
    if radius < 0:
        raise ValueError("radius must be non-negative")
    for y in range(-radius, radius + 1):
        for x in range(-radius, radius + 1):
            yield (x, y)


def square_boundary_points(radius: int) -> Iterator[Point]:
    """Yield the points at exact max-norm distance ``radius`` from the origin.

    Used by the ring target placement (a target at *exactly* distance
    ``D``, the hardest distance for a given ``D`` bound).
    """
    if radius < 0:
        raise ValueError("radius must be non-negative")
    if radius == 0:
        yield (0, 0)
        return
    for x in range(-radius, radius + 1):
        yield (x, radius)
        yield (x, -radius)
    for y in range(-radius + 1, radius):
        yield (radius, y)
        yield (-radius, y)


def _check_sign(sign: int) -> None:
    if sign not in (-1, 1):
        raise ValueError(f"sign must be +1 or -1, got {sign!r}")
