"""Multi-target worlds: foraging with several food items.

The paper's model has a single target, but its motivating scenario —
central-place foraging — naturally has many.  :class:`MultiTargetWorld`
is interface-compatible with :class:`~repro.grid.world.GridWorld` (the
engine only calls ``is_target``/``record_visit``), with first-find
semantics over the *union* of targets; per-target discovery bookkeeping
supports foraging studies like ``examples/foraging_colony.py``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from repro.errors import InvalidParameterError
from repro.grid.geometry import Point, chebyshev_norm


class MultiTargetWorld:
    """An infinite grid with several targets within max-norm distance D.

    ``is_target`` answers for the union, so a search engine's outcome
    reflects the first discovery of *any* item; :attr:`discovered`
    records which items have been stepped on so far (by any agent),
    letting callers continue a run until all items are found.
    """

    def __init__(
        self,
        targets: Iterable[Point],
        distance_bound: int,
        *,
        track_visits: bool = False,
    ) -> None:
        target_list = list(targets)
        if not target_list:
            raise InvalidParameterError("need at least one target")
        if len(set(target_list)) != len(target_list):
            raise InvalidParameterError("targets must be distinct")
        if distance_bound < 0:
            raise InvalidParameterError(
                f"distance_bound must be non-negative, got {distance_bound}"
            )
        for target in target_list:
            if chebyshev_norm(target) > distance_bound:
                raise InvalidParameterError(
                    f"target {target} lies outside max-norm distance "
                    f"{distance_bound}"
                )
        self._targets: List[Point] = target_list
        self._target_set: Set[Point] = set(target_list)
        self._distance_bound = distance_bound
        self._track_visits = track_visits
        self._visited: Set[Point] = set()
        self._discovered: Dict[Point, bool] = {t: False for t in target_list}

    @property
    def targets(self) -> List[Point]:
        """All target cells, in construction order."""
        return list(self._targets)

    @property
    def distance_bound(self) -> int:
        """The problem's distance bound ``D``."""
        return self._distance_bound

    @property
    def target(self) -> Point:
        """The nearest undiscovered target (GridWorld-compat convenience).

        Falls back to the nearest target overall once everything has
        been discovered.
        """
        remaining = [t for t, found in self._discovered.items() if not found]
        pool = remaining or self._targets
        return min(pool, key=chebyshev_norm)

    def is_target(self, point: Point) -> bool:
        """True iff ``point`` is any target cell; marks it discovered."""
        if point in self._target_set:
            self._discovered[point] = True
            return True
        return False

    @property
    def discovered(self) -> Dict[Point, bool]:
        """Per-target discovery flags (snapshot)."""
        return dict(self._discovered)

    @property
    def all_discovered(self) -> bool:
        """Whether every item has been stepped on."""
        return all(self._discovered.values())

    def undiscovered(self) -> List[Point]:
        """Targets not yet stepped on."""
        return [t for t, found in self._discovered.items() if not found]

    def record_visit(self, point: Point) -> None:
        """Window-clipped visit bookkeeping (see GridWorld)."""
        if self._track_visits and chebyshev_norm(point) <= self._distance_bound:
            self._visited.add(point)

    @property
    def visited_cells(self) -> frozenset[Point]:
        """The distinct window cells visited so far."""
        return frozenset(self._visited)

    @property
    def window_size(self) -> int:
        """Number of cells in the ``[-D, D]^2`` window."""
        side = 2 * self._distance_bound + 1
        return side * side

    def coverage_fraction(self) -> float:
        """Visited fraction of the window."""
        return len(self._visited) / self.window_size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        found = sum(self._discovered.values())
        return (
            f"MultiTargetWorld({found}/{len(self._targets)} discovered, "
            f"D={self._distance_bound})"
        )


def forage_until_all_found(
    algorithm,
    n_agents: int,
    world: MultiTargetWorld,
    rng,
    *,
    move_budget_per_item: int,
) -> Optional[List[int]]:
    """Repeatedly search until every item is discovered.

    Each round targets the engine at the union (first find of any
    remaining item), removes it, and continues with fresh agents —
    modelling successive foraging trips.  Returns the per-trip
    ``M_moves`` list, or ``None`` if some trip exhausts its budget.
    """
    from repro.sim.engine import EngineConfig, SearchEngine
    from repro.sim.rng import spawn_generators

    trips: List[int] = []
    engine = SearchEngine(EngineConfig(move_budget=move_budget_per_item))
    remaining = world.undiscovered()
    trip_index = 0
    while remaining:
        trip_world = MultiTargetWorld(remaining, world.distance_bound)
        generators = spawn_generators(
            rng if isinstance(rng, int) else int(rng.integers(1 << 30)),
            n_agents * (trip_index + 1),
        )[-n_agents:]
        outcome = engine.run(algorithm, n_agents, trip_world, generators)
        if not outcome.found:
            return None
        trips.append(outcome.m_moves)
        found_items = [t for t, hit in trip_world.discovered.items() if hit]
        for item in found_items:
            world.is_target(item)  # mark discovered on the master world
        remaining = world.undiscovered()
        trip_index += 1
    return trips
