"""Grid substrate: the infinite two-dimensional lattice of the ANTS model.

The paper's model (Section 2) places ``n`` agents on the infinite grid
``Z^2``.  This subpackage provides the geometric vocabulary (points,
directions, norms), the world abstraction that knows where the target
is, target-placement strategies, and the return-to-origin oracle.

Nothing in here materializes the grid; coordinates are plain integers,
so agents can roam arbitrarily far at O(1) cost per move.
"""

from repro.grid.geometry import (
    Direction,
    Point,
    ORIGIN,
    chebyshev,
    chebyshev_norm,
    manhattan,
    manhattan_norm,
    l_path_hit_moves,
    l_path_hits,
    l_path_points,
    square_boundary_points,
    square_lattice,
)
from repro.grid.multi import MultiTargetWorld, forage_until_all_found
from repro.grid.oracle import ReturnOracle, bresenham_return_path
from repro.grid.targets import (
    CornerTarget,
    FixedTarget,
    RingTarget,
    TargetPlacement,
    UniformSquareTarget,
)
from repro.grid.world import GridWorld

__all__ = [
    "Direction",
    "Point",
    "ORIGIN",
    "chebyshev",
    "chebyshev_norm",
    "manhattan",
    "manhattan_norm",
    "l_path_hit_moves",
    "l_path_hits",
    "l_path_points",
    "square_boundary_points",
    "square_lattice",
    "ReturnOracle",
    "bresenham_return_path",
    "GridWorld",
    "MultiTargetWorld",
    "forage_until_all_found",
    "TargetPlacement",
    "FixedTarget",
    "CornerTarget",
    "UniformSquareTarget",
    "RingTarget",
]
