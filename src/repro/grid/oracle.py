"""The return-to-origin oracle of the paper's model (Section 2).

The model grants agents one non-local capability: an oracle-assisted
return to the origin along "a shortest path in the grid that keeps
closest to the straight line connecting the origin to its current
position".  The analysis then *ignores* the return moves (they at most
double the move count), and the execution semantics teleport the agent.

This module implements the oracle's actual path so that (a) engines can
optionally charge for return moves and reproduce the factor <= 2, and
(b) the model is complete rather than hand-waved.  The path follows the
Bresenham/DDA discipline: at each step it takes the axis step whose
resulting cell lies closest to the ideal segment.
"""

from __future__ import annotations

from typing import List

from repro.grid.geometry import Point, manhattan_norm


def bresenham_return_path(start: Point) -> List[Point]:
    """Shortest grid path from ``start`` to the origin hugging the segment.

    Returns the full cell sequence including both endpoints, so the
    number of *moves* is ``len(path) - 1 == manhattan_norm(start)``
    (shortest possible, since each move changes one coordinate by one).

    The cell chosen at each step minimizes the perpendicular distance to
    the straight segment from ``start`` to the origin, which is the
    paper's "keeps closest to the straight line" requirement.  Ties are
    broken toward the x-axis step, deterministically.
    """
    x, y = start
    path = [start]
    # Walk toward the origin one axis-step at a time.  The ideal line
    # through (0,0) and (x0,y0) satisfies  y0*px - x0*py = 0;  the value
    # |y0*px - x0*py| is proportional to a cell's distance to the line.
    x0, y0 = start
    px, py = x, y
    step_x = -1 if x0 > 0 else 1
    step_y = -1 if y0 > 0 else 1
    while (px, py) != (0, 0):
        if px == 0:
            py += step_y
        elif py == 0:
            px += step_x
        else:
            error_if_x = abs(y0 * (px + step_x) - x0 * py)
            error_if_y = abs(y0 * px - x0 * (py + step_y))
            if error_if_x <= error_if_y:
                px += step_x
            else:
                py += step_y
        path.append((px, py))
    return path


class ReturnOracle:
    """Oracle wrapper with move accounting.

    ``counted`` selects whether returns cost moves.  The paper's metric
    excludes them ("we ignore the lengths of the return paths in our
    analysis"); engines default to the uncounted mode but experiments
    can flip the switch to verify the factor-two claim empirically.
    """

    def __init__(self, *, counted: bool = False) -> None:
        self._counted = counted
        self._total_return_moves = 0
        self._total_returns = 0

    @property
    def counted(self) -> bool:
        """Whether return paths contribute to the move metric."""
        return self._counted

    @property
    def total_return_moves(self) -> int:
        """Accumulated length of all return paths served so far."""
        return self._total_return_moves

    @property
    def total_returns(self) -> int:
        """Number of return requests served so far."""
        return self._total_returns

    def return_cost(self, position: Point) -> int:
        """Serve a return request from ``position``.

        Returns the number of moves to charge the agent: the shortest
        path length when ``counted``, else zero.  Always accumulates the
        true path length in :attr:`total_return_moves` so experiments
        can report the overhead even in uncounted mode.
        """
        length = manhattan_norm(position)
        self._total_return_moves += length
        self._total_returns += 1
        return length if self._counted else 0

    def path(self, position: Point) -> List[Point]:
        """The explicit oracle path from ``position`` to the origin."""
        return bresenham_return_path(position)
