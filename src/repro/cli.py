"""Command-line interface: ``python -m repro`` / ``repro-ants``.

Subcommands::

    run        simulate searches through the backend service layer
    backends   list registered simulation backends, coverage, priorities
    cache      inspect, verify, clear, or LRU-prune the result cache
    jobs       list, inspect, or cancel recorded simulation jobs
    trace      render a recorded job trace as a span tree
    metrics    dump the process/server metrics registry
    serve      HTTP/SSE server for remote job submission
    certify    print the lower-bound certificate for an automaton family
    coverage   simulate a below-threshold colony and render its coverage
    experiment run one registered experiment (E01..E16), or all of them
    report     regenerate EXPERIMENTS.md through the experiment compiler

Examples::

    repro-ants run --algorithm uniform --distance 64 --agents 8
    repro-ants serve --host 0.0.0.0 --port 8642 --max-jobs 16
    repro-ants run --algorithm algorithm1 --trials 200 --backend batched
    repro-ants run --algorithm nonuniform --trials 64 --workers 4 --async --watch
    repro-ants run --algorithm feinerman --trials 200 --no-cache
    repro-ants backends
    repro-ants cache info
    repro-ants cache prune --max-bytes 100000000
    repro-ants jobs list
    repro-ants jobs cancel job-0123456789ab
    repro-ants trace job-0123456789ab
    repro-ants trace job-0123456789ab --url http://127.0.0.1:8642
    repro-ants metrics --watch
    repro-ants metrics --url http://127.0.0.1:8642 --json
    repro-ants certify --family random --bits 3 --ell 2 --distance 128
    repro-ants coverage --family uniform-walk --distance 48 --agents 16
    repro-ants experiment E04
    repro-ants experiment E03 --workers 4 --watch
    repro-ants experiment --all
    repro-ants report --output EXPERIMENTS.md --workers 4
"""

from __future__ import annotations

import argparse
import inspect
import sys

import numpy as np

from repro.errors import ReproError
from repro.experiments.base import DEFAULT_SEED
from repro.sim.backends import (
    AlgorithmSpec,
    KNOWN_ALGORITHMS,
    SimulationRequest,
    probe_request,
    registered_backends,
    resolve_backend,
)
from repro.sim.service import simulate

BACKEND_CHOICES = ("auto", "reference", "closed_form", "batched", "accelerator")


def _build_spec(name: str, distance: int, ell: int) -> AlgorithmSpec:
    if name == "algorithm1":
        return AlgorithmSpec.algorithm1(distance)
    if name == "nonuniform":
        return AlgorithmSpec.nonuniform(distance, ell)
    if name == "uniform":
        return AlgorithmSpec.uniform(ell)
    if name == "doubly-uniform":
        return AlgorithmSpec.doubly_uniform(ell)
    if name == "random-walk":
        return AlgorithmSpec.random_walk()
    if name == "spiral":
        return AlgorithmSpec.spiral()
    if name == "feinerman":
        return AlgorithmSpec.feinerman()
    if name == "levy":
        return AlgorithmSpec.levy()
    raise ReproError(f"unknown algorithm {name!r}")


def _build_automaton(family: str, bits: int, ell: int, seed: int):
    from repro.markov.random_automata import (
        biased_walk_automaton,
        random_bounded_automaton,
        uniform_walk_automaton,
    )

    if family == "uniform-walk":
        return uniform_walk_automaton()
    if family == "biased-walk":
        return biased_walk_automaton([3, 1, 2, 2], ell=max(2, ell))
    if family == "random":
        rng = np.random.default_rng(seed)
        return random_bounded_automaton(rng, bits=bits, ell=ell)
    raise ReproError(f"unknown automaton family {family!r}")


def _cmd_run(args: argparse.Namespace) -> int:
    spec = _build_spec(args.algorithm, args.distance, args.ell)
    target = (
        tuple(args.target)
        if args.target
        else (args.distance, args.distance)
    )
    request = SimulationRequest(
        algorithm=spec,
        n_agents=args.agents,
        target=target,
        move_budget=args.budget,
        n_trials=args.trials,
        seed=args.seed,
        distance_bound=max(args.distance, abs(target[0]), abs(target[1])),
    )
    adaptive_run = None
    if args.adaptive:
        if args.async_submit or args.watch:
            raise ReproError(
                "--adaptive runs batches inline; drop --async/--watch"
            )
        from repro.sim.jobs import simulate_adaptive

        adaptive_run = simulate_adaptive(
            request,
            metric=args.ci_metric,
            target_half_width=args.target_half_width,
            batch_size=args.batch_size,
            backend=args.backend,
            cache=args.cache,
        )
        result = adaptive_run.result
    elif args.async_submit or args.watch:
        from repro.sim.jobs import simulate_async

        job = simulate_async(
            request, backend=args.backend, workers=args.workers,
            cache=args.cache,
        )
        snapshot = job.progress()
        print(f"job       : {job.job_id} ({job.backend}) — "
              f"{request.n_trials} trials in {snapshot.total_shards} shard(s)")
        for shard in job.iter_results():
            source = "cache" if shard.from_cache else "simulated"
            print(f"  shard {shard.shard_index}: trials "
                  f"[{shard.trial_start}, "
                  f"{shard.trial_start + shard.trial_count}) — {source}")
            if args.watch:
                snapshot = job.progress()
                print(f"  progress: {snapshot.done_shards}/"
                      f"{snapshot.total_shards} shards, "
                      f"{snapshot.done_trials}/{snapshot.total_trials} "
                      f"trials ({snapshot.fraction:.0%})", flush=True)
        result = job.result()
    elif args.plan:
        from repro.sim.selector import plan_request

        plan = plan_request(
            request, backend=args.backend, workers=args.workers
        )
        predicted = (
            ""
            if plan.predicted_seconds is None
            else f", predicted {plan.predicted_seconds:.4g}s"
        )
        device = f" on {plan.device}" if plan.device else ""
        print(f"plan      : {plan.backend}{device} — {plan.n_shards} "
              f"shard(s) x {plan.workers} worker(s){predicted} "
              f"[{plan.source}]")
        result = simulate(request, cache=args.cache, plan=plan)
    else:
        result = simulate(
            request, backend=args.backend, workers=args.workers,
            cache=args.cache,
        )
    algorithm = spec.build(args.agents)
    print(f"algorithm : {algorithm.name}")
    print(f"backend   : {result.backend}")
    print(f"target    : {target} (D = {args.distance})")
    complexity = algorithm.selection_complexity()
    if complexity is not None:
        print(f"chi       : {complexity}")
    outcome = result.outcome
    if outcome.found:
        steps = "" if outcome.m_steps is None else f", steps {outcome.m_steps}"
        print(f"found     : yes — M_moves = {outcome.m_moves} "
              f"(agent {outcome.finder}{steps})")
    else:
        print(f"found     : no within budget {args.budget}")
    trials_done = len(result.outcomes)
    if trials_done > 1:
        moves = result.moves_or_budget()
        print(
            f"trials    : {trials_done} — find rate {result.find_rate:.2%}, "
            f"mean M_moves (censored) {moves.mean():.1f}"
        )
    if adaptive_run is not None:
        status = "converged" if adaptive_run.converged else "budget exhausted"
        print(
            f"adaptive  : {adaptive_run.trials_used}/"
            f"{adaptive_run.max_trials} trials — {adaptive_run.metric} = "
            f"{adaptive_run.estimate:.4g} ± {adaptive_run.half_width:.4g} "
            f"(target ± {adaptive_run.target_half_width:g}, {status}; "
            f"{adaptive_run.batches_run} batch(es) simulated, "
            f"{adaptive_run.batches_cached} from cache)"
        )
    # Multi-trial runs succeed if any trial found the target; scripts
    # gating on the exit code get the aggregate, not trial 0's luck.
    return 0 if result.find_rate > 0 else 1


_PROBE_BATCH_TRIALS = 100


def _cmd_backends(args: argparse.Namespace) -> int:
    from repro.sim import selector as selector_mod

    if args.calibrate:
        print("calibrating cost model (micro-profiling every supporting "
              "backend x family pair)...")
        profile = selector_mod.calibrate()
        print(f"  fitted {len(profile.entries)} (backend, family) entries; "
              f"saved to {selector_mod.profile_path()}")
        print()
    if args.json:
        import json

        from repro.server.wire import WIRE_VERSION
        from repro.sim.backends.registry import backends_introspection

        payload = {
            "wire": WIRE_VERSION,
            **backends_introspection(),
            "selector": selector_mod.selector_payload(),
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    backends = registered_backends()
    header = ["backend", *KNOWN_ALGORITHMS]
    lines = [
        "| " + " | ".join(header) + " |",
        "|" + "|".join("---" for _ in header) + "|",
    ]
    for name in sorted(backends):
        backend = backends[name]
        cells = []
        for algo in KNOWN_ALGORITHMS:
            single = probe_request(algo)
            batch = probe_request(algo, n_trials=_PROBE_BATCH_TRIALS)
            if single is None or not backend.supports(single):
                cells.append("-")
                continue
            cells.append(
                f"p{backend.auto_priority(single)}/"
                f"p{backend.auto_priority(batch)}"
            )
        lines.append("| " + " | ".join([name, *cells]) + " |")
    print("registered simulation backends: supports() coverage and "
          "auto_priority (single trial / trial batch; higher wins):")
    print()
    print("\n".join(lines))
    print()
    _print_kernel_binding(backends)
    print('what "auto" resolves to for each algorithm:')
    for algo in KNOWN_ALGORITHMS:
        single = probe_request(algo)
        batch = probe_request(algo, n_trials=_PROBE_BATCH_TRIALS)
        picked_single = resolve_backend(single).name
        picked_batch = resolve_backend(batch).name
        print(f"  {algo:15s} single trial -> {picked_single}, "
              f"trial batch -> {picked_batch}")
    print()
    print("why backends decline (supports() gating reasons):")
    for name in sorted(backends):
        reasons = backends[name].decline_reasons()
        if not reasons:
            print(f"  {name:12s} (none — supports every family)")
            continue
        # Group families sharing one reason to keep the report short.
        by_reason = {}
        for algo, reason in reasons.items():
            by_reason.setdefault(reason, []).append(algo)
        for reason, algos in sorted(by_reason.items()):
            print(f"  {name:12s} {', '.join(algos)}: {reason}")
    print()
    _print_selector_plans(selector_mod)
    print("(requests with a step budget always resolve to reference, the "
          "only backend honoring M_steps accounting.)")
    return 0


def _print_selector_plans(selector_mod) -> None:
    """The cost-model selector's view: calibration state + family plans."""
    profile = selector_mod.load_profile()
    payload = selector_mod.selector_payload(profile=profile)
    if profile is None:
        print("cost-model selector: not calibrated — static priorities in "
              "effect (run `repro-ants backends --calibrate`)")
    else:
        meta = payload["profile"]
        print(f"cost-model selector: calibrated — {meta['entries']} "
              f"(backend, family) entries, {meta['age_seconds']:.0f}s old "
              f"({payload['profile_path']})")
    print(f"planned execution for a {payload['batch_trials']}-trial batch "
          f"(backend, shards x workers, predicted cost):")
    for family, plan in payload["plans"].items():
        predicted = plan["predicted_seconds"]
        cost = "n/a" if predicted is None else f"{predicted:.4g}s"
        device = f" on {plan['device']}" if plan.get("device") else ""
        print(f"  {family:15s} -> {plan['backend']:12s}"
              f"{device} {plan['n_shards']} shard(s) x "
              f"{plan['workers']} worker(s), predicted {cost} "
              f"[{plan['source']}]")
    print()


def _print_kernel_binding(backends) -> None:
    """One line on what the kernel namespaces are bound to."""
    from repro.sim.kernels import available_namespace_names

    accelerator = backends.get("accelerator")
    device = (
        accelerator.device_description()
        if accelerator is not None and hasattr(accelerator, "device_description")
        else "unregistered"
    )
    print(f"kernel namespaces importable: "
          f"{', '.join(available_namespace_names())}; "
          f"batched -> numpy:cpu, accelerator -> {device}")
    print()


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.sim.cache import get_cache

    cache = get_cache()
    if args.action == "info":
        if args.json:
            import json

            print(json.dumps(cache.info().to_payload(), indent=2,
                             sort_keys=True))
            return 0
        print("content-addressed simulation result cache:")
        for line in cache.info().summary_lines():
            print(line)
        return 0
    if args.action == "verify":
        report = cache.verify(repair=args.repair)
        if args.json:
            import json

            print(json.dumps(report.to_payload(), indent=2, sort_keys=True))
        else:
            print(f"cache verify: {report.scanned} entries scanned, "
                  f"{report.ok} ok, {len(report.corrupt)} corrupt, "
                  f"{report.quarantined} quarantined "
                  f"({cache.directory})")
            for name in report.corrupt:
                state = "quarantined" if args.repair else "corrupt"
                print(f"  {state}: {name}")
            if report.corrupt and not args.repair:
                print("  (re-run with --repair to quarantine)")
        # Corrupt entries found but left in place is a nonzero exit so
        # scripted scans can gate on it; a repaired scan is clean.
        return 1 if report.corrupt and not args.repair else 0
    if args.action == "prune":
        if args.max_bytes is None:
            print("error: cache prune requires --max-bytes N",
                  file=sys.stderr)
            return 2
        pruned = cache.prune(args.max_bytes)
        print(f"cache pruned: {pruned.removed_files} entries "
              f"({pruned.freed_bytes} bytes) evicted, "
              f"{pruned.remaining_files} entries "
              f"({pruned.remaining_bytes} bytes) remain within the "
              f"{args.max_bytes}-byte budget ({cache.directory})")
        return 0
    removed = cache.clear()
    print(f"cache cleared: {removed} disk entries removed "
          f"({cache.directory})")
    return 0


def _format_age(timestamp) -> str:
    if not isinstance(timestamp, (int, float)):
        return "?"
    import time

    seconds = max(0.0, time.time() - timestamp)
    if seconds < 120:
        return f"{seconds:.0f}s"
    if seconds < 7200:
        return f"{seconds / 60:.0f}m"
    return f"{seconds / 3600:.1f}h"


def _cmd_jobs(args: argparse.Namespace) -> int:
    from repro.sim import jobs as jobs_module

    if args.action == "list":
        records = jobs_module.read_job_records()
        if not records:
            print(f"no recorded jobs ({jobs_module.ledger_dir()})")
            return 0
        header = (f"{'job id':<18} {'state':<19} {'algorithm':<15} "
                  f"{'backend':<12} {'trials':>6} {'shards':>7} {'age':>6}")
        print(header)
        print("-" * len(header))
        for record in records:
            shards = (f"{record.get('done_shards', 0)}"
                      f"/{record.get('total_shards', '?')}")
            # A non-terminal record whose owning process died is shown
            # as failed-recoverable: resubmitting the same request
            # resumes from its cached shards.
            print(f"{record.get('job_id', '?'):<18} "
                  f"{jobs_module.effective_state(record):<19} "
                  f"{record.get('algorithm', '?'):<15} "
                  f"{record.get('backend', '?'):<12} "
                  f"{record.get('n_trials', '?'):>6} "
                  f"{shards:>7} "
                  f"{_format_age(record.get('submitted_at')):>6}")
        return 0
    if args.action == "clear":
        removed = jobs_module.prune_job_records(max_records=0)
        print(f"jobs ledger cleared: {removed} terminal records/markers "
              f"removed ({jobs_module.ledger_dir()})")
        return 0
    if args.job_id is None:
        print(f"error: jobs {args.action} requires a job id", file=sys.stderr)
        return 2
    if args.action == "cancel":
        if jobs_module.request_cancel(args.job_id):
            print(f"cancellation requested for {args.job_id} (the owning "
                  f"process honors it at the next shard boundary)")
            return 0
        print(f"error: job {args.job_id!r} is unknown or already finished",
              file=sys.stderr)
        return 2
    # status — live in-process handle first, then the JSON ledger, so
    # finished jobs evicted from the manager's registry still answer.
    record = jobs_module.job_status_record(args.job_id)
    if record is not None:
        record = dict(record, state=jobs_module.effective_state(record))
        for key in ("job_id", "state", "algorithm", "backend", "n_agents",
                    "n_trials", "seed", "total_shards", "done_shards",
                    "done_trials", "cached_shards", "pid", "error",
                    "retries", "degraded_from", "degradation_reason"):
            print(f"{key:13s}: {record.get(key)}")
        return 0
    print(f"error: no record for job {args.job_id!r}", file=sys.stderr)
    return 2


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.trace import (
        Span,
        find_trace_for_job,
        render_trace,
        ring_spans,
        spans_for_trace,
    )

    spans = []
    trace_id = None
    if args.url:
        # The server's recorded spans first; local spans of the same
        # trace (client.submit, client.simulate) merge in below.
        from repro.server.client import RemoteClient, RemoteJob

        job = RemoteJob(RemoteClient(args.url), args.job_id)
        trace_id, payloads = job.trace()
        spans = [Span.from_payload(payload) for payload in payloads]
    else:
        trace_id = find_trace_for_job(args.job_id)
        if trace_id is None:
            print(f"error: no recorded trace mentions job {args.job_id!r} "
                  f"(tracing off, ring evicted, or wrong cache dir?)",
                  file=sys.stderr)
            return 2
        spans = list(spans_for_trace(trace_id))
    seen = {span.span_id for span in spans}
    spans.extend(
        span
        for span in ring_spans()
        if span.trace_id == trace_id and span.span_id not in seen
    )
    print(f"trace {trace_id} — {len(spans)} span(s):")
    print(render_trace(spans))
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    import time as time_mod

    def snapshot() -> str:
        if args.url:
            from repro.server.client import RemoteClient

            client = RemoteClient(args.url)
            if args.json:
                import json

                return json.dumps(
                    client.stats().get("metrics", {}),
                    indent=2, sort_keys=True,
                )
            return client.metrics()
        from repro.obs.metrics import get_registry, render_prometheus

        if args.json:
            import json

            return json.dumps(
                get_registry().to_payload(), indent=2, sort_keys=True
            )
        return render_prometheus()

    if not args.watch:
        text = snapshot()
        print(text, end="" if text.endswith("\n") else "\n")
        return 0
    try:
        while True:
            text = snapshot()
            print(f"--- {time_mod.strftime('%H:%M:%S')} "
                  f"---------------------------------")
            print(text, end="" if text.endswith("\n") else "\n", flush=True)
            time_mod.sleep(args.interval)
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.server.app import SimulationServer

    server = SimulationServer(
        host=args.host, port=args.port, max_jobs=args.max_jobs
    )
    print(f"repro-ants serving on {server.url} "
          f"(max {args.max_jobs} concurrent jobs)")
    print("routes: POST /v1/jobs · GET /v1/jobs[/{id}[/result|/events|"
          "/trace]] · DELETE /v1/jobs/{id} · POST /v1/sweeps · "
          "GET /v1/backends · GET /v1/stats · GET /v1/metrics", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.close()
    return 0


def _cmd_certify(args: argparse.Namespace) -> int:
    from repro.lowerbound.certify import certify

    automaton = _build_automaton(args.family, args.bits, args.ell, args.seed)
    certificate = certify(automaton, args.distance, args.agents)
    print(f"automaton : {automaton.name} ({automaton.n_states} states)")
    for line in certificate.summary_lines():
        print(line)
    return 0


def _cmd_coverage(args: argparse.Namespace) -> int:
    from repro.lowerbound.colony import simulate_colony
    from repro.lowerbound.theory import horizon_moves
    from repro.vis.asciiplot import heatmap

    automaton = _build_automaton(args.family, args.bits, args.ell, args.seed)
    rounds = args.rounds or horizon_moves(args.distance, 0.5)
    rng = np.random.default_rng(args.seed)
    result = simulate_colony(
        automaton, args.agents, rounds, rng, window_radius=args.distance
    )
    print(
        f"{automaton.name}: {args.agents} agents, {rounds} rounds -> "
        f"{result.visited_count()} cells visited "
        f"({result.coverage_fraction:.2%} of the window)"
    )
    print(heatmap(result.visited.astype(float), title="visited cells"))
    return 0


def _watch_progress(progress) -> None:
    """Live point-level progress line for ``experiment --watch``."""
    print(f"  [sweep] {progress.done_points}/{progress.total_points} points "
          f"— {progress.done_trials}/{progress.total_trials} trials "
          f"({progress.fraction:.0%})", flush=True)


def _run_one_experiment(key: str, args: argparse.Namespace):
    from repro.experiments import REGISTRY

    runner = REGISTRY[key]
    parameters = inspect.signature(runner).parameters
    kwargs = {}
    if args.workers != 1:
        if "workers" in parameters:
            kwargs["workers"] = args.workers
        else:
            print(f"note: {key} does not take --workers; running serially",
                  file=sys.stderr)
    if args.watch:
        if "on_progress" in parameters:
            kwargs["on_progress"] = _watch_progress
        else:
            print(f"note: {key} does not report live progress",
                  file=sys.stderr)
    return runner(scale=args.scale, seed=args.seed, **kwargs)


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import REGISTRY

    if args.all:
        # Same semantics as `python -m repro.experiments`: run every
        # experiment, name each failing check, exit nonzero when any
        # check fails — so CI can use either entry point.
        failures = 0
        for key in sorted(REGISTRY):
            result = _run_one_experiment(key, args)
            status = "ok" if result.all_passed else "CHECK FAILURES"
            print(f"[{key}] {result.title} — {status}")
            for name, passed in result.checks.items():
                if not passed:
                    print(f"    FAIL: {name}")
                    failures += 1
        return 1 if failures else 0
    if args.id is None:
        print("experiment id required (or pass --all)", file=sys.stderr)
        return 2
    key = args.id.upper()
    if key not in REGISTRY:
        print(f"unknown experiment {key!r}; known: {', '.join(sorted(REGISTRY))}",
              file=sys.stderr)
        return 2
    result = _run_one_experiment(key, args)
    print(result.to_markdown())
    return 0 if result.all_passed else 1


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.__main__ import generate_report

    generated = generate_report(
        scale=args.scale,
        seed=args.seed,
        only=args.only,
        workers=args.workers,
        compiled=not args.no_compile,
    )
    if generated is None:
        print(f"no experiments match {args.only!r}", file=sys.stderr)
        return 2
    report, failures = generated
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report)
        print(f"wrote {args.output}")
    else:
        print()
        print(report)
    return 1 if failures else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-ants",
        description="ANTS selection-complexity reproduction (PODC 2014)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="simulate searches via the service layer")
    run_parser.add_argument(
        "--algorithm",
        default="uniform",
        choices=KNOWN_ALGORITHMS,
    )
    run_parser.add_argument("--distance", type=int, default=32)
    run_parser.add_argument("--agents", type=int, default=4)
    run_parser.add_argument("--ell", type=int, default=1)
    run_parser.add_argument("--budget", type=int, default=10_000_000)
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument(
        "--target", type=int, nargs=2, metavar=("X", "Y"), default=None
    )
    run_parser.add_argument(
        "--backend", default="auto", choices=BACKEND_CHOICES,
        help="simulation backend (default: auto-resolve)",
    )
    run_parser.add_argument(
        "--trials", type=int, default=1,
        help="independent colony repetitions (default: 1)",
    )
    run_parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes to shard trials across (default: 1)",
    )
    run_parser.add_argument(
        "--cache", action=argparse.BooleanOptionalAction, default=None,
        help="force the result cache on/off for this run "
             "(default: process setting, normally on)",
    )
    run_parser.add_argument(
        "--plan", action="store_true",
        help="route through the cost-model selector: plan backend and "
             "shard layout from the calibration profile (static "
             "fallback when uncalibrated) and execute the plan",
    )
    run_parser.add_argument(
        "--adaptive", action="store_true",
        help="adaptive sampling: consume --trials in batches until the "
             "CI half-width target is met (see --target-half-width)",
    )
    run_parser.add_argument(
        "--target-half-width", type=float, default=0.05,
        help="adaptive stopping target: CI half-width on the chosen "
             "metric (default: 0.05)",
    )
    run_parser.add_argument(
        "--ci-metric", default="hit_probability",
        choices=("hit_probability", "moves"),
        help="metric the adaptive CI targets (default: hit_probability)",
    )
    run_parser.add_argument(
        "--batch-size", type=int, default=32,
        help="trials per adaptive batch (default: 32)",
    )
    run_parser.add_argument(
        "--async", dest="async_submit", action="store_true",
        help="submit through the job layer and stream trial shards "
             "as they complete",
    )
    run_parser.add_argument(
        "--watch", action="store_true",
        help="print live shard/trial progress (implies --async)",
    )
    run_parser.set_defaults(func=_cmd_run)

    backends_parser = sub.add_parser(
        "backends", help="list registered simulation backends"
    )
    backends_parser.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable payload (same shape as "
             "GET /v1/backends: coverage, declines, auto resolution, "
             "selector plans)",
    )
    backends_parser.add_argument(
        "--calibrate", action="store_true",
        help="micro-profile every backend x family pair first and "
             "persist the cost-model calibration profile under the "
             "cache directory",
    )
    backends_parser.set_defaults(func=_cmd_backends)

    cache_parser = sub.add_parser(
        "cache", help="inspect, verify, clear, or LRU-prune the result cache"
    )
    cache_parser.add_argument(
        "action", choices=("info", "clear", "prune", "verify"),
        help="info: configuration + counters; clear: drop all entries; "
             "prune: evict least-recently-used disk entries to fit "
             "--max-bytes; verify: scan disk entries against their "
             "checksums",
    )
    cache_parser.add_argument(
        "--max-bytes", type=int, default=None,
        help="disk budget for prune: evict LRU entries until the "
             "cache directory fits",
    )
    cache_parser.add_argument(
        "--json", action="store_true",
        help="info/verify: emit the machine-readable payload",
    )
    cache_parser.add_argument(
        "--repair", action="store_true",
        help="verify only: quarantine every entry that fails its "
             "checksum (moved under quarantine/, never deleted)",
    )
    cache_parser.set_defaults(func=_cmd_cache)

    jobs_parser = sub.add_parser(
        "jobs", help="list, inspect, or cancel recorded simulation jobs"
    )
    jobs_parser.add_argument(
        "action", choices=("list", "status", "cancel", "clear"),
        help="list: all recorded jobs; status: one job's record; "
             "cancel: request cancellation (honored at the next shard "
             "boundary, completed shards stay cached); clear: drop "
             "terminal records and stale cancel markers",
    )
    jobs_parser.add_argument(
        "job_id", nargs="?", default=None,
        help="job id for status/cancel (see `jobs list`)",
    )
    jobs_parser.set_defaults(func=_cmd_jobs)

    trace_parser = sub.add_parser(
        "trace", help="render a recorded job trace as a span tree"
    )
    trace_parser.add_argument(
        "job_id", help="job id whose trace to render (see `jobs list`)"
    )
    trace_parser.add_argument(
        "--url", default="",
        help="fetch the server's spans from GET /v1/jobs/{id}/trace at "
             "this base URL and merge them with locally recorded spans "
             "(default: local ring + JSONL sink only)",
    )
    trace_parser.set_defaults(func=_cmd_trace)

    metrics_parser = sub.add_parser(
        "metrics", help="dump the process/server metrics registry"
    )
    metrics_parser.add_argument(
        "--url", default="",
        help="read a remote server's registry (GET /v1/metrics, or the "
             "stats route for --json) instead of this process's",
    )
    metrics_parser.add_argument(
        "--json", action="store_true",
        help="emit the JSON payload instead of Prometheus text",
    )
    metrics_parser.add_argument(
        "--watch", action="store_true",
        help="redraw every --interval seconds until interrupted",
    )
    metrics_parser.add_argument(
        "--interval", type=float, default=2.0,
        help="refresh period for --watch (default: 2s)",
    )
    metrics_parser.set_defaults(func=_cmd_metrics)

    serve_parser = sub.add_parser(
        "serve", help="HTTP/SSE server for remote job submission"
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default: 127.0.0.1; 0.0.0.0 for remote "
             "clients)",
    )
    serve_parser.add_argument(
        "--port", type=int, default=8642,
        help="bind port (default: 8642; 0 picks an ephemeral port)",
    )
    serve_parser.add_argument(
        "--max-jobs", type=int, default=8,
        help="concurrent limit on live jobs + sweeps; submissions "
             "beyond it get 429 + Retry-After (default: 8)",
    )
    serve_parser.set_defaults(func=_cmd_serve)

    certify_parser = sub.add_parser(
        "certify", help="lower-bound certificate for an automaton"
    )
    certify_parser.add_argument(
        "--family", default="random",
        choices=("random", "uniform-walk", "biased-walk"),
    )
    certify_parser.add_argument("--bits", type=int, default=3)
    certify_parser.add_argument("--ell", type=int, default=2)
    certify_parser.add_argument("--distance", type=int, default=64)
    certify_parser.add_argument("--agents", type=int, default=8)
    certify_parser.add_argument("--seed", type=int, default=0)
    certify_parser.set_defaults(func=_cmd_certify)

    coverage_parser = sub.add_parser(
        "coverage", help="simulate a colony and render coverage"
    )
    coverage_parser.add_argument(
        "--family", default="uniform-walk",
        choices=("random", "uniform-walk", "biased-walk"),
    )
    coverage_parser.add_argument("--bits", type=int, default=3)
    coverage_parser.add_argument("--ell", type=int, default=2)
    coverage_parser.add_argument("--distance", type=int, default=48)
    coverage_parser.add_argument("--agents", type=int, default=16)
    coverage_parser.add_argument("--rounds", type=int, default=0)
    coverage_parser.add_argument("--seed", type=int, default=0)
    coverage_parser.set_defaults(func=_cmd_coverage)

    experiment_parser = sub.add_parser(
        "experiment", help="run one registered experiment (or --all)"
    )
    experiment_parser.add_argument(
        "id", nargs="?", default=None, help="experiment id, e.g. E04"
    )
    experiment_parser.add_argument(
        "--all", action="store_true",
        help="run every registered experiment; exit nonzero when any "
             "check fails (same semantics as python -m repro.experiments)",
    )
    experiment_parser.add_argument("--scale", default="smoke", choices=("smoke", "paper"))
    experiment_parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    experiment_parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the experiment's sweeps (forwarded "
             "to experiments that support it)",
    )
    experiment_parser.add_argument(
        "--watch", action="store_true",
        help="print live point-level sweep progress while the "
             "experiment runs",
    )
    experiment_parser.set_defaults(func=_cmd_experiment)

    report_parser = sub.add_parser(
        "report", help="regenerate the EXPERIMENTS.md report"
    )
    report_parser.add_argument(
        "--scale", default="smoke", choices=("smoke", "paper")
    )
    report_parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    report_parser.add_argument(
        "--only", default="", help="comma-separated experiment ids"
    )
    report_parser.add_argument(
        "--workers", type=int, default=1,
        help="fused-program submission and finalization parallelism",
    )
    report_parser.add_argument(
        "--output", default="", help="write the markdown report here"
    )
    report_parser.add_argument(
        "--no-compile", action="store_true",
        help="bypass the experiment compiler and run each experiment "
             "sequentially (byte-identical report, slower)",
    )
    report_parser.set_defaults(func=_cmd_report)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - direct module execution
    raise SystemExit(main())
