"""Per-class drift vectors and trajectory concentration (Corollary 4.10).

Once an agent settles in a recurrent class ``C``, its long-run fraction
of up-moves converges to the occupation probability of up-labeled
states — and likewise for the other directions.  The agent's position
after ``r`` in-class rounds therefore concentrates around the straight
line ``r * p_vec(C)`` with

``p_vec(C) = (pi_C(right) - pi_C(left), pi_C(up) - pi_C(down))``

where ``pi_C`` is the class's occupation distribution.  This module
computes those drift lines exactly and measures simulated deviations
from them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Tuple

import numpy as np

from repro.core.actions import Action
from repro.core.automaton import Automaton
from repro.errors import InvalidParameterError
from repro.markov.classify import absorbing_probability_classes, classify_states
from repro.markov.stationary import occupation_distribution


@dataclass(frozen=True)
class DriftLine:
    """One recurrent class's predicted straight-line behaviour.

    Attributes
    ----------
    states:
        The recurrent class.
    drift:
        Expected per-round displacement ``(dx, dy)`` under the class's
        occupation distribution.
    absorption_probability:
        Probability that an agent started at ``s0`` is absorbed into
        this class.
    has_origin_state:
        Whether the class contains an ORIGIN-labeled state — if so the
        agent keeps returning and stays within ``D^{o(1)}`` of the
        origin (Corollary 4.5 case (1)) instead of following a line.
    moves_per_round:
        Expected fraction of rounds that are grid moves (occupation mass
        on move-labeled states); zero identifies the all-``none``
        stalling classes of Corollary 4.11 case (2).
    """

    states: FrozenSet[int]
    drift: Tuple[float, float]
    absorption_probability: float
    has_origin_state: bool
    moves_per_round: float

    @property
    def speed(self) -> float:
        """Euclidean norm of the drift vector."""
        return float(np.hypot(*self.drift))

    @property
    def is_stalling(self) -> bool:
        """True when the class makes (almost) no grid moves."""
        return self.moves_per_round <= 1e-12


def class_drift(automaton: Automaton, members: FrozenSet[int]) -> Tuple[float, float]:
    """The drift vector of one recurrent class."""
    chain = automaton.to_markov_chain()
    pi = occupation_distribution(chain, sorted(members))
    vectors = automaton.move_vectors().astype(float)
    drift = pi @ vectors
    return (float(drift[0]), float(drift[1]))


def drift_profile(automaton: Automaton) -> List[DriftLine]:
    """All drift lines of an automaton, weighted by absorption probability.

    This is the complete Section 4 prediction for where the agent's
    trajectory can go: w.h.p. along one of these lines (within a
    sublinear tube), chosen with the listed probabilities.
    """
    chain = automaton.to_markov_chain()
    classification = classify_states(chain)
    absorption = absorbing_probability_classes(chain, classification)
    labels = automaton.labels
    lines: List[DriftLine] = []
    for members in classification.recurrent_classes:
        pi = occupation_distribution(chain, sorted(members))
        vectors = automaton.move_vectors().astype(float)
        drift = pi @ vectors
        move_mass = float(
            sum(pi[state] for state in members if labels[state].is_move)
        )
        lines.append(
            DriftLine(
                states=members,
                drift=(float(drift[0]), float(drift[1])),
                absorption_probability=float(absorption.get(members, 0.0)),
                has_origin_state=any(
                    labels[state] is Action.ORIGIN for state in members
                ),
                moves_per_round=move_mass,
            )
        )
    return lines


def measure_max_deviation(
    automaton: Automaton,
    rounds: int,
    rng: np.random.Generator,
    *,
    burn_in: int | None = None,
) -> Tuple[float, DriftLine]:
    """Simulate one agent and measure its max deviation from its drift line.

    Runs ``burn_in`` rounds first (defaults to ``4 * |S|^2``) so the
    agent is in its recurrent class, identifies that class, then tracks
    ``max_r ||X_r - r * p_vec||_inf`` over ``rounds`` further rounds —
    the quantity Corollary 4.10 bounds by ``o(D/|S|)`` when
    ``rounds ~ Delta``.  ORIGIN teleports reset the reference point, so
    machines that keep returning report deviation relative to the last
    return (matching Corollary 4.5's case split).
    """
    if rounds < 1:
        raise InvalidParameterError(f"rounds must be >= 1, got {rounds}")
    chain = automaton.to_markov_chain()
    classification = classify_states(chain)
    if burn_in is None:
        burn_in = 4 * automaton.n_states * automaton.n_states

    state = automaton.start
    for _ in range(burn_in):
        state = automaton.step(rng, state)

    target_class = classification.class_of(state)
    if target_class is None:
        # Extremely unlikely after the burn-in; step until absorbed.
        while target_class is None:
            state = automaton.step(rng, state)
            target_class = classification.class_of(state)

    lines = drift_profile(automaton)
    line = next(l for l in lines if l.states == target_class)

    position = np.zeros(2)
    drift = np.asarray(line.drift)
    vectors = automaton.move_vectors()
    labels = automaton.labels
    max_deviation = 0.0
    reference_round = 0
    for round_index in range(1, rounds + 1):
        state = automaton.step(rng, state)
        if labels[state] is Action.ORIGIN:
            position[:] = 0.0
            reference_round = round_index
        else:
            position += vectors[state]
        expected = (round_index - reference_round) * drift
        deviation = float(np.abs(position - expected).max())
        if deviation > max_deviation:
            max_deviation = deviation
    return max_deviation, line
