"""Vectorized simulation of an automaton colony (the lower-bound workload).

Runs ``n`` independent copies of an arbitrary agent automaton for a
fixed number of synchronous rounds, tracking:

* the set of distinct cells visited inside the ``[-D, D]^2`` window (a
  dense boolean array — the coverage quantity of Theorem 4.1);
* per-agent move counts and the colony ``M_moves`` / ``M_steps`` for an
  optional target.

One round costs O(n) numpy work, so ``D^2``-scale horizons at the
experiment sizes run in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.automaton import Automaton
from repro.errors import InvalidParameterError
from repro.grid.geometry import Point


@dataclass
class ColonyResult:
    """Outcome of a fixed-horizon colony run."""

    n_agents: int
    rounds: int
    window_radius: int
    visited: np.ndarray
    found: bool
    m_moves: Optional[int]
    m_steps: Optional[int]
    finder: Optional[int]

    @property
    def coverage_fraction(self) -> float:
        """Visited fraction of the ``(2D+1)^2`` window."""
        return float(self.visited.sum()) / self.visited.size

    def visited_count(self) -> int:
        """Number of distinct window cells visited."""
        return int(self.visited.sum())


def simulate_colony(
    automaton: Automaton,
    n_agents: int,
    rounds: int,
    rng: np.random.Generator,
    *,
    window_radius: int,
    target: Optional[Point] = None,
) -> ColonyResult:
    """Run the colony for ``rounds`` synchronous rounds.

    The run does not stop at the first find — the lower-bound
    experiments measure coverage over the whole horizon — but it does
    record the first find's ``M_moves``/``M_steps`` when a target is
    given.
    """
    if n_agents < 1:
        raise InvalidParameterError(f"n_agents must be >= 1, got {n_agents}")
    if rounds < 1:
        raise InvalidParameterError(f"rounds must be >= 1, got {rounds}")
    if window_radius < 1:
        raise InvalidParameterError(
            f"window_radius must be >= 1, got {window_radius}"
        )

    side = 2 * window_radius + 1
    visited = np.zeros((side, side), dtype=bool)
    visited[window_radius, window_radius] = True  # everyone starts at origin

    states = np.full(n_agents, automaton.start, dtype=np.int64)
    positions = np.zeros((n_agents, 2), dtype=np.int64)
    moves = np.zeros(n_agents, dtype=np.int64)
    move_vectors = automaton.move_vectors()
    origin_mask_by_state = automaton.origin_state_mask()

    target_array = None if target is None else np.asarray(target, dtype=np.int64)
    best_moves: Optional[int] = None
    best_steps: Optional[int] = None
    finder: Optional[int] = None
    found_mask = np.zeros(n_agents, dtype=bool)

    for round_index in range(1, rounds + 1):
        states = automaton.step_many(rng, states)
        displacements = move_vectors[states]
        positions += displacements
        teleported = origin_mask_by_state[states]
        if np.any(teleported):
            positions[teleported] = 0
        is_move = (displacements[:, 0] != 0) | (displacements[:, 1] != 0)
        moves += is_move

        in_window = (np.abs(positions) <= window_radius).all(axis=1)
        if np.any(in_window):
            xs = positions[in_window, 0] + window_radius
            ys = positions[in_window, 1] + window_radius
            visited[xs, ys] = True

        if target_array is not None:
            hits = (
                is_move
                & ~found_mask
                & (positions[:, 0] == target_array[0])
                & (positions[:, 1] == target_array[1])
            )
            if np.any(hits):
                hit_ids = np.flatnonzero(hits)
                found_mask[hit_ids] = True
                candidate = int(moves[hit_ids].min())
                if best_moves is None or candidate < best_moves:
                    best_moves = candidate
                    finder = int(hit_ids[np.argmin(moves[hit_ids])])
                if best_steps is None:
                    best_steps = round_index

    return ColonyResult(
        n_agents=n_agents,
        rounds=rounds,
        window_radius=window_radius,
        visited=visited,
        found=best_moves is not None,
        m_moves=best_moves,
        m_steps=best_steps,
        finder=finder,
    )
