"""Lower-bound machinery (Section 4 of the paper).

Theorem 4.1: any algorithm with ``chi(A) <= log log D - omega(1)`` and
``n in poly(D)`` agents leaves some target within distance ``D``
unfound for ``D^{2-o(1)}`` moves w.h.p., and finds a uniformly placed
target within that horizon only with probability ``o(1)``.

The proof pipeline — absorb into a recurrent class, mix to
stationarity, concentrate along per-class drift lines, cover only a
union of thin tubes — is implemented here as executable analysis:

* :mod:`repro.lowerbound.theory` — the explicit quantities (``R0``,
  ``beta``, ``Delta``, the chi margin);
* :mod:`repro.lowerbound.drift` — per-class drift vectors and deviation
  measurements (Corollary 4.10);
* :mod:`repro.lowerbound.coverage` — the predicted visited set ``G``
  (union of tubes) and empirical coverage;
* :mod:`repro.lowerbound.colony` — vectorized colony simulation of an
  arbitrary automaton;
* :mod:`repro.lowerbound.certify` — an end-to-end certificate for a
  given automaton and ``D``, including a constructive adversarial
  target placement.
"""

from repro.lowerbound.certify import LowerBoundCertificate, certify
from repro.lowerbound.colony import ColonyResult, simulate_colony
from repro.lowerbound.coverage import (
    adversarial_target,
    predicted_coverage_fraction,
    ray_distance,
)
from repro.lowerbound.drift import DriftLine, drift_profile, measure_max_deviation
from repro.lowerbound.theory import (
    chi_margin,
    horizon_moves,
    initial_rounds_r0,
    speedup_cap_below_threshold,
)

__all__ = [
    "LowerBoundCertificate",
    "certify",
    "ColonyResult",
    "simulate_colony",
    "adversarial_target",
    "predicted_coverage_fraction",
    "ray_distance",
    "DriftLine",
    "drift_profile",
    "measure_max_deviation",
    "chi_margin",
    "horizon_moves",
    "initial_rounds_r0",
    "speedup_cap_below_threshold",
]
