"""End-to-end lower-bound certificates for concrete automata.

Given an automaton and a distance ``D``, :func:`certify` assembles
everything Theorem 4.1 predicts about it: the chi accounting and margin
below ``log log D``, the proof's internal quantities (``R0``, ``beta``,
``Delta``), the drift-line profile, the predicted coverage envelope,
and a constructive adversarial target.  Experiment E10 then *tests*
the certificate by simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.automaton import Automaton
from repro.core.selection import SelectionComplexity, chi_threshold
from repro.errors import InvalidParameterError
from repro.grid.geometry import Point
from repro.lowerbound.coverage import adversarial_target, predicted_coverage_fraction
from repro.lowerbound.drift import DriftLine, drift_profile
from repro.lowerbound.theory import (
    horizon_moves,
    initial_rounds_r0,
    speedup_cap_below_threshold,
    tube_width,
)
from repro.markov.coupling import mixing_block_length


@dataclass(frozen=True)
class LowerBoundCertificate:
    """The complete Section 4 prediction for one automaton at one ``D``."""

    distance: int
    n_agents: int
    complexity: SelectionComplexity
    threshold: float
    margin: float
    below_threshold: bool
    horizon: int
    initial_rounds: float
    mixing_block: int
    tube_half_width: float
    drift_lines: Tuple[DriftLine, ...]
    predicted_coverage: float
    speedup_cap: float
    adversarial_placement: Point

    def summary_lines(self) -> List[str]:
        """Human-readable rendering used by the CLI and examples."""
        status = "BELOW" if self.below_threshold else "ABOVE"
        lines = [
            f"chi = {self.complexity.chi:.3f} "
            f"(b={self.complexity.bits}, l={self.complexity.ell:.2f}); "
            f"threshold log2 log2 D = {self.threshold:.3f} -> {status} "
            f"(margin {self.margin:+.3f})",
            f"horizon Delta = {self.horizon} moves; R0 ~ {self.initial_rounds:.3g} "
            f"rounds; mixing block beta = {self.mixing_block}",
            f"recurrent classes: {len(self.drift_lines)}; "
            f"tube half-width {self.tube_half_width:.2f}",
        ]
        for i, line in enumerate(self.drift_lines):
            kind = (
                "returns-to-origin"
                if line.has_origin_state
                else ("stalls" if line.is_stalling else "drifts")
            )
            lines.append(
                f"  class {i}: {kind}, drift=({line.drift[0]:+.4f}, "
                f"{line.drift[1]:+.4f}), absorbed w.p. "
                f"{line.absorption_probability:.3f}"
            )
        lines.append(
            f"predicted coverage <= {self.predicted_coverage:.4%} of the window; "
            f"speed-up cap {self.speedup_cap:.3g}; "
            f"adversarial target {self.adversarial_placement}"
        )
        return lines


def certify(
    automaton: Automaton,
    distance: int,
    n_agents: int,
    *,
    epsilon: float = 0.25,
) -> LowerBoundCertificate:
    """Build the lower-bound certificate for ``automaton`` at ``distance``.

    ``epsilon`` is the explicit stand-in for the theorem's ``o(1)``
    exponent deficit: the horizon is ``D^{2-epsilon}`` and the speed-up
    cap ``min{n, D^epsilon}``.
    """
    if distance < 4:
        raise InvalidParameterError(f"distance must be >= 4, got {distance}")
    if n_agents < 1:
        raise InvalidParameterError(f"n_agents must be >= 1, got {n_agents}")

    complexity = automaton.selection_complexity()
    threshold = chi_threshold(distance)
    margin = threshold - complexity.chi
    chain = automaton.to_markov_chain()
    lines = drift_profile(automaton)

    return LowerBoundCertificate(
        distance=distance,
        n_agents=n_agents,
        complexity=complexity,
        threshold=threshold,
        margin=margin,
        below_threshold=complexity.chi <= threshold,
        horizon=horizon_moves(distance, epsilon),
        initial_rounds=initial_rounds_r0(
            chain.min_positive_probability(), automaton.memory_bits(), distance
        ),
        mixing_block=mixing_block_length(chain, distance),
        tube_half_width=tube_width(distance, automaton.n_states),
        drift_lines=tuple(lines),
        predicted_coverage=predicted_coverage_fraction(automaton, distance),
        speedup_cap=speedup_cap_below_threshold(distance, n_agents, epsilon),
        adversarial_placement=adversarial_target(automaton, distance),
    )
