"""The explicit quantities of the lower-bound proof (Section 4.2).

The proof's asymptotic shorthands are made concrete:

* ``R0 = p0^{-2^b} * 2^b * c * log D`` — rounds after which every agent
  is inside a recurrent class w.h.p. (Lemma 4.2 / Corollary 4.3);
* ``beta = c * |S| * ln(D) / p0^{|S|}`` — the mixing block length
  (Corollary 4.6; computed in :mod:`repro.markov.coupling`);
* ``Delta = D^{2 - epsilon}`` — the move/step horizon within which the
  adversarial target stays unfound;
* the chi margin ``log log D - chi`` that must be ``omega(1)`` for the
  bound to bite.
"""

from __future__ import annotations

import math

from repro.core.selection import chi_threshold
from repro.errors import InvalidParameterError


def chi_margin(chi: float, distance: int) -> float:
    """``log2 log2 D - chi``: positive and growing means "below threshold"."""
    return chi_threshold(distance) - chi


def horizon_moves(distance: int, epsilon: float = 0.25) -> int:
    """The lower bound's horizon ``Delta = D^{2 - epsilon}``.

    The paper's ``o(1)`` exponent deficit is an explicit ``epsilon``
    here; experiments report results at several epsilons.
    """
    if distance < 2:
        raise InvalidParameterError(f"distance must be >= 2, got {distance}")
    if not 0.0 < epsilon <= 1.0:
        raise InvalidParameterError(f"epsilon must be in (0, 1], got {epsilon}")
    return max(1, math.ceil(distance ** (2.0 - epsilon)))


def initial_rounds_r0(
    p0: float, bits: int, distance: int, c: float = 1.0
) -> float:
    """Lemma 4.2's ``R0 = p0^{-2^b} * 2^b * c * log D``.

    Within ``R0`` rounds every always-reachable state is visited w.h.p.;
    in particular the agent reaches a recurrent class.  For
    below-threshold machines this is ``D^{o(1)}``.
    """
    if not 0.0 < p0 <= 1.0:
        raise InvalidParameterError(f"p0 must be in (0, 1], got {p0}")
    if bits < 0:
        raise InvalidParameterError(f"bits must be >= 0, got {bits}")
    if distance < 2:
        raise InvalidParameterError(f"distance must be >= 2, got {distance}")
    if c <= 0:
        raise InvalidParameterError(f"c must be positive, got {c}")
    n_states = 2**bits
    return p0 ** (-n_states) * n_states * c * math.log2(distance)


def tube_width(distance: int, n_states: int) -> float:
    """The concentration width ``o(D / |S|)`` made explicit.

    Corollary 4.10 bounds each agent's deviation from its drift line by
    ``o(D/|S|)``; finite experiments use ``D / (|S| * log2 D)`` as the
    concrete envelope (any ``o(D/|S|)`` choice that shrinks relative to
    ``D/|S|`` as ``D`` grows reproduces the argument's shape).
    """
    if distance < 4:
        raise InvalidParameterError(f"distance must be >= 4, got {distance}")
    if n_states < 1:
        raise InvalidParameterError(f"n_states must be >= 1, got {n_states}")
    return distance / (n_states * math.log2(distance))


def speedup_cap_below_threshold(
    distance: int, n_agents: int, epsilon: float = 0.25
) -> float:
    """The lower bound's speed-up ceiling ``min{n, D^{o(1)}}``.

    With the explicit horizon exponent deficit ``epsilon``, the
    achievable speed-up of a below-threshold colony over the optimal
    single agent is at most ``min{n, D^epsilon}`` — compare with the
    optimal ``min{n, D}`` above the threshold.
    """
    if distance < 2:
        raise InvalidParameterError(f"distance must be >= 2, got {distance}")
    if n_agents < 1:
        raise InvalidParameterError(f"n_agents must be >= 1, got {n_agents}")
    return float(min(float(n_agents), distance**epsilon))


def is_poly_agents(distance: int, n_agents: int, max_degree: float = 3.0) -> bool:
    """Whether ``n`` is within the bound's ``poly(D)`` hypothesis.

    The lower bound assumes ``n in poly(D)`` (exponentially many random
    walkers *do* find the target quickly); experiments assert their
    configurations satisfy this.
    """
    if distance < 2:
        return n_agents <= 1
    return n_agents <= distance**max_degree
