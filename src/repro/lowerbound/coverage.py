"""The predicted visited set ``G`` and adversarial target placement.

The lower-bound proof concludes: w.h.p. every agent either stays within
``D^{o(1)}`` of the origin or tracks one of at most ``|C|`` straight
drift lines within a tube of width ``o(D/|S|)``.  The union ``G`` of
those tubes (clipped to the ``D``-window) has ``o(D^2)`` cells, so a
target placed outside ``G`` stays unfound — and a uniformly random
target lands outside ``G`` with probability ``1 - o(1)``.

This module computes ``G``'s measure in closed form and implements the
*constructive* adversary: pick the window cell farthest from every
predicted ray (and from the origin).
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.automaton import Automaton
from repro.errors import InvalidParameterError
from repro.grid.geometry import Point
from repro.lowerbound.drift import DriftLine, drift_profile
from repro.lowerbound.theory import tube_width


def ray_distance(point: Point, direction: Tuple[float, float]) -> float:
    """Euclidean distance from ``point`` to the ray ``{t * direction : t >= 0}``.

    A zero direction degenerates to distance-from-origin, matching the
    stalling/oscillating classes whose predicted tube is a ball around
    the origin.
    """
    px, py = float(point[0]), float(point[1])
    dx, dy = float(direction[0]), float(direction[1])
    norm = math.hypot(dx, dy)
    if norm <= 1e-15:
        return math.hypot(px, py)
    t = (px * dx + py * dy) / (norm * norm)
    if t <= 0.0:
        return math.hypot(px, py)
    return math.hypot(px - t * dx, py - t * dy)


def distance_to_prediction(point: Point, lines: Sequence[DriftLine]) -> float:
    """Distance from ``point`` to the nearest predicted ray (or origin).

    Classes with an ORIGIN state or with (near-)zero drift predict
    confinement near the origin, so they contribute the
    distance-from-origin term; drifting classes contribute their ray.
    """
    candidates = [math.hypot(float(point[0]), float(point[1]))]
    for line in lines:
        if line.has_origin_state or line.is_stalling:
            continue
        candidates.append(ray_distance(point, line.drift))
    return min(candidates)


def predicted_coverage_fraction(
    automaton: Automaton, distance: int, width: float | None = None
) -> float:
    """Measure of ``G`` relative to the window: ``|G| / (2D+1)^2``.

    Each non-stalling, non-returning recurrent class contributes a tube
    of the given width around a ray — at most ``(2 * width + 1) *
    (2D * sqrt(2))`` cells inside the window; returning/stalling classes
    contribute an ``O(width^2)`` ball.  The exact union is estimated on
    the lattice for moderate ``D`` and by the analytic envelope above
    for large ``D``; here we always return the analytic envelope, which
    upper-bounds the union and is the quantity the proof compares to
    ``Theta(D^2)``.
    """
    if distance < 4:
        raise InvalidParameterError(f"distance must be >= 4, got {distance}")
    if width is None:
        width = tube_width(distance, automaton.n_states)
    if width <= 0:
        raise InvalidParameterError(f"width must be positive, got {width}")
    lines = drift_profile(automaton)
    window_cells = float((2 * distance + 1) ** 2)
    total = 0.0
    for line in lines:
        if line.has_origin_state or line.is_stalling:
            total += math.pi * (width + 1.0) ** 2
        else:
            # A ray crosses the window over length <= 2*sqrt(2)*D; the
            # tube adds (2*width + 1) cells of thickness.
            total += (2.0 * width + 1.0) * (2.0 * math.sqrt(2.0) * distance + 1.0)
    return min(1.0, total / window_cells)


def adversarial_target(
    automaton: Automaton,
    distance: int,
    *,
    candidate_step: int | None = None,
) -> Point:
    """A window cell far from every predicted ray — the proof's placement.

    Scans a coarse candidate lattice over the window (finer near the
    rim, where far-from-every-ray cells live) and returns the candidate
    maximizing the distance to the prediction.  Always places at
    max-norm exactly ``D`` when a boundary cell wins, matching the
    "there is a placement of the target within distance D" clause.
    """
    if distance < 4:
        raise InvalidParameterError(f"distance must be >= 4, got {distance}")
    lines = drift_profile(automaton)
    if candidate_step is None:
        candidate_step = max(1, distance // 64)

    best_point: Point = (distance, distance)
    best_score = -1.0
    coordinates = list(range(-distance, distance + 1, candidate_step))
    if coordinates[-1] != distance:
        coordinates.append(distance)
    # Boundary ring candidates (the adversary's usual home) plus a
    # coarse interior sweep.
    candidates: List[Point] = []
    for c in coordinates:
        candidates.extend(
            [(c, distance), (c, -distance), (distance, c), (-distance, c)]
        )
    for x in coordinates:
        for y in coordinates:
            candidates.append((x, y))

    for point in candidates:
        score = distance_to_prediction(point, lines)
        if score > best_score:
            best_score = score
            best_point = point
    return best_point


def empirical_vs_predicted(
    visited: np.ndarray, automaton: Automaton, distance: int
) -> Tuple[float, float]:
    """Pair (empirical coverage fraction, predicted envelope fraction).

    ``visited`` is the boolean window array produced by
    :func:`repro.lowerbound.colony.simulate_colony`.
    """
    side = 2 * distance + 1
    if visited.shape != (side, side):
        raise InvalidParameterError(
            f"visited must have shape ({side}, {side}), got {visited.shape}"
        )
    empirical = float(visited.sum()) / visited.size
    predicted = predicted_coverage_fraction(automaton, distance)
    return empirical, predicted
