"""Additive perturbation of transition probabilities.

The noise model: every realized coin bias ``p`` becomes
``clip(p + U[-eps, +eps], 0, 1)`` independently, then each automaton
row is renormalized.  Additive (not relative) noise is the point — a
physical process that mis-calibrates a bias by ``eps = 0.01`` barely
moves a fair coin but *triples* a ``1/256`` bias, which is exactly why
the paper's chi metric charges for fine probabilities.
"""

from __future__ import annotations

import numpy as np

from repro.core.automaton import Automaton
from repro.errors import InvalidParameterError


def perturb_probability(
    p: float, epsilon: float, rng: np.random.Generator
) -> float:
    """One noisy realization of a nominal coin bias ``p``.

    ``clip(p + U[-eps, eps], 0, 1)``.  Note the *relative* error scales
    like ``eps / p`` — small for fair coins, huge for ``1/D`` coins.
    """
    if not 0.0 <= p <= 1.0:
        raise InvalidParameterError(f"p must be in [0, 1], got {p}")
    if epsilon < 0.0:
        raise InvalidParameterError(f"epsilon must be >= 0, got {epsilon}")
    noisy = p + float(rng.uniform(-epsilon, epsilon))
    return float(np.clip(noisy, 0.0, 1.0))


def perturb_automaton(
    automaton: Automaton, epsilon: float, rng: np.random.Generator
) -> Automaton:
    """A noisy copy of ``automaton``: every positive edge disturbed.

    Zero edges stay zero (the machine's wiring is genetic; only the
    realized biases are noisy) and rows are renormalized.  A row whose
    noisy mass collapses to zero falls back to its nominal values —
    this can only happen when every edge probability is below
    ``epsilon``, i.e. far outside the regime of interest.
    """
    if epsilon < 0.0:
        raise InvalidParameterError(f"epsilon must be >= 0, got {epsilon}")
    matrix = automaton.matrix
    noisy = np.zeros_like(matrix)
    positive = matrix > 0.0
    noise = rng.uniform(-epsilon, epsilon, size=matrix.shape)
    noisy[positive] = np.clip(matrix[positive] + noise[positive], 0.0, 1.0)
    row_sums = noisy.sum(axis=1)
    for row in np.flatnonzero(row_sums <= 0.0):
        noisy[row] = matrix[row]
        row_sums[row] = 1.0
    noisy /= noisy.sum(axis=1, keepdims=True)
    return Automaton(
        noisy,
        automaton.labels,
        start=automaton.start,
        name=f"{automaton.name}+noise({epsilon})",
    )


def degradation_ratio(
    nominal_performance: float, perturbed_performance: float
) -> float:
    """How many times worse the perturbed machine performs.

    Both arguments are expected move counts (or budget-censored means);
    a ratio near 1 means the machine shrugged the noise off.
    """
    if nominal_performance <= 0.0 or perturbed_performance <= 0.0:
        raise InvalidParameterError("performances must be positive")
    return perturbed_performance / nominal_performance


def expected_walk_length_under_noise(
    stop_probability: float, epsilon: float, rng: np.random.Generator, trials: int
) -> float:
    """Mean geometric-walk length when the stop bias is noisy per agent.

    Each trial draws one realized stop probability (one agent's
    development, in the biological reading) and reports the expected
    walk length ``1/p' - 1`` under it; the average over trials is the
    population mean.  For ``p ~ 1/D`` and ``eps >~ 1/D`` the population
    mean explodes, because agents whose realized ``p'`` is near zero
    walk nearly forever — the concrete failure the paper's metric
    anticipates.
    """
    if trials < 1:
        raise InvalidParameterError(f"trials must be >= 1, got {trials}")
    total = 0.0
    for _ in range(trials):
        realized = perturb_probability(stop_probability, epsilon, rng)
        # Clip away exact zero: a zero stop bias means an infinite walk;
        # report the budgeted equivalent of "essentially never stops".
        realized = max(realized, 1e-9)
        total += 1.0 / realized - 1.0
    return total / trials
