"""Perturbation robustness: the selection metric's biological rationale.

Section 1 of the paper motivates charging for probability fineness
(the ``log2 l`` term of chi) by arguing that "algorithms relying on
small probabilities are more sensitive to additive disturbances of the
probability values" — a biased coin realized by a noisy physical
process cannot hold a ``1/D`` bias to relative precision, while a
``1/2``-ish bias is robust.

This subpackage makes that argument executable: perturb every
transition probability of an automaton by bounded additive noise
(renormalizing rows), and measure how each algorithm's search
performance degrades as a function of its probability fineness ``l``.
Experiment E15 runs the comparison the paper gestures at: the fine-coin
Algorithm 1 degrades catastrophically under noise that the coarse-coin
Non-Uniform-Search barely notices.
"""

from repro.robustness.perturbation import (
    degradation_ratio,
    perturb_automaton,
    perturb_probability,
)

__all__ = ["perturb_automaton", "perturb_probability", "degradation_ratio"]
