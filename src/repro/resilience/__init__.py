"""Resilience layer: deterministic fault injection and chaos tooling.

The paper's algorithms are judged by how little state they need to keep
searching; this package is the same discipline applied to the
*infrastructure* that runs them.  :mod:`repro.resilience.faults` is a
seeded, deterministic fault-injection harness wired into the existing
execution seams — pool shard tasks, cache disk I/O, backend execution,
server socket handling, client HTTP calls — and gated behind the
``REPRO_ANTS_FAULTS`` environment variable so production paths reduce
to a single ``is None`` check.

The machinery the harness exercises lives where the work happens:
shard-level retry with backoff in :mod:`repro.sim.jobs`, checksummed
cache entries with quarantine in :mod:`repro.sim.cache`, backend
degradation on device loss, idempotent POST retries and SSE resume in
:mod:`repro.server`.  The chaos suite
(``tests/integration/test_chaos.py``) and
``benchmarks/bench_resilience.py`` prove the combination: a sweep with
a worker killed mid-run completes bit-identical to the unfaulted run
with zero re-simulation of already-written shards.
"""

from repro.resilience.faults import (
    FaultPlan,
    FaultSpec,
    activate,
    active_plan,
    deactivate,
    faults_enabled,
    maybe_inject,
)

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "activate",
    "active_plan",
    "deactivate",
    "faults_enabled",
    "maybe_inject",
]
