"""Deterministic, seeded fault injection for the execution seams.

A :class:`FaultPlan` is a small declarative registry of
:class:`FaultSpec` rules.  Instrumented seams call
:func:`maybe_inject` with their site name and a context dict; when the
active plan has a matching rule whose schedule says "fire now", the
harness acts — kills the worker process, stalls, raises a transient or
device-loss error, resets the connection, or (for the corruption
kinds) returns the fired spec so the seam applies the damage itself.

Everything is deterministic by construction:

* matching is exact field equality against the call's context (so a
  rule can target ``shard_index=2, attempt=0`` and fire only on the
  first attempt of one specific shard);
* scheduling is by per-``(site, rule)`` match counters (``at`` — fire
  on these 0-based match indices — or ``every`` — fire on every Nth
  match), with an optional ``probability`` mode derived from the
  plan's seed and the counter, never from global RNG state;
* activation travels through the ``REPRO_ANTS_FAULTS`` environment
  variable (the JSON encoding of the plan), which is exactly how the
  plan reaches spawned pool workers — the processes whose deaths the
  chaos suite engineers.

When ``REPRO_ANTS_FAULTS`` is unset the whole module reduces to one
``is None`` check per seam call: production paths pay nothing.

Instrumented sites (context fields in parentheses)::

    worker.shard    (shard_index, attempt, backend)   pool shard tasks
    backend.run     (backend, shard_index, attempt)   inline + pooled runs
    cache.disk_read (level)                           disk entry reads
    cache.disk_write(level)                           disk entry writes
    client.http     (method, path, attempt)           RemoteClient calls
    server.sse      (event_index, kind)               SSE event writes
    accelerator.probe ()                              device probes
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.errors import (
    DeviceLostError,
    InvalidParameterError,
    TransientFaultError,
)
from repro.obs.metrics import get_registry
from repro.obs.trace import current_span

#: Environment variable carrying the active plan (its JSON encoding).
#: Unset/empty/"0" means no faults — the production default.
ENV_VAR = "REPRO_ANTS_FAULTS"

#: The fault kinds and what firing does.
KINDS = (
    "kill",         # os._exit the current process (pool-worker death)
    "stall",        # sleep `seconds` (slow shard / stuck device)
    "error",        # raise TransientFaultError (retryable blip)
    "device_lost",  # raise DeviceLostError (degradation trigger)
    "reset",        # raise ConnectionResetError (flaky socket)
    "corrupt",      # returned to the seam: flip bytes in what it wrote
    "truncate",     # returned to the seam: cut what it wrote short
)

#: Kinds the seam must apply itself (maybe_inject returns the spec).
ACTION_KINDS = frozenset({"corrupt", "truncate"})

_REGISTRY = get_registry()
_FAULTS_INJECTED = _REGISTRY.counter(
    "repro_faults_injected_total",
    "Faults fired by the injection harness, by site and kind.",
    ["site", "kind"],
)


@dataclass(frozen=True)
class FaultSpec:
    """One fault rule: where, what, and when.

    ``match`` narrows which calls at ``site`` the rule applies to:
    every key present must equal the call's context value.  The
    schedule then decides which *matching* calls fire: ``at`` (0-based
    match indices), ``every`` (every Nth match), or ``probability``
    (seeded per-match coin); exactly one may be set, and ``None`` for
    all three means every match fires.  ``max_fires`` bounds total
    firings per process (counters are process-local, so a killed
    worker's replacement starts fresh — rules targeting worker kills
    should therefore match on ``attempt`` to avoid kill loops).
    """

    site: str
    kind: str
    match: Mapping[str, Any] = field(default_factory=dict)
    at: Optional[Tuple[int, ...]] = None
    every: Optional[int] = None
    probability: Optional[float] = None
    seconds: float = 0.0
    max_fires: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise InvalidParameterError(
                f"unknown fault kind {self.kind!r}; known: {', '.join(KINDS)}"
            )
        modes = sum(
            value is not None
            for value in (self.at, self.every, self.probability)
        )
        if modes > 1:
            raise InvalidParameterError(
                "at / every / probability are mutually exclusive"
            )
        if self.every is not None and self.every < 1:
            raise InvalidParameterError(
                f"every must be >= 1, got {self.every}"
            )
        if self.probability is not None and not (
            0.0 < self.probability <= 1.0
        ):
            raise InvalidParameterError(
                f"probability must be in (0, 1], got {self.probability}"
            )
        if self.seconds < 0:
            raise InvalidParameterError(
                f"seconds must be >= 0, got {self.seconds}"
            )

    def matches(self, context: Mapping[str, Any]) -> bool:
        """Whether this rule applies to one seam call's context."""
        return all(
            context.get(key) == value for key, value in self.match.items()
        )

    def to_payload(self) -> Dict[str, Any]:
        return {
            "site": self.site,
            "kind": self.kind,
            "match": dict(self.match),
            "at": None if self.at is None else list(self.at),
            "every": self.every,
            "probability": self.probability,
            "seconds": self.seconds,
            "max_fires": self.max_fires,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "FaultSpec":
        at = payload.get("at")
        return cls(
            site=str(payload["site"]),
            kind=str(payload["kind"]),
            match=dict(payload.get("match") or {}),
            at=None if at is None else tuple(int(i) for i in at),
            every=payload.get("every"),
            probability=payload.get("probability"),
            seconds=float(payload.get("seconds", 0.0)),
            max_fires=payload.get("max_fires"),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A seeded set of fault rules — the unit of activation.

    The seed feeds the ``probability`` schedule (a per-match hash coin)
    so probabilistic chaos runs are exactly reproducible; rules using
    ``at``/``every`` are deterministic without it.
    """

    specs: Tuple[FaultSpec, ...] = ()
    seed: int = 0

    def to_json(self) -> str:
        return json.dumps(
            {
                "seed": self.seed,
                "specs": [spec.to_payload() for spec in self.specs],
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, encoded: str) -> "FaultPlan":
        payload = json.loads(encoded)
        return cls(
            specs=tuple(
                FaultSpec.from_payload(spec)
                for spec in payload.get("specs", [])
            ),
            seed=int(payload.get("seed", 0)),
        )


class _State:
    """Process-local harness state: the resolved plan and counters."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.resolved = False
        self.plan: Optional[FaultPlan] = None
        self.env_value: Optional[str] = None
        # (rule index) -> matches seen / fires performed.
        self.matches: Dict[int, int] = {}
        self.fires: Dict[int, int] = {}


_STATE = _State()


def _resolve_locked() -> Optional[FaultPlan]:
    """The active plan, re-parsed whenever the env var changes."""
    value = os.environ.get(ENV_VAR) or None
    if value in ("0", "1"):
        # "1" turns the *gate* on without rules (the CI chaos step sets
        # it so the suite's programmatic plans are honored); "0" is an
        # explicit off.
        value = None if value == "0" else value
    if value != _STATE.env_value or not _STATE.resolved:
        _STATE.env_value = value
        _STATE.resolved = True
        _STATE.matches.clear()
        _STATE.fires.clear()
        if value is None or value == "1":
            _STATE.plan = None
        else:
            try:
                _STATE.plan = FaultPlan.from_json(value)
            except (ValueError, KeyError, TypeError):
                _STATE.plan = None
    return _STATE.plan


def active_plan() -> Optional[FaultPlan]:
    """The plan currently in force in this process, if any."""
    with _STATE.lock:
        return _resolve_locked()


def faults_enabled() -> bool:
    """Whether any fault plan is active."""
    return active_plan() is not None


def activate(plan: FaultPlan) -> None:
    """Install ``plan`` process-wide and export it to child processes.

    Writes the plan's JSON into ``REPRO_ANTS_FAULTS`` so pool workers
    spawned after activation resolve the identical plan — which is how
    worker-side kills and stalls are scheduled.
    """
    os.environ[ENV_VAR] = plan.to_json()
    with _STATE.lock:
        _STATE.resolved = False
        _resolve_locked()


def deactivate() -> None:
    """Remove any active plan and clear the environment gate."""
    os.environ.pop(ENV_VAR, None)
    with _STATE.lock:
        _STATE.resolved = False
        _resolve_locked()


def fault_counters() -> Dict[int, Tuple[int, int]]:
    """Per-rule ``(matches, fires)`` counters (tests and diagnostics)."""
    with _STATE.lock:
        _resolve_locked()
        keys = set(_STATE.matches) | set(_STATE.fires)
        return {
            index: (_STATE.matches.get(index, 0), _STATE.fires.get(index, 0))
            for index in keys
        }


def _coin(seed: int, rule_index: int, counter: int, p: float) -> bool:
    """A deterministic per-match Bernoulli draw from the plan seed."""
    digest = hashlib.sha256(
        f"{seed}:{rule_index}:{counter}".encode()
    ).digest()
    draw = int.from_bytes(digest[:8], "big") / float(1 << 64)
    return draw < p


def _should_fire(
    plan: FaultPlan, index: int, spec: FaultSpec, counter: int
) -> bool:
    if spec.max_fires is not None and _STATE.fires.get(index, 0) >= spec.max_fires:
        return False
    if spec.at is not None:
        return counter in spec.at
    if spec.every is not None:
        return (counter + 1) % spec.every == 0
    if spec.probability is not None:
        return _coin(plan.seed, index, counter, spec.probability)
    return True


def maybe_inject(site: str, **context: Any) -> Optional[FaultSpec]:
    """The seam hook: act on any matching, scheduled fault rule.

    Raising kinds (``error``, ``device_lost``, ``reset``) raise their
    exception; ``kill`` exits the process; ``stall`` sleeps and returns
    the spec; the :data:`ACTION_KINDS` are returned to the caller to
    apply (byte corruption and truncation happen where the bytes are).
    Returns ``None`` when nothing fired — the only outcome when no plan
    is active, at the cost of one environment lookup.
    """
    with _STATE.lock:
        plan = _resolve_locked()
        if plan is None:
            return None
        fired: Optional[Tuple[int, FaultSpec]] = None
        for index, spec in enumerate(plan.specs):
            if spec.site != site or not spec.matches(context):
                continue
            counter = _STATE.matches.get(index, 0)
            _STATE.matches[index] = counter + 1
            if fired is None and _should_fire(plan, index, spec, counter):
                _STATE.fires[index] = _STATE.fires.get(index, 0) + 1
                fired = (index, spec)
        if fired is None:
            return None
        _, spec = fired
    _FAULTS_INJECTED.inc(site=site, kind=spec.kind)
    sp = current_span()
    if sp is not None:
        sp.set_attribute("fault_injected", f"{site}:{spec.kind}")
    if spec.kind == "kill":
        # A pool-worker death: exit hard enough that the executor sees
        # a broken pool, exactly like a kill -9 from outside.
        os._exit(66)
    if spec.kind == "stall":
        time.sleep(spec.seconds)
        return spec
    if spec.kind == "error":
        raise TransientFaultError(f"injected transient fault at {site}")
    if spec.kind == "device_lost":
        raise DeviceLostError(f"injected device loss at {site}")
    if spec.kind == "reset":
        raise ConnectionResetError(f"injected connection reset at {site}")
    return spec  # corrupt / truncate: the seam applies the damage
