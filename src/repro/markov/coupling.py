"""Doeblin/Rosenthal convergence envelopes (paper's Lemma A.2).

Rosenthal's lemma: if ``P^{k0}(x, .) >= eps * Q(.)`` for all ``x``,
then ``||pi_k - pi|| <= (1 - eps)^{floor(k/k0)}``.  The paper
instantiates it with ``k0 = |S|`` (any two states of a recurrent class
are connected by a path of < ``|S|`` hops) and ``eps = p0^{|S|}`` (each
hop has probability at least ``p0 >= 2^{-l}``), yielding Corollary 4.6:
after ``beta = c |S| ln(D) / p0^{|S|}`` rounds the state distribution
is within ``1/D^c`` of stationarity.  These quantities — not asymptotic
stand-ins — are computed here and compared against measured
total-variation decay in the tests and experiments.
"""

from __future__ import annotations

import math

from repro.errors import InvalidParameterError
from repro.markov.chain import MarkovChain


def doeblin_epsilon(chain: MarkovChain) -> float:
    """The paper's conservative minorization constant ``p0^{|S|}``.

    Any state of a recurrent class reaches any other within ``|S| - 1``
    hops, each of probability >= ``p0``; padding to exactly ``|S|``
    steps can cost one more factor, hence the exponent ``|S|``.
    """
    p0 = chain.min_positive_probability()
    return p0**chain.n_states


def rosenthal_envelope(k: int, k0: int, epsilon: float) -> float:
    """``(1 - eps)^{floor(k / k0)}`` — the TV bound after ``k`` steps."""
    if k < 0:
        raise InvalidParameterError(f"k must be >= 0, got {k}")
    if k0 < 1:
        raise InvalidParameterError(f"k0 must be >= 1, got {k0}")
    if not 0.0 < epsilon <= 1.0:
        raise InvalidParameterError(f"epsilon must be in (0, 1], got {epsilon}")
    return (1.0 - epsilon) ** (k // k0)


def mixing_block_length(chain: MarkovChain, distance: int, c: float = 1.0) -> int:
    """The paper's block length ``beta = c |S| ln(D) / p0^{|S|}``.

    After ``beta`` rounds inside a recurrent class the distribution is
    within ``D^{-Theta(c)}`` of stationary; the coupling argument spaces
    each group's rounds ``beta`` apart.  For below-threshold chains
    (``chi <= log log D - omega(1)``) this is ``D^{o(1)}``.
    """
    if distance < 3:
        raise InvalidParameterError(f"distance must be >= 3, got {distance}")
    if c <= 0:
        raise InvalidParameterError(f"c must be positive, got {c}")
    epsilon = doeblin_epsilon(chain)
    beta = c * chain.n_states * math.log(distance) / epsilon
    return max(1, math.ceil(beta))


def steps_for_tv_target(chain: MarkovChain, tv_target: float) -> int:
    """Steps after which the Rosenthal envelope drops below ``tv_target``.

    Uses ``k0 = |S|`` and ``eps = p0^{|S|}`` — the same conservative
    parameters the paper's proof commits to.
    """
    if not 0.0 < tv_target < 1.0:
        raise InvalidParameterError(f"tv_target must be in (0, 1), got {tv_target}")
    epsilon = doeblin_epsilon(chain)
    if epsilon >= 1.0:
        return chain.n_states
    blocks = math.ceil(math.log(tv_target) / math.log(1.0 - epsilon))
    return blocks * chain.n_states
