"""Finite Markov chains with dense transition matrices.

The state counts in this paper are tiny by design — the lower bound
concerns automata with ``2^b`` states for ``b = o(log log D)`` — so a
dense ``(n, n)`` float matrix is the right representation: validation,
powers, and restriction to classes are all simple array operations.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.errors import InvalidParameterError

_ROW_SUM_ATOL = 1e-9


class MarkovChain:
    """A time-homogeneous finite Markov chain ``(S, P)``.

    Parameters
    ----------
    matrix:
        Row-stochastic transition matrix.
    start:
        The initial state (the automaton's ``s0``).
    state_names:
        Optional display names, index-aligned with the matrix.
    """

    def __init__(
        self,
        matrix: np.ndarray,
        start: int = 0,
        state_names: Optional[Sequence[str]] = None,
    ) -> None:
        array = np.asarray(matrix, dtype=float)
        if array.ndim != 2 or array.shape[0] != array.shape[1]:
            raise InvalidParameterError(
                f"transition matrix must be square, got shape {array.shape}"
            )
        n = array.shape[0]
        if n == 0:
            raise InvalidParameterError("chain must have at least one state")
        if np.any(array < 0):
            raise InvalidParameterError("transition probabilities must be non-negative")
        row_sums = array.sum(axis=1)
        bad = np.flatnonzero(np.abs(row_sums - 1.0) > _ROW_SUM_ATOL)
        if bad.size:
            raise InvalidParameterError(
                f"rows must sum to 1; rows {bad.tolist()} sum to {row_sums[bad].tolist()}"
            )
        if not 0 <= start < n:
            raise InvalidParameterError(f"start state {start} out of range 0..{n - 1}")
        if state_names is not None and len(state_names) != n:
            raise InvalidParameterError(
                f"need {n} state names, got {len(state_names)}"
            )
        self._matrix = array
        self._start = start
        self._names = list(state_names) if state_names is not None else [
            f"s{i}" for i in range(n)
        ]
        self._cumulative = np.cumsum(array, axis=1)
        self._cumulative[:, -1] = 1.0

    @property
    def n_states(self) -> int:
        """``|S|``."""
        return self._matrix.shape[0]

    @property
    def start(self) -> int:
        """The initial state index."""
        return self._start

    @property
    def matrix(self) -> np.ndarray:
        """A defensive copy of ``P``."""
        return self._matrix.copy()

    @property
    def state_names(self) -> List[str]:
        """Display names, index-aligned."""
        return list(self._names)

    def probability(self, source: int, destination: int) -> float:
        """``P[source, destination]``."""
        return float(self._matrix[source, destination])

    def successors(self, state: int) -> np.ndarray:
        """Indices reachable from ``state`` in one step (positive prob)."""
        return np.flatnonzero(self._matrix[state] > 0.0)

    def min_positive_probability(self) -> float:
        """The chain's ``p0``: smallest non-zero transition probability.

        The lower bound assumes ``p0 >= 1/2^l``; the Doeblin coefficient
        of Lemma A.2 is ``p0^{|S|}``.
        """
        positive = self._matrix[self._matrix > 0.0]
        if positive.size == 0:
            raise InvalidParameterError("chain has no transitions")
        return float(positive.min())

    def adjacency(self) -> np.ndarray:
        """Boolean adjacency matrix of the transition digraph."""
        return self._matrix > 0.0

    def power(self, exponent: int) -> np.ndarray:
        """``P^k`` via repeated squaring."""
        if exponent < 0:
            raise InvalidParameterError(f"exponent must be >= 0, got {exponent}")
        return np.linalg.matrix_power(self._matrix, exponent)

    def distribution_after(
        self, steps: int, initial: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """The state distribution after ``steps`` transitions.

        ``initial`` defaults to the point mass on the start state.
        """
        if initial is None:
            distribution = np.zeros(self.n_states)
            distribution[self._start] = 1.0
        else:
            distribution = np.asarray(initial, dtype=float).copy()
            if distribution.shape != (self.n_states,):
                raise InvalidParameterError(
                    f"initial distribution must have shape ({self.n_states},)"
                )
            if abs(distribution.sum() - 1.0) > 1e-9 or np.any(distribution < 0):
                raise InvalidParameterError("initial must be a probability vector")
        for _ in range(steps):
            distribution = distribution @ self._matrix
        return distribution

    def step(self, rng: np.random.Generator, state: int) -> int:
        """Sample one transition from ``state``."""
        u = rng.random()
        return int(np.searchsorted(self._cumulative[state], u, side="right"))

    def step_many(self, rng: np.random.Generator, states: np.ndarray) -> np.ndarray:
        """Vectorized transition for an array of independent walkers."""
        u = rng.random(states.shape[0])
        rows = self._cumulative[states]
        return (rows < u[:, None]).sum(axis=1).astype(np.int64)

    def sample_path(
        self, rng: np.random.Generator, length: int, start: Optional[int] = None
    ) -> np.ndarray:
        """A state path of ``length`` steps (entries are post-step states)."""
        if length < 0:
            raise InvalidParameterError(f"length must be >= 0, got {length}")
        current = self._start if start is None else start
        if not 0 <= current < self.n_states:
            raise InvalidParameterError(f"start state {current} out of range")
        path = np.empty(length, dtype=np.int64)
        for index in range(length):
            current = self.step(rng, current)
            path[index] = current
        return path

    def restricted_to(self, states: Sequence[int]) -> "MarkovChain":
        """The chain induced on a *closed* subset of states.

        Raises if the subset leaks probability (is not closed), because
        the induced object would not be a Markov chain; recurrent
        classes are closed by definition.
        """
        indices = np.asarray(sorted(set(int(s) for s in states)), dtype=np.int64)
        if indices.size == 0:
            raise InvalidParameterError("state subset must be non-empty")
        sub = self._matrix[np.ix_(indices, indices)]
        row_sums = sub.sum(axis=1)
        if np.any(np.abs(row_sums - 1.0) > _ROW_SUM_ATOL):
            raise InvalidParameterError(
                "subset is not closed under the transition function"
            )
        names = [self._names[i] for i in indices]
        return MarkovChain(sub, start=0, state_names=names)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MarkovChain(n_states={self.n_states}, start={self._start})"
