"""Hitting and absorption times via the fundamental matrix.

The lower bound's first step (Lemma 4.2 / Corollary 4.3) bounds how
long an agent can dawdle among transient states before entering a
recurrent class: ``R0 = p0^{-2^b} 2^b c log D`` rounds suffice w.h.p.
That envelope is extremely conservative; this module computes the
*exact* expected absorption time through the standard fundamental
matrix ``N = (I - Q)^{-1}`` (``Q`` = transient-to-transient block), so
experiments can report "proof envelope vs exact value vs measured".

Also provided: expected hitting times of a target state inside an
irreducible chain (first-step linear system), used as an independent
cross-check of the walk/search simulators at small sizes.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Sequence

import numpy as np

from repro.errors import AnalysisError, InvalidParameterError
from repro.markov.chain import MarkovChain
from repro.markov.classify import StateClassification, classify_states


def fundamental_matrix(chain: MarkovChain, classification: Optional[StateClassification] = None) -> np.ndarray:
    """``N = (I - Q)^{-1}`` over the chain's transient states.

    ``N[i, j]`` is the expected number of visits to transient state ``j``
    starting from transient state ``i`` before absorption.  Raises when
    the chain has no transient states (nothing to absorb from).
    """
    classification = classification or classify_states(chain)
    transient = sorted(classification.transient_states)
    if not transient:
        raise AnalysisError("chain has no transient states")
    q = chain.matrix[np.ix_(transient, transient)]
    identity = np.eye(len(transient))
    try:
        return np.linalg.inv(identity - q)
    except np.linalg.LinAlgError as error:  # pragma: no cover - singular Q
        raise AnalysisError("fundamental matrix is singular") from error


def expected_absorption_time(
    chain: MarkovChain,
    start: Optional[int] = None,
    classification: Optional[StateClassification] = None,
) -> float:
    """Expected steps from ``start`` until entering a recurrent class.

    Zero when the start state is already recurrent.  This is the exact
    value that Lemma 4.2's ``R0`` envelope upper-bounds (typically by
    many orders of magnitude — the proof only needs *some*
    ``D^{o(1)}`` bound).
    """
    classification = classification or classify_states(chain)
    state = chain.start if start is None else start
    if not 0 <= state < chain.n_states:
        raise InvalidParameterError(f"state {state} out of range")
    if classification.is_recurrent(state):
        return 0.0
    transient = sorted(classification.transient_states)
    n_matrix = fundamental_matrix(chain, classification)
    index = transient.index(state)
    return float(n_matrix[index].sum())


def absorption_time_distribution_tail(
    chain: MarkovChain,
    rounds: int,
    classification: Optional[StateClassification] = None,
) -> np.ndarray:
    """``P[still transient after r rounds]`` for ``r = 0..rounds``.

    Computed by propagating the start distribution restricted to the
    transient block; used to verify the "w.h.p. within R0 rounds"
    claims against exact numbers.
    """
    if rounds < 0:
        raise InvalidParameterError(f"rounds must be >= 0, got {rounds}")
    classification = classification or classify_states(chain)
    transient = sorted(classification.transient_states)
    tail = np.ones(rounds + 1)
    if not transient or chain.start not in transient:
        tail[:] = 0.0
        if chain.start in transient:
            tail[0] = 1.0
        return tail
    q = chain.matrix[np.ix_(transient, transient)]
    mass = np.zeros(len(transient))
    mass[transient.index(chain.start)] = 1.0
    tail[0] = 1.0
    for r in range(1, rounds + 1):
        mass = mass @ q
        tail[r] = float(mass.sum())
    return tail


def expected_hitting_times(
    chain: MarkovChain, target: int
) -> np.ndarray:
    """Expected steps to first reach ``target`` from every state.

    Solves the first-step equations ``h[x] = 1 + sum_y P[x,y] h[y]``
    with ``h[target] = 0``.  Requires the target to be reachable from
    every state (e.g. an irreducible chain); raises otherwise.
    """
    if not 0 <= target < chain.n_states:
        raise InvalidParameterError(f"target {target} out of range")
    n = chain.n_states
    others = [s for s in range(n) if s != target]
    if not others:
        return np.zeros(1)
    p = chain.matrix[np.ix_(others, others)]
    system = np.eye(len(others)) - p
    try:
        solution = np.linalg.solve(system, np.ones(len(others)))
    except np.linalg.LinAlgError as error:
        raise AnalysisError(
            "hitting-time system is singular (target not reachable "
            "from every state)"
        ) from error
    if np.any(solution < -1e-9):
        raise AnalysisError("hitting-time system produced negative times")
    times = np.zeros(n)
    for index, state in enumerate(others):
        times[state] = solution[index]
    return times


def expected_return_time(chain: MarkovChain, state: int) -> float:
    """Expected steps to return to ``state`` (Kac's formula cross-check).

    For an irreducible chain this equals ``1 / pi(state)``; computed
    here by first-step analysis so tests can confirm Kac's identity
    against :func:`repro.markov.stationary.stationary_distribution`.
    """
    hitting = expected_hitting_times(chain, state)
    row = chain.matrix[state]
    return float(1.0 + row @ hitting)


def mean_visits_before_absorption(
    chain: MarkovChain,
    classification: Optional[StateClassification] = None,
) -> Dict[int, float]:
    """Expected visits to each transient state before absorption.

    Keyed by state index; read off the start state's row of the
    fundamental matrix.
    """
    classification = classification or classify_states(chain)
    transient = sorted(classification.transient_states)
    if not transient:
        return {}
    if chain.start not in transient:
        return {state: 0.0 for state in transient}
    n_matrix = fundamental_matrix(chain, classification)
    row = n_matrix[transient.index(chain.start)]
    return {state: float(row[i]) for i, state in enumerate(transient)}
