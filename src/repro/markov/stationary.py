"""Stationary distributions, Cesaro averages, total variation.

Corollary 4.6 of the paper needs the unique stationary distribution of
``P^t`` restricted to a cyclic class; Corollary 4.10's drift vector is
an expectation under the long-run occupation distribution of a
recurrent class.  This module computes both by solving the fixed-point
linear system directly (chains here are tiny), plus power iteration as
an independent cross-check used by tests.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import AnalysisError, InvalidParameterError
from repro.markov.chain import MarkovChain


def total_variation(p: np.ndarray, q: np.ndarray) -> float:
    """Total-variation distance ``(1/2) * sum |p_i - q_i|``."""
    a = np.asarray(p, dtype=float)
    b = np.asarray(q, dtype=float)
    if a.shape != b.shape:
        raise InvalidParameterError(f"shape mismatch: {a.shape} vs {b.shape}")
    return 0.5 * float(np.abs(a - b).sum())


def _solve_stationary(matrix: np.ndarray) -> np.ndarray:
    """Solve ``pi P = pi``, ``sum pi = 1`` by least squares.

    Least squares (rather than a square solve on a pinned component)
    handles periodic chains, whose eigenvalue structure makes naive
    pivoting fragile, and raises if the residual indicates no solution.
    """
    n = matrix.shape[0]
    system = np.vstack([matrix.T - np.eye(n), np.ones((1, n))])
    rhs = np.zeros(n + 1)
    rhs[-1] = 1.0
    solution, *_ = np.linalg.lstsq(system, rhs, rcond=None)
    residual = system @ solution - rhs
    if np.abs(residual).max() > 1e-8:
        raise AnalysisError("stationary system is inconsistent")
    solution = np.clip(solution, 0.0, None)
    total = solution.sum()
    if total <= 0:
        raise AnalysisError("stationary solve produced a zero vector")
    return solution / total


def stationary_distribution(
    chain: MarkovChain, members: Optional[Sequence[int]] = None
) -> np.ndarray:
    """The stationary distribution of the chain (or a closed class of it).

    For an irreducible class this is unique (even when periodic — it is
    then the Cesaro/occupation limit rather than the simple limit).
    When ``members`` is given, the result is a full-length vector
    supported on the class, which keeps downstream indexing uniform.
    """
    if members is None:
        pi = _solve_stationary(chain.matrix)
        return pi
    member_list = sorted(set(int(m) for m in members))
    sub = chain.restricted_to(member_list)
    pi_sub = _solve_stationary(sub.matrix)
    pi = np.zeros(chain.n_states)
    pi[member_list] = pi_sub
    return pi


def occupation_distribution(
    chain: MarkovChain, members: Sequence[int]
) -> np.ndarray:
    """Long-run fraction of time spent in each state of a closed class.

    For irreducible classes this equals :func:`stationary_distribution`;
    the separate name documents intent at call sites (drift vectors are
    occupation averages regardless of periodicity).
    """
    return stationary_distribution(chain, members)


def cesaro_distribution(
    chain: MarkovChain, steps: int, initial: Optional[np.ndarray] = None
) -> np.ndarray:
    """The Cesaro average ``(1/k) sum_{j=1..k} mu P^j``.

    Converges to the occupation distribution for any start inside a
    recurrent class, periodic or not; tests cross-check the linear
    solve against this average.
    """
    if steps < 1:
        raise InvalidParameterError(f"steps must be >= 1, got {steps}")
    if initial is None:
        current = np.zeros(chain.n_states)
        current[chain.start] = 1.0
    else:
        current = np.asarray(initial, dtype=float).copy()
    matrix = chain.matrix
    accumulator = np.zeros_like(current)
    for _ in range(steps):
        current = current @ matrix
        accumulator += current
    return accumulator / steps


def power_iteration_distribution(
    chain: MarkovChain,
    members: Optional[Sequence[int]] = None,
    tolerance: float = 1e-12,
    max_rounds: int = 200_000,
) -> np.ndarray:
    """Stationary distribution via power iteration on the lazy chain.

    Independent cross-check for :func:`stationary_distribution`.  The
    lazy chain ``(P + I)/2`` has the same stationary distribution but is
    aperiodic, so plain power iteration converges geometrically even
    for periodic classes.
    """
    target_chain = (
        chain if members is None else chain.restricted_to(sorted(set(map(int, members))))
    )
    n = target_chain.n_states
    lazy = 0.5 * (target_chain.matrix + np.eye(n))
    current = np.full(n, 1.0 / n)
    for _ in range(max_rounds):
        updated = current @ lazy
        if np.abs(updated - current).max() < tolerance:
            current = updated
            break
        current = updated
    else:
        raise AnalysisError("power iteration did not converge")
    result = current / current.sum()
    if members is None:
        return result
    member_list = sorted(set(int(m) for m in members))
    full = np.zeros(chain.n_states)
    full[member_list] = result
    return full
