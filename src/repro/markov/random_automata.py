"""Adversary families: agent automata with bounded selection complexity.

The lower bound (Theorem 4.1) quantifies over *all* algorithms with
``chi(A) = b + log2(l) <= log log D - omega(1)``.  Finite experiments
cannot quantify over all of them, so they sample from families that
span the regime's behaviours:

* :func:`random_bounded_automaton` — uniformly structured random
  machines with ``2^b`` states whose transition probabilities are
  multiples of ``2^{-l}`` (so ``p_min >= 2^{-l}`` holds exactly);
* :func:`uniform_walk_automaton` — the uniform random walk (the
  classical ``min{log n, D}``-speed-up baseline the paper cites);
* :func:`biased_walk_automaton` — drifting walkers, the behaviour the
  lower-bound proof shows *every* small machine degenerates to;
* :func:`cycle_automaton` — deterministic periodic machines exercising
  the periodicity machinery (Feller classes, Cesaro limits).

All constructors return :class:`repro.core.automaton.Automaton` with
state 0 labeled ORIGIN as the model requires.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.actions import Action
from repro.core.automaton import Automaton
from repro.errors import InvalidParameterError

_MOVE_LABELS = [Action.UP, Action.DOWN, Action.LEFT, Action.RIGHT]
_DEFAULT_LABEL_POOL = [*_MOVE_LABELS, Action.NONE]


def _dyadic_row(
    rng: np.random.Generator, n_states: int, out_degree: int, ell: int
) -> np.ndarray:
    """A random row whose positive entries are multiples of ``2^{-l}``.

    Distributes the ``2^l`` probability quanta over ``out_degree``
    distinct successors, at least one quantum each, so the smallest
    positive entry is exactly >= ``2^{-l}``.
    """
    quanta = 2**ell
    if not 1 <= out_degree <= min(n_states, quanta):
        raise InvalidParameterError(
            f"out_degree must be in 1..min(n_states, 2^l) = "
            f"{min(n_states, quanta)}, got {out_degree}"
        )
    successors = rng.choice(n_states, size=out_degree, replace=False)
    counts = np.ones(out_degree, dtype=np.int64)
    spare = quanta - out_degree
    if spare > 0:
        extra = rng.multinomial(spare, np.full(out_degree, 1.0 / out_degree))
        counts += extra
    row = np.zeros(n_states)
    row[successors] = counts / quanta
    return row


def random_bounded_automaton(
    rng: np.random.Generator,
    bits: int,
    ell: int,
    *,
    none_fraction: float = 0.2,
    max_out_degree: int | None = None,
    name: str | None = None,
) -> Automaton:
    """A random agent automaton with ``2^bits`` states and ``p_min >= 2^{-l}``.

    Labels are drawn over moves and NONE (weighted by
    ``none_fraction``); state 0 is ORIGIN and is also the start state,
    so sampled machines may or may not keep returning to the origin —
    both behaviours occur in the adversary class.
    """
    if bits < 1:
        raise InvalidParameterError(f"bits must be >= 1, got {bits}")
    if ell < 1:
        raise InvalidParameterError(f"ell must be >= 1, got {ell}")
    if not 0.0 <= none_fraction < 1.0:
        raise InvalidParameterError(
            f"none_fraction must be in [0, 1), got {none_fraction}"
        )
    n_states = 2**bits
    degree_cap = min(n_states, 2**ell, max_out_degree or n_states)
    matrix = np.zeros((n_states, n_states))
    for state in range(n_states):
        out_degree = int(rng.integers(1, degree_cap + 1))
        matrix[state] = _dyadic_row(rng, n_states, out_degree, ell)

    move_weight = (1.0 - none_fraction) / 4.0
    weights = np.array([move_weight] * 4 + [none_fraction])
    labels = [Action.ORIGIN] + [
        _DEFAULT_LABEL_POOL[int(i)]
        for i in rng.choice(len(_DEFAULT_LABEL_POOL), size=n_states - 1, p=weights)
    ]
    return Automaton(
        matrix,
        labels,
        start=0,
        name=name or f"random(b={bits},l={ell})",
    )


def uniform_walk_automaton() -> Automaton:
    """The uniform random walk as a five-state automaton.

    State 0 (ORIGIN, start) and one state per direction; every state
    moves to a uniformly random direction state.  ``b = 3`` bits,
    ``l = 2`` — far below ``log log D`` for any interesting ``D``, so
    the lower bound applies: speed-up is limited to ``min{log n, D}``
    (the paper cites Alon et al. for the exact random-walk bound).
    """
    matrix = np.zeros((5, 5))
    matrix[:, 1:] = 0.25
    labels = [Action.ORIGIN, *_MOVE_LABELS]
    return Automaton(matrix, labels, start=0, name="uniform-walk")


def biased_walk_automaton(
    weights: Sequence[float], ell: int, name: str | None = None
) -> Automaton:
    """A walker whose each move is drawn from a fixed direction bias.

    ``weights`` are relative weights over (up, down, left, right); they
    are quantized to multiples of ``2^{-l}`` (largest-remainder
    rounding) so the machine respects the probability floor exactly.
    The drift vector of the single recurrent class is then the
    quantized expectation — the straight line Corollary 4.10 predicts.
    """
    raw = np.asarray(weights, dtype=float)
    if raw.shape != (4,) or np.any(raw < 0) or raw.sum() <= 0:
        raise InvalidParameterError("weights must be 4 non-negative values, not all 0")
    quanta = 2**ell
    scaled = raw / raw.sum() * quanta
    counts = np.floor(scaled).astype(np.int64)
    remainder = quanta - counts.sum()
    if remainder > 0:
        order = np.argsort(-(scaled - counts))
        counts[order[:remainder]] += 1
    if np.all(counts == 0):
        raise InvalidParameterError("quantization produced an empty distribution")
    probabilities = counts / quanta

    matrix = np.zeros((5, 5))
    matrix[:, 1:] = probabilities
    labels = [Action.ORIGIN, *_MOVE_LABELS]
    return Automaton(
        matrix, labels, start=0, name=name or f"biased-walk(l={ell})"
    )


def cycle_automaton(pattern: Sequence[Action], name: str | None = None) -> Automaton:
    """A deterministic cyclic machine stepping through ``pattern`` forever.

    State 0 is ORIGIN; states ``1..len(pattern)`` carry the pattern's
    labels and chain deterministically, wrapping from the last back to
    the first pattern state (not to the origin).  Period equals
    ``len(pattern)``; the recurrent class is the pattern cycle.
    """
    actions = list(pattern)
    if not actions:
        raise InvalidParameterError("pattern must be non-empty")
    if any(action is Action.ORIGIN for action in actions):
        raise InvalidParameterError("pattern may not contain ORIGIN")
    n = len(actions) + 1
    matrix = np.zeros((n, n))
    matrix[0, 1] = 1.0
    for position in range(1, n):
        successor = position + 1 if position + 1 < n else 1
        matrix[position, successor] = 1.0
    labels = [Action.ORIGIN, *actions]
    return Automaton(matrix, labels, start=0, name=name or f"cycle(t={len(actions)})")
