"""Periods and cyclic classes (Feller's theorem; paper's Theorem A.1).

An irreducible chain with period ``t`` partitions into cyclic classes
``G_0..G_{t-1}`` such that one-step transitions always advance to the
next class (mod ``t``), and ``P^t`` restricted to each ``G_tau`` is an
irreducible closed chain.  The paper's coupling argument (Section
4.2.2) groups rounds by residue so that each group mixes inside one
cyclic class.
"""

from __future__ import annotations

import math
from typing import List, Sequence

import numpy as np

from repro.errors import AnalysisError, InvalidParameterError
from repro.markov.chain import MarkovChain


def _bfs_levels(adjacency: np.ndarray, members: Sequence[int], root: int) -> dict[int, int]:
    """BFS levels of ``members`` from ``root`` within the class subgraph."""
    member_set = set(int(m) for m in members)
    levels = {root: 0}
    frontier = [root]
    while frontier:
        next_frontier: List[int] = []
        for vertex in frontier:
            for child in np.flatnonzero(adjacency[vertex]):
                child = int(child)
                if child in member_set and child not in levels:
                    levels[child] = levels[vertex] + 1
                    next_frontier.append(child)
        frontier = next_frontier
    return levels


def class_period(chain: MarkovChain, members: Sequence[int]) -> int:
    """Period of an irreducible (e.g. recurrent) class of states.

    Computed as ``gcd`` over all intra-class edges ``(u, v)`` of
    ``level(u) + 1 - level(v)`` for BFS levels from an arbitrary root —
    the standard linear-time period algorithm.
    """
    member_list = sorted(set(int(m) for m in members))
    if not member_list:
        raise InvalidParameterError("class must be non-empty")
    adjacency = chain.adjacency()
    root = member_list[0]
    levels = _bfs_levels(adjacency, member_list, root)
    if set(levels) != set(member_list):
        raise AnalysisError("class is not strongly connected from its root")
    period = 0
    for u in member_list:
        for v in np.flatnonzero(adjacency[u]):
            v = int(v)
            if v in levels:
                period = math.gcd(period, levels[u] + 1 - levels[v])
    if period == 0:
        raise AnalysisError("class has no internal edges")
    return abs(period)


def cyclic_classes(chain: MarkovChain, members: Sequence[int]) -> List[List[int]]:
    """Feller's classes ``G_0..G_{t-1}`` of an irreducible class.

    ``G_tau`` collects the states whose BFS level from the root is
    ``tau (mod t)``; Theorem A.1 guarantees one-step transitions map
    ``G_tau`` into ``G_{tau+1 mod t}``, which the tests verify.
    """
    member_list = sorted(set(int(m) for m in members))
    period = class_period(chain, member_list)
    adjacency = chain.adjacency()
    levels = _bfs_levels(adjacency, member_list, member_list[0])
    classes: List[List[int]] = [[] for _ in range(period)]
    for state in member_list:
        classes[levels[state] % period].append(state)
    return [sorted(group) for group in classes]


def is_aperiodic(chain: MarkovChain, members: Sequence[int]) -> bool:
    """Whether the class has period one."""
    return class_period(chain, members) == 1
