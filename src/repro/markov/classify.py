"""State classification: SCCs, transient and recurrent classes.

Corollary 4.3 of the paper needs the recurrent classes of an agent's
chain: within ``R0 = D^{o(1)}`` rounds the agent is in one of them
w.h.p. and never leaves.  A recurrent class is exactly a strongly
connected component with no outgoing edge in the condensation.

The SCC computation is an iterative Tarjan (explicit stack, no
recursion) implemented from scratch — chains here are small, but the
implementation is exact and property-tested against brute-force
reachability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Tuple

import numpy as np

from repro.errors import InvalidParameterError
from repro.markov.chain import MarkovChain


def strongly_connected_components(adjacency: np.ndarray) -> List[List[int]]:
    """Tarjan's algorithm, iteratively, on a boolean adjacency matrix.

    Returns components in reverse topological order (every edge between
    components points from a later list entry to an earlier one), which
    is the order Tarjan naturally emits.
    """
    matrix = np.asarray(adjacency, dtype=bool)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise InvalidParameterError(
            f"adjacency must be square, got shape {matrix.shape}"
        )
    n = matrix.shape[0]
    successors = [np.flatnonzero(matrix[v]).tolist() for v in range(n)]

    index_of = [-1] * n
    low_link = [0] * n
    on_stack = [False] * n
    stack: List[int] = []
    components: List[List[int]] = []
    next_index = 0

    for root in range(n):
        if index_of[root] != -1:
            continue
        # Each work item is (vertex, iterator position into successors).
        work: List[Tuple[int, int]] = [(root, 0)]
        while work:
            vertex, position = work[-1]
            if position == 0:
                index_of[vertex] = next_index
                low_link[vertex] = next_index
                next_index += 1
                stack.append(vertex)
                on_stack[vertex] = True
            advanced = False
            for offset in range(position, len(successors[vertex])):
                child = successors[vertex][offset]
                if index_of[child] == -1:
                    work[-1] = (vertex, offset + 1)
                    work.append((child, 0))
                    advanced = True
                    break
                if on_stack[child]:
                    low_link[vertex] = min(low_link[vertex], index_of[child])
            if advanced:
                continue
            work.pop()
            if low_link[vertex] == index_of[vertex]:
                component: List[int] = []
                while True:
                    node = stack.pop()
                    on_stack[node] = False
                    component.append(node)
                    if node == vertex:
                        break
                components.append(sorted(component))
            if work:
                parent, _ = work[-1]
                low_link[parent] = min(low_link[parent], low_link[vertex])
    return components


@dataclass(frozen=True)
class StateClassification:
    """Partition of a chain's states into recurrent classes and transients."""

    recurrent_classes: Tuple[FrozenSet[int], ...]
    transient_states: FrozenSet[int]

    @property
    def n_recurrent_classes(self) -> int:
        """Number of recurrent classes (the ``|C|`` of Section 4)."""
        return len(self.recurrent_classes)

    def class_of(self, state: int) -> FrozenSet[int] | None:
        """The recurrent class containing ``state``, or ``None``."""
        for cls in self.recurrent_classes:
            if state in cls:
                return cls
        return None

    def is_recurrent(self, state: int) -> bool:
        """Whether ``state`` belongs to some recurrent class."""
        return self.class_of(state) is not None


def classify_states(chain: MarkovChain) -> StateClassification:
    """Partition states: an SCC is recurrent iff it has no exit edge."""
    adjacency = chain.adjacency()
    components = strongly_connected_components(adjacency)
    recurrent: List[FrozenSet[int]] = []
    transient: List[int] = []
    for component in components:
        members = np.asarray(component, dtype=np.int64)
        outside = np.setdiff1d(np.arange(chain.n_states), members, assume_unique=False)
        leaks = bool(adjacency[np.ix_(members, outside)].any()) if outside.size else False
        if leaks:
            transient.extend(component)
        else:
            recurrent.append(frozenset(component))
    return StateClassification(
        recurrent_classes=tuple(sorted(recurrent, key=min)),
        transient_states=frozenset(transient),
    )


def reachable_from(chain: MarkovChain, state: int) -> FrozenSet[int]:
    """All states reachable from ``state`` (including itself)."""
    if not 0 <= state < chain.n_states:
        raise InvalidParameterError(f"state {state} out of range")
    adjacency = chain.adjacency()
    seen = {state}
    frontier = [state]
    while frontier:
        vertex = frontier.pop()
        for child in np.flatnonzero(adjacency[vertex]):
            child = int(child)
            if child not in seen:
                seen.add(child)
                frontier.append(child)
    return frozenset(seen)


def absorbing_probability_classes(
    chain: MarkovChain, classification: StateClassification | None = None
) -> dict[FrozenSet[int], float]:
    """Probability of being absorbed into each recurrent class from ``s0``.

    Solves the standard first-step linear system on the transient
    states.  Used by the lower-bound certifier to weight per-class drift
    predictions by how likely an agent is to land in each class.
    """
    classification = classification or classify_states(chain)
    matrix = chain.matrix
    transient = sorted(classification.transient_states)
    index_in_transient = {state: i for i, state in enumerate(transient)}
    result: dict[FrozenSet[int], float] = {}
    if not transient:
        for cls in classification.recurrent_classes:
            result[cls] = 1.0 if chain.start in cls else 0.0
        return result

    q = matrix[np.ix_(transient, transient)]
    identity = np.eye(len(transient))
    for cls in classification.recurrent_classes:
        members = sorted(cls)
        into_class = matrix[np.ix_(transient, members)].sum(axis=1)
        absorbed = np.linalg.solve(identity - q, into_class)
        if chain.start in cls:
            result[cls] = 1.0
        elif chain.start in index_in_transient:
            result[cls] = float(absorbed[index_in_transient[chain.start]])
        else:
            result[cls] = 0.0
    return result
