"""Markov-chain substrate for the lower-bound analysis (Section 4).

The paper's lower bound treats each agent as a finite Markov chain and
argues: the agent falls into a recurrent class within ``D^{o(1)}``
rounds (Corollary 4.3); within a class, distributions converge to
stationarity at Doeblin rate (Corollary 4.6 via Rosenthal's lemma);
hence trajectories concentrate along per-class drift lines (Corollary
4.10).  This subpackage implements each ingredient from scratch:

* :mod:`repro.markov.chain` — dense finite chains with validation and
  (vectorized) sampling;
* :mod:`repro.markov.classify` — Tarjan SCCs, transient/recurrent
  classification;
* :mod:`repro.markov.periodicity` — class periods and Feller's cyclic
  classes (Theorem A.1);
* :mod:`repro.markov.stationary` — stationary distributions, Cesaro
  averages, total-variation distance;
* :mod:`repro.markov.coupling` — the Doeblin/Rosenthal convergence
  envelope (Lemma A.2);
* :mod:`repro.markov.random_automata` — the adversary families of
  bounded-chi agent automata the experiments instantiate.
"""

from repro.markov.chain import MarkovChain
from repro.markov.classify import StateClassification, classify_states, strongly_connected_components
from repro.markov.coupling import doeblin_epsilon, rosenthal_envelope
from repro.markov.hitting import (
    expected_absorption_time,
    expected_hitting_times,
    expected_return_time,
    fundamental_matrix,
)
from repro.markov.periodicity import class_period, cyclic_classes
from repro.markov.stationary import (
    cesaro_distribution,
    occupation_distribution,
    stationary_distribution,
    total_variation,
)

__all__ = [
    "MarkovChain",
    "StateClassification",
    "classify_states",
    "strongly_connected_components",
    "doeblin_epsilon",
    "rosenthal_envelope",
    "expected_absorption_time",
    "expected_hitting_times",
    "expected_return_time",
    "fundamental_matrix",
    "class_period",
    "cyclic_classes",
    "cesaro_distribution",
    "occupation_distribution",
    "stationary_distribution",
    "total_variation",
]
