"""Exception hierarchy for the repro package.

Every error raised deliberately by this library derives from
:class:`ReproError` so callers can catch library failures with a single
``except`` clause without swallowing unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class InvalidParameterError(ReproError, ValueError):
    """A caller supplied a parameter outside its documented domain.

    Raised eagerly at construction time (e.g. a non-positive distance
    ``D``, a probability outside ``(0, 1]``, or an automaton whose rows
    do not sum to one) so that misuse fails loudly instead of producing
    silently wrong simulation results.
    """


class SimulationBudgetExceeded(ReproError, RuntimeError):
    """A simulation hit its move/step budget before finding the target.

    Carries the budget and progress so callers can distinguish "the
    algorithm is slow" from "the algorithm provably cannot finish"
    (the situation the paper's lower bound engineers on purpose).
    """

    def __init__(self, message: str, *, budget: int, consumed: int) -> None:
        super().__init__(message)
        self.budget = budget
        self.consumed = consumed


class JobCancelledError(ReproError, RuntimeError):
    """An asynchronous simulation job was cancelled before completing.

    Raised by :meth:`repro.sim.jobs.SimulationJob.result` (and the
    sweep handle's equivalent) when the caller asks for the result of a
    job whose execution was cancelled.  Shards that completed before the
    cancellation remain in the result cache, so resubmitting the same
    request resumes instead of restarting.
    """


class DeadlineExceededError(ReproError, TimeoutError):
    """A simulation job ran past its request-level deadline.

    Raised by the job layer when ``SimulationRequest.deadline_seconds``
    elapses before the job settles.  Shards that completed before the
    deadline are already written through to the result cache, so
    resubmitting the same request (with or without a deadline) resumes
    from them instead of restarting.
    """


class DeviceLostError(ReproError, RuntimeError):
    """An accelerator device disappeared or failed mid-execution.

    Backends raise this (and the fault harness injects it) when the
    device a job was planned onto stops answering.  The job layer treats
    it as a degradation signal, not a terminal failure: the job is
    re-executed on the next supporting backend (normally ``batched``)
    with the decline reason recorded, producing results bit-identical
    to a run that had used the fallback from the start.
    """


class TransientFaultError(ReproError, RuntimeError):
    """An injected (or genuinely transient) retryable execution fault.

    The shard retry machinery in :mod:`repro.sim.jobs` treats this
    class — alongside broken process pools and OS-level errors — as
    safe to retry with backoff, because shard outcomes are a pure
    function of ``(request, backend, trial range)``.
    """


class AnalysisError(ReproError, RuntimeError):
    """A Markov-chain analysis could not be completed.

    For example: requesting the stationary distribution of a class that
    is not recurrent, or the period of an empty state set.
    """
