"""repro — reproduction of Lenzen, Lynch, Newport & Radeva (PODC 2014).

"Trade-offs between Selection Complexity and Performance when Searching
the Plane without Communication" studies ``n`` non-communicating
probabilistic finite automata searching the grid for a target at
unknown distance ``D``, trading the selection-complexity metric
``chi(A) = b + log2(l)`` against the achievable speed-up.

Public API highlights
---------------------

Algorithms (``repro.core``, re-exported here):

* :class:`~repro.core.algorithm1.Algorithm1` — knows ``D``, optimal
  ``O(D^2/n + D)`` expected moves (Theorem 3.5);
* :class:`~repro.core.nonuniform.NonUniformSearch` — knows ``D``, coarse
  coins only, ``chi = log log D + O(1)`` (Theorem 3.7);
* :class:`~repro.core.uniform.UniformSearch` — uniform in ``D``,
  ``(D^2/n + D) * 2^{O(l)}`` with ``chi <= 3 log log D + O(1)``
  (Theorem 3.14).

Substrates: the grid world (``repro.grid``), Markov-chain analysis
(``repro.markov``), the simulation engines (``repro.sim``), baseline
algorithms (``repro.baselines``) and the lower-bound machinery
(``repro.lowerbound``).

Simulations run through the backend service layer (see
ARCHITECTURE.md): build a :class:`~repro.sim.SimulationRequest` and
call :func:`~repro.sim.simulate`, which dispatches to the faithful
engine, the closed-form simulators, or the batched whole-trial-batch
NumPy backend and can shard trials across worker processes.

Quickstart
----------

>>> from repro import AlgorithmSpec, SimulationRequest, simulate
>>> request = SimulationRequest(
...     algorithm=AlgorithmSpec.uniform(1),
...     n_agents=4, target=(5, 3), move_budget=50_000, seed=7,
... )
>>> simulate(request).outcome.found
True
"""

from repro.core import (
    Action,
    Algorithm1,
    Automaton,
    AutomatonAlgorithm,
    CompositeCoin,
    DoublyUniformSearch,
    MemoryMeter,
    NonUniformSearch,
    SearchAlgorithm,
    SelectionComplexity,
    UniformSearch,
    calibrated_K,
    chi_threshold,
)
from repro.grid import (
    CornerTarget,
    FixedTarget,
    GridWorld,
    MultiTargetWorld,
    RingTarget,
    UniformSquareTarget,
)
from repro.sim import (
    AlgorithmSpec,
    EngineConfig,
    SearchEngine,
    SearchOutcome,
    SimulationJob,
    SimulationRequest,
    SimulationResult,
    simulate,
    simulate_async,
    spawn_generators,
    speedup,
)

__version__ = "1.0.0"

__all__ = [
    "Action",
    "Algorithm1",
    "Automaton",
    "AutomatonAlgorithm",
    "CompositeCoin",
    "DoublyUniformSearch",
    "MemoryMeter",
    "NonUniformSearch",
    "SearchAlgorithm",
    "SelectionComplexity",
    "UniformSearch",
    "calibrated_K",
    "chi_threshold",
    "GridWorld",
    "MultiTargetWorld",
    "FixedTarget",
    "CornerTarget",
    "UniformSquareTarget",
    "RingTarget",
    "AlgorithmSpec",
    "EngineConfig",
    "SearchEngine",
    "SearchOutcome",
    "SimulationJob",
    "SimulationRequest",
    "SimulationResult",
    "simulate",
    "simulate_async",
    "spawn_generators",
    "speedup",
    "__version__",
]
