"""repro — reproduction of Lenzen, Lynch, Newport & Radeva (PODC 2014).

"Trade-offs between Selection Complexity and Performance when Searching
the Plane without Communication" studies ``n`` non-communicating
probabilistic finite automata searching the grid for a target at
unknown distance ``D``, trading the selection-complexity metric
``chi(A) = b + log2(l)`` against the achievable speed-up.

Public API highlights
---------------------

Algorithms (``repro.core``, re-exported here):

* :class:`~repro.core.algorithm1.Algorithm1` — knows ``D``, optimal
  ``O(D^2/n + D)`` expected moves (Theorem 3.5);
* :class:`~repro.core.nonuniform.NonUniformSearch` — knows ``D``, coarse
  coins only, ``chi = log log D + O(1)`` (Theorem 3.7);
* :class:`~repro.core.uniform.UniformSearch` — uniform in ``D``,
  ``(D^2/n + D) * 2^{O(l)}`` with ``chi <= 3 log log D + O(1)``
  (Theorem 3.14).

Substrates: the grid world (``repro.grid``), Markov-chain analysis
(``repro.markov``), the simulation engines (``repro.sim``), baseline
algorithms (``repro.baselines``) and the lower-bound machinery
(``repro.lowerbound``).

Quickstart
----------

>>> from repro import UniformSearch, GridWorld, SearchEngine, EngineConfig
>>> world = GridWorld(target=(5, 3), distance_bound=8)
>>> engine = SearchEngine(EngineConfig(move_budget=50_000))
>>> outcome = engine.run(UniformSearch(n_agents=4), 4, world, rng=7)
>>> outcome.found
True
"""

from repro.core import (
    Action,
    Algorithm1,
    Automaton,
    AutomatonAlgorithm,
    CompositeCoin,
    DoublyUniformSearch,
    MemoryMeter,
    NonUniformSearch,
    SearchAlgorithm,
    SelectionComplexity,
    UniformSearch,
    calibrated_K,
    chi_threshold,
)
from repro.grid import (
    CornerTarget,
    FixedTarget,
    GridWorld,
    MultiTargetWorld,
    RingTarget,
    UniformSquareTarget,
)
from repro.sim import (
    EngineConfig,
    SearchEngine,
    SearchOutcome,
    spawn_generators,
    speedup,
)

__version__ = "1.0.0"

__all__ = [
    "Action",
    "Algorithm1",
    "Automaton",
    "AutomatonAlgorithm",
    "CompositeCoin",
    "DoublyUniformSearch",
    "MemoryMeter",
    "NonUniformSearch",
    "SearchAlgorithm",
    "SelectionComplexity",
    "UniformSearch",
    "calibrated_K",
    "chi_threshold",
    "GridWorld",
    "MultiTargetWorld",
    "FixedTarget",
    "CornerTarget",
    "UniformSquareTarget",
    "RingTarget",
    "EngineConfig",
    "SearchEngine",
    "SearchOutcome",
    "spawn_generators",
    "speedup",
    "__version__",
]
