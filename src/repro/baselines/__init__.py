"""Baseline search algorithms the paper compares against.

* :class:`~repro.baselines.random_walk.RandomWalkSearch` — uniform
  random walks; speed-up capped at ``min{log n, D}`` (Alon et al.,
  cited as [3] in the paper), the canonical *below-threshold* behaviour.
* :class:`~repro.baselines.spiral.SpiralSearch` — the deterministic
  square spiral: optimal for a single agent, but not a finite-state
  machine (it needs ``Theta(log r)`` bits at radius ``r``).
* :class:`~repro.baselines.feinerman.FeinermanSearch` — the
  Feinerman-Korman-Lotker-Sereni style scale-doubling search the paper
  cites as [12]: optimal ``O(D^2/n + D)`` but ``chi = Theta(log D)``,
  the *high-selection-complexity* comparator.
* :class:`~repro.baselines.levy.LevyWalk` — power-law flight lengths, a
  standard biological-foraging comparator (extension beyond the paper).
"""

from repro.baselines.feinerman import FeinermanSearch, fast_feinerman
from repro.baselines.levy import LevyWalk
from repro.baselines.random_walk import RandomWalkSearch
from repro.baselines.spiral import (
    SpiralSearch,
    spiral_index,
    spiral_point,
    spiral_points,
)

__all__ = [
    "FeinermanSearch",
    "fast_feinerman",
    "LevyWalk",
    "RandomWalkSearch",
    "SpiralSearch",
    "spiral_index",
    "spiral_point",
    "spiral_points",
]
