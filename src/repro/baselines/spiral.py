"""Square-spiral search: the deterministic single-agent optimum.

A square spiral visits every cell at Chebyshev distance ``r`` within
``(2r+1)^2 - 1`` moves, so a single agent finds any target at distance
``D`` within ``O(D^2)`` moves — optimal for one agent.  The spiral is
*not* a finite-state strategy (it must count up to the current radius),
which is exactly why the paper's finite automata cannot just "spiral".

The closed-form :func:`spiral_index` (cell -> position along the
spiral) powers O(1) hit tests in the Feinerman baseline's fast
simulator; :func:`spiral_point` is its inverse.  Both are
property-tested as a bijection against the generator.
"""

from __future__ import annotations

import math
from typing import Iterator, Optional

import numpy as np

from repro.core.actions import ACTION_FOR_DIRECTION, Action
from repro.core.base import SearchAlgorithm
from repro.errors import InvalidParameterError
from repro.grid.geometry import Direction, Point


def spiral_index(offset: Point) -> int:
    """Position of ``offset`` along the counterclockwise unit spiral.

    The spiral starts at index 0 on ``(0, 0)`` and proceeds
    right/up/left/down with segment lengths 1, 1, 2, 2, 3, 3, ...;
    ring ``r`` (cells at Chebyshev norm ``r``) occupies indices
    ``(2r-1)^2 .. (2r+1)^2 - 1``, entered at ``(r, -r+1)``.
    """
    dx, dy = int(offset[0]), int(offset[1])
    r = max(abs(dx), abs(dy))
    if r == 0:
        return 0
    base = (2 * r - 1) ** 2
    if dx == r and dy > -r:
        return base + (dy + r - 1)
    if dy == r:
        return base + 2 * r + (r - 1 - dx)
    if dx == -r:
        return base + 4 * r + (r - 1 - dy)
    return base + 6 * r + (dx + r - 1)


def spiral_point(index: int) -> Point:
    """The cell at position ``index`` along the spiral (inverse of above)."""
    if index < 0:
        raise InvalidParameterError(f"index must be >= 0, got {index}")
    if index == 0:
        return (0, 0)
    r = (math.isqrt(index) + 1) // 2
    base = (2 * r - 1) ** 2
    offset = index - base
    side, position = divmod(offset, 2 * r)
    if side == 0:  # right edge, moving up from (r, -r+1)
        return (r, -r + 1 + position)
    if side == 1:  # top edge, moving left from (r-1, r)
        return (r - 1 - position, r)
    if side == 2:  # left edge, moving down from (-r, r-1)
        return (-r, r - 1 - position)
    return (-r + 1 + position, -r)  # bottom edge, moving right


def spiral_points(start: int = 0) -> Iterator[Point]:
    """Yield spiral cells from position ``start`` onward (infinite)."""
    index = start
    while True:
        yield spiral_point(index)
        index += 1


def spiral_moves(start: int = 0) -> Iterator[Action]:
    """Yield the unit moves between consecutive spiral cells (infinite)."""
    previous = spiral_point(start)
    for current in spiral_points(start + 1):
        dx = current[0] - previous[0]
        dy = current[1] - previous[1]
        yield ACTION_FOR_DIRECTION[_DIRECTION_BY_VECTOR[(dx, dy)]]
        previous = current


_DIRECTION_BY_VECTOR = {direction.value: direction for direction in Direction}


class SpiralSearch(SearchAlgorithm):
    """Deterministic square-spiral search from the origin.

    Finds a target at Chebyshev distance ``r`` after at most
    ``(2r+1)^2 - 1`` moves — the single-agent optimum up to constants.
    Not a finite automaton: the spiral's turn schedule requires
    unbounded counting, so :meth:`selection_complexity` returns ``None``
    and the class serves purely as a performance reference.
    """

    def process(self, rng: np.random.Generator) -> Iterator[Action]:
        return spiral_moves()

    def selection_complexity(self) -> Optional[object]:
        return None

    @staticmethod
    def moves_to_find(target: Point) -> int:
        """Closed-form ``M_moves`` for the spiral: the target's index."""
        return spiral_index(target)
