"""Feinerman et al. style harmonic search — the high-chi comparator.

The paper's reference [12] (Feinerman, Korman, Lotker, Sereni,
"Collaborative Search on the Plane without Communication", PODC 2012)
achieves optimal ``O(D^2/n + D)`` expected moves when agents know
``n``: each agent repeats stages ``i = 1, 2, ...`` — pick a uniformly
random cell within the ``2^i``-square, walk to it, spiral-search a
quota of ``Theta(4^i / n + 2^i)`` cells around it, return to the
origin.

Its selection complexity is the paper's motivating contrast: storing a
random coordinate up to scale ``D`` takes ``Theta(log D)`` bits and
drawing it uniformly uses probabilities as fine as ``1/(2D+1)``, so
``chi = Theta(log D)`` — exponentially above the ``log log D``
threshold the reproduced paper shows suffices.

No public implementation of [12] exists; this is a faithful
reimplementation of the stage structure with explicit chi accounting
(see DESIGN.md, substitutions table).
"""

from __future__ import annotations

import math
from typing import Iterator

import numpy as np

from repro.baselines.spiral import spiral_index, spiral_moves
from repro.core.actions import ACTION_FOR_DIRECTION, Action
from repro.core.base import SearchAlgorithm
from repro.core.selection import MemoryMeter, SelectionComplexity
from repro.errors import InvalidParameterError
from repro.grid.geometry import Direction, Point, manhattan_norm
from repro.sim.metrics import FastRunStats, SearchOutcome


def stage_radius(stage: int) -> int:
    """The stage's scale ``D_i = 2^i``."""
    if stage < 1:
        raise InvalidParameterError(f"stage must be >= 1, got {stage}")
    return 2**stage


def stage_quota(stage: int, n_agents: int, c: float = 4.0) -> int:
    """Spiral quota ``t_i = ceil(c * (4^i / n + 2^i))``.

    Large enough that ``n`` agents' quotas jointly cover the
    ``2^i``-square with constant-factor slack.
    """
    if n_agents < 1:
        raise InvalidParameterError(f"n_agents must be >= 1, got {n_agents}")
    if c <= 0:
        raise InvalidParameterError(f"c must be positive, got {c}")
    radius = stage_radius(stage)
    return math.ceil(c * (radius * radius / n_agents + radius))


def _staircase_to(cell: Point) -> Iterator[Action]:
    """Unit moves from the origin to ``cell``: x-leg then y-leg."""
    x, y = cell
    horizontal = Direction.RIGHT if x >= 0 else Direction.LEFT
    vertical = Direction.UP if y >= 0 else Direction.DOWN
    for _ in range(abs(x)):
        yield ACTION_FOR_DIRECTION[horizontal]
    for _ in range(abs(y)):
        yield ACTION_FOR_DIRECTION[vertical]


class FeinermanSearch(SearchAlgorithm):
    """Scale-doubling + uniform-jump + spiral-quota search (knows ``n``)."""

    def __init__(self, n_agents: int, c: float = 4.0, max_stage: int = 40) -> None:
        if n_agents < 1:
            raise InvalidParameterError(f"n_agents must be >= 1, got {n_agents}")
        if max_stage < 1:
            raise InvalidParameterError(f"max_stage must be >= 1, got {max_stage}")
        self._n_agents = n_agents
        self._c = c
        self._max_stage = max_stage

    @property
    def n_agents(self) -> int:
        """The known colony size ``n``."""
        return self._n_agents

    def process(self, rng: np.random.Generator) -> Iterator[Action]:
        stage = 0
        while True:
            stage += 1
            if stage > self._max_stage:
                while True:
                    yield Action.NONE
            radius = stage_radius(stage)
            center = (
                int(rng.integers(-radius, radius + 1)),
                int(rng.integers(-radius, radius + 1)),
            )
            yield from _staircase_to(center)
            quota = stage_quota(stage, self._n_agents, self._c)
            moves = spiral_moves()
            for _ in range(quota):
                yield next(moves)
            yield Action.ORIGIN

    def selection_complexity_for_distance(self, distance: int) -> SelectionComplexity:
        """The ``Theta(log D)`` accounting that motivates the paper.

        Reaching targets at distance ``D`` requires stages up to
        ``ceil(log2 D) + 1``: two coordinate registers of
        ``Theta(log D)`` bits, a spiral step counter of
        ``Theta(log(D^2/n))`` bits, and coordinate draws as fine as
        ``1/(2 * 2^i + 1)`` — i.e. ``l = Theta(log D)``.
        """
        if distance < 2:
            raise InvalidParameterError(f"distance must be >= 2, got {distance}")
        last_stage = math.ceil(math.log2(distance)) + 1
        radius = stage_radius(last_stage)
        quota = stage_quota(last_stage, self._n_agents, self._c)
        meter = (
            MemoryMeter()
            .declare("stage_counter", last_stage)
            .declare("center_x", 2 * radius + 1)
            .declare("center_y", 2 * radius + 1)
            .declare("spiral_counter", quota)
            .declare("control", 4)
        )
        ell = max(1.0, math.log2(2 * radius + 1))
        return SelectionComplexity(bits=meter.bits, ell=ell)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FeinermanSearch(n_agents={self._n_agents}, c={self._c})"


def fast_feinerman(
    n_agents: int,
    target: Point,
    rng: np.random.Generator,
    move_budget: int,
    c: float = 4.0,
    max_stage: int = 40,
) -> SearchOutcome:
    """Vectorized Feinerman baseline with closed-form spiral hit tests.

    A stage's sortie hits the target iff ``spiral_index(target -
    center) <= quota``; the move count at the hit is the staircase
    length to the center plus the spiral index.  (Hits scored while
    merely walking the staircase toward the center are ignored — a
    conservative undercount shared by the faithful accounting in [12].)
    """
    if n_agents < 1:
        raise InvalidParameterError(f"n_agents must be >= 1, got {n_agents}")
    if move_budget < 1:
        raise InvalidParameterError(f"move_budget must be >= 1, got {move_budget}")
    if target == (0, 0):
        return SearchOutcome(
            found=True, m_moves=0, m_steps=0, finder=0,
            n_agents=n_agents, move_budget=move_budget,
        )

    cumulative = np.zeros(n_agents, dtype=np.int64)
    stages = np.ones(n_agents, dtype=np.int64)
    agent_ids = np.arange(n_agents)
    best: int | None = None
    best_finder: int | None = None
    rounds_executed = 0
    iterations_executed = 0

    while agent_ids.size:
        count = agent_ids.size
        rounds_executed += 1
        iterations_executed += count
        radii = 2**stages
        quotas = np.array(
            [stage_quota(int(s), n_agents, c) for s in stages], dtype=np.int64
        )
        centers_x = rng.integers(-radii, radii + 1)
        centers_y = rng.integers(-radii, radii + 1)
        walk_moves = np.abs(centers_x) + np.abs(centers_y)
        offsets_x = target[0] - centers_x
        offsets_y = target[1] - centers_y
        indices = np.array(
            [
                spiral_index((int(ox), int(oy)))
                for ox, oy in zip(offsets_x, offsets_y)
            ],
            dtype=np.int64,
        )
        hit = indices <= quotas
        totals = cumulative + walk_moves + indices
        eligible = hit & (totals <= move_budget)
        if np.any(eligible):
            masked = np.where(eligible, totals, np.iinfo(np.int64).max)
            candidate_index = int(np.argmin(masked))
            candidate_total = int(totals[candidate_index])
            if best is None or candidate_total < best:
                best = candidate_total
                best_finder = int(agent_ids[candidate_index])
        survivors = ~hit
        cumulative = cumulative[survivors] + (walk_moves + quotas)[survivors]
        stages = stages[survivors] + 1
        agent_ids = agent_ids[survivors]
        limit = move_budget if best is None else min(move_budget, best)
        keep = (cumulative < limit) & (stages <= max_stage)
        cumulative = cumulative[keep]
        stages = stages[keep]
        agent_ids = agent_ids[keep]

    stats = FastRunStats(iterations_executed, rounds_executed)
    if best is None:
        return SearchOutcome(
            found=False, m_moves=None, m_steps=None, finder=None,
            n_agents=n_agents, move_budget=move_budget, stats=stats,
        )
    return SearchOutcome(
        found=True, m_moves=best, m_steps=None, finder=best_finder,
        n_agents=n_agents, move_budget=move_budget, stats=stats,
    )
