"""Uniform random walks: the canonical below-threshold baseline.

A colony of uniform random walkers achieves speed-up at most
``min{log n, D}`` (Alon et al., the paper's reference [3]) — the
paper's lower bound generalizes exactly this behaviour to *every*
sufficiently small automaton.  The walk is a 5-state machine with
``chi = 3 + log2(2) = 4``, far below ``log log D`` for any realistic
``D``, so experiment E10 uses it as the first below-threshold
specimen.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.core.actions import Action
from repro.core.automaton import Automaton
from repro.core.base import SearchAlgorithm
from repro.core.selection import SelectionComplexity

_MOVES = (Action.UP, Action.DOWN, Action.LEFT, Action.RIGHT)


class RandomWalkSearch(SearchAlgorithm):
    """Each step: move in a uniformly random direction. No resets."""

    def process(self, rng: np.random.Generator) -> Iterator[Action]:
        while True:
            yield _MOVES[int(rng.integers(0, 4))]

    def automaton(self) -> Automaton:
        from repro.markov.random_automata import uniform_walk_automaton

        return uniform_walk_automaton()

    def selection_complexity(self) -> SelectionComplexity:
        """Five states (origin + four directions), probabilities 1/4."""
        return self.automaton().selection_complexity()
