"""Levy walk: power-law flight lengths (biological-foraging comparator).

Levy flights are the standard random-search model in the movement-
ecology literature the paper's introduction gestures at: straight
flights whose lengths follow a heavy-tailed law ``P[L >= x] ~
x^{-(alpha-1)}``.  They are *not* finite-state machines (a flight's
remaining length must be counted), so they sit outside the paper's
model; the trade-off experiment includes them purely as a familiar
reference point on the performance axis.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.core.actions import Action
from repro.core.base import SearchAlgorithm
from repro.errors import InvalidParameterError

_MOVES = (Action.UP, Action.DOWN, Action.LEFT, Action.RIGHT)


def sample_flight_length(
    rng: np.random.Generator, alpha: float, max_length: int
) -> int:
    """Pareto-tailed integer flight length via inverse transform.

    ``P[L >= x] = x^{-(alpha - 1)}`` for ``x >= 1``, truncated at
    ``max_length`` (truncation keeps simulations finite; ecology models
    do the same with a cutoff scale).
    """
    if alpha <= 1.0:
        raise InvalidParameterError(f"alpha must be > 1, got {alpha}")
    if max_length < 1:
        raise InvalidParameterError(f"max_length must be >= 1, got {max_length}")
    u = rng.random()
    length = int(np.floor(u ** (-1.0 / (alpha - 1.0))))
    return max(1, min(length, max_length))


class LevyWalk(SearchAlgorithm):
    """Repeated flights: uniform direction, power-law length.

    ``alpha = 2`` is the classic "optimal foraging" exponent; larger
    values approach diffusive (random-walk) behaviour, smaller ones
    ballistic behaviour.
    """

    def __init__(self, alpha: float = 2.0, max_flight: int = 1 << 20) -> None:
        if alpha <= 1.0:
            raise InvalidParameterError(f"alpha must be > 1, got {alpha}")
        if max_flight < 1:
            raise InvalidParameterError(f"max_flight must be >= 1, got {max_flight}")
        self._alpha = alpha
        self._max_flight = max_flight

    @property
    def alpha(self) -> float:
        """The tail exponent."""
        return self._alpha

    def process(self, rng: np.random.Generator) -> Iterator[Action]:
        while True:
            direction = _MOVES[int(rng.integers(0, 4))]
            length = sample_flight_length(rng, self._alpha, self._max_flight)
            for _ in range(length):
                yield direction

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LevyWalk(alpha={self._alpha})"
