#!/usr/bin/env python3
"""Lower-bound demo: watch a small automaton fail, exactly as certified.

Builds a below-threshold agent automaton, prints its Section 4
certificate (drift lines, predicted coverage, adversarial placement),
then simulates the colony to the horizon and renders the visited set as
an ASCII heatmap — drift tubes and all.  The adversarial target sits in
the untouched region.

Run:  python examples/lowerbound_demo.py
"""

from __future__ import annotations

import numpy as np

from repro.lowerbound.certify import certify
from repro.lowerbound.colony import simulate_colony
from repro.markov.random_automata import random_bounded_automaton
from repro.vis.asciiplot import heatmap

DISTANCE = 48
N_AGENTS = 12
SEED = 424242


def main() -> None:
    rng = np.random.default_rng(SEED)
    automaton = random_bounded_automaton(rng, bits=3, ell=2)
    print(f"Specimen: {automaton.name} with {automaton.n_states} states\n")

    certificate = certify(automaton, DISTANCE, N_AGENTS)
    print("Lower-bound certificate (Theorem 4.1 applied to this machine):")
    for line in certificate.summary_lines():
        print("  " + line)

    print("\nSimulating the colony to the horizon...")
    result = simulate_colony(
        automaton,
        N_AGENTS,
        certificate.horizon,
        rng,
        window_radius=DISTANCE,
        target=certificate.adversarial_placement,
    )
    print(
        f"  visited {result.visited_count()} window cells "
        f"({result.coverage_fraction:.2%} of {(2 * DISTANCE + 1) ** 2}); "
        f"adversarial target found: {result.found}"
    )

    print("\nCoverage map (origin at center; denser glyph = visited):")
    print(heatmap(result.visited.astype(float), max_side=60))
    x, y = certificate.adversarial_placement
    print(f"\nThe adversarial target sits at {certificate.adversarial_placement} "
          f"— {'INSIDE' if result.found else 'outside'} the visited region, as "
          f"the certificate predicted.")


if __name__ == "__main__":
    main()
