#!/usr/bin/env python3
"""Trade-off explorer: chart chi against search performance.

Sweeps a spectrum of strategies at one (D, n), measures the probability
of finding a hard target within the lower bound's horizon D^{1.75}, and
renders the frontier as an ASCII scatter: selection complexity on the
x-axis, horizon success rate on the y-axis.  The cliff at
chi ~ log log D is the paper's headline.

Run:  python examples/tradeoff_explorer.py
"""

from __future__ import annotations

import numpy as np

from repro.core.algorithm1 import Algorithm1
from repro.core.nonuniform import NonUniformSearch
from repro.core.selection import chi_threshold
from repro.lowerbound.colony import simulate_colony
from repro.lowerbound.coverage import adversarial_target
from repro.lowerbound.theory import horizon_moves
from repro.markov.random_automata import (
    biased_walk_automaton,
    uniform_walk_automaton,
)
from repro.sim import AlgorithmSpec, SimulationRequest, simulate
from repro.vis.asciiplot import scatter_chart

DISTANCE = 32
TRIALS = 15
SEED = 99


def main() -> None:
    horizon = horizon_moves(DISTANCE, 0.25)
    n_agents = int(np.ceil(256 * DISTANCE**0.25))
    corner = (DISTANCE, DISTANCE)
    print(
        f"D = {DISTANCE}, horizon = D^1.75 = {horizon} moves/agent, "
        f"n = {n_agents} agents, {TRIALS} trials per strategy."
    )
    print(f"chi threshold log2 log2 D = {chi_threshold(DISTANCE):.2f}\n")

    points = []
    labels = []

    def record(name: str, chi: float, rate: float) -> None:
        print(f"  {name:24s} chi = {chi:6.2f}   P[find <= horizon] = {rate:.2f}")
        points.append((chi, rate))
        labels.append(name[0].upper())

    for name, automaton in [
        ("uniform-walk", uniform_walk_automaton()),
        ("biased-walk", biased_walk_automaton([3, 1, 2, 2], ell=3)),
    ]:
        target = adversarial_target(automaton, DISTANCE)
        finds = 0
        for trial in range(TRIALS):
            rng = np.random.default_rng(SEED + trial)
            result = simulate_colony(
                automaton, n_agents, horizon, rng,
                window_radius=DISTANCE, target=target,
            )
            finds += result.found
        record(name, automaton.selection_complexity().chi, finds / TRIALS)

    for name, chi, spec in [
        (
            "algorithm1",
            Algorithm1(DISTANCE).selection_complexity().chi,
            AlgorithmSpec.algorithm1(DISTANCE),
        ),
        (
            "nonuniform(l=1)",
            NonUniformSearch(DISTANCE, 1).selection_complexity().chi,
            AlgorithmSpec.nonuniform(DISTANCE, 1),
        ),
        (
            "feinerman",
            30.0,  # Theta(log D); see FeinermanSearch.selection_complexity_for_distance
            AlgorithmSpec.feinerman(),
        ),
    ]:
        request = SimulationRequest(
            algorithm=spec,
            n_agents=n_agents,
            target=corner,
            move_budget=horizon,
            n_trials=TRIALS,
            seed=SEED + 1000,
        )
        record(name, chi, simulate(request, backend="auto").find_rate)

    print()
    print(
        scatter_chart(
            points,
            labels=labels,
            title="chi (x) vs horizon success rate (y) — note the cliff",
            width=60,
            height=14,
        )
    )
    print(
        "\nU = uniform-walk, B = biased-walk (below threshold, ~0 success);"
        "\nA = algorithm1, N = nonuniform, F = feinerman (above, ~1 success)."
    )


if __name__ == "__main__":
    main()
