#!/usr/bin/env python3
"""State-machine tour: the paper's formal model, made tangible.

Prints the five-state automaton of Algorithm 1 (the figure next to the
pseudocode in Section 3.1), its Markov structure (classes, period,
stationary distribution), the mechanical chi accounting, and a recorded
execution prefix in the paper's formal `(s0, (x0,y0), s1, ...)` shape.

Run:  python examples/state_machine_tour.py
"""

from __future__ import annotations

import numpy as np

from repro.core.algorithm1 import build_algorithm1_automaton
from repro.core.automaton import AutomatonAlgorithm
from repro.grid.world import GridWorld
from repro.markov.classify import classify_states
from repro.markov.periodicity import class_period
from repro.markov.stationary import stationary_distribution
from repro.sim.engine import EngineConfig, SearchEngine
from repro.sim.trace import TraceRecorder

DISTANCE = 8


def main() -> None:
    machine = build_algorithm1_automaton(DISTANCE)
    print(f"Automaton: {machine.name} — |S| = {machine.n_states}, "
          f"b = {machine.memory_bits()} bits\n")

    print("Transition matrix (rows: from-state; columns: to-state):")
    names = [label.value for label in machine.labels]
    header = "          " + "".join(f"{name:>9s}" for name in names)
    print(header)
    for i, row in enumerate(machine.matrix):
        cells = "".join(f"{value:9.4f}" for value in row)
        print(f"{names[i]:>9s} {cells}")

    chain = machine.to_markov_chain()
    classification = classify_states(chain)
    print(f"\nRecurrent classes: {[sorted(c) for c in classification.recurrent_classes]}")
    members = sorted(classification.recurrent_classes[0])
    print(f"Period of the class: {class_period(chain, members)}")
    pi = stationary_distribution(chain, members)
    print("Stationary distribution:")
    for state, mass in enumerate(pi):
        print(f"  {names[state]:>7s}: {mass:.4f}")

    drift_x = pi[4] - pi[3]  # right - left
    drift_y = pi[1] - pi[2]  # up - down
    print(f"Drift vector (Corollary 4.10's p_vec): ({drift_x:+.4f}, {drift_y:+.4f})"
          " — symmetric, as it must be.")

    print(f"\nSelection complexity: {machine.selection_complexity()}")
    print("(The paper counts l = log2 D because the algorithm uses the coins "
          "C_1/2 and C_1/D;\n the folded automaton's finest edge is "
          "(1/2D)(1-1/D), a constant-factor artifact.)")

    print("\nExecution prefix in the formal shape (s_i, (x_i, y_i)):")
    engine = SearchEngine(EngineConfig(move_budget=30, step_budget=30))
    world = GridWorld(target=(DISTANCE, DISTANCE), distance_bound=DISTANCE)
    trace = TraceRecorder(max_steps_per_agent=12)
    engine.run(AutomatonAlgorithm(machine), 1, world, rng=3, trace=trace)
    execution = trace.execution(0)
    pieces = ["(origin, (0, 0))"]
    for action, position in zip(execution.actions, execution.positions):
        pieces.append(f"({action.value}, {position})")
    print("  " + " -> ".join(pieces))
    _ = np.zeros(1)  # numpy retained for parity with sibling examples


if __name__ == "__main__":
    main()
