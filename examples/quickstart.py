#!/usr/bin/env python3
"""Quickstart: sixty seconds with the ANTS search library.

Builds a small colony, runs the paper's three algorithms against the
same hidden target, and prints each one's move count and selection
complexity — the two axes of the paper's trade-off.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    AlgorithmSpec,
    SimulationRequest,
    chi_threshold,
    simulate,
)
from repro.core.uniform import calibrated_K
from repro.sim import simulate_async

DISTANCE = 16  # the (known or unknown) bound D on the target's distance
N_AGENTS = 4
TARGET = (11, -7)  # max-norm distance 11 <= D
SEED = 2014


def main() -> None:
    print(f"Target hidden at {TARGET}; D = {DISTANCE}; {N_AGENTS} agents.")
    print(f"chi threshold log2 log2 D = {chi_threshold(DISTANCE):.2f}\n")

    specs = [
        ("Algorithm 1 (knows D, fine 1/D coins)", AlgorithmSpec.algorithm1(DISTANCE)),
        ("Non-Uniform-Search (knows D, coarse coins)", AlgorithmSpec.nonuniform(DISTANCE, 1)),
        (
            "Uniform search (does not know D)",
            AlgorithmSpec.uniform(1, calibrated_K(1)),
        ),
    ]

    for label, spec in specs:
        request = SimulationRequest(
            algorithm=spec,
            n_agents=N_AGENTS,
            target=TARGET,
            move_budget=5_000_000,
            seed=SEED,
            distance_bound=DISTANCE,
        )
        result = simulate(request)  # backend="auto" picks the best registered one
        outcome = result.outcome
        algorithm = spec.build(N_AGENTS)
        complexity = algorithm.selection_complexity()
        if complexity is None:
            complexity = algorithm.selection_complexity_for_distance(DISTANCE)
        chi_text = f"chi = {complexity.chi:5.2f}" if complexity else "chi = n/a"
        assert outcome.found, "budget should be ample at this scale"
        print(
            f"{label:48s} {chi_text}   "
            f"M_moves = {outcome.m_moves:6d} "
            f"(agent {outcome.finder}, backend {result.backend})"
        )

    print(
        "\nAll three find the target; the point of the paper is that the "
        "middle one does it\nwith chi = log log D + O(1) — and Section 4 "
        "proves nothing much smaller can."
    )

    # The same request can run asynchronously: submit through the job
    # layer, stream trial shards as they land, and let completed shards
    # persist in the result cache so interrupted runs resume for free.
    # (CLI equivalent: repro-ants run ... --async --watch)
    batch = SimulationRequest(
        algorithm=AlgorithmSpec.algorithm1(DISTANCE),
        n_agents=N_AGENTS,
        target=TARGET,
        move_budget=5_000_000,
        n_trials=40,
        seed=SEED,
        distance_bound=DISTANCE,
    )
    job = simulate_async(batch, workers=2)
    print(f"\nasync batch {job.job_id}: {batch.n_trials} trials, "
          f"backend {job.backend}")
    for shard in job.iter_results():
        progress = job.progress()
        source = "cache" if shard.from_cache else "simulated"
        print(f"  trials {shard.trial_start}.."
              f"{shard.trial_start + shard.trial_count - 1} done ({source}) "
              f"— {progress.done_trials}/{progress.total_trials}")
    print(f"find rate: {job.result().find_rate:.0%}")


if __name__ == "__main__":
    main()
