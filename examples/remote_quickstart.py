#!/usr/bin/env python3
"""Remote quickstart: serve, submit over HTTP, stream SSE, verify.

Boots a :class:`~repro.server.app.SimulationServer` on an ephemeral
port, submits a small doubly-uniform search through
:class:`~repro.server.client.RemoteClient`, streams shard-level
progress over Server-Sent-Events, and asserts the remote result equals
the local :func:`repro.sim.simulate` call **bit for bit** — the wire
schema round-trips the seed stream exactly and the server executes
through the same job pipeline, so remote and local are the same
computation.

Run:  PYTHONPATH=src python examples/remote_quickstart.py

(Also the CI serving smoke test: a failed equivalence or a dropped
shard exits non-zero.)
"""

from __future__ import annotations

from repro.server import RemoteClient, SimulationServer
from repro.sim import AlgorithmSpec, SimulationRequest, simulate

REQUEST = SimulationRequest(
    algorithm=AlgorithmSpec.doubly_uniform(1),
    n_agents=4,
    target=(6, 5),
    move_budget=500_000,
    n_trials=8,
    seed=2014,
    distance_bound=8,
)

# A per-trial backend: seed-exact under sharding, so the remote
# (workers=2, two shards) and local (workers=1) runs must agree
# outcome for outcome.
BACKEND = "closed_form"


def main() -> None:
    print(f"Local run: {REQUEST.n_trials} trials of "
          f"{REQUEST.algorithm.name} on backend {BACKEND!r}...")
    local = simulate(REQUEST, backend=BACKEND, cache=False)

    with SimulationServer(port=0, max_jobs=4) as server:
        print(f"Server up on {server.url} "
              f"(max {server.max_jobs} concurrent jobs)\n")
        client = RemoteClient(server.url)

        job = client.submit(REQUEST, backend=BACKEND, workers=2, cache=False)
        print(f"Submitted {job.job_id}; streaming SSE events:")
        shards = []
        for event, data in job.iter_events():
            if event == "shard":
                shards.append(data)
                progress = data["progress"]
                source = "cache" if data["from_cache"] else "simulated"
                print(f"  shard {data['shard_index']}: trials "
                      f"[{data['trial_start']}, "
                      f"{data['trial_start'] + data['trial_count']}) "
                      f"({source}) — {progress['done_trials']}"
                      f"/{progress['total_trials']} trials done")
            else:
                print(f"  {event}")

        trials_streamed = sum(shard["trial_count"] for shard in shards)
        assert trials_streamed == REQUEST.n_trials, (
            f"SSE delivered {trials_streamed} trials, "
            f"expected {REQUEST.n_trials}"
        )

        remote = job.result()
        assert remote.outcomes == local.outcomes, (
            "remote outcomes differ from the local simulate() call"
        )
        stats = client.stats()

    moves = [outcome.m_moves for outcome in remote.outcomes]
    print(f"\nRemote == local, bit for bit: {len(remote.outcomes)} outcomes, "
          f"M_moves = {moves}")
    print(f"Server handled {stats['requests_total']} HTTP requests, "
          f"{stats['jobs_submitted']} job submission(s), "
          f"{stats['rejected_429']} rejection(s).")


if __name__ == "__main__":
    main()
