#!/usr/bin/env python3
"""Foraging colony: the paper's motivating scenario, end to end.

An ant colony must retrieve several food items scattered at unknown
distances — the central-place-foraging setting the ANTS problem
abstracts.  Three teams compete on the same food map:

* uniform-search ants (Algorithm 5; know the colony size, not D);
* doubly uniform ants (know neither D nor n — the [12]-style lift);
* random-walk ants (chi = 4, the below-threshold regime).

Per team we run successive foraging trips until every item is found
(or a trip's budget dies), using the multi-target world's union
semantics for first-find per trip.

Run:  python examples/foraging_colony.py
"""

from __future__ import annotations

from repro.core.doubly_uniform import DoublyUniformSearch
from repro.core.uniform import UniformSearch, calibrated_K
from repro.baselines.random_walk import RandomWalkSearch
from repro.grid.geometry import chebyshev_norm
from repro.grid.multi import MultiTargetWorld, forage_until_all_found

N_AGENTS = 5
SEED = 7
FOOD_ITEMS = [(3, 2), (-9, 4), (14, -11), (-18, -16)]
DISTANCE_BOUND = 24
BUDGET_PER_ITEM = 2_000_000


def forage(algorithm_factory, label: str, seed: int) -> None:
    print(f"--- {label} ---")
    world = MultiTargetWorld(FOOD_ITEMS, DISTANCE_BOUND)
    trips = forage_until_all_found(
        algorithm_factory(),
        N_AGENTS,
        world,
        seed,
        move_budget_per_item=BUDGET_PER_ITEM,
    )
    if trips is None:
        found = sum(world.discovered.values())
        print(
            f"  gave up: {found}/{len(FOOD_ITEMS)} items found before a "
            f"trip exhausted its {BUDGET_PER_ITEM}-move budget\n"
        )
        return
    for index, moves in enumerate(trips, start=1):
        print(f"  trip {index}: first item reached after {moves:7d} moves")
    print(f"  all {len(FOOD_ITEMS)} items retrieved; "
          f"total first-finder moves: {sum(trips)}\n")


def main() -> None:
    distances = sorted(chebyshev_norm(item) for item in FOOD_ITEMS)
    print(
        f"{len(FOOD_ITEMS)} food items at max-norm distances {distances}; "
        f"{N_AGENTS} ants per team.\n"
    )
    forage(
        lambda: UniformSearch(N_AGENTS, ell=1, K=calibrated_K(1)),
        "uniform-search ants (know n, not D; Theorem 3.14)",
        SEED,
    )
    forage(
        lambda: DoublyUniformSearch(ell=1),
        "doubly uniform ants (know neither D nor n; [12]-style lift)",
        SEED + 1,
    )
    forage(
        lambda: RandomWalkSearch(),
        "random-walk ants (chi = 4; Theorem 4.1's regime)",
        SEED + 2,
    )
    print(
        "Nearby items are found by everyone; the far items separate the "
        "teams,\nexactly as the D-scaling of the theorems predicts."
    )


if __name__ == "__main__":
    main()
