"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest


@pytest.fixture(scope="session", autouse=True)
def _isolated_result_cache(tmp_path_factory):
    """Point the simulation result cache at a throwaway directory.

    The env var (not just ``configure_cache``) matters: worker
    processes spawned by parallel sweeps build their own cache from the
    environment, and must not write into the developer's real
    ``~/.cache`` during a test run.
    """
    from repro.sim.cache import configure_cache

    directory = tmp_path_factory.mktemp("repro-ants-cache")
    os.environ["REPRO_ANTS_CACHE_DIR"] = str(directory)
    configure_cache(directory=directory)
    yield


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh, deterministically seeded generator per test."""
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture
def rng_factory():
    """Factory for additional independent generators inside one test."""

    def make(seed: int) -> np.random.Generator:
        return np.random.default_rng(seed)

    return make
