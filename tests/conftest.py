"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh, deterministically seeded generator per test."""
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture
def rng_factory():
    """Factory for additional independent generators inside one test."""

    def make(seed: int) -> np.random.Generator:
        return np.random.default_rng(seed)

    return make
