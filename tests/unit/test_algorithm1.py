"""Unit tests for Algorithm 1 (paper Section 3.1, Lemmas 3.1-3.4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.actions import Action
from repro.core.algorithm1 import Algorithm1, build_algorithm1_automaton
from repro.core import theory
from repro.errors import InvalidParameterError


def collect_iteration(process) -> list[Action]:
    """Consume actions until (and excluding) the first ORIGIN."""
    actions = []
    for action in process:
        if action is Action.ORIGIN:
            return actions
        actions.append(action)
    raise AssertionError("process ended without returning to origin")


class TestAlgorithm1Process:
    def test_rejects_degenerate_distance(self):
        with pytest.raises(InvalidParameterError):
            Algorithm1(1)

    def test_iteration_is_one_vertical_then_one_horizontal_leg(self, rng):
        process = Algorithm1(8).process(rng)
        for _ in range(50):
            actions = collect_iteration(process)
            vertical = {Action.UP, Action.DOWN}
            horizontal = {Action.LEFT, Action.RIGHT}
            seen_vertical = [a for a in actions if a in vertical]
            seen_horizontal = [a for a in actions if a in horizontal]
            # All vertical moves precede all horizontal moves.
            if seen_vertical and seen_horizontal:
                last_vertical = max(i for i, a in enumerate(actions) if a in vertical)
                first_horizontal = min(
                    i for i, a in enumerate(actions) if a in horizontal
                )
                assert last_vertical < first_horizontal
            # Each leg uses a single direction.
            assert len(set(seen_vertical)) <= 1
            assert len(set(seen_horizontal)) <= 1

    def test_expected_iteration_moves_below_lemma_bound(self, rng):
        distance = 16
        process = Algorithm1(distance).process(rng)
        lengths = [len(collect_iteration(process)) for _ in range(4000)]
        mean = float(np.mean(lengths))
        assert mean <= theory.iteration_moves_upper_bound(distance)
        # Exact expectation is 2(D-1).
        assert mean == pytest.approx(2 * (distance - 1), rel=0.05)

    def test_leg_length_is_geometric(self, rng):
        distance = 10
        process = Algorithm1(distance).process(rng)
        vertical_lengths = []
        for _ in range(4000):
            actions = collect_iteration(process)
            vertical_lengths.append(
                sum(1 for a in actions if a in (Action.UP, Action.DOWN))
            )
        assert np.mean(vertical_lengths) == pytest.approx(distance - 1, rel=0.06)
        empirical_zero = np.mean([l == 0 for l in vertical_lengths])
        assert empirical_zero == pytest.approx(1 / distance, abs=0.02)

    def test_direction_signs_are_fair(self, rng):
        process = Algorithm1(6).process(rng)
        ups = downs = 0
        for _ in range(3000):
            actions = collect_iteration(process)
            if any(a is Action.UP for a in actions):
                ups += 1
            if any(a is Action.DOWN for a in actions):
                downs += 1
        total = ups + downs
        assert ups / total == pytest.approx(0.5, abs=0.03)


class TestAlgorithm1Automaton:
    def test_five_states_three_bits(self):
        machine = build_algorithm1_automaton(32)
        assert machine.n_states == 5
        assert machine.memory_bits() == 3

    def test_labels_match_figure(self):
        machine = build_algorithm1_automaton(32)
        assert machine.labels == [
            Action.ORIGIN, Action.UP, Action.DOWN, Action.LEFT, Action.RIGHT,
        ]

    def test_rows_are_stochastic(self):
        machine = build_algorithm1_automaton(9)
        np.testing.assert_allclose(machine.matrix.sum(axis=1), np.ones(5))

    def test_transition_probabilities_match_figure(self):
        d = 8.0
        matrix = build_algorithm1_automaton(8).matrix
        origin, up, down, left, right = range(5)
        assert matrix[origin, up] == pytest.approx(0.5 * (1 - 1 / d))
        assert matrix[origin, origin] == pytest.approx(1 / d**2)
        assert matrix[origin, left] == pytest.approx((1 / (2 * d)) * (1 - 1 / d))
        assert matrix[up, up] == pytest.approx(1 - 1 / d)
        assert matrix[up, origin] == pytest.approx(1 / d**2)
        assert matrix[up, right] == pytest.approx((1 / (2 * d)) * (1 - 1 / d))
        assert matrix[left, left] == pytest.approx(1 - 1 / d)
        assert matrix[left, origin] == pytest.approx(1 / d)
        assert matrix[left, up] == 0.0
        assert matrix[right, right] == pytest.approx(1 - 1 / d)

    def test_process_and_automaton_iteration_length_agree(self, rng_factory):
        distance = 7
        process = Algorithm1(distance).process(rng_factory(1))
        process_lengths = [len(collect_iteration(process)) for _ in range(3000)]

        machine = build_algorithm1_automaton(distance)
        automaton_lengths = []
        state = machine.start
        moves = 0
        generator = rng_factory(2)
        while len(automaton_lengths) < 3000:
            state = machine.step(generator, state)
            if machine.label(state) is Action.ORIGIN:
                automaton_lengths.append(moves)
                moves = 0
            else:
                moves += 1
        assert np.mean(process_lengths) == pytest.approx(
            np.mean(automaton_lengths), rel=0.06
        )

    def test_selection_complexity_scales_with_log_d(self):
        small = Algorithm1(8).selection_complexity()
        large = Algorithm1(1024).selection_complexity()
        assert small.bits == large.bits == 3
        assert large.ell > small.ell  # finer probabilities for larger D


class TestHitProbabilityTheory:
    """Lemma 3.4 cross-checks: empirical per-iteration hit rates."""

    @pytest.mark.parametrize("target", [(3, 2), (0, 4), (5, 0), (-2, -2), (1, -3)])
    def test_empirical_hit_rate_matches_exact_formula(self, rng, target):
        distance = 8
        probability = theory.hit_probability_exact(1 / distance, target)
        process = Algorithm1(distance).process(rng)
        hits = 0
        trials = 30_000
        for _ in range(trials):
            actions = collect_iteration(process)
            position = (0, 0)
            visited = False
            for action in actions:
                dx, dy = action.direction.vector
                position = (position[0] + dx, position[1] + dy)
                if position == target:
                    visited = True
            hits += visited
        standard_error = (probability * (1 - probability) / trials) ** 0.5
        assert hits / trials == pytest.approx(probability, abs=5 * standard_error + 1e-4)

    def test_exact_formula_dominates_lemma_bound_in_window(self):
        distance = 16
        bound = theory.hit_probability_lower_bound(distance)
        for x in range(-distance, distance + 1, 3):
            for y in range(-distance, distance + 1, 3):
                if (x, y) == (0, 0):
                    continue
                exact = theory.hit_probability_exact(1 / distance, (x, y))
                assert exact >= bound
