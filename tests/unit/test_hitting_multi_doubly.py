"""Unit tests for markov.hitting, grid.multi, core.doubly_uniform."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.actions import Action
from repro.core.doubly_uniform import DoublyUniformSearch
from repro.errors import AnalysisError, InvalidParameterError
from repro.grid.multi import MultiTargetWorld, forage_until_all_found
from repro.markov.chain import MarkovChain
from repro.markov.hitting import (
    absorption_time_distribution_tail,
    expected_absorption_time,
    expected_hitting_times,
    expected_return_time,
    fundamental_matrix,
    mean_visits_before_absorption,
)
from repro.markov.stationary import stationary_distribution


def absorbing_chain(alpha: float = 0.4) -> MarkovChain:
    """State 0 transient (stays w.p. 1-alpha), state 1 absorbing."""
    return MarkovChain(np.array([[1 - alpha, alpha], [0.0, 1.0]]))


class TestHittingTimes:
    def test_absorption_time_geometric(self):
        # Expected steps to leave state 0 = 1/alpha.
        chain = absorbing_chain(0.25)
        assert expected_absorption_time(chain) == pytest.approx(4.0)

    def test_absorption_time_zero_if_start_recurrent(self):
        chain = MarkovChain(np.array([[1.0]]))
        assert expected_absorption_time(chain) == 0.0

    def test_fundamental_matrix_values(self):
        chain = absorbing_chain(0.5)
        n_matrix = fundamental_matrix(chain)
        assert n_matrix.shape == (1, 1)
        assert n_matrix[0, 0] == pytest.approx(2.0)  # visits to state 0

    def test_fundamental_matrix_requires_transients(self):
        chain = MarkovChain(np.array([[0.5, 0.5], [0.5, 0.5]]))
        with pytest.raises(AnalysisError):
            fundamental_matrix(chain)

    def test_absorption_tail_matches_geometric(self):
        alpha = 0.3
        chain = absorbing_chain(alpha)
        tail = absorption_time_distribution_tail(chain, 10)
        for r in range(11):
            assert tail[r] == pytest.approx((1 - alpha) ** r)

    def test_absorption_tail_zero_when_start_recurrent(self):
        chain = MarkovChain(np.array([[0.5, 0.5], [0.5, 0.5]]))
        tail = absorption_time_distribution_tail(chain, 5)
        assert np.all(tail == 0.0)

    def test_hitting_times_two_state(self):
        # 0 -> 1 w.p. p each step: E[hit 1 from 0] = 1/p.
        p = 0.2
        chain = MarkovChain(np.array([[1 - p, p], [0.5, 0.5]]))
        times = expected_hitting_times(chain, target=1)
        assert times[1] == 0.0
        assert times[0] == pytest.approx(1 / p)

    def test_hitting_time_matches_simulation(self, rng):
        matrix = np.array(
            [
                [0.2, 0.5, 0.3],
                [0.4, 0.1, 0.5],
                [0.25, 0.25, 0.5],
            ]
        )
        chain = MarkovChain(matrix)
        times = expected_hitting_times(chain, target=2)
        samples = []
        for _ in range(4000):
            state = 0
            steps = 0
            while state != 2:
                state = chain.step(rng, state)
                steps += 1
            samples.append(steps)
        assert np.mean(samples) == pytest.approx(times[0], rel=0.08)

    def test_kac_formula(self):
        """Expected return time equals 1/pi(state)."""
        matrix = np.array(
            [
                [0.1, 0.6, 0.3],
                [0.5, 0.2, 0.3],
                [0.3, 0.3, 0.4],
            ]
        )
        chain = MarkovChain(matrix)
        pi = stationary_distribution(chain)
        for state in range(3):
            assert expected_return_time(chain, state) == pytest.approx(
                1.0 / pi[state], rel=1e-8
            )

    def test_mean_visits(self):
        chain = absorbing_chain(0.5)
        visits = mean_visits_before_absorption(chain)
        assert visits == {0: pytest.approx(2.0)}

    def test_validation(self):
        chain = absorbing_chain()
        with pytest.raises(InvalidParameterError):
            expected_hitting_times(chain, target=5)
        with pytest.raises(InvalidParameterError):
            absorption_time_distribution_tail(chain, -1)
        with pytest.raises(InvalidParameterError):
            expected_absorption_time(chain, start=9)


class TestMultiTargetWorld:
    def test_union_semantics(self):
        world = MultiTargetWorld([(1, 1), (-2, 0)], distance_bound=4)
        assert world.is_target((1, 1))
        assert not world.is_target((0, 0))
        assert world.discovered[(1, 1)]
        assert not world.discovered[(-2, 0)]
        assert not world.all_discovered
        assert world.undiscovered() == [(-2, 0)]

    def test_nearest_target_property(self):
        world = MultiTargetWorld([(3, 3), (1, 0)], distance_bound=4)
        assert world.target == (1, 0)
        world.is_target((1, 0))
        assert world.target == (3, 3)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            MultiTargetWorld([], distance_bound=4)
        with pytest.raises(InvalidParameterError):
            MultiTargetWorld([(1, 1), (1, 1)], distance_bound=4)
        with pytest.raises(InvalidParameterError):
            MultiTargetWorld([(9, 9)], distance_bound=4)

    def test_visit_tracking(self):
        world = MultiTargetWorld([(1, 1)], distance_bound=2, track_visits=True)
        world.record_visit((0, 0))
        world.record_visit((5, 5))  # outside window
        assert world.visited_cells == frozenset({(0, 0)})
        assert world.coverage_fraction() == pytest.approx(1 / 25)

    def test_engine_runs_against_multi_world(self):
        from repro.core.algorithm1 import Algorithm1
        from repro.sim.engine import EngineConfig, SearchEngine

        world = MultiTargetWorld([(2, 1), (-3, -3)], distance_bound=6)
        engine = SearchEngine(EngineConfig(move_budget=200_000))
        outcome = engine.run(Algorithm1(6), 4, world, rng=3)
        assert outcome.found
        assert any(world.discovered.values())

    def test_forage_until_all_found(self):
        from repro.core.algorithm1 import Algorithm1

        world = MultiTargetWorld([(2, 1), (-1, 3), (0, -2)], distance_bound=4)
        trips = forage_until_all_found(
            Algorithm1(4), 3, world, 11, move_budget_per_item=300_000
        )
        assert trips is not None
        assert len(trips) <= 3
        assert world.all_discovered


class TestDoublyUniform:
    def test_process_emits_moves_and_returns(self, rng):
        process = DoublyUniformSearch(ell=1).process(rng)
        actions = [next(process) for _ in range(3000)]
        assert any(a.is_move for a in actions)
        assert Action.ORIGIN in actions

    def test_truncated_machine_idles(self, rng):
        process = DoublyUniformSearch(ell=1, max_epoch=1).process(rng)
        actions = [next(process) for _ in range(20_000)]
        assert all(a is Action.NONE for a in actions[-50:])

    def test_sufficient_epoch(self):
        algorithm = DoublyUniformSearch(ell=1)
        assert algorithm.sufficient_epoch(64, 2) == 6  # i0 = 6 dominates
        assert algorithm.sufficient_epoch(4, 1024) == 10  # log2 n dominates

    def test_chi_grows_doubly_logarithmically(self):
        algorithm = DoublyUniformSearch(ell=1)
        small = algorithm.selection_complexity_for(2**6, 4).chi
        large = algorithm.selection_complexity_for(2**12, 4).chi
        assert small < large <= small + 5

    def test_finds_target_without_knowing_d_or_n(self):
        from repro.grid.world import GridWorld
        from repro.sim.engine import EngineConfig, SearchEngine

        engine = SearchEngine(EngineConfig(move_budget=3_000_000))
        world = GridWorld(target=(5, -4), distance_bound=8)
        outcome = engine.run(DoublyUniformSearch(ell=1), 3, world, rng=2)
        assert outcome.found

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            DoublyUniformSearch(ell=0)
        with pytest.raises(InvalidParameterError):
            DoublyUniformSearch(ell=1, max_epoch=0)
        with pytest.raises(InvalidParameterError):
            DoublyUniformSearch(ell=1, K=0)
        with pytest.raises(InvalidParameterError):
            DoublyUniformSearch(ell=1).sufficient_epoch(8, 0)
