"""Unit tests for repro.grid.world, repro.grid.targets, repro.grid.oracle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.grid.geometry import chebyshev_norm, manhattan_norm
from repro.grid.oracle import ReturnOracle, bresenham_return_path
from repro.grid.targets import (
    CornerTarget,
    FixedTarget,
    RingTarget,
    UniformSquareTarget,
)
from repro.grid.world import GridWorld


class TestGridWorld:
    def test_target_and_distance(self):
        world = GridWorld(target=(3, -4), distance_bound=5)
        assert world.target == (3, -4)
        assert world.target_distance == 4
        assert world.is_target((3, -4))
        assert not world.is_target((0, 0))

    def test_target_outside_bound_rejected(self):
        with pytest.raises(InvalidParameterError):
            GridWorld(target=(6, 0), distance_bound=5)

    def test_negative_bound_rejected(self):
        with pytest.raises(InvalidParameterError):
            GridWorld(target=(0, 0), distance_bound=-1)

    def test_visit_tracking_window_only(self):
        world = GridWorld(target=(1, 1), distance_bound=2, track_visits=True)
        world.record_visit((0, 0))
        world.record_visit((2, 2))
        world.record_visit((3, 0))  # outside the window: dropped
        assert world.visited_cells == frozenset({(0, 0), (2, 2)})

    def test_visit_tracking_disabled_by_default(self):
        world = GridWorld(target=(1, 1), distance_bound=2)
        world.record_visit((0, 0))
        assert world.visited_cells == frozenset()

    def test_coverage_fraction(self):
        world = GridWorld(target=(0, 1), distance_bound=1, track_visits=True)
        world.record_visits([(0, 0), (1, 1), (0, 0)])
        assert world.window_size == 9
        assert world.coverage_fraction() == pytest.approx(2 / 9)


class TestTargets:
    def test_fixed_returns_same_point(self, rng):
        placement = FixedTarget((2, -3))
        assert placement(rng) == (2, -3)
        assert placement.distance_bound == 3

    def test_fixed_with_explicit_bound(self, rng):
        placement = FixedTarget((1, 0), distance_bound=10)
        assert placement.distance_bound == 10

    def test_fixed_rejects_out_of_bound(self):
        with pytest.raises(InvalidParameterError):
            FixedTarget((5, 5), distance_bound=3)

    def test_corner(self, rng):
        assert CornerTarget(7)(rng) == (7, 7)

    def test_uniform_square_within_bound(self, rng):
        placement = UniformSquareTarget(4)
        for _ in range(200):
            assert chebyshev_norm(placement(rng)) <= 4

    def test_uniform_square_covers_cells(self, rng):
        placement = UniformSquareTarget(1)
        seen = {placement(rng) for _ in range(500)}
        assert len(seen) == 9  # all cells of the 3x3 window appear

    def test_ring_exact_distance(self, rng):
        placement = RingTarget(5)
        for _ in range(200):
            assert chebyshev_norm(placement(rng)) == 5

    def test_ring_covers_all_sides(self, rng):
        placement = RingTarget(2)
        seen = {placement(rng) for _ in range(2000)}
        assert seen == {
            p
            for p in [
                (x, y) for x in range(-2, 3) for y in range(-2, 3)
            ]
            if chebyshev_norm(p) == 2
        }

    def test_ring_degenerate_zero(self, rng):
        assert RingTarget(0)(rng) == (0, 0)


class TestOracle:
    @pytest.mark.parametrize(
        "start", [(5, 3), (-4, 7), (0, 9), (8, 0), (-3, -3), (1, -6), (0, 0)]
    )
    def test_path_is_shortest(self, start):
        path = bresenham_return_path(start)
        assert path[0] == start
        assert path[-1] == (0, 0)
        assert len(path) - 1 == manhattan_norm(start)

    @pytest.mark.parametrize("start", [(5, 3), (-4, 7), (10, -1), (-6, -8)])
    def test_path_steps_are_unit_moves(self, start):
        path = bresenham_return_path(start)
        for a, b in zip(path, path[1:]):
            assert manhattan_norm((a[0] - b[0], a[1] - b[1])) == 1

    @pytest.mark.parametrize("start", [(10, 4), (-7, 3), (6, -9), (-5, -5)])
    def test_path_hugs_the_segment(self, start):
        x0, y0 = start
        segment_norm = float(np.hypot(x0, y0))
        for px, py in bresenham_return_path(start):
            # Perpendicular distance from (px, py) to the line through
            # the origin and start.
            perpendicular = abs(y0 * px - x0 * py) / segment_norm
            assert perpendicular <= 1.0

    def test_uncounted_mode_costs_zero_but_accumulates(self):
        oracle = ReturnOracle(counted=False)
        assert oracle.return_cost((3, 4)) == 0
        assert oracle.total_return_moves == 7
        assert oracle.total_returns == 1

    def test_counted_mode_charges_manhattan(self):
        oracle = ReturnOracle(counted=True)
        assert oracle.return_cost((3, 4)) == 7
        assert oracle.return_cost((0, 0)) == 0
        assert oracle.total_returns == 2

    def test_oracle_path_matches_function(self):
        oracle = ReturnOracle()
        assert oracle.path((2, 2)) == bresenham_return_path((2, 2))
