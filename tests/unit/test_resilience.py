"""Unit tests for the resilience layer (``repro.resilience`` + jobs).

The contracts under test:

* the fault harness is deterministic — rules match on exact context,
  fire on exact schedules, and the ``probability`` mode draws from the
  plan seed, so two activations of the same plan fire identically;
* inline shard execution retries transient faults with bounded
  attempts and settles bit-identical to an unfaulted run;
* a mid-run ``DeviceLostError`` degrades the job onto the next
  supporting backend and the final result is wholly the fallback's
  stream — bit-identical to a run that used the fallback from the
  start;
* ``deadline_seconds`` is validated, excluded from the cache
  fingerprint, and enforced at shard boundaries;
* a non-terminal ledger record whose owning process is dead reports
  ``failed-recoverable`` (``repro-ants jobs list`` flags it), and
  resubmitting the request re-runs only the shards the crashed run
  never finished.
"""

from __future__ import annotations

import json

import pytest

import repro.sim.cache as cache_module
from repro.cli import main
from repro.errors import (
    DeadlineExceededError,
    DeviceLostError,
    InvalidParameterError,
    TransientFaultError,
)
from repro.resilience.faults import (
    FaultPlan,
    FaultSpec,
    activate,
    active_plan,
    deactivate,
    fault_counters,
    faults_enabled,
    maybe_inject,
)
from repro.sim import AlgorithmSpec, SimulationRequest, simulate, simulate_async
from repro.sim.cache import cache_key, configure_cache
from repro.sim.jobs import (
    FAILED_RECOVERABLE,
    JobManager,
    _retry_delay,
    effective_state,
    ledger_dir,
)
from repro.sim.service import backend_run_count


def _request(**overrides):
    defaults = dict(
        algorithm=AlgorithmSpec.algorithm1(8),
        n_agents=2,
        target=(5, 3),
        move_budget=100_000,
        n_trials=6,
        seed=11,
    )
    defaults.update(overrides)
    return SimulationRequest(**defaults)


@pytest.fixture
def fresh_cache(tmp_path):
    cache = configure_cache(directory=tmp_path, max_memory_entries=64)
    cache.clear()
    yield cache
    configure_cache(
        directory=cache_module.default_cache_dir(), max_memory_entries=256
    )


@pytest.fixture(autouse=True)
def no_leftover_faults():
    """Every test starts and ends without an active fault plan."""
    deactivate()
    yield
    deactivate()


class TestFaultSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(InvalidParameterError, match="unknown fault kind"):
            FaultSpec(site="worker.shard", kind="explode")

    def test_schedules_are_mutually_exclusive(self):
        with pytest.raises(InvalidParameterError, match="mutually exclusive"):
            FaultSpec(site="worker.shard", kind="error", at=(0,), every=2)

    def test_probability_domain(self):
        with pytest.raises(InvalidParameterError):
            FaultSpec(site="worker.shard", kind="error", probability=1.5)
        with pytest.raises(InvalidParameterError):
            FaultSpec(site="worker.shard", kind="error", probability=0.0)

    def test_plan_round_trips_through_json(self):
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    site="worker.shard",
                    kind="kill",
                    match={"shard_index": 2, "attempt": 0},
                ),
                FaultSpec(
                    site="cache.disk_write",
                    kind="corrupt",
                    at=(0, 3),
                    max_fires=2,
                ),
            ),
            seed=7,
        )
        assert FaultPlan.from_json(plan.to_json()) == plan


class TestHarnessDeterminism:
    def test_inactive_by_default(self):
        assert not faults_enabled()
        assert maybe_inject("worker.shard", shard_index=0, attempt=0) is None

    def test_activation_travels_through_the_environment(self, monkeypatch):
        import os

        plan = FaultPlan(
            specs=(FaultSpec(site="cache.disk_read", kind="error", at=(0,)),)
        )
        activate(plan)
        assert faults_enabled()
        assert os.environ["REPRO_ANTS_FAULTS"] == plan.to_json()
        assert active_plan() == plan
        deactivate()
        assert not faults_enabled()

    def test_match_narrows_and_at_schedules(self):
        activate(
            FaultPlan(
                specs=(
                    FaultSpec(
                        site="worker.shard",
                        kind="error",
                        match={"shard_index": 2},
                        at=(1,),
                    ),
                )
            )
        )
        # Non-matching context never fires.
        assert maybe_inject("worker.shard", shard_index=0, attempt=0) is None
        # First match (counter 0) does not fire with at=(1,).
        assert maybe_inject("worker.shard", shard_index=2, attempt=0) is None
        # Second match fires.
        with pytest.raises(TransientFaultError):
            maybe_inject("worker.shard", shard_index=2, attempt=1)
        matches, fires = fault_counters()[0]
        assert (matches, fires) == (2, 1)

    def test_max_fires_bounds_total_firings(self):
        activate(
            FaultPlan(
                specs=(
                    FaultSpec(site="cache.disk_read", kind="error", max_fires=1),
                )
            )
        )
        with pytest.raises(TransientFaultError):
            maybe_inject("cache.disk_read", level="entry")
        assert maybe_inject("cache.disk_read", level="entry") is None

    def test_probability_schedule_is_seed_deterministic(self):
        def pattern():
            fired = []
            for _ in range(32):
                try:
                    fired.append(
                        maybe_inject("cache.disk_read", level="entry")
                        is not None
                    )
                except TransientFaultError:
                    fired.append(True)
            return fired

        plan = FaultPlan(
            specs=(
                FaultSpec(
                    site="cache.disk_read", kind="error", probability=0.5
                ),
            ),
            seed=1234,
        )
        activate(plan)
        first = pattern()
        deactivate()
        activate(plan)
        assert pattern() == first
        assert any(first) and not all(first)

    def test_action_kinds_are_returned_not_raised(self):
        activate(
            FaultPlan(
                specs=(FaultSpec(site="cache.disk_write", kind="truncate"),)
            )
        )
        spec = maybe_inject("cache.disk_write", level="entry")
        assert spec is not None and spec.kind == "truncate"

    def test_retry_delay_is_deterministic_and_bounded(self):
        delays = [_retry_delay("job-x", 3, attempt) for attempt in (1, 2, 3)]
        assert delays == [_retry_delay("job-x", 3, a) for a in (1, 2, 3)]
        assert all(0.0 < delay <= 2.0 for delay in delays)
        # Different shards decorrelate.
        assert _retry_delay("job-x", 3, 1) != _retry_delay("job-x", 4, 1)


class TestShardRetries:
    def test_transient_fault_is_retried_bit_identical(self, fresh_cache):
        request = _request(seed=41)
        unfaulted = simulate(request, backend="closed_form", cache=False)
        activate(
            FaultPlan(
                specs=(
                    FaultSpec(
                        site="backend.run",
                        kind="error",
                        match={"backend": "closed_form", "attempt": 0},
                    ),
                )
            )
        )
        job = simulate_async(request, backend="closed_form", cache=False)
        result = job.result(timeout=60)
        assert result.outcomes == unfaulted.outcomes
        assert job._retries == 1

    def test_persistent_fault_exhausts_attempts_and_fails(self, fresh_cache):
        activate(
            FaultPlan(
                specs=(
                    FaultSpec(
                        site="backend.run",
                        kind="error",
                        match={"backend": "closed_form"},
                    ),
                )
            )
        )
        job = simulate_async(
            _request(seed=42), backend="closed_form", cache=False
        )
        with pytest.raises(TransientFaultError):
            job.result(timeout=60)
        assert isinstance(job.exception(), TransientFaultError)
        assert job._retries == 2  # attempts 1 and 2 of _MAX_SHARD_ATTEMPTS=3


class TestDegradation:
    def test_device_loss_falls_back_bit_identical(self, fresh_cache):
        request = _request(seed=43)
        activate(
            FaultPlan(
                specs=(
                    FaultSpec(
                        site="backend.run",
                        kind="device_lost",
                        match={"backend": "closed_form", "attempt": 0},
                    ),
                )
            )
        )
        job = simulate_async(request, backend="closed_form", cache=False)
        result = job.result(timeout=60)
        deactivate()
        assert job._degraded_from == "closed_form"
        assert job.backend != "closed_form"
        assert "device loss" in (job._degradation_reason or "")
        pure_fallback = simulate(request, backend=job.backend, cache=False)
        assert result.outcomes == pure_fallback.outcomes
        assert result.backend == pure_fallback.backend

    def test_device_loss_with_no_fallback_fails(self, fresh_cache):
        # Every backend reports the loss: the ladder runs out and the
        # original error surfaces.
        activate(
            FaultPlan(
                specs=(FaultSpec(site="backend.run", kind="device_lost"),)
            )
        )
        job = simulate_async(
            _request(seed=44), backend="closed_form", cache=False
        )
        with pytest.raises(DeviceLostError):
            job.result(timeout=60)


class TestDeadlines:
    def test_deadline_must_be_positive(self):
        with pytest.raises(InvalidParameterError):
            _request(deadline_seconds=0.0)
        with pytest.raises(InvalidParameterError):
            _request(deadline_seconds=-1.0)

    def test_deadline_is_not_part_of_the_cache_identity(self):
        base = _request(seed=45)
        with_deadline = _request(seed=45, deadline_seconds=30.0)
        assert cache_key(base, "closed_form") == cache_key(
            with_deadline, "closed_form"
        )

    def test_pooled_deadline_raises_deadline_exceeded(self, fresh_cache):
        activate(
            FaultPlan(
                specs=(
                    FaultSpec(
                        site="worker.shard", kind="stall", seconds=1.5
                    ),
                )
            )
        )
        # A private manager: its pool is created after activate(), so
        # the workers inherit the fault plan through the environment.
        manager = JobManager()
        try:
            job = manager.submit(
                _request(seed=46, n_trials=4, deadline_seconds=0.3),
                backend="closed_form",
                workers=2,
            )
            with pytest.raises(DeadlineExceededError, match="deadline"):
                job.result(timeout=60)
        finally:
            deactivate()
            manager.close()


class TestLedgerRecovery:
    def _dead_record(self, job_id: str = "job-deadbeef0001") -> dict:
        return {
            "job_id": job_id,
            "state": "running",
            "algorithm": "algorithm1",
            "backend": "closed_form",
            "n_trials": 8,
            "total_shards": 2,
            "done_shards": 1,
            "done_trials": 4,
            "cached_shards": 0,
            "submitted_at": 1.0,
            "updated_at": 1.0,
            "pid": 2**22 + 12345,  # beyond any plausible live pid
            "error": None,
        }

    def test_effective_state_flags_dead_owner(self):
        record = self._dead_record()
        assert effective_state(record) == FAILED_RECOVERABLE
        record["state"] = "done"
        assert effective_state(record) == "done"

    def test_jobs_list_flags_failed_recoverable(self, fresh_cache, capsys):
        directory = ledger_dir()
        directory.mkdir(parents=True, exist_ok=True)
        record = self._dead_record()
        (directory / f"{record['job_id']}.json").write_text(
            json.dumps(record)
        )
        assert main(["jobs", "list"]) == 0
        out = capsys.readouterr().out
        assert record["job_id"] in out
        assert FAILED_RECOVERABLE in out

    def test_resumed_run_reuses_the_crashed_runs_shards(self, fresh_cache):
        request = _request(seed=47, n_trials=8)
        # Simulate the crashed run's surviving work: shard 0 of the
        # 2-shard layout was written through before the owner died.
        reference = simulate(request, backend="closed_form", cache=False)
        fresh_cache.store_shard(
            request, "closed_form", range(0, 4), reference.outcomes[0:4]
        )
        directory = ledger_dir()
        directory.mkdir(parents=True, exist_ok=True)
        record = self._dead_record()
        (directory / f"{record['job_id']}.json").write_text(
            json.dumps(record)
        )
        before = backend_run_count()
        resumed = simulate_async(request, backend="closed_form", workers=2)
        result = resumed.result(timeout=60)
        # Exactly the one unfinished shard ran; the survivor came from
        # the shard cache, and the assembled result is bit-identical.
        assert backend_run_count() == before + 1
        assert resumed.progress().cached_shards == 1
        assert result.outcomes == reference.outcomes
