"""Unit tests for the lower-bound machinery (repro.lowerbound)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.actions import Action
from repro.errors import InvalidParameterError
from repro.lowerbound.certify import certify
from repro.lowerbound.colony import simulate_colony
from repro.lowerbound.coverage import (
    adversarial_target,
    distance_to_prediction,
    empirical_vs_predicted,
    predicted_coverage_fraction,
    ray_distance,
)
from repro.lowerbound.drift import drift_profile, measure_max_deviation
from repro.lowerbound.theory import (
    chi_margin,
    horizon_moves,
    initial_rounds_r0,
    is_poly_agents,
    speedup_cap_below_threshold,
    tube_width,
)
from repro.markov.random_automata import (
    biased_walk_automaton,
    cycle_automaton,
    random_bounded_automaton,
    uniform_walk_automaton,
)


class TestTheoryQuantities:
    def test_horizon_moves(self):
        assert horizon_moves(16, 1.0) == 16
        assert horizon_moves(16, 0.5) == 64  # D^{1.5}
        assert horizon_moves(100, 0.25) == int(np.ceil(100**1.75))

    def test_horizon_validation(self):
        with pytest.raises(InvalidParameterError):
            horizon_moves(1)
        with pytest.raises(InvalidParameterError):
            horizon_moves(16, 0.0)

    def test_r0_grows_with_states(self):
        small = initial_rounds_r0(0.5, 1, 64)
        large = initial_rounds_r0(0.5, 3, 64)
        assert large > small

    def test_chi_margin_sign(self):
        # threshold at D=256 is 3.
        assert chi_margin(2.0, 256) > 0
        assert chi_margin(4.0, 256) < 0

    def test_tube_width_sublinear_in_d_over_s(self):
        # width * |S| / D -> 0 as D grows (the o(D/|S|) requirement).
        ratios = [tube_width(d, 4) * 4 / d for d in (16, 256, 65536)]
        assert ratios[0] > ratios[1] > ratios[2]

    def test_speedup_cap(self):
        assert speedup_cap_below_threshold(256, 2, 0.25) == 2.0
        assert speedup_cap_below_threshold(256, 10**6, 0.25) == pytest.approx(
            256**0.25
        )

    def test_poly_agents(self):
        assert is_poly_agents(16, 4096)
        assert not is_poly_agents(16, 16**4)


class TestDrift:
    def test_uniform_walk_has_zero_drift(self):
        lines = drift_profile(uniform_walk_automaton())
        assert len(lines) == 1
        assert lines[0].drift == pytest.approx((0.0, 0.0))
        assert lines[0].absorption_probability == 1.0
        assert lines[0].moves_per_round == pytest.approx(1.0)
        assert not lines[0].is_stalling

    def test_biased_walk_drift_matches_quantized_weights(self):
        machine = biased_walk_automaton([2, 0, 1, 1], ell=2)
        (line,) = drift_profile(machine)
        # quantized to (2, 0, 1, 1)/4: drift = (p_right - p_left, p_up - p_down)
        assert line.drift == pytest.approx((0.0, 0.5))
        assert line.speed == pytest.approx(0.5)

    def test_cycle_machine_zero_drift_loop(self):
        pattern = [Action.UP, Action.RIGHT, Action.DOWN, Action.LEFT]
        (line,) = drift_profile(cycle_automaton(pattern))
        assert line.drift == pytest.approx((0.0, 0.0))

    def test_straight_line_machine_unit_drift(self):
        (line,) = drift_profile(cycle_automaton([Action.UP]))
        assert line.drift == pytest.approx((0.0, 1.0))

    def test_measured_deviation_small_for_deterministic_line(self, rng):
        machine = cycle_automaton([Action.UP])
        deviation, line = measure_max_deviation(machine, rounds=500, rng=rng)
        assert line.drift == pytest.approx((0.0, 1.0))
        assert deviation <= 2.0  # burn-in offset only

    def test_measured_deviation_diffusive_for_uniform_walk(self, rng):
        machine = uniform_walk_automaton()
        rounds = 3600
        deviation, _ = measure_max_deviation(machine, rounds=rounds, rng=rng)
        # Diffusive: deviation ~ sqrt(rounds) << rounds.
        assert deviation < rounds / 8
        assert deviation > 0

    def test_deviation_rejects_bad_rounds(self, rng):
        with pytest.raises(InvalidParameterError):
            measure_max_deviation(uniform_walk_automaton(), rounds=0, rng=rng)


class TestRayDistance:
    def test_point_on_ray(self):
        assert ray_distance((3, 3), (1.0, 1.0)) == pytest.approx(0.0)

    def test_point_behind_ray_uses_origin(self):
        assert ray_distance((-3, 0), (1.0, 0.0)) == pytest.approx(3.0)

    def test_perpendicular_offset(self):
        assert ray_distance((5, 1), (1.0, 0.0)) == pytest.approx(1.0)

    def test_zero_direction_degenerates_to_norm(self):
        assert ray_distance((3, 4), (0.0, 0.0)) == pytest.approx(5.0)

    def test_distance_to_prediction_min_over_lines(self):
        machine = biased_walk_automaton([4, 0, 0, 0], ell=2)  # drifts up
        lines = drift_profile(machine)
        on_line = distance_to_prediction((0, 10), lines)
        off_line = distance_to_prediction((10, 0), lines)
        assert on_line == pytest.approx(0.0)
        assert off_line > 5


class TestCoverage:
    def test_predicted_fraction_decays_with_distance(self):
        machine = uniform_walk_automaton()
        fractions = [predicted_coverage_fraction(machine, d) for d in (64, 256, 1024)]
        assert fractions[0] > fractions[1] > fractions[2]

    def test_adversarial_target_avoids_drift_line(self):
        machine = biased_walk_automaton([4, 0, 0, 0], ell=2)  # drifts straight up
        target = adversarial_target(machine, 64)
        lines = drift_profile(machine)
        assert distance_to_prediction(target, lines) > 32

    def test_adversarial_target_within_bound(self):
        machine = uniform_walk_automaton()
        target = adversarial_target(machine, 32)
        assert max(abs(target[0]), abs(target[1])) <= 32

    def test_empirical_vs_predicted_shapes(self, rng):
        machine = uniform_walk_automaton()
        result = simulate_colony(machine, 4, 500, rng, window_radius=16)
        empirical, predicted = empirical_vs_predicted(result.visited, machine, 16)
        assert 0.0 < empirical < 1.0
        assert 0.0 < predicted <= 1.0

    def test_empirical_vs_predicted_validates_shape(self):
        machine = uniform_walk_automaton()
        with pytest.raises(InvalidParameterError):
            empirical_vs_predicted(np.zeros((3, 3), dtype=bool), machine, 16)


class TestColonySimulation:
    def test_coverage_counts_origin(self, rng):
        machine = uniform_walk_automaton()
        result = simulate_colony(machine, 2, 10, rng, window_radius=8)
        assert result.visited[8, 8]  # origin cell
        assert result.visited_count() >= 1

    def test_straight_line_colony_visits_column(self, rng):
        machine = cycle_automaton([Action.UP])
        result = simulate_colony(machine, 1, 8, rng, window_radius=8)
        column = result.visited[8, :]  # x = 0 column
        assert column.sum() >= 8

    def test_target_found_with_move_count(self, rng):
        machine = cycle_automaton([Action.UP])
        result = simulate_colony(
            machine, 3, 20, rng, window_radius=16, target=(0, 5)
        )
        assert result.found
        assert result.m_moves == 5
        assert result.m_steps is not None

    def test_target_missed(self, rng):
        machine = cycle_automaton([Action.UP])
        result = simulate_colony(
            machine, 2, 50, rng, window_radius=16, target=(3, 3)
        )
        assert not result.found
        assert result.m_moves is None

    def test_validation(self, rng):
        machine = uniform_walk_automaton()
        with pytest.raises(InvalidParameterError):
            simulate_colony(machine, 0, 5, rng, window_radius=4)
        with pytest.raises(InvalidParameterError):
            simulate_colony(machine, 1, 0, rng, window_radius=4)
        with pytest.raises(InvalidParameterError):
            simulate_colony(machine, 1, 5, rng, window_radius=0)


class TestCertificate:
    def test_certificate_fields(self, rng):
        machine = random_bounded_automaton(rng, bits=2, ell=1)
        certificate = certify(machine, 64, 8)
        assert certificate.distance == 64
        assert certificate.threshold == pytest.approx(np.log2(np.log2(64)))
        assert certificate.horizon == horizon_moves(64)
        assert len(certificate.drift_lines) >= 1
        assert 0.0 < certificate.predicted_coverage <= 1.0
        assert certificate.speedup_cap <= 8

    def test_summary_renders(self, rng):
        machine = uniform_walk_automaton()
        certificate = certify(machine, 64, 4)
        text = "\n".join(certificate.summary_lines())
        assert "chi" in text and "drift" in text

    def test_below_threshold_flag(self):
        # A 2-state, ell=1 machine has chi = 1 < log log 64 = 2.585.
        import numpy as np
        from repro.core.automaton import Automaton

        matrix = np.array([[0.5, 0.5], [0.5, 0.5]])
        machine = Automaton(matrix, [Action.ORIGIN, Action.UP])
        certificate = certify(machine, 64, 4)
        assert certificate.below_threshold

    def test_validation(self):
        machine = uniform_walk_automaton()
        with pytest.raises(InvalidParameterError):
            certify(machine, 2, 4)
        with pytest.raises(InvalidParameterError):
            certify(machine, 64, 0)
